#!/usr/bin/env python3
"""Profiling a hardened workload: where do the cycles go, and which
allowlists does the program actually exercise?

Uses the library's tracing tools (repro.cpu.tracer) on the xalancbmk-like
benchmark hardened with the ICall defense, then prints:

* the hottest program counters (with symbol attribution),
* per-key ROLoad execution counts (allowlist coverage),
* the timing breakdown the cycle model collected.

Run:  python examples/profiling.py
"""

from repro.compiler import compile_module
from repro.cpu.tracer import Profiler, ROLoadMonitor
from repro.defenses import TypeBasedCFI
from repro.kernel import Kernel
from repro.soc import build_system
from repro.workloads import build_workload, profile


def main() -> None:
    program = build_workload(profile("483.xalancbmk"), scale=0.05)
    defense = TypeBasedCFI()
    image = compile_module(program.module, hardening=[defense])

    kernel = Kernel(build_system())
    process = kernel.create_process(image, name="xalancbmk")
    core = kernel.system.core

    with Profiler(core) as profiler, ROLoadMonitor(core) as monitor:
        kernel.run(process, max_instructions=50_000_000)

    print(f"status: {process.status()}")
    stats = kernel.system.timing.stats
    print(f"\n{stats.instructions:,} instructions in "
          f"{stats.cycles:,} cycles "
          f"(CPI {stats.cycles / stats.instructions:.2f})")
    print(f"cycle breakdown: icache misses {stats.icache_misses:,}, "
          f"dcache misses {stats.dcache_misses:,}, "
          f"TLB walks {stats.itlb_walk_cycles + stats.dtlb_walk_cycles:,}"
          f" cycles, branches {stats.branch_penalty_cycles:,} cycles")

    print("\nHottest locations:")
    print(profiler.format(8, symbols=image.symbols))

    print("\nROLoad (allowlist) coverage by key:")
    print(monitor.format())
    print("\nkey meanings:")
    for signature, key in sorted(defense.key_of_type.items(),
                                 key=lambda kv: kv[1]):
        print(f"  key {key}: GFPT for function type {signature}")
    if defense.vtable_key is not None:
        print(f"  key {defense.vtable_key}: unified vtable key")


if __name__ == "__main__":
    main()
