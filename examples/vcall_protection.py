#!/usr/bin/env python3
"""VCall protection (§IV-A): stopping VTable hijacking.

Builds a C++-style victim (classes, vtables, virtual dispatch) with the
library's compiler, then plays three attacks against it — unprotected,
hardened by the VTint baseline, and hardened by ROLoad's VCall — showing
exactly the security delta the paper claims: both stop fake-vtable
injection, but only VCall's per-class page keys stop cross-type vtable
reuse.

Run:  python examples/vcall_protection.py
"""

from repro.attacks import (
    cross_type_vtable_reuse,
    inject_fake_vtable,
    run_attack,
)
from repro.attacks.victims import BENIGN_EXIT, build_victim_module
from repro.compiler import compile_module, compile_to_assembly
from repro.defenses import VCallProtection, VTintBaseline


def describe(outcome) -> str:
    if outcome.hijacked:
        return "HIJACKED — attacker code ran"
    if outcome.blocked:
        kind = "ROLoad key/permission check" if outcome.roload_violation \
            else "software check"
        return f"blocked by {kind} ({outcome.status})"
    return f"survived, but misbehaved: {outcome.status}"


def main() -> None:
    victim = build_victim_module()

    print("The victim's virtual call, compiled three ways:\n")
    vcall_asm = compile_to_assembly(
        victim, hardening=[VCallProtection()])
    for line in vcall_asm.splitlines():
        if "ld.ro" in line:
            print(f"  VCall-hardened vtable load:   {line.strip()}")
            break
    print()

    images = {
        "unprotected": compile_module(victim),
        "VTint (software range check)":
            compile_module(victim, hardening=[VTintBaseline()]),
        "VCall (ROLoad, per-class keys)":
            compile_module(victim, hardening=[VCallProtection()]),
    }

    print(f"Benign behaviour (expected exit code {BENIGN_EXIT}):")
    for name, image in images.items():
        outcome = run_attack(image, lambda a: None)
        print(f"  {name:32s} exit={outcome.exit_code}")

    print("\nAttack 1 — fake-vtable injection (vptr -> writable memory):")
    for name, image in images.items():
        outcome = run_attack(image, inject_fake_vtable)
        print(f"  {name:32s} {describe(outcome)}")

    print("\nAttack 2 — cross-type vtable reuse (vptr -> another class's")
    print("genuine, read-only vtable — the attack VTint cannot see):")
    for name, image in images.items():
        outcome = run_attack(image, cross_type_vtable_reuse)
        print(f"  {name:32s} {describe(outcome)}")

    print("\nConclusion: VCall subsumes VTint's guarantee (read-only")
    print("vtables) and adds type separation via page keys — at a tenth")
    print("of the runtime cost (see benchmarks/test_fig3_vcall.py).")


if __name__ == "__main__":
    main()
