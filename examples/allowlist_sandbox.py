#!/usr/bin/env python3
"""The generic allowlist recipe (§IV-C) beyond control flow.

The paper: "We believe that all allowlist-based defenses can be enhanced
by ROLoad." Here the sensitive operation is a logging routine that must
only ever be fed one of three approved format strings (format-string bugs
being a classic corruption target). The allowlist is a keyed read-only
table of string addresses; the logger dereferences its argument with
``ld.ro``, so a corrupted pointer can only ever select an approved string
— anything else faults.

Run:  python examples/allowlist_sandbox.py
"""

from repro.attacks import MemoryCorruption
from repro.compiler import (
    GlobalVar,
    IRBuilder,
    Module,
    compile_module,
)
from repro.defenses import KeyedAllowlist
from repro.kernel import Kernel
from repro.soc import build_system


def build_program():
    m = Module("fmt_demo")
    allowlist = KeyedAllowlist(m, "formats")

    # Three approved "format strings".
    for index, text in enumerate(("INFO: %s", "WARN: %s", "ERR:  %s")):
        m.global_var(GlobalVar(
            f"fmt{index}", section=".rodata", width=1,
            init=list(text.encode()) + [0]))
    slots = [allowlist.add_symbol(f"fmt{i}") for i in range(3)]
    allowlist.seal()

    # A writable global holding "which format to use" — the corruption
    # target. It stores a *slot pointer*, not a raw string pointer.
    m.global_var(GlobalVar("current_fmt", section=".data",
                           init=[("quad", slots[0].split("+")[0])]))

    # log_first_byte(): returns the first byte of the selected format,
    # after the ld.ro check proves it came from the allowlist.
    logger = m.function("log_first_byte")
    b = IRBuilder(logger)
    slot_ptr = b.load(b.la("current_fmt"))
    fmt_addr = allowlist.load_checked(b, slot_ptr)   # the ld.ro
    b.ret(b.load(fmt_addr, 0, width=1, signed=False))

    main = m.function("main")
    b = IRBuilder(main)
    b.ret(b.call("log_first_byte"))
    return m, allowlist


def run_with(corrupt):
    module, allowlist = build_program()
    image = compile_module(module)
    kernel = Kernel(build_system())
    process = kernel.create_process(image, name="fmt_demo")
    attacker = MemoryCorruption(kernel, process, image)
    corrupt(attacker, image, allowlist)
    kernel.run(process)
    return process, kernel


def main() -> None:
    process, __ = run_with(lambda a, img, al: None)
    print(f"benign: exit={process.exit_code} "
          f"(= ord('I') of 'INFO: %s' -> {ord('I')})")

    def pick_warn(attacker, image, allowlist):
        # Legitimate in-allowlist selection: slot 1 ("WARN").
        attacker.write_symbol("current_fmt",
                              image.symbol(allowlist.symbol) + 8)

    process, __ = run_with(pick_warn)
    print(f"slot 1: exit={process.exit_code} (= ord('W') -> {ord('W')})")

    def inject_evil(attacker, image, allowlist):
        # Classic attack: point at an attacker-controlled "%n%n%n..."
        # string in writable memory. The pointee check must fire.
        evil = image.symbol("current_fmt") + 64  # some writable bytes
        attacker.write_symbol("current_fmt", evil)

    process, kernel = run_with(inject_evil)
    print(f"attack: {process.status()}")
    for event in kernel.security_log:
        print(f"        kernel log: {event}")


if __name__ == "__main__":
    main()
