#!/usr/bin/env python3
"""Type-based forward-edge CFI via GFPTs (§IV-B, Listings 1-3).

Reconstructs the paper's running example: two function pointers of
different types, transformed so that (1) each type's legitimate targets
live in a global function pointer table (GFPT) in a keyed read-only page,
(2) "taking the address" of a function yields its GFPT slot, and (3) each
indirect call dereferences the slot with ``ld.ro`` and the type's key.

The script prints the generated assembly around each indirect call so you
can match it line by line against Listing 3, then demonstrates the
enforcement and its §V-D boundary (same-type pointee reuse).

Run:  python examples/forward_edge_cfi.py
"""

from repro.attacks import run_attack
from repro.attacks.fptr_hijack import point_at_attacker_data, \
    point_at_gadget_code
from repro.attacks.reuse import same_type_slot_reuse
from repro.attacks.victims import build_victim_module
from repro.compiler import compile_module, compile_to_assembly
from repro.defenses import TypeBasedCFI


def show_listing3(asm: str) -> None:
    print("Generated code around the indirect call (compare Listing 3):")
    lines = asm.splitlines()
    for index, line in enumerate(lines):
        if "ld.ro" in line and "jalr" in "".join(lines[index:index + 3]):
            for context in lines[max(0, index - 1):index + 3]:
                print(f"    {context.strip()}")
            print()
    print("GFPT sections (compare Listing 3 lines 7-10):")
    current = None
    for line in asm.splitlines():
        if line.startswith(".section .rodata.key."):
            current = line
        elif current and "__gfpt_" in line:
            print(f"    {current}")
            current = None


def main() -> None:
    victim = build_victim_module()
    defense = TypeBasedCFI()
    asm = compile_to_assembly(victim, hardening=[defense])
    show_listing3(asm)

    print("\nKey assignment (function type -> page key):")
    for signature, key in sorted(defense.key_of_type.items()):
        print(f"    {signature:16s} -> key {key}")
    if defense.vtable_key is not None:
        print(f"    (all vtables share unified key {defense.vtable_key})")

    image = compile_module(victim, hardening=[TypeBasedCFI()])

    print("\nEnforcement:")
    outcome = run_attack(image, lambda a: None)
    print(f"  benign run:                exit={outcome.exit_code}")
    outcome = run_attack(image, point_at_gadget_code)
    print(f"  fptr -> raw code address:  {outcome.status}")
    outcome = run_attack(image, point_at_attacker_data)
    print(f"  fptr -> attacker data:     {outcome.status}")

    print("\nThe §V-D boundary — same-type pointee reuse is the one move")
    print("left to the attacker (and it stays inside the allowlist):")
    defense2 = TypeBasedCFI()
    image2 = compile_module(victim, hardening=[defense2])
    outcome = run_attack(image2,
                         lambda a: same_type_slot_reuse(a, defense2))
    print(f"  fptr -> same-type GFPT slot: {outcome.status} "
          f"(hijacked={outcome.hijacked})")


if __name__ == "__main__":
    main()
