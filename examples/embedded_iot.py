#!/usr/bin/env python3
"""ROLoad on an MMU-less IoT device (§II-D) + backward edges (§IV-C).

Two of the paper's "this also works" claims, demonstrated:

1. **Keyed PMP instead of paging.** A bare-metal program on a flat
   physical memory map, with a RISC-V-PMP/ARM-MPU-style region table
   carrying keys. Same ``ld.ro`` semantics, no page tables at all.
2. **Return-site allowlists.** A protected function returns through a
   keyed read-only table of its legitimate return sites instead of
   trusting the on-stack return address.

Run:  python examples/embedded_iot.py
"""

from repro.asm import assemble, link
from repro.cpu.trap import Trap
from repro.defenses import ReturnSiteTable
from repro.mem import PMPRegion
from repro.soc import build_embedded_system


def build_firmware():
    """Bare-metal 'firmware' using a return-site table."""
    table = ReturnSiteTable("sensor_read")
    call1 = table.call_snippet("after_first_read")
    call2 = table.call_snippet("after_second_read")
    protected_return = table.return_snippet()
    source = f"""
.globl _start
_start:
    li s0, 0
{call1}
    add s0, s0, a0          # accumulate first reading
{call2}
    add s0, s0, a0          # accumulate second reading
    mv a0, s0
    ebreak                  # halt for the demo harness

# The protected function: returns ONLY through the keyed table.
sensor_read:
    li a0, 21
{protected_return}

{table.table_section()}
"""
    return source, table


def main() -> None:
    source, table = build_firmware()
    image = link([assemble(source, name="firmware.s")])

    regions = []
    for segment in image.segments:
        regions.append(PMPRegion(
            base=segment.vaddr, size=segment.memsize,
            readable=True, writable=segment.writable,
            executable=segment.executable, key=segment.key))
    print("PMP region table (flat physical memory, no MMU):")
    for region in regions:
        kind = "X" if region.executable else \
            ("RW" if region.writable else "RO")
        key = f" key={region.key}" if region.key else ""
        print(f"  {region.base:#08x}..{region.base + region.size:#08x} "
              f"{kind}{key}")

    system = build_embedded_system(regions)
    core = system.core
    for segment in image.segments:
        if segment.data:
            system.memory.write_bytes(segment.vaddr, segment.data)
    core.pc = image.entry
    core.regs[2] = 0x100000  # bare-metal stack

    try:
        for __ in range(10_000):
            core.step()
    except Trap as trap:
        if trap.cause == 3:  # ebreak: firmware finished
            print(f"\nfirmware halted normally, "
                  f"total reading = {core.regs[10]} (expected 42)")
        else:
            print(f"\nfirmware trapped: {trap}")

    print(f"\nreturn-site table '{table.symbol}' has "
          f"{len(table.sites)} entries, sealed with key {table.key}.")
    print("A smashed stack cannot divert these returns: the target is")
    print("fetched with ld.ro from the keyed read-only table, never")
    print("from the stack.")


if __name__ == "__main__":
    main()
