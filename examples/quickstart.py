#!/usr/bin/env python3
"""Quickstart: the ROLoad instruction end to end, in five minutes.

We hand-write a tiny program (the paper's Listing 3 pattern): a function
pointer table in a keyed read-only section, loaded with ``ld.ro``, and
called indirectly. Then we run it on the three §V-B system profiles:

* ``processor+kernel`` — full ROLoad stack: runs fine;
* with a corrupted key — the MMU raises the new fault, the modified
  kernel logs the violation and SIGSEGVs the process;
* ``baseline`` — unmodified hardware: ``ld.ro`` is an illegal opcode.

Run:  python examples/quickstart.py
"""

from repro.asm import assemble, link
from repro.kernel import Kernel
from repro.soc import build_system

PROGRAM = r"""
.globl _start
_start:
    # write(1, banner, banner_len)
    li a0, 1
    la a1, banner
    li a2, 28
    li a7, 64
    ecall

    # The sensitive operation: an indirect call. The target is loaded
    # from a *keyed read-only page* -- pointee integrity (Listing 3).
    la a0, gfpt_greet          # a0 = address of the GFPT slot
    ld.ro a0, (a0), 111        # load the real target; MMU checks:
                               #   page read-only? page key == 111?
    jalr ra, 0(a0)             # safe indirect call

    li a0, 0
    li a7, 93
    ecall                      # exit(0)

.globl greet
greet:
    li a0, 1
    la a1, message
    li a2, 24
    li a7, 64
    ecall
    ret

.section .rodata
banner:  .asciz "quickstart: ROLoad demo\n    "
message: .asciz "hello through ld.ro!\n  "

# The allowlist: one legitimate target, sealed in a page with key 111.
.section .rodata.key.111
gfpt_greet: .quad greet
"""


def run(source: str, profile: str) -> None:
    image = link([assemble(source, name="quickstart.s")])
    kernel = Kernel(build_system(profile))
    process = kernel.create_process(image, name="quickstart")
    kernel.run(process)
    print(f"  [{profile}] {process.status()}")
    if process.stdout:
        for line in process.stdout_text.splitlines():
            print(f"  [{profile}] stdout: {line.rstrip()}")
    for event in kernel.security_log:
        print(f"  [{profile}] kernel security log: {event}")


def main() -> None:
    print("1) Full ROLoad stack — the program runs normally:")
    run(PROGRAM, "processor+kernel")

    print("\n2) Same program, but the instruction carries the WRONG key")
    print("   (as if an attacker redirected the pointer to another")
    print("   allowlist). The MMU key check fires; the kernel can tell")
    print("   this apart from an ordinary segfault:")
    run(PROGRAM.replace("ld.ro a0, (a0), 111", "ld.ro a0, (a0), 222"),
        "processor+kernel")

    print("\n3) Unmodified (baseline) processor — ld.ro does not exist:")
    run(PROGRAM, "baseline")

    print("\n4) ROLoad processor but unmodified kernel — page keys were")
    print("   never installed, so the key check cannot pass:")
    run(PROGRAM, "processor")


if __name__ == "__main__":
    main()
