"""Differential proof that the interpreter fast paths change nothing.

The simulator has five interpreter tiers (src/repro/cpu/core.py,
src/repro/cpu/jit.py, src/repro/cpu/regions.py and
src/repro/cpu/flatcore.py):

  slow   REPRO_FASTPATH=0              the seed decode-dispatch loop
  tier1  REPRO_FASTPATH=1 REPRO_JIT=0  block replay + D-side page cache
  tier2  REPRO_FASTPATH=1 REPRO_JIT=1  hot blocks compiled to Python
  tier3  ... REPRO_TIER3=1             hot loops compiled to superblocks
  tier4  ... REPRO_TIER4=1             regions lowered to flat arrays

All five are pure implementation details: every test here runs the same
program under each tier and asserts the architectural results are
bit-identical: cycles, retired instructions, memory, exit codes,
cache/TLB miss rates, and fault delivery (including the ROLoad security
log).
"""

import dataclasses

import pytest

from repro.asm import assemble, link
from repro.cpu import Core, TimingModel
from repro.errors import SimulationError
from repro.eval.measure import run_variant
from repro.kernel import Kernel, ProcessState, SIGSEGV
from repro.mem import MMU, PhysicalMemory
from repro.soc import build_system
from repro.workloads import build_workload, profile

# tier name -> (REPRO_FASTPATH, REPRO_JIT, REPRO_TIER3, REPRO_TIER4)
TIERS = {
    "slow": ("0", "0", "0", "0"),
    "tier1": ("1", "0", "0", "0"),
    "tier2": ("1", "1", "0", "0"),
    "tier3": ("1", "1", "1", "0"),
    "tier4": ("1", "1", "1", "1"),
}

COMPARED = ("tier1", "tier2", "tier3", "tier4")


def set_tier(monkeypatch, tier):
    fastpath, jit, tier3, tier4 = TIERS[tier]
    monkeypatch.setenv("REPRO_FASTPATH", fastpath)
    monkeypatch.setenv("REPRO_JIT", jit)
    monkeypatch.setenv("REPRO_TIER3", tier3)
    monkeypatch.setenv("REPRO_TIER4", tier4)
    # Low promotion thresholds so the scaled-down workloads really do
    # execute compiled blocks and regions, and debug mode so a compile
    # failure is an error rather than a silent fallback to tier 1.
    monkeypatch.setenv("REPRO_JIT_THRESHOLD", "2")
    monkeypatch.setenv("REPRO_REGION_THRESHOLD", "2")
    monkeypatch.setenv("REPRO_JIT_DEBUG", "1")


WORKLOADS = [
    ("429.mcf", "base"),
    ("462.libquantum", "vcall"),
    ("473.astar", "cfi"),
    ("401.bzip2", "icall"),
]


def measure(monkeypatch, name, variant, tier):
    set_tier(monkeypatch, tier)
    program = build_workload(profile(name), scale=0.05)
    return run_variant(program, variant)


@pytest.mark.parametrize("name,variant", WORKLOADS)
def test_workload_equivalence(monkeypatch, name, variant):
    slow = measure(monkeypatch, name, variant, "slow")
    for tier in COMPARED:
        fast = measure(monkeypatch, name, variant, tier)
        assert dataclasses.asdict(fast) == dataclasses.asdict(slow), tier
        # The fields the issue names, spelled out for a readable failure:
        assert fast.cycles == slow.cycles, tier
        assert fast.instructions == slow.instructions, tier
        assert fast.memory_kib == slow.memory_kib, tier
        assert fast.exit_code == slow.exit_code, tier
        assert fast.dtlb_miss_rate == slow.dtlb_miss_rate, tier
        assert fast.dcache_miss_rate == slow.dcache_miss_rate, tier


# A hot loop of ROLoad accesses (so the faulting site is replayed from a
# cached block, not interpreted cold) followed by a key-mismatch ld.ro.
ROLOAD_FAULT = r"""
.globl _start
_start:
    li t0, 32
    la s0, table
loop:
    ld.ro a1, (s0), 42      # correct key: hits through the fast path
    add s1, s1, a1
    addi t0, t0, -1
    bnez t0, loop
    ld.ro a2, (s0), 7       # wrong key: must fault mid fast path
    li a7, 93
    ecall
.section .rodata.key.42
table: .quad 5
"""


def run_kernel_program(monkeypatch, source, tier):
    set_tier(monkeypatch, tier)
    kernel = Kernel(build_system("processor+kernel", memory_size=64 << 20))
    process = kernel.create_process(link([assemble(source)]))
    kernel.run(process)
    return kernel, process


def test_roload_key_mismatch_through_fast_path(monkeypatch):
    results = {}
    for tier in TIERS:
        kernel, process = run_kernel_program(monkeypatch, ROLOAD_FAULT, tier)
        assert process.state is ProcessState.KILLED
        assert process.signal.number == SIGSEGV
        assert process.signal.roload
        event = kernel.security_log[0]
        core = kernel.system.core
        if tier != "slow":
            # Guard against vacuity: the block cache really engaged.
            assert core._blocks
        if tier in ("tier2", "tier3", "tier4"):
            assert core.jit_compiled > 0 and core._jit_blocks
        if tier in ("tier3", "tier4"):
            # Guard against vacuity: the hot ld.ro loop really did run
            # as a compiled region when the tier-3/4 knobs are on.
            assert core.regions_compiled > 0
        if tier == "tier4":
            assert core.flat_regions_compiled > 0
            assert core.tier4_retired > 0
        results[tier] = (
            core.cycles, core.instret,
            len(kernel.security_log), event.reason,
            event.insn_key, event.page_key, event.pc, event.fault_address,
        )
    for tier in COMPARED:
        assert results[tier] == results["slow"], tier
    assert results["slow"][3] == "key_mismatch"
    assert results["slow"][4] == 7 and results["slow"][5] == 42


def _bare_core(monkeypatch, tier):
    set_tier(monkeypatch, tier)
    memory = PhysicalMemory(1 << 20)
    core = Core(memory, MMU(memory), timing=TimingModel())
    core.pc = 0x1000
    return core


def test_self_modifying_code_equivalence(monkeypatch):
    """A store over not-yet-executed code (no fence.i) must behave the
    same whether or not the first copy was already block-cached (tier 1)
    or compiled (tier 2)."""
    from repro.isa import Instruction, encode

    def program(core):
        base = 0x1000
        insns = [
            # Overwrite the "addi a0, zero, 1" below — an instruction in
            # the SAME basic block as the store — with "addi a0, zero, 9".
            Instruction("lui", rd=5, imm=0x2),               # t0 = 0x2000
            Instruction("lw", rd=6, rs1=5, imm=0),           # patched word
            Instruction("lui", rd=7, imm=0x1),               # t2 = 0x1000
            Instruction("sw", rs1=7, rs2=6, imm=16),
            Instruction("addi", rd=10, rs1=0, imm=1),        # gets patched
            Instruction("ebreak"),
        ]
        addr = base
        for insn in insns:
            core.memory.write(addr, 4, encode(insn))
            addr += 4
        core.memory.write(0x2000, 4,
                          encode(Instruction("addi", rd=10, rs1=0, imm=9)))

    outcomes = {}
    for tier in TIERS:
        core = _bare_core(monkeypatch, tier)
        program(core)
        retired = core.run(100, trap_handler=None)  # stops at ebreak
        outcomes[tier] = (core.regs[10], retired, core.cycles)
    for tier in COMPARED:
        assert outcomes[tier] == outcomes["slow"], tier
    assert outcomes["slow"][0] == 9  # the patched instruction executed


def test_budget_exhaustion_identical(monkeypatch):
    """Block replay and compiled blocks must not overshoot the
    instruction budget."""
    from repro.isa import Instruction, encode

    for tier in TIERS:
        core = _bare_core(monkeypatch, tier)
        # A straight-line run ending in a backwards jump: infinite loop.
        addr = 0x1000
        for __ in range(8):
            core.memory.write(addr, 4,
                              encode(Instruction("addi", rd=5, rs1=5, imm=1)))
            addr += 4
        core.memory.write(addr, 4,
                          encode(Instruction("jal", rd=0, imm=-(addr - 0x1000))))
        with pytest.raises(SimulationError):
            core.run(100)
        assert core.instret == 100, f"tier={tier} retired {core.instret}"
        if tier in ("tier2", "tier3", "tier4"):
            assert core.jit_compiled > 0  # the loop really was compiled
