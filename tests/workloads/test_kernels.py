"""Differential tests: IR algorithm kernels vs Python references."""

import pytest

from repro.compiler import compile_module
from repro.kernel import run_program
from repro.workloads.kernels import (
    KERNELS,
    build_binary_search,
    build_bubble_sort,
    build_collatz,
    build_crc8,
    build_linked_list,
    build_sum_array,
)


def run_kernel(module, expected):
    process = run_program(compile_module(module),
                          max_instructions=10_000_000)
    assert process.state.value == "exited", process.status()
    assert process.exit_code == expected
    return process


class TestKernelsMatchReference:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_default_parameters(self, name):
        module, expected = KERNELS[name]()
        run_kernel(module, expected)

    @pytest.mark.parametrize("n", [1, 2, 17, 100])
    def test_sum_array_sizes(self, n):
        run_kernel(*build_sum_array(n))

    @pytest.mark.parametrize("data", [b"", b"x", b"\xff" * 16,
                                      bytes(range(64))])
    def test_crc8_inputs(self, data):
        run_kernel(*build_crc8(data))

    @pytest.mark.parametrize("values", [
        (1,), (2, 1), (5, 5, 5), tuple(range(20, 0, -1)),
        (3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7),
    ])
    def test_bubble_sort_inputs(self, values):
        run_kernel(*build_bubble_sort(values))

    @pytest.mark.parametrize("n", [1, 2, 10, 64])
    def test_linked_list_lengths(self, n):
        run_kernel(*build_linked_list(n))

    @pytest.mark.parametrize("start", [1, 2, 6, 27, 97])
    def test_collatz_starts(self, start):
        run_kernel(*build_collatz(start))

    @pytest.mark.parametrize("index", [0, 1, 31, 62, 63])
    def test_binary_search_positions(self, index):
        run_kernel(*build_binary_search(64, index))


class TestKernelCharacters:
    """The kernels exercise distinct microarchitectural behaviours."""

    def test_linked_list_is_load_heavy(self):
        from repro.kernel import Kernel
        from repro.soc import build_system

        def measure(builder):
            module, __ = builder()
            kernel = Kernel(build_system(memory_size=64 << 20))
            process = kernel.create_process(compile_module(module))
            kernel.run(process, max_instructions=10_000_000)
            stats = kernel.system.timing.stats
            return stats

        list_stats = measure(build_linked_list)
        collatz_stats = measure(build_collatz)
        # Collatz does essentially no memory traffic; the list walk does.
        assert collatz_stats.muldiv_cycles > 0
        assert list_stats.dcache_misses >= 0  # exercised

    def test_collatz_branches(self):
        module, expected = build_collatz(27)
        process = run_kernel(module, expected)
