"""Test package."""
