"""Workload generator tests."""

import pytest

from repro.compiler import compile_module, verify_module
from repro.kernel import run_program
from repro.workloads import (
    CPP_BENCHMARKS,
    PROFILES,
    WorkloadProfile,
    build_workload,
    cpp_profiles,
    profile,
)


class TestProfiles:
    def test_eleven_benchmarks_perlbench_excluded(self):
        names = [p.name for p in PROFILES]
        assert len(names) == 11
        assert "400.perlbench" not in names
        assert "403.gcc" in names and "483.xalancbmk" in names

    def test_three_cpp_benchmarks(self):
        assert tuple(p.name for p in cpp_profiles()) == CPP_BENCHMARKS

    def test_lookup(self):
        assert profile("429.mcf").language == "c"
        with pytest.raises(KeyError):
            profile("999.nope")

    def test_periods_power_of_two(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", language="c", iterations=1,
                            arith_ops=1, mem_ops=1, branches=1,
                            muldiv_ops=0, working_set_kib=64,
                            stride_words=1, vcall_period=3)

    def test_cpp_profiles_have_dispatch(self):
        for p in cpp_profiles():
            assert p.classes > 0 and p.objects > 0
            assert p.vcalls_per_iter > 0


class TestGenerator:
    def test_modules_verify(self):
        for p in PROFILES:
            program = build_workload(p, scale=0.01)
            verify_module(program.module)

    def test_deterministic(self):
        a = build_workload(profile("403.gcc"), scale=0.01)
        b = build_workload(profile("403.gcc"), scale=0.01)
        from repro.compiler import generate_assembly
        assert generate_assembly(a.module) == generate_assembly(b.module)

    def test_hierarchy_map_covers_classes(self):
        program = build_workload(profile("483.xalancbmk"), scale=0.01)
        assert set(program.hierarchies) == set(program.class_names)
        assert len(set(program.hierarchies.values())) <= 4

    def test_c_benchmark_has_no_vtables(self):
        program = build_workload(profile("401.bzip2"), scale=0.01)
        assert not program.module.vtables

    def test_cold_sites_generated(self):
        p = profile("483.xalancbmk")
        program = build_workload(p, scale=0.01)
        cold = [f for f in program.module.functions
                if "_coldv" in f or "_coldi" in f]
        assert len(cold) == p.cold_vcall_sites + p.cold_icall_sites

    def test_scale_controls_iterations(self):
        small = build_workload(profile("429.mcf"), scale=0.01)
        big = build_workload(profile("429.mcf"), scale=0.05)
        from repro.compiler.ir import Li
        # Scale only changes the loop-counter constant, so the sum of all
        # li constants in main differs exactly by the iteration delta.
        def li_sum(program):
            main = program.module.functions["main"]
            return sum(op.value for op in main.ops if isinstance(op, Li))
        expected_delta = int(1200 * 0.05) - int(1200 * 0.01)
        assert li_sum(big) - li_sum(small) == expected_delta


class TestExecution:
    @pytest.mark.parametrize("name", ["401.bzip2", "458.sjeng",
                                      "471.omnetpp"])
    def test_runs_to_completion(self, name):
        program = build_workload(profile(name), scale=0.02)
        process = run_program(compile_module(program.module),
                              max_instructions=20_000_000)
        assert process.state.value == "exited", process.status()

    def test_exit_code_stable_across_runs(self):
        program = build_workload(profile("445.gobmk"), scale=0.02)
        image = compile_module(program.module)
        a = run_program(image, max_instructions=20_000_000)
        b = run_program(image, max_instructions=20_000_000)
        assert a.exit_code == b.exit_code
