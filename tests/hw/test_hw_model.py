"""Hardware cost model and LoC accounting tests."""

import pytest

from repro.hw import (
    PAPER_TABLE1,
    ablate_dtlb_entries,
    ablate_key_width,
    and_gate_luts,
    decoder_luts,
    equality_comparator_luts,
    format_table3,
    mux_luts,
    register_ffs,
    roload_delta,
    scan_tree,
    synthesize,
    table3,
)
from repro.soc import SoCConfig


class TestResourcePrimitives:
    def test_register(self):
        assert register_ffs(10) == 10

    def test_comparator_scales(self):
        assert equality_comparator_luts(1) == 1
        assert equality_comparator_luts(10) < \
            equality_comparator_luts(64)

    def test_mux(self):
        assert mux_luts(8, 1) == 0
        assert mux_luts(10, 32) == 10 * 8

    def test_decoder_and_gate(self):
        assert decoder_luts(7) == 14
        assert and_gate_luts(3) == 1
        assert and_gate_luts(12) == 2


class TestROLoadDelta:
    def test_dominant_cost_is_dtlb_keys(self):
        delta = roload_delta()
        breakdown = delta.breakdown()
        dtlb_ffs = breakdown["d-tlb: key field per entry"][1]
        assert dtlb_ffs == 10 * 32
        assert dtlb_ffs > delta.ffs / 2  # the dominant FF term

    def test_delta_scales_with_key_width(self):
        points = ablate_key_width((4, 10, 16))
        assert points[0].delta_ff < points[1].delta_ff < points[2].delta_ff
        assert points[0].delta_lut < points[2].delta_lut

    def test_delta_scales_with_dtlb(self):
        points = ablate_dtlb_entries((16, 64))
        assert points[0].delta_ff < points[1].delta_ff

    def test_itlb_not_affected(self):
        """Only the D-TLB gets keys: loads never come from the I-TLB."""
        small = roload_delta(SoCConfig(itlb_entries=8))
        big = roload_delta(SoCConfig(itlb_entries=128))
        assert small.luts == big.luts and small.ffs == big.ffs


class TestTable3:
    def test_paper_shape_bounds(self):
        """The paper's claims: extra cost < 3.32% on both metrics, and
        Fmax approximately unchanged."""
        rows = table3()
        base, ro = rows
        assert base.core_lut == 20_722 and base.core_ff == 11_855
        assert 0 < ro.core_lut_pct < 3.32
        assert 0 < ro.core_ff_pct < 3.32 + 0.01
        assert 0 < ro.system_lut_pct < ro.core_lut_pct + 0.01
        # Fmax essentially unchanged (within 1%).
        assert abs(ro.fmax_mhz - base.fmax_mhz) / base.fmax_mhz < 0.01
        assert ro.slack_ns > 0  # still meets 125 MHz timing

    def test_ff_delta_exceeds_lut_delta(self):
        """Like the paper (+1.44% LUT vs +3.32% FF): storage (TLB key
        fields) dominates logic."""
        rows = table3()
        assert rows[1].core_ff_pct > rows[1].core_lut_pct

    def test_format_contains_both_rows(self):
        text = format_table3(table3())
        assert "without ld.ro" in text and "with ld.ro" in text
        assert "126.89" in text


class TestLoCScan:
    def test_all_components_present(self):
        totals = scan_tree()
        for component in ("processor", "kernel", "compiler"):
            assert totals[component].lines > 0, component
            assert totals[component].sites > 0

    def test_total_same_order_as_paper(self):
        """The paper's point: the whole mechanism is a few hundred lines.
        Our marked ROLoad-specific code must stay in that class (tens to
        hundreds of lines, not thousands)."""
        totals = scan_tree()
        total = sum(e.lines for e in totals.values())
        assert 50 < total < 1000

    def test_paper_reference_data(self):
        assert PAPER_TABLE1["compiler"]["total"] == 270
        assert sum(v["total"] for v in PAPER_TABLE1.values()) == 450

    def test_scan_file_handles_plain_file(self, tmp_path):
        from repro.hw import scan_file
        path = tmp_path / "x.py"
        path.write_text("a = 1\n")
        assert scan_file(path) == {}

    def test_scan_file_region(self, tmp_path):
        from repro.hw import scan_file
        path = tmp_path / "x.py"
        path.write_text(
            "a = 1\n# [roload-begin: kernel]\nb = 2\nc = 3\n\n"
            "# comment\n# [roload-end]\nd = 4\n")
        assert scan_file(path) == {"kernel": (2, 1)}

    def test_scan_file_whole_file_tag(self, tmp_path):
        from repro.hw import scan_file
        path = tmp_path / "x.py"
        path.write_text("# [roload-file: compiler]\na = 1\nb = 2\n")
        assert scan_file(path) == {"compiler": (2, 1)}
