"""Test package."""
