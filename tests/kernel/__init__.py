"""Test package."""
