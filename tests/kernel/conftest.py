"""Shared kernel-test helpers."""

import pytest

from repro.asm import assemble, link
from repro.kernel import Kernel
from repro.soc import build_system


def build_image(source, name="test.s"):
    return link([assemble(source, name=name)])


EXIT0 = """
    li a0, 0
    li a7, 93
    ecall
"""


@pytest.fixture()
def kernel():
    return Kernel(build_system("processor+kernel", memory_size=64 << 20))


@pytest.fixture()
def kernel_unmodified():
    """Processor supports ROLoad, kernel does not (§V-B middle profile)."""
    return Kernel(build_system("processor", memory_size=64 << 20))
