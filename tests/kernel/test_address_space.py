"""Address-space tests: mapping, keys, mprotect, brk."""

import pytest

from repro.errors import KernelError
from repro.kernel import PROT_EXEC, PROT_READ, PROT_WRITE, AddressSpace
from repro.mem import FrameAllocator, PhysicalMemory
from repro.mem.physical import PAGE_SIZE


@pytest.fixture()
def space():
    memory = PhysicalMemory(64 << 20)
    allocator = FrameAllocator(1 << 20, 32 << 20)
    return AddressSpace(memory, allocator)


class TestMapping:
    def test_map_and_translate(self, space):
        space.map_region(0x10000, PAGE_SIZE, PROT_READ | PROT_WRITE)
        assert space.phys_addr(0x10010) is not None
        assert space.vma_at(0x10000).prot == PROT_READ | PROT_WRITE

    def test_overlap_rejected(self, space):
        space.map_region(0x10000, 2 * PAGE_SIZE, PROT_READ)
        with pytest.raises(KernelError):
            space.map_region(0x11000, PAGE_SIZE, PROT_READ)

    def test_unaligned_rejected(self, space):
        with pytest.raises(KernelError):
            space.map_region(0x10001, PAGE_SIZE, PROT_READ)

    def test_copy_in_out_roundtrip(self, space):
        space.map_region(0x10000, 2 * PAGE_SIZE, PROT_READ | PROT_WRITE)
        data = bytes(range(256)) * 16  # 4 KiB: crosses one page boundary
        space.write_initial(0x10F00, data)  # crosses a page boundary
        assert space.read_memory(0x10F00, len(data)) == data

    def test_copy_to_unmapped_raises(self, space):
        with pytest.raises(KernelError):
            space.write_initial(0x50000, b"x")

    def test_keyed_mapping_sets_pte_key(self, space):
        space.map_region(0x20000, PAGE_SIZE, PROT_READ, key=77)
        pte = space.page_table.lookup(0x20000)
        assert pte.key == 77 and pte.is_read_only

    def test_keyed_writable_rejected(self, space):
        """Pointee integrity requires immutability: keyed RW is invalid."""
        with pytest.raises(KernelError):
            space.map_region(0x20000, PAGE_SIZE, PROT_READ | PROT_WRITE,
                             key=5)

    def test_unmodified_kernel_drops_keys(self):
        memory = PhysicalMemory(64 << 20)
        allocator = FrameAllocator(1 << 20, 32 << 20)
        space = AddressSpace(memory, allocator, honour_keys=False)
        space.map_region(0x20000, PAGE_SIZE, PROT_READ, key=77)
        assert space.page_table.lookup(0x20000).key == 0

    def test_mapped_pages_accounting(self, space):
        assert space.mapped_pages() == 0
        space.map_region(0x10000, 3 * PAGE_SIZE, PROT_READ)
        assert space.mapped_pages() == 3
        assert space.memory_kib() == 12


class TestMunmap:
    def test_unmap_whole_region(self, space):
        space.map_region(0x10000, PAGE_SIZE, PROT_READ)
        space.munmap(0x10000, PAGE_SIZE)
        assert space.vma_at(0x10000) is None
        assert space.phys_addr(0x10000) is None
        assert space.page_table.lookup(0x10000) is None


class TestMprotect:
    def test_change_prot(self, space):
        space.map_region(0x10000, PAGE_SIZE, PROT_READ | PROT_WRITE)
        space.mprotect(0x10000, PAGE_SIZE, PROT_READ)
        pte = space.page_table.lookup(0x10000)
        assert pte.readable and not pte.writable

    def test_set_key_via_mprotect(self, space):
        """The paper's user-facing API: seal a page with a key."""
        space.map_region(0x10000, PAGE_SIZE, PROT_READ | PROT_WRITE)
        space.mprotect(0x10000, PAGE_SIZE, PROT_READ, key=111)
        pte = space.page_table.lookup(0x10000)
        assert pte.key == 111 and pte.is_read_only
        assert space.vma_at(0x10000).key == 111

    def test_partial_range_splits_vma(self, space):
        space.map_region(0x10000, 3 * PAGE_SIZE, PROT_READ | PROT_WRITE)
        space.mprotect(0x11000, PAGE_SIZE, PROT_READ, key=9)
        assert space.vma_at(0x10000).key == 0
        assert space.vma_at(0x11000).key == 9
        assert space.vma_at(0x12000).key == 0
        assert space.vma_at(0x10000).prot & PROT_WRITE

    def test_unmapped_raises(self, space):
        with pytest.raises(KernelError):
            space.mprotect(0x90000, PAGE_SIZE, PROT_READ)

    def test_exec_prot(self, space):
        space.map_region(0x10000, PAGE_SIZE, PROT_READ | PROT_WRITE)
        space.mprotect(0x10000, PAGE_SIZE, PROT_READ | PROT_EXEC)
        assert space.page_table.lookup(0x10000).executable


class TestBrk:
    def test_grow(self, space):
        space.brk_base = space.brk = 0x30000
        new = space.set_brk(0x30000 + 5000)
        assert new == 0x30000 + 5000
        assert space.phys_addr(0x30000 + 4096) is not None

    def test_never_shrinks(self, space):
        space.brk_base = space.brk = 0x30000
        space.set_brk(0x32000)
        assert space.set_brk(0x30000) == 0x32000

    def test_mmap_auto_placement(self, space):
        a = space.mmap(0, PAGE_SIZE, PROT_READ)
        b = space.mmap(0, PAGE_SIZE, PROT_READ)
        assert a != b
        assert space.vma_at(a) and space.vma_at(b)
