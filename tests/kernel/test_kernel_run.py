"""End-to-end kernel tests: load, run, syscalls, fault discrimination."""

import pytest

from repro.errors import SimulationError
from repro.kernel import Kernel, ProcessState, SIGILL, SIGSEGV, run_program
from repro.soc import build_system

from .conftest import build_image

HELLO = r"""
.globl _start
_start:
    li a0, 1
    la a1, msg
    li a2, 6
    li a7, 64
    ecall
    mv s0, a0           # byte count written
    li a0, 0
    li a7, 93
    ecall
.section .rodata
msg: .asciz "hello\n"
"""

ROLOAD_OK = r"""
.globl _start
_start:
    la a0, table
    ld.ro a1, (a0), 42
    mv a0, a1
    li a7, 93
    ecall
.section .rodata.key.42
table: .quad 99
"""


class TestBasicExecution:
    def test_hello_world(self, kernel):
        process = kernel.create_process(build_image(HELLO))
        kernel.run(process)
        assert process.state is ProcessState.EXITED
        assert process.exit_code == 0
        assert process.stdout_text == "hello\n"
        assert kernel.console_text == "hello\n"

    def test_write_returns_length(self, kernel):
        process = kernel.create_process(build_image(HELLO))
        kernel.run(process)
        # s0 got the write() return value; check saved context.
        assert process.saved_regs[8] == 6

    def test_exit_code(self, kernel):
        image = build_image("li a0, 7\nli a7, 93\necall\n.globl _start\n"
                            "_start = 0x10000" if False else
                            ".globl _start\n_start:\nli a0, 7\nli a7, 93\n"
                            "ecall")
        process = kernel.create_process(image)
        kernel.run(process)
        assert process.exit_code == 7

    def test_roload_success_through_kernel(self, kernel):
        process = kernel.create_process(build_image(ROLOAD_OK))
        kernel.run(process)
        assert process.exit_code == 99
        assert not kernel.security_log

    def test_budget_exhaustion_raises(self, kernel):
        image = build_image(".globl _start\n_start: j _start")
        process = kernel.create_process(image)
        with pytest.raises(SimulationError):
            kernel.run(process, max_instructions=1000)

    def test_two_processes_isolated(self, kernel):
        p1 = kernel.create_process(build_image(HELLO), name="one")
        p2 = kernel.create_process(build_image(HELLO), name="two")
        kernel.run(p1)
        kernel.run(p2)
        assert p1.pid != p2.pid
        assert p1.stdout_text == p2.stdout_text == "hello\n"


class TestSyscalls:
    def test_brk_grows_heap(self, kernel):
        source = r"""
        .globl _start
        _start:
            li a0, 0
            li a7, 214
            ecall            # query brk
            mv s0, a0
            addi a0, a0, 64
            li a7, 214
            ecall            # grow
            sd s0, 0(s0)     # touch the new heap page
            li a0, 0
            li a7, 93
            ecall
        """
        process = kernel.create_process(build_image(source))
        kernel.run(process)
        assert process.state is ProcessState.EXITED

    def test_mmap_mprotect_with_key(self, kernel):
        """A process builds its own allowlist page at runtime: mmap RW,
        write an entry, seal with mprotect(PROT_READ, key), then ld.ro."""
        source = r"""
        .globl _start
        _start:
            li a0, 0
            li a1, 4096
            li a2, 3          # PROT_READ|PROT_WRITE
            li a3, 0
            li a4, 0
            li a7, 222
            ecall             # mmap
            mv s0, a0
            li t0, 1234
            sd t0, 0(s0)      # write the allowlist entry
            mv a0, s0
            li a1, 4096
            li a2, 1          # PROT_READ
            li a3, 55         # key (our extended mprotect ABI)
            li a7, 226
            ecall             # seal
            bnez a0, fail
            ld.ro a1, (s0), 55
            mv a0, a1
            li a7, 93
            ecall
        fail:
            li a0, 1
            li a7, 93
            ecall
        """
        process = kernel.create_process(build_image(source))
        kernel.run(process)
        assert process.status() == "exited with code 210"  # 1234 & 0xFF

    def test_mprotect_key_on_unmodified_kernel_is_dropped(
            self, kernel_unmodified):
        """On the processor-only profile the kernel has no key plumbing:
        sealing 'with a key' silently yields key 0, so the ld.ro faults."""
        source = r"""
        .globl _start
        _start:
            li a0, 0
            li a1, 4096
            li a2, 3
            li a3, 0
            li a4, 0
            li a7, 222
            ecall
            mv s0, a0
            mv a0, s0
            li a1, 4096
            li a2, 1
            li a3, 55
            li a7, 226
            ecall
            ld.ro a1, (s0), 55
            li a0, 0
            li a7, 93
            ecall
        """
        kernel = kernel_unmodified
        process = kernel.create_process(build_image(source))
        kernel.run(process)
        assert process.state is ProcessState.KILLED
        assert process.signal.number == SIGSEGV

    def test_unknown_syscall_returns_enosys(self, kernel):
        source = r"""
        .globl _start
        _start:
            li a7, 9999
            ecall
            li a7, 93        # exit(a0) -- a0 holds -ENOSYS & 0xff
            ecall
        """
        process = kernel.create_process(build_image(source))
        kernel.run(process)
        assert process.exit_code == (-38) & 0xFF

    def test_write_bad_fd(self, kernel):
        source = r"""
        .globl _start
        _start:
            li a0, 5
            la a1, msg
            li a2, 1
            li a7, 64
            ecall
            li a7, 93
            ecall
        .section .rodata
        msg: .asciz "x"
        """
        process = kernel.create_process(build_image(source))
        kernel.run(process)
        assert process.exit_code == (-9) & 0xFF  # -EBADF


class TestFaultDiscrimination:
    WRONG_KEY = r"""
    .globl _start
    _start:
        la a0, table
        ld.ro a1, (a0), 43
        li a7, 93
        ecall
    .section .rodata.key.42
    table: .quad 7
    """

    def test_roload_fault_logged_and_sigsegv(self, kernel):
        process = kernel.create_process(build_image(self.WRONG_KEY))
        kernel.run(process)
        assert process.state is ProcessState.KILLED
        assert process.signal.number == SIGSEGV
        assert process.signal.roload
        assert len(kernel.security_log) == 1
        event = kernel.security_log[0]
        assert event.reason == "key_mismatch"
        assert event.insn_key == 43 and event.page_key == 42

    def test_unmodified_kernel_no_security_log(self, kernel_unmodified):
        kernel = kernel_unmodified
        process = kernel.create_process(build_image(self.WRONG_KEY))
        kernel.run(process)
        assert process.state is ProcessState.KILLED
        assert process.signal.number == SIGSEGV
        assert not process.signal.roload    # generic fault path
        assert not kernel.security_log

    def test_plain_segfault_not_roload(self, kernel):
        source = r"""
        .globl _start
        _start:
            li a0, 0xdead000
            ld a1, 0(a0)
        """
        process = kernel.create_process(build_image(source))
        kernel.run(process)
        assert process.state is ProcessState.KILLED
        assert not process.signal.roload
        assert not kernel.security_log

    def test_write_to_rodata_segfaults(self, kernel):
        source = r"""
        .globl _start
        _start:
            la a0, victim
            sd a0, 0(a0)
        .section .rodata
        victim: .quad 1
        """
        process = kernel.create_process(build_image(source))
        kernel.run(process)
        assert process.state is ProcessState.KILLED
        assert process.signal.number == SIGSEGV

    def test_illegal_instruction_sigill(self, kernel):
        source = r"""
        .globl _start
        _start:
            .word 0xffffffff
        """
        process = kernel.create_process(build_image(source))
        kernel.run(process)
        assert process.signal.number == SIGILL

    def test_baseline_profile_ld_ro_sigill(self):
        kernel = Kernel(build_system("baseline", memory_size=64 << 20))
        process = kernel.create_process(build_image(self.WRONG_KEY))
        kernel.run(process)
        assert process.signal.number == SIGILL


class TestRunProgram:
    def test_one_shot_helper(self):
        process = run_program(build_image(HELLO))
        assert process.exit_code == 0
        assert process.stdout_text == "hello\n"

    def test_memory_accounting_nonzero(self):
        process = run_program(build_image(HELLO))
        assert process.memory_kib() > 0
