"""Tests for the stdin/clock syscalls."""

import pytest

from repro.kernel import ProcessState

from .conftest import build_image


ECHO = r"""
.globl _start
_start:
    # read(0, buf, 16)
    li a0, 0
    la a1, buf
    li a2, 16
    li a7, 63
    ecall
    mv s0, a0            # bytes read
    # write(1, buf, s0)
    li a0, 1
    la a1, buf
    mv a2, s0
    li a7, 64
    ecall
    mv a0, s0
    li a7, 93
    ecall
.section .bss
buf: .zero 64
"""


class TestRead:
    def test_echo_stdin(self, kernel):
        process = kernel.create_process(build_image(ECHO))
        process.stdin = b"hello"
        kernel.run(process)
        assert process.exit_code == 5
        assert process.stdout_text == "hello"

    def test_read_consumes(self, kernel):
        source = r"""
        .globl _start
        _start:
            li a0, 0
            la a1, buf
            li a2, 4
            li a7, 63
            ecall
            mv s0, a0
            li a0, 0
            la a1, buf
            li a2, 64
            li a7, 63
            ecall
            add a0, a0, s0       # second read length + first
            li a7, 93
            ecall
        .section .bss
        buf: .zero 64
        """
        process = kernel.create_process(build_image(source))
        process.stdin = b"abcdefgh"
        kernel.run(process)
        assert process.exit_code == 8  # 4 + 4

    def test_read_eof_returns_zero(self, kernel):
        process = kernel.create_process(build_image(ECHO))
        process.stdin = b""
        kernel.run(process)
        assert process.exit_code == 0

    def test_read_bad_fd(self, kernel):
        source = r"""
        .globl _start
        _start:
            li a0, 3
            la a1, buf
            li a2, 4
            li a7, 63
            ecall
            li a7, 93
            ecall
        .section .bss
        buf: .zero 8
        """
        process = kernel.create_process(build_image(source))
        kernel.run(process)
        assert process.exit_code == (-9) & 0xFF


class TestClockGettime:
    def test_time_is_monotonic_in_cycles(self, kernel):
        source = r"""
        .globl _start
        _start:
            li a0, 1
            la a1, ts
            li a7, 113
            ecall
            ld s0, 8(a1)         # nanoseconds (first)
            li t0, 2000
        spin:
            addi t0, t0, -1
            bnez t0, spin
            li a0, 1
            la a1, ts
            li a7, 113
            ecall
            ld s1, 8(a1)         # nanoseconds (second)
            sltu a0, s0, s1      # second > first ?
            li a7, 93
            ecall
        .section .data
        ts: .zero 16
        """
        process = kernel.create_process(build_image(source))
        kernel.run(process)
        assert process.state is ProcessState.EXITED
        assert process.exit_code == 1
