"""The overhead contract: observability off costs (near) nothing.

Three layers of proof:

* behavioural — a full kernel run with the switchboard off allocates no
  buffers and emits no events;
* structural — the per-instruction slow path and the generated tier-2,
  tier-3, and tier-4 code contain no reference to the obs layer at all
  (the only hot-path cost anywhere is one ``enabled`` attribute test at
  cold sites, plus one ``is not None`` test at the batch observation
  points);
* end-to-end — a tier-2 mini-sweep with REPRO_OBS=0 passes the existing
  15% roload-bench regression gate against an identical sweep, and a
  tier-4 sweep with the flight recorder ON passes it against an obs-off
  reference.
"""

import inspect

from repro import obs
from repro.asm import assemble, link
from repro.cpu import TimingModel
from repro.cpu.core import Core
from repro.cpu.jit import _generate
from repro.cpu import regions as regions_mod
from repro.kernel import Kernel
from repro.mem import MMU, PhysicalMemory
from repro.soc import build_system
from repro.tools.benchtool import (
    _run_sweep,
    build_record,
    evaluate_gate,
)

from tests.cpu.conftest import CODE_BASE, I, assemble_at
from tests.cpu.test_jit import jit_core, countdown_loop, run_to_ebreak

WORKLOAD = r"""
.globl _start
_start:
    li t0, 200
loop:
    la a0, table
    ld.ro a1, (a0), 12
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    li a7, 93
    ecall
.section .rodata.key.12
table: .quad 1
"""


def _run(monkeypatch, tier2=True):
    monkeypatch.setenv("REPRO_FASTPATH", "1" if tier2 else "0")
    monkeypatch.setenv("REPRO_JIT", "1" if tier2 else "0")
    monkeypatch.setenv("REPRO_JIT_THRESHOLD", "2")
    kernel = Kernel(build_system(memory_size=64 << 20))
    process = kernel.create_process(link([assemble(WORKLOAD)]))
    kernel.run(process)
    core = kernel.system.core
    return (core.cycles, core.instret, process.exit_code,
            kernel.system.mmu.stats.roload_checks)


def test_disabled_run_allocates_and_emits_nothing(monkeypatch):
    obs.disable()
    result = _run(monkeypatch)
    assert result[2] == 0
    assert obs.OBS.enabled is False
    assert obs.OBS.events is None      # no ring was ever created
    assert obs.OBS.registry is None


def test_enabling_does_not_change_architecture(monkeypatch):
    obs.disable()
    baseline = _run(monkeypatch)
    obs.enable()
    observed = _run(monkeypatch)
    assert observed == baseline
    assert len(obs.OBS.events) > 0     # and the run really was observed


def test_slow_path_step_has_no_obs_reference():
    """step() retires one instruction per call — the obs layer must not
    appear in it (tier-residency costs one plain int add, nothing else).
    step_block's only reference sits on the cold compile/flush paths."""
    assert "_OBS" not in inspect.getsource(Core.step)
    assert "OBS.events" not in inspect.getsource(Core.step)


def test_tier2_generated_source_has_no_obs_reference(monkeypatch):
    """The compiled tier runs pure generated Python: if the word 'obs'
    ever shows up in it, instrumentation leaked into the hot loop."""
    core = jit_core(monkeypatch, threshold=2)
    loop_pc = countdown_loop(core, 10)
    run_to_ebreak(core)
    assert core._jit_blocks  # the loop really compiled
    entries = core._blocks[loop_pc][0]
    source, __, __ = _generate(core, entries)
    assert "obs" not in source.lower()


def _region_core(monkeypatch, tier4=False):
    monkeypatch.setenv("REPRO_JIT_DEBUG", "1")
    memory = PhysicalMemory(1 << 20)
    core = Core(memory, MMU(memory), timing=TimingModel(),
                fast_path=True, jit=True, jit_threshold=2,
                tier3=True, tier4=tier4, region_threshold=2)
    core.pc = CODE_BASE
    return core


def test_tier3_region_source_has_no_obs_reference(monkeypatch):
    """Tier-3 superblocks are also pure generated Python: the region
    compiler must emit no observability reference either."""
    core = _region_core(monkeypatch)
    countdown_loop(core, 50)
    run_to_ebreak(core)
    assert core.regions_compiled >= 1
    head_pc = next(iter(core._regions))
    plan = regions_mod._plan(core, head_pc)
    assert plan is not None
    source, __, __ = regions_mod._generate(core, plan)
    assert "obs" not in source.lower()


def test_tier4_flat_core_has_no_obs_reference(monkeypatch):
    """The flat-core backend (module source AND a real lowered region's
    code object) carries no observability reference: tier-4 dispatch
    runs past the obs layer entirely."""
    from repro.cpu import flatcore
    source = inspect.getsource(flatcore)
    assert "_OBS" not in source
    assert "repro.obs" not in source

    core = _region_core(monkeypatch, tier4=True)
    countdown_loop(core, 50)
    run_to_ebreak(core)
    assert core.flat_regions_compiled >= 1
    region = next(iter(core._regions.values()))
    assert region.tier4
    names = set(region.fn.__code__.co_names)
    names |= set(region.fn.__code__.co_freevars)
    names |= set(region.fn.__code__.co_varnames)
    assert not any("obs" in name.lower() for name in names)


def test_tier2_sweep_with_obs_off_passes_the_bench_gate(monkeypatch):
    """End to end: two identical REPRO_OBS=0 tier-2 mini-sweeps stay
    inside the 15% regression gate — the acceptance bar for shipping
    the observability layer at all."""
    monkeypatch.setenv("REPRO_OBS", "0")
    # _run_sweep writes these; setting them via monkeypatch first makes
    # sure the test restores whatever the environment had.
    monkeypatch.setenv("REPRO_FASTPATH", "1")
    monkeypatch.setenv("REPRO_JIT", "1")
    obs.disable()
    benchmarks, variants, scale = ("429.mcf",), ("base",), 0.5
    reference = _run_sweep(benchmarks, variants, scale,
                           tier="tier2", jobs=1)
    record = build_record(benchmarks, variants, scale,
                          {"tier2": reference})
    current = _run_sweep(benchmarks, variants, scale,
                         tier="tier2", jobs=1)
    ok, ref_mips, floor = evaluate_gate(current["sim_mips"], record)
    assert ok, (f"obs-off tier-2 throughput {current['sim_mips']} "
                f"sim-MIPS fell below the gate floor {floor:.4f} "
                f"(reference {ref_mips})")
    # The sweeps are architecturally identical, and nothing was observed.
    assert current["measurements"] == reference["measurements"]
    assert obs.OBS.events is None


def test_tier4_sweep_with_sampling_on_passes_the_bench_gate(monkeypatch):
    """The tentpole acceptance bar: an obs-ON tier-4 sweep with the
    flight recorder sampling stays inside the 15% gate against an
    obs-off reference — observability on is cheap, off is free."""
    monkeypatch.setenv("REPRO_OBS", "0")
    monkeypatch.setenv("REPRO_FASTPATH", "1")
    monkeypatch.setenv("REPRO_JIT", "1")
    monkeypatch.setenv("REPRO_TIER3", "1")
    monkeypatch.setenv("REPRO_TIER4", "1")
    obs.disable()
    benchmarks, variants, scale = ("429.mcf",), ("base",), 0.5
    reference = _run_sweep(benchmarks, variants, scale,
                           tier="tier4", jobs=1)
    record = build_record(benchmarks, variants, scale,
                          {"tier4": reference})
    obs.enable(sample=5_000)
    try:
        current = _run_sweep(benchmarks, variants, scale,
                             tier="tier4", jobs=1)
        sampler = obs.OBS.sampler
        assert sampler is not None and sampler.taken > 0
        attributed = sum(sum(pcs.values()) for pcs
                         in obs.OBS.attribution.export().values())
        assert attributed > 0
    finally:
        obs.disable()
    ok, ref_mips, floor = evaluate_gate(current["sim_mips"], record)
    assert ok, (f"obs-on (sampled) tier-4 throughput "
                f"{current['sim_mips']} sim-MIPS fell below the gate "
                f"floor {floor:.4f} (reference {ref_mips})")
    # Observation never changes the architecture.
    assert current["measurements"] == reference["measurements"]
