"""The overhead contract: observability off costs (near) nothing.

Three layers of proof:

* behavioural — a full kernel run with the switchboard off allocates no
  buffers and emits no events;
* structural — the per-instruction slow path and the generated tier-2
  source contain no reference to the obs layer at all (the only hot-path
  cost anywhere is one ``enabled`` attribute test at cold sites);
* end-to-end — a tier-2 mini-sweep with REPRO_OBS=0 passes the existing
  15% roload-bench regression gate against an identical sweep.
"""

import inspect

from repro import obs
from repro.asm import assemble, link
from repro.cpu.core import Core
from repro.cpu.jit import _generate
from repro.kernel import Kernel
from repro.soc import build_system
from repro.tools.benchtool import (
    _run_sweep,
    build_record,
    evaluate_gate,
)

from tests.cpu.conftest import CODE_BASE, I, assemble_at
from tests.cpu.test_jit import jit_core, countdown_loop, run_to_ebreak

WORKLOAD = r"""
.globl _start
_start:
    li t0, 200
loop:
    la a0, table
    ld.ro a1, (a0), 12
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    li a7, 93
    ecall
.section .rodata.key.12
table: .quad 1
"""


def _run(monkeypatch, tier2=True):
    monkeypatch.setenv("REPRO_FASTPATH", "1" if tier2 else "0")
    monkeypatch.setenv("REPRO_JIT", "1" if tier2 else "0")
    monkeypatch.setenv("REPRO_JIT_THRESHOLD", "2")
    kernel = Kernel(build_system(memory_size=64 << 20))
    process = kernel.create_process(link([assemble(WORKLOAD)]))
    kernel.run(process)
    core = kernel.system.core
    return (core.cycles, core.instret, process.exit_code,
            kernel.system.mmu.stats.roload_checks)


def test_disabled_run_allocates_and_emits_nothing(monkeypatch):
    obs.disable()
    result = _run(monkeypatch)
    assert result[2] == 0
    assert obs.OBS.enabled is False
    assert obs.OBS.events is None      # no ring was ever created
    assert obs.OBS.registry is None


def test_enabling_does_not_change_architecture(monkeypatch):
    obs.disable()
    baseline = _run(monkeypatch)
    obs.enable()
    observed = _run(monkeypatch)
    assert observed == baseline
    assert len(obs.OBS.events) > 0     # and the run really was observed


def test_slow_path_step_has_no_obs_reference():
    """step() retires one instruction per call — the obs layer must not
    appear in it (tier-residency costs one plain int add, nothing else).
    step_block's only reference sits on the cold compile/flush paths."""
    assert "_OBS" not in inspect.getsource(Core.step)
    assert "OBS.events" not in inspect.getsource(Core.step)


def test_tier2_generated_source_has_no_obs_reference(monkeypatch):
    """The compiled tier runs pure generated Python: if the word 'obs'
    ever shows up in it, instrumentation leaked into the hot loop."""
    core = jit_core(monkeypatch, threshold=2)
    loop_pc = countdown_loop(core, 10)
    run_to_ebreak(core)
    assert core._jit_blocks  # the loop really compiled
    entries = core._blocks[loop_pc][0]
    source, __, __ = _generate(core, entries)
    assert "obs" not in source.lower()


def test_tier2_sweep_with_obs_off_passes_the_bench_gate(monkeypatch):
    """End to end: two identical REPRO_OBS=0 tier-2 mini-sweeps stay
    inside the 15% regression gate — the acceptance bar for shipping
    the observability layer at all."""
    monkeypatch.setenv("REPRO_OBS", "0")
    # _run_sweep writes these; setting them via monkeypatch first makes
    # sure the test restores whatever the environment had.
    monkeypatch.setenv("REPRO_FASTPATH", "1")
    monkeypatch.setenv("REPRO_JIT", "1")
    obs.disable()
    benchmarks, variants, scale = ("429.mcf",), ("base",), 0.5
    reference = _run_sweep(benchmarks, variants, scale,
                           tier="tier2", jobs=1)
    record = build_record(benchmarks, variants, scale,
                          {"tier2": reference})
    current = _run_sweep(benchmarks, variants, scale,
                         tier="tier2", jobs=1)
    ok, ref_mips, floor = evaluate_gate(current["sim_mips"], record)
    assert ok, (f"obs-off tier-2 throughput {current['sim_mips']} "
                f"sim-MIPS fell below the gate floor {floor:.4f} "
                f"(reference {ref_mips})")
    # The sweeps are architecturally identical, and nothing was observed.
    assert current["measurements"] == reference["measurements"]
    assert obs.OBS.events is None
