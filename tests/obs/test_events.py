"""Event stream: ring bounding, filters, JSONL round trip, security log."""

import pytest

from repro.kernel.fault import SecurityEvent, SecurityLog
from repro.obs import EventStream, arch_sequence, load_jsonl


def test_ring_bounds_and_counts_drops():
    stream = EventStream(capacity=3)
    for index in range(5):
        stream.emit("tick", index=index)
    assert len(stream) == 3
    assert stream.emitted == 5
    assert stream.dropped == 2
    # The ring keeps the most recent events, not the oldest.
    assert [event["index"] for event in stream] == [2, 3, 4]


def test_filters_by_prefix_and_category():
    stream = EventStream()
    stream.emit("jit.compile", pc=4096)
    stream.emit("jit.flush", reason="smc")
    stream.emit("syscall", cat="arch", number=93)
    assert len(stream.events("jit.")) == 2
    assert len(stream.events(cat="arch")) == 1
    assert stream.events("jit.compile")[0]["pc"] == 4096


def test_jsonl_round_trip(tmp_path):
    stream = EventStream()
    stream.emit("syscall", cat="arch", number=93, name="exit")
    stream.emit("jit.compile", pc=4096, instructions=7)
    path = tmp_path / "events.jsonl"
    assert stream.dump_jsonl(path) == 2
    loaded = load_jsonl(path)
    assert loaded == list(stream)


def test_write_through_sink(tmp_path):
    stream = EventStream(capacity=2)
    path = tmp_path / "events.jsonl"
    stream.open_sink(path)
    for index in range(4):
        stream.emit("tick", index=index)
    stream.close_sink()
    # The sink saw everything, including the two the ring dropped.
    assert [e["index"] for e in load_jsonl(path)] == [0, 1, 2, 3]


def test_arch_sequence_strips_host_noise():
    first = EventStream()
    second = EventStream()
    for stream in (first, second):
        stream.emit("syscall", cat="arch", number=93)
        stream.emit("jit.compile", pc=4096)  # sim: tier-dependent
        stream.emit("roload.violation", cat="arch", reason="key_mismatch")
    second.emit("jit.flush", reason="smc")
    # Timestamps differ, sim events differ — the arch subsequence is
    # still identical: that is the cross-tier comparison contract.
    assert arch_sequence(first) == arch_sequence(second)
    assert len(arch_sequence(first)) == 2


def _event(index):
    return SecurityEvent(pid=1, pc=index, fault_address=index,
                         reason="key_mismatch", insn_key=5, page_key=9)


def test_security_log_bounded_with_dropped_counter():
    log = SecurityLog(capacity=2)
    for index in range(5):
        log.append(_event(index))
    assert len(log) == 2
    assert log.total == 5
    assert log.dropped == 3
    # List-like access used throughout the attack suite and tools.
    assert bool(log)
    assert log[0].pc == 3 and log[-1].pc == 4
    assert [event.pc for event in log] == [3, 4]
    assert [event.pc for event in log[:2]] == [3, 4]
    log.clear()
    assert not log and log.dropped == 0


def test_security_log_rejects_bad_capacity():
    with pytest.raises(ValueError):
        SecurityLog(capacity=0)
