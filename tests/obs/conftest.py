"""Shared fixtures: every obs test leaves the process-wide switchboard
exactly as it found it (disabled, no buffers) — the rest of the suite
must keep running with observability off."""

import pytest

from repro import obs


@pytest.fixture()
def enabled_obs():
    """Observability on, with fresh buffers; restored on exit."""
    obs.disable()
    state = obs.enable()
    yield state
    obs.disable()


@pytest.fixture(autouse=True)
def _always_restore():
    yield
    obs.disable()
