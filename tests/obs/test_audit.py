"""The tamper-evidence contract of the audit trail.

A sealed chain verifies clean; any single-byte tamper, truncation,
reorder, or post-seal append fails verification with the divergent
record named. The committed fixtures pin the on-disk format: an intact
chain from an old run must keep verifying, and the corrupted fixture
must keep failing, no matter how the implementation evolves.
"""

import json
from pathlib import Path

import pytest

from repro.errors import AuditError
from repro.obs import AuditTrail, record_hash, verify_chain, verify_file
from repro.obs.audit import ZERO_HASH

FIXTURES = Path(__file__).parent / "fixtures"


def _chain(events=3):
    trail = AuditTrail()
    for index in range(events):
        trail.append("roload.violation", pid=1, pc=0x10000 + 4 * index,
                     addr=0x20000, reason="key_mismatch", insn_key=5,
                     page_key=9, instret=100 + index)
    trail.seal()
    return trail


def test_sealed_chain_verifies_clean(tmp_path):
    trail = _chain()
    assert trail.events == 3
    assert verify_chain(trail.records) == []
    path = tmp_path / "audit.jsonl"
    assert trail.save(path) == 5  # genesis + 3 events + seal
    assert verify_file(path) == []


def test_chain_is_deterministic():
    assert _chain().records == _chain().records
    assert _chain().head == _chain().head


def test_append_after_seal_raises():
    trail = _chain()
    with pytest.raises(AuditError):
        trail.append("roload.violation", pid=1)
    # seal() is idempotent and does not grow the chain.
    before = len(trail.records)
    trail.seal()
    assert len(trail.records) == before


def test_genesis_links_from_zero_hash():
    trail = AuditTrail()
    genesis = trail.records[0]
    assert genesis["type"] == "audit.genesis"
    assert genesis["prev"] == ZERO_HASH
    assert genesis["sha256"] == record_hash(genesis)


def test_single_byte_tamper_is_named(tmp_path):
    path = tmp_path / "audit.jsonl"
    _chain().save(path)
    lines = path.read_text().splitlines()
    # Flip one byte of record 2's payload: 0x20000 -> 0x20001.
    assert "131072" in lines[2]
    lines[2] = lines[2].replace("131072", "131073", 1)
    path.write_text("\n".join(lines) + "\n")
    problems = verify_file(path)
    assert problems
    assert any("record 2" in p and "tampered" in p for p in problems)


def test_truncation_fails_closed(tmp_path):
    path = tmp_path / "audit.jsonl"
    _chain().save(path)
    lines = path.read_text().splitlines()
    # Dropping the tail (seal included) leaves an unsealed chain.
    path.write_text("\n".join(lines[:-2]) + "\n")
    problems = verify_file(path)
    assert any("truncated" in p for p in problems)
    # Dropping a middle record breaks both linkage and numbering.
    path.write_text("\n".join(lines[:2] + lines[3:]) + "\n")
    problems = verify_file(path)
    assert any("chain broken" in p or "reordered or dropped" in p
               for p in problems)


def test_reorder_is_named(tmp_path):
    path = tmp_path / "audit.jsonl"
    _chain().save(path)
    lines = path.read_text().splitlines()
    lines[1], lines[2] = lines[2], lines[1]
    path.write_text("\n".join(lines) + "\n")
    problems = verify_file(path)
    assert any("reordered or dropped" in p for p in problems)
    assert any("chain broken" in p for p in problems)


def test_garbage_line_fails_closed(tmp_path):
    path = tmp_path / "audit.jsonl"
    _chain().save(path)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("not json at all\n")
    problems = verify_file(path)
    assert problems and "not valid JSON" in problems[0]


def test_records_appended_after_seal_are_detected(tmp_path):
    path = tmp_path / "audit.jsonl"
    trail = _chain()
    trail.save(path)
    # Forge a post-seal record that even carries a valid self-hash and
    # prev link: the seal's position still betrays it.
    forged = {"seq": len(trail.records), "type": "roload.violation",
              "prev": trail.head, "pid": 9}
    forged["sha256"] = record_hash(forged)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(forged, sort_keys=True,
                                separators=(",", ":")) + "\n")
    problems = verify_file(path)
    assert any("seal record is not last" in p for p in problems)


def test_committed_intact_fixture_verifies():
    """Format stability: a chain written by an earlier build must keep
    verifying byte for byte."""
    assert verify_file(FIXTURES / "audit_ok.jsonl") == []


def test_committed_corrupted_fixture_fails():
    """The CI negative control: this fixture carries a one-byte tamper
    and MUST fail verification forever."""
    problems = verify_file(FIXTURES / "audit_corrupted.jsonl")
    assert problems
    assert any("tampered" in p or "chain broken" in p for p in problems)
