"""roload-stats CLI: summary, trace conversion, schema validation.

Also drives roload-run's --trace-out/--metrics-out export end to end on
the examples' forward-edge-CFI shape of workload: the produced trace
must validate, and the metrics dump must be the architectural counters.
"""

import json

from repro.asm import assemble, link
from repro.tools.runtool import main as run_main
from repro.tools.statstool import main as stats_main

SOURCE = r"""
.globl _start
_start:
    li t0, 3
loop:
    la a0, table
    ld.ro a1, (a0), 12
    addi t0, t0, -1
    bnez t0, loop
    la a0, wrong
    ld.ro a1, (a0), 5
    li a7, 93
    ecall
.section .rodata.key.12
table: .quad 1
.section .rodata.key.7
wrong: .quad 2
"""


def _events_file(tmp_path):
    from repro.obs import EventStream
    stream = EventStream()
    stream.emit("span.kernel.run", pid=1, dur_us=900.0)
    stream.emit("syscall", cat="arch", number=93, name="exit")
    stream.emit("counter.tiers", tier0=1, tier1=2, tier2=3)
    path = tmp_path / "events.jsonl"
    stream.dump_jsonl(path)
    return path


def test_trace_then_validate(tmp_path, capsys):
    events = _events_file(tmp_path)
    out = tmp_path / "trace.json"
    assert stats_main(["trace", str(events), "-o", str(out)]) == 0
    assert stats_main(["validate", str(out)]) == 0
    assert "ok" in capsys.readouterr().out


def test_validate_rejects_bad_trace(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"traceEvents": [{"ph": "Z"}]}))
    assert stats_main(["validate", str(bad)]) == 1
    assert "bad phase" in capsys.readouterr().err
    notjson = tmp_path / "notjson.json"
    notjson.write_text("{")
    assert stats_main(["validate", str(notjson)]) == 1


def _bench_record(version, tiers, speedup=None):
    """A minimal roload-bench record of the given schema vintage."""
    record = {
        "tool": "roload-bench",
        "schema_version": version,
        "scale": 8.0,
        "benchmarks": ["429.mcf"],
        "variants": ["base"],
        "host": {"python": "3.x", "platform": "linux"},
        "tiers": {},
    }
    for name in tiers:
        residency = {"retired": 1000}
        if version >= 5:
            residency["tier4_retired"] = 900
            residency["flat_regions_compiled"] = 3
        record["tiers"][name] = {
            "tier": name,
            "wall_seconds": 1.0,
            "sim_mips": 1.0,
            "instructions": 1000,
            "cycles": 2000,
            "residency": residency,
        }
    if speedup is not None:
        record["speedup"] = speedup
    return record


def _validate(tmp_path, record):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(record))
    return stats_main(["validate", str(path)])


def test_validate_accepts_each_bench_schema_version(tmp_path, capsys):
    """One fixture per supported vintage: v3 (tier2-top), v4
    (tier3-top), v5 (tier4-top with flat-core residency)."""
    fixtures = [
        _bench_record(3, ["slow", "tier1", "tier2"],
                      speedup={"tier2_over_slow": 3.0}),
        _bench_record(4, ["slow", "tier2", "tier3"],
                      speedup={"tier3_over_tier2": 1.5}),
        _bench_record(5, ["tier3", "tier4"],
                      speedup={"tier4_over_tier3": 1.4}),
    ]
    for record in fixtures:
        assert _validate(tmp_path, record) == 0
        out = capsys.readouterr().out
        assert f"schema v{record['schema_version']}" in out


def test_validate_rejects_malformed_bench_records(tmp_path, capsys):
    # Unknown vintage.
    assert _validate(tmp_path, _bench_record(2, ["tier2"])) == 1
    assert "schema_version 2" in capsys.readouterr().err
    # A v5 record must sweep the flat core.
    assert _validate(tmp_path, _bench_record(5, ["tier3"])) == 1
    assert "lacks the 'tier4' sweep" in capsys.readouterr().err
    # A v5 record with both top sweeps must report their speedup.
    record = _bench_record(5, ["tier3", "tier4"])
    assert _validate(tmp_path, record) == 1
    assert "tier4_over_tier3" in capsys.readouterr().err
    # v5 residency must carry the flat-core counters.
    record = _bench_record(5, ["tier4"])
    del record["tiers"]["tier4"]["residency"]["flat_regions_compiled"]
    assert _validate(tmp_path, record) == 1
    assert "flat_regions_compiled" in capsys.readouterr().err
    # Incomplete sweeps are named field by field.
    record = _bench_record(4, ["tier3"])
    del record["tiers"]["tier3"]["sim_mips"]
    assert _validate(tmp_path, record) == 1
    assert "missing 'sim_mips'" in capsys.readouterr().err


def test_validate_accepts_real_smoke_record(tmp_path, capsys):
    """End to end: a record produced by roload-bench --smoke must pass
    the validator (the CI artifact check)."""
    from repro.tools.benchtool import main as bench_main
    out = tmp_path / "bench.json"
    code = bench_main(["--smoke", "--jobs", "1", "--out", str(out)])
    assert code == 0
    capsys.readouterr()
    assert stats_main(["validate", str(out)]) == 0
    assert "schema v5" in capsys.readouterr().out


def test_summary_of_events_and_metrics(tmp_path, capsys):
    events = _events_file(tmp_path)
    assert stats_main(["summary", str(events)]) == 0
    out = capsys.readouterr().out
    assert "3 events" in out and "syscall" in out and "span time" in out

    metrics = tmp_path / "metrics.json"
    metrics.write_text(json.dumps({"sys.l1d.hits": 42,
                                   "sys.mmu.roload_faults": 1}))
    assert stats_main(["summary", str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "2 metric series" in out and "sys.l1d.hits" in out


def test_summary_of_bench_record_reports_tier4_residency(tmp_path,
                                                         capsys):
    """`summary` on a bench record must show the flat-core residency
    columns — tier-4 retires and lowered region count — not just the
    raw metric names."""
    record = _bench_record(5, ["tier3", "tier4"],
                           speedup={"tier4_over_tier3": 1.4})
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(record))
    assert stats_main(["summary", str(path)]) == 0
    out = capsys.readouterr().out
    assert "schema v5" in out
    assert "t4_retired" in out and "flat_regions" in out
    assert "tier4" in out and "900" in out and "3" in out
    assert "tier4_over_tier3=1.4x" in out


def test_top_ranks_and_annotates(tmp_path, capsys):
    """`top` on a synthetic attribution table ranks hottest-first; the
    end-to-end path (runtool --metrics-out, then top --image) resolves
    unit heads through the image's symbol table."""
    metrics = tmp_path / "metrics.json"
    metrics.write_text(json.dumps({"attribution": {
        "tier2": {"0x10004": 400, "0x10020": 10},
        "tier3": {"0x10004": 4000},
    }}))
    assert stats_main(["top", str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "3 attributed units" in out
    lines = out.splitlines()
    assert "tier3" in lines[2]     # 4000 retires ranks first
    # --annotate without --image is a usage error.
    assert stats_main(["top", str(metrics), "--annotate", "f"]) == 2
    capsys.readouterr()
    # A metrics file without attribution degrades gracefully.
    empty = tmp_path / "empty.json"
    empty.write_text(json.dumps({"sys.l1d.hits": 1}))
    assert stats_main(["top", str(empty)]) == 0
    assert "no attribution data" in capsys.readouterr().out


def test_top_end_to_end_with_image(tmp_path, capsys):
    image_path = tmp_path / "prog.rex"
    image_path.write_bytes(link([assemble(SOURCE)]).to_bytes())
    metrics = tmp_path / "metrics.json"
    run_main([str(image_path), "--metrics-out", str(metrics)])
    capsys.readouterr()
    assert stats_main(["top", str(metrics),
                       "--image", str(image_path)]) == 0
    out = capsys.readouterr().out
    assert "attributed units" in out
    assert "_start" in out or "loop" in out   # symbols resolved
    assert stats_main(["top", str(metrics), "--image", str(image_path),
                       "--annotate", "loop"]) == 0
    assert "ld.ro" in capsys.readouterr().out


def test_audit_verify_cli_end_to_end(tmp_path, capsys):
    """roload-run --audit-out writes a sealed chain carrying the run's
    ROLoad violation; `audit verify` passes it, fails a tampered copy
    with the record named, and exits 1."""
    image_path = tmp_path / "prog.rex"
    image_path.write_bytes(link([assemble(SOURCE)]).to_bytes())
    audit_path = tmp_path / "audit.jsonl"
    code = run_main([str(image_path), "--audit-out", str(audit_path)])
    assert code == 128 + 11
    out = capsys.readouterr().out
    assert "[audit:" in out

    records = [json.loads(line)
               for line in audit_path.read_text().splitlines()]
    assert records[0]["type"] == "audit.genesis"
    assert records[-1]["type"] == "audit.seal"
    assert any(r["type"] == "roload.violation" for r in records)

    assert stats_main(["audit", "verify", str(audit_path)]) == 0
    assert "ok" in capsys.readouterr().out

    tampered = tmp_path / "tampered.jsonl"
    text = audit_path.read_text().replace("key_mismatch",
                                          "key_mismatcX", 1)
    tampered.write_text(text)
    assert stats_main(["audit", "verify", str(tampered)]) == 1
    err = capsys.readouterr().err
    assert "tampered" in err and "FAILED" in err


def test_trend_gates_comparable_records(tmp_path, capsys):
    def _write(name, mips):
        record = _bench_record(5, ["tier3", "tier4"],
                               speedup={"tier4_over_tier3": 1.4})
        record["tiers"]["tier4"]["sim_mips"] = mips
        path = tmp_path / name
        path.write_text(json.dumps(record))
        return path

    a = _write("a.json", 1.00)
    b = _write("b.json", 0.95)    # inside the 15% tolerance
    c = _write("c.json", 0.50)    # a real regression
    assert stats_main(["trend", str(a), str(b)]) == 0
    assert "REGRESSION" not in capsys.readouterr().err
    assert stats_main(["trend", str(a), str(b), str(c)]) == 1
    assert "c.json: REGRESSION" in capsys.readouterr().err
    # Gate against an explicit baseline.
    assert stats_main(["trend", str(b), "--check-against", str(a)]) == 0
    assert "gate vs a.json: ok" in capsys.readouterr().out
    assert stats_main(["trend", str(c), "--check-against", str(a)]) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_trend_skips_non_comparable_records(tmp_path, capsys):
    """A smoke record gated against a full-scale baseline is apples to
    oranges: trend must say so and exit 0, not produce a fake verdict —
    exactly what CI does with its smoke artifact."""
    full = _bench_record(5, ["tier3", "tier4"],
                         speedup={"tier4_over_tier3": 1.4})
    smoke = json.loads(json.dumps(full))
    smoke["scale"] = 0.05
    smoke["tiers"]["tier4"]["sim_mips"] = 0.01   # would fail if gated
    full_path = tmp_path / "full.json"
    full_path.write_text(json.dumps(full))
    smoke_path = tmp_path / "smoke.json"
    smoke_path.write_text(json.dumps(smoke))
    assert stats_main(["trend", str(smoke_path),
                       "--check-against", str(full_path)]) == 0
    out = capsys.readouterr().out
    assert "not comparable" in out
    # And a malformed record still fails loudly.
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"tool": "else"}))
    assert stats_main(["trend", str(bad)]) == 1


def test_runtool_exports_validating_trace_and_exact_metrics(tmp_path,
                                                            capsys):
    """The acceptance demo: a run with a ROLoad violation produces a
    Perfetto-loadable trace and a bit-exact metrics dump."""
    image = tmp_path / "prog.rex"
    image.write_bytes(link([assemble(SOURCE)]).to_bytes())
    trace_out = tmp_path / "trace.json"
    metrics_out = tmp_path / "metrics.json"
    code = run_main([str(image), "--trace-out", str(trace_out),
                     "--metrics-out", str(metrics_out)])
    assert code == 128 + 11  # SIGSEGV: the last ld.ro violates its key
    assert "[security]" in capsys.readouterr().out

    assert stats_main(["validate", str(trace_out)]) == 0
    trace = json.loads(trace_out.read_text())
    names = {event["name"] for event in trace["traceEvents"]}
    assert "kernel.run" in names            # the run span
    assert "roload.violation" in names      # the security event
    assert "tiers" in names                 # residency counter samples

    metrics = json.loads(metrics_out.read_text())
    assert metrics["sys.mmu.roload_faults"] == 1
    assert metrics["sys.mmu.roload_checks"] == 4  # 3 good + 1 bad
    assert metrics["sys.timing.instructions"] > 0
    residency = metrics["sys.tier.residency"]
    assert residency["retired"] == metrics["sys.timing.instructions"]
    # The event-ring health counters ride along (overflow is visible).
    assert metrics["events.emitted"] >= len(trace["traceEvents"]) - 10
    assert metrics["events.dropped"] == 0
    # And so does the bounded security log's accounting.
    assert metrics["kernel.seclog.total"] == 1
    assert metrics["kernel.seclog.dropped"] == 0


def test_runtool_sample_interval_exports_timeseries(tmp_path, capsys):
    """--sample-interval arms the flight recorder: the metrics dump
    grows a 'timeseries' section and the trace grows flight-recorder
    counter tracks, and the file still validates."""
    image = tmp_path / "prog.rex"
    image.write_bytes(link([assemble(SOURCE)]).to_bytes())
    trace_out = tmp_path / "trace.json"
    metrics_out = tmp_path / "metrics.json"
    code = run_main([str(image), "--sample-interval", "5",
                     "--trace-out", str(trace_out),
                     "--metrics-out", str(metrics_out)])
    assert code == 128 + 11
    capsys.readouterr()

    metrics = json.loads(metrics_out.read_text())
    series = metrics["timeseries"]
    assert series["initial_interval"] == 5
    assert series["taken"] >= 2          # run start + mid/end samples
    instrets = [row["instret"] for row in series["samples"]]
    assert instrets == sorted(instrets)

    assert stats_main(["validate", str(trace_out)]) == 0
    trace = json.loads(trace_out.read_text())
    names = {event["name"] for event in trace["traceEvents"]}
    assert "sampled.tiers" in names
    assert "sampled.progress" in names


FIXTURES = __import__("pathlib").Path(__file__).parent / "fixtures"


def test_validate_accepts_campaign_fixture(capsys):
    """The committed good fixture — produced by a real roload-fuzz run
    — must pass the campaign schema check."""
    assert stats_main(["validate",
                       str(FIXTURES / "campaign_ok.json")]) == 0
    out = capsys.readouterr().out
    assert "campaign record schema v1" in out and "guided mode" in out


def test_validate_rejects_campaign_malformed_fixture(capsys):
    """The committed malformed fixture trips every class of problem:
    bad mode, non-numeric coverage, missing section, and — the security
    gate — escapes."""
    assert stats_main(["validate",
                       str(FIXTURES / "campaign_malformed.json")]) == 1
    err = capsys.readouterr().err
    assert "mode 'psychic'" in err
    assert "coverage.unique_signatures: not a number" in err
    assert "missing section 'detection'" in err
    assert "escapes.total is 2" in err
    assert "escapes.unexplained is 1" in err
    assert "not ok" in err


def test_summary_of_campaign_record(capsys):
    assert stats_main(["summary",
                       str(FIXTURES / "campaign_ok.json")]) == 0
    out = capsys.readouterr().out
    assert "roload-fuzz record" in out
    assert "unique signatures" in out
    assert "detection: rate" in out
    assert "ok: True" in out


def _campaign_variant(rate):
    record = json.loads((FIXTURES / "campaign_ok.json").read_text())
    record["detection"] = dict(record["detection"])
    record["detection"]["rate"] = rate
    return record


def test_trend_gates_campaign_detection_rate(tmp_path, capsys):
    """A comparable campaign record whose detection rate drops beyond
    the tolerance fails the trend gate, like a sim-MIPS regression."""
    def _write(name, rate):
        path = tmp_path / name
        path.write_text(json.dumps(_campaign_variant(rate)))
        return path

    a = _write("a.json", 1.00)
    b = _write("b.json", 0.90)    # inside the 0.15 tolerance
    c = _write("c.json", 0.60)    # a real detection regression
    assert stats_main(["trend", str(a), str(b)]) == 0
    assert "DETECTION REGRESSION" not in capsys.readouterr().err
    assert stats_main(["trend", str(a), str(b), str(c)]) == 1
    assert "c.json: DETECTION REGRESSION" in capsys.readouterr().err


def test_trend_mixes_bench_and_campaign_series(tmp_path, capsys):
    """One trend invocation can carry both artifact kinds — CI hands it
    BENCH_interp.json and BENCH_campaign.json together — and each
    subseries is gated on its own axis."""
    bench = _bench_record(5, ["tier3", "tier4"],
                          speedup={"tier4_over_tier3": 1.4})
    bench_path = tmp_path / "bench.json"
    bench_path.write_text(json.dumps(bench))
    camp_path = tmp_path / "camp.json"
    camp_path.write_text(json.dumps(_campaign_variant(1.0)))
    assert stats_main(["trend", str(bench_path), str(camp_path)]) == 0
    out = capsys.readouterr().out
    assert "det_rate" in out and "sim_mips" in out


def test_trend_skips_non_comparable_campaigns(tmp_path, capsys):
    """A smoke campaign (different budget) against a full campaign must
    not be gated."""
    def _write(name, rate, executions):
        record = _campaign_variant(rate)
        record["executions"] = executions
        path = tmp_path / name
        path.write_text(json.dumps(record))
        return path

    full = _write("full.json", 1.00, 10000)
    smoke = _write("smoke.json", 0.10, 500)   # would fail if gated
    assert stats_main(["trend", str(full), str(smoke)]) == 0
    assert "not comparable" in capsys.readouterr().out
