"""roload-stats CLI: summary, trace conversion, schema validation.

Also drives roload-run's --trace-out/--metrics-out export end to end on
the examples' forward-edge-CFI shape of workload: the produced trace
must validate, and the metrics dump must be the architectural counters.
"""

import json

from repro.asm import assemble, link
from repro.tools.runtool import main as run_main
from repro.tools.statstool import main as stats_main

SOURCE = r"""
.globl _start
_start:
    li t0, 3
loop:
    la a0, table
    ld.ro a1, (a0), 12
    addi t0, t0, -1
    bnez t0, loop
    la a0, wrong
    ld.ro a1, (a0), 5
    li a7, 93
    ecall
.section .rodata.key.12
table: .quad 1
.section .rodata.key.7
wrong: .quad 2
"""


def _events_file(tmp_path):
    from repro.obs import EventStream
    stream = EventStream()
    stream.emit("span.kernel.run", pid=1, dur_us=900.0)
    stream.emit("syscall", cat="arch", number=93, name="exit")
    stream.emit("counter.tiers", tier0=1, tier1=2, tier2=3)
    path = tmp_path / "events.jsonl"
    stream.dump_jsonl(path)
    return path


def test_trace_then_validate(tmp_path, capsys):
    events = _events_file(tmp_path)
    out = tmp_path / "trace.json"
    assert stats_main(["trace", str(events), "-o", str(out)]) == 0
    assert stats_main(["validate", str(out)]) == 0
    assert "ok" in capsys.readouterr().out


def test_validate_rejects_bad_trace(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"traceEvents": [{"ph": "Z"}]}))
    assert stats_main(["validate", str(bad)]) == 1
    assert "bad phase" in capsys.readouterr().err
    notjson = tmp_path / "notjson.json"
    notjson.write_text("{")
    assert stats_main(["validate", str(notjson)]) == 1


def _bench_record(version, tiers, speedup=None):
    """A minimal roload-bench record of the given schema vintage."""
    record = {
        "tool": "roload-bench",
        "schema_version": version,
        "scale": 8.0,
        "benchmarks": ["429.mcf"],
        "variants": ["base"],
        "host": {"python": "3.x", "platform": "linux"},
        "tiers": {},
    }
    for name in tiers:
        residency = {"retired": 1000}
        if version >= 5:
            residency["tier4_retired"] = 900
            residency["flat_regions_compiled"] = 3
        record["tiers"][name] = {
            "tier": name,
            "wall_seconds": 1.0,
            "sim_mips": 1.0,
            "instructions": 1000,
            "cycles": 2000,
            "residency": residency,
        }
    if speedup is not None:
        record["speedup"] = speedup
    return record


def _validate(tmp_path, record):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(record))
    return stats_main(["validate", str(path)])


def test_validate_accepts_each_bench_schema_version(tmp_path, capsys):
    """One fixture per supported vintage: v3 (tier2-top), v4
    (tier3-top), v5 (tier4-top with flat-core residency)."""
    fixtures = [
        _bench_record(3, ["slow", "tier1", "tier2"],
                      speedup={"tier2_over_slow": 3.0}),
        _bench_record(4, ["slow", "tier2", "tier3"],
                      speedup={"tier3_over_tier2": 1.5}),
        _bench_record(5, ["tier3", "tier4"],
                      speedup={"tier4_over_tier3": 1.4}),
    ]
    for record in fixtures:
        assert _validate(tmp_path, record) == 0
        out = capsys.readouterr().out
        assert f"schema v{record['schema_version']}" in out


def test_validate_rejects_malformed_bench_records(tmp_path, capsys):
    # Unknown vintage.
    assert _validate(tmp_path, _bench_record(2, ["tier2"])) == 1
    assert "schema_version 2" in capsys.readouterr().err
    # A v5 record must sweep the flat core.
    assert _validate(tmp_path, _bench_record(5, ["tier3"])) == 1
    assert "lacks the 'tier4' sweep" in capsys.readouterr().err
    # A v5 record with both top sweeps must report their speedup.
    record = _bench_record(5, ["tier3", "tier4"])
    assert _validate(tmp_path, record) == 1
    assert "tier4_over_tier3" in capsys.readouterr().err
    # v5 residency must carry the flat-core counters.
    record = _bench_record(5, ["tier4"])
    del record["tiers"]["tier4"]["residency"]["flat_regions_compiled"]
    assert _validate(tmp_path, record) == 1
    assert "flat_regions_compiled" in capsys.readouterr().err
    # Incomplete sweeps are named field by field.
    record = _bench_record(4, ["tier3"])
    del record["tiers"]["tier3"]["sim_mips"]
    assert _validate(tmp_path, record) == 1
    assert "missing 'sim_mips'" in capsys.readouterr().err


def test_validate_accepts_real_smoke_record(tmp_path, capsys):
    """End to end: a record produced by roload-bench --smoke must pass
    the validator (the CI artifact check)."""
    from repro.tools.benchtool import main as bench_main
    out = tmp_path / "bench.json"
    code = bench_main(["--smoke", "--jobs", "1", "--out", str(out)])
    assert code == 0
    capsys.readouterr()
    assert stats_main(["validate", str(out)]) == 0
    assert "schema v5" in capsys.readouterr().out


def test_summary_of_events_and_metrics(tmp_path, capsys):
    events = _events_file(tmp_path)
    assert stats_main(["summary", str(events)]) == 0
    out = capsys.readouterr().out
    assert "3 events" in out and "syscall" in out and "span time" in out

    metrics = tmp_path / "metrics.json"
    metrics.write_text(json.dumps({"sys.l1d.hits": 42,
                                   "sys.mmu.roload_faults": 1}))
    assert stats_main(["summary", str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "2 metric series" in out and "sys.l1d.hits" in out


def test_runtool_exports_validating_trace_and_exact_metrics(tmp_path,
                                                            capsys):
    """The acceptance demo: a run with a ROLoad violation produces a
    Perfetto-loadable trace and a bit-exact metrics dump."""
    image = tmp_path / "prog.rex"
    image.write_bytes(link([assemble(SOURCE)]).to_bytes())
    trace_out = tmp_path / "trace.json"
    metrics_out = tmp_path / "metrics.json"
    code = run_main([str(image), "--trace-out", str(trace_out),
                     "--metrics-out", str(metrics_out)])
    assert code == 128 + 11  # SIGSEGV: the last ld.ro violates its key
    assert "[security]" in capsys.readouterr().out

    assert stats_main(["validate", str(trace_out)]) == 0
    trace = json.loads(trace_out.read_text())
    names = {event["name"] for event in trace["traceEvents"]}
    assert "kernel.run" in names            # the run span
    assert "roload.violation" in names      # the security event
    assert "tiers" in names                 # residency counter samples

    metrics = json.loads(metrics_out.read_text())
    assert metrics["sys.mmu.roload_faults"] == 1
    assert metrics["sys.mmu.roload_checks"] == 4  # 3 good + 1 bad
    assert metrics["sys.timing.instructions"] > 0
    residency = metrics["sys.tier.residency"]
    assert residency["retired"] == metrics["sys.timing.instructions"]
