"""Guest perf attribution: histograms, symbol resolution, annotation.

Unit layer covers the histogram/flatten/format pipeline and the symbol
map; the integration layer runs real code under tiers 1/2 with the tap
installed and checks the retired instructions land on the right unit
heads, then drives ``annotate`` against a real linked image.
"""

from repro import obs
from repro.asm import assemble, link
from repro.errors import ReproError
from repro.kernel import Kernel
from repro.obs import Attribution
from repro.obs.attribution import (
    SymbolMap,
    annotate,
    flatten,
    format_top,
)
from repro.soc import build_system

from tests.cpu.test_jit import countdown_loop, jit_core, run_to_ebreak

import pytest


def test_record_accumulates_per_tier_and_pc():
    attrib = Attribution()
    attrib.record(2, 0x1000, 10)
    attrib.record(2, 0x1000, 5)
    attrib.record(3, 0x1000, 7)
    table = attrib.export()
    assert table == {"tier2": {"0x1000": 15}, "tier3": {"0x1000": 7}}
    attrib.clear()
    assert attrib.export() == {}


def test_flatten_ranks_hottest_first():
    table = {"tier1": {"0x2000": 5, "0x1000": 90},
             "tier2": {"0x3000": 90}}
    rows = flatten(table)
    assert rows[0] == ("tier1", 0x1000, 90)   # ties break by pc
    assert rows[1] == ("tier2", 0x3000, 90)
    assert rows[-1] == ("tier1", 0x2000, 5)


def test_symbol_map_resolves_nearest_preceding():
    symbols = SymbolMap({"f": 0x1000, "g": 0x1040})
    assert symbols.resolve(0x1000) == ("f", 0)
    assert symbols.resolve(0x1038) == ("f", 0x38)
    assert symbols.resolve(0x1040) == ("g", 0)
    assert symbols.resolve(0x0FFF) == (None, 0)


def test_format_top_report():
    assert "no attribution data" in format_top([])
    rows = [("tier2", 0x1000 + 16 * i, 100 - i) for i in range(25)]
    text = format_top(rows, SymbolMap({"hot": 0x1000}), limit=20)
    assert "25 attributed units" in text
    assert "hot" in text
    assert "5 colder units not shown" in text
    lines = text.splitlines()
    assert "hot" in lines[2] and "+0x" not in lines[2]   # exact head
    assert "hot+0x10" in lines[3]                        # offset form


def test_tier2_blocks_attribute_to_their_start_pc(monkeypatch):
    core = jit_core(monkeypatch, threshold=2)
    core._attrib = Attribution()
    loop_pc = countdown_loop(core, 50)
    run_to_ebreak(core)
    assert core._jit_blocks
    table = core._attrib.export()
    # The hot loop retired most of its instructions through compiled
    # units headed at the loop pc (tier 2 blocks first; with tier 3 on
    # by default the region takes over the same head).
    assert table["tier2"][f"{loop_pc:#x}"] > 0
    at_loop = sum(table.get(tier, {}).get(f"{loop_pc:#x}", 0)
                  for tier in ("tier2", "tier3", "tier4"))
    assert at_loop > 100
    # Attribution observed, never perturbed: the counters balance.
    retired = sum(sum(pcs.values()) for pcs in table.values())
    assert retired <= core.instret


def test_tier1_blocks_attribute_when_jit_is_off(monkeypatch):
    core = jit_core(monkeypatch, jit=False, threshold=2)
    core._attrib = Attribution()
    loop_pc = countdown_loop(core, 50)
    run_to_ebreak(core)
    table = core._attrib.export()
    assert "tier2" not in table
    assert table["tier1"][f"{loop_pc:#x}"] > 100


PROGRAM = r"""
.globl _start
_start:
    li t0, 300
loop:
    la a0, table
    ld.ro a1, (a0), 12
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    li a7, 93
    ecall
.section .rodata.key.12
table: .quad 1
"""


def test_enable_installs_the_tap_and_annotate_renders():
    obs.enable()
    system = build_system(memory_size=64 << 20)
    obs.register_system(system)
    assert system.core._attrib is obs.OBS.attribution
    image = link([assemble(PROGRAM)])
    kernel = Kernel(system)
    process = kernel.create_process(image)
    kernel.run(process)
    assert process.exit_code == 0

    table = obs.OBS.registry.collect()["attribution"]
    rows = flatten(table)
    assert rows, "a 300-iteration loop must attribute something"
    symbols = SymbolMap(image.symbols)
    name, __ = symbols.resolve(rows[0][1])
    assert name == "loop"             # the hot loop's own label

    text = annotate(image, "loop", table)
    assert "loop:" in text
    assert "ld.ro" in text            # the disassembly really rendered
    # The hottest unit head carries its retire count (summed across
    # tiers) in the margin.
    head = f"{rows[0][1]:#x}"
    at_head = sum(pcs.get(head, 0) for pcs in table.values())
    assert f"{at_head:,d}" in text

    with pytest.raises(ReproError):
        annotate(image, "no_such_symbol", table)
