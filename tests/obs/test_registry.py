"""Metrics registry: instruments, live sources, bit-exact system dumps."""

from repro.asm import assemble, link
from repro.kernel import Kernel
from repro.obs import MetricsRegistry, register_system
from repro.soc import build_system

# A workload that exercises ROLoad checks AND takes a ROLoad fault: five
# good keyed loads, then one from a key-7 page with a key-5 instruction.
FAULTING = r"""
.globl _start
_start:
    li t0, 5
loop:
    la a0, table
    ld.ro a1, (a0), 12
    addi t0, t0, -1
    bnez t0, loop
    la a0, wrong
    ld.ro a1, (a0), 5
    li a7, 93
    ecall
.section .rodata.key.12
table: .quad 1
.section .rodata.key.7
wrong: .quad 2
"""


def test_counter_gauge_histogram():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.counter("c").inc(4)
    registry.gauge("g").set(17)
    hist = registry.histogram("h")
    for value in (0, 1, 2, 3, 900):
        hist.observe(value)
    out = registry.collect()
    assert out["c"] == 5
    assert out["g"] == 17
    assert out["h"]["count"] == 5
    assert out["h"]["sum"] == 906
    assert out["h"]["max"] == 900
    # zeros land in bucket 0; 2 and 3 share the [2,4) bucket.
    assert out["h"]["buckets"]["0"] == 1
    assert out["h"]["buckets"]["2"] == 2


def test_sources_read_live_and_unregister():
    registry = MetricsRegistry()

    class Holder:
        hits = 1

    holder = Holder()
    registry.register_attrs("x", holder, "hits")
    assert registry.collect()["x.hits"] == 1
    holder.hits = 41  # mutate the plain attribute; nothing was wrapped
    assert registry.collect()["x.hits"] == 41
    registry.unregister_prefix("x")
    assert "x.hits" not in registry.collect()


def test_system_dump_matches_architectural_counters(enabled_obs):
    """The acceptance bar: a metrics dump's ROLoad-fault and TLB/cache
    counters equal the architectural counters bit for bit."""
    system = build_system(memory_size=64 << 20)
    register_system(system)
    kernel = Kernel(system)
    process = kernel.create_process(link([assemble(FAULTING)]))
    kernel.run(process)
    assert kernel.security_log  # the run really faulted

    snapshot = enabled_obs.registry.collect()
    mmu, timing = system.mmu, system.timing.stats
    assert snapshot["sys.mmu.roload_checks"] == mmu.stats.roload_checks
    assert snapshot["sys.mmu.roload_faults"] == mmu.stats.roload_faults
    assert snapshot["sys.mmu.roload_faults"] >= 1
    assert snapshot["sys.dtlb.hits"] == mmu.dtlb.hits
    assert snapshot["sys.dtlb.misses"] == mmu.dtlb.misses
    assert snapshot["sys.itlb.misses"] == mmu.itlb.misses
    assert snapshot["sys.l1d.hits"] == system.dcache.hits
    assert snapshot["sys.l1d.misses"] == system.dcache.misses
    assert snapshot["sys.l1i.hits"] == system.icache.hits
    assert snapshot["sys.timing.instructions"] == timing.instructions
    assert snapshot["sys.timing.cycles"] == timing.cycles

    # Residency accounting is exhaustive: the four tiers partition the
    # retired-instruction count exactly.
    residency = snapshot["sys.tier.residency"]
    assert residency["retired"] == timing.instructions
    assert (residency["tier0_retired"] + residency["tier1_retired"]
            + residency["tier2_retired"]
            + residency["tier3_retired"]) == residency["retired"]


def test_reregistering_replaces_namespace(enabled_obs):
    system_a = build_system(memory_size=64 << 20)
    system_b = build_system(memory_size=64 << 20)
    register_system(system_a)
    register_system(system_b)
    system_a.dcache.hits = 123456
    # The dump reads system_b (last registered), not the mutated a.
    assert enabled_obs.registry.collect()["sys.l1d.hits"] == \
        system_b.dcache.hits
