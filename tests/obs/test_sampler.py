"""The flight recorder: bounded, decimating counter time-series.

Unit layer exercises the ring/decimation policy on a stub core; the
integration layer arms the sampler through ``obs.enable(sample=N)`` on
a real kernel run and checks the ``timeseries`` metrics section and the
Perfetto counter-track export.
"""

import json

from repro import obs
from repro.asm import assemble, link
from repro.kernel import Kernel
from repro.obs import Sampler, chrome_trace, validate_trace
from repro.soc import build_system

import pytest


class _Stats:
    def __init__(self):
        self.instructions = 0
        self.cycles = 0


class _Timing:
    def __init__(self):
        self.stats = _Stats()


class _StubCore:
    """Just enough surface for Sampler.sample (no MMU, no TLBs)."""

    def __init__(self):
        self.timing = _Timing()
        self.mmu = object()
        self.tier0_retired = 0
        self.tier1_retired = 0
        self.tier3_retired = 0
        self.tier4_retired = 0
        self.jit_compiled = 0
        self.regions_compiled = 0
        self.flat_regions_compiled = 0


def test_interval_must_be_positive():
    with pytest.raises(ValueError):
        Sampler(0)
    with pytest.raises(ValueError):
        Sampler(-5)
    with pytest.raises(ValueError):
        Sampler(10, capacity=1)


def test_sampling_rearms_and_derives_tier2():
    sampler = Sampler(100)
    core = _StubCore()
    core.timing.stats.instructions = 100
    core.tier1_retired = 40
    sampler.sample(core)
    assert sampler.next_at == 200
    assert sampler.taken == 1
    row = sampler.samples[0]
    assert row["instret"] == 100
    assert row["tier1"] == 40
    assert row["tier2"] == 60      # derived, like tier_residency()
    assert "walks" not in row      # stub has no MMU stats


def test_decimation_keeps_full_span_at_half_resolution():
    sampler = Sampler(10, capacity=8)
    core = _StubCore()
    for step in range(1, 9):
        core.timing.stats.instructions = step * 10
        sampler.sample(core)
    # The 8th sample hit capacity: every other row was dropped and the
    # interval doubled.
    assert sampler.decimations == 1
    assert sampler.interval == 20
    assert sampler.initial_interval == 10
    assert len(sampler.samples) == 4
    assert sampler.taken == 8
    instrets = [row["instret"] for row in sampler.samples]
    assert instrets == [20, 40, 60, 80]   # span kept, resolution halved
    assert sampler.next_at == 80 + 20


def test_export_is_json_serializable():
    sampler = Sampler(10)
    core = _StubCore()
    core.timing.stats.instructions = 10
    sampler.sample(core)
    out = json.loads(json.dumps(sampler.export()))
    assert out["taken"] == 1
    assert out["samples"][0]["instret"] == 10


WORKLOAD = r"""
.globl _start
_start:
    li t0, 2000
loop:
    la a0, table
    ld.ro a1, (a0), 12
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    li a7, 93
    ecall
.section .rodata.key.12
table: .quad 1
"""


def _observed_run(sample):
    obs.enable(sample=sample)
    system = build_system(memory_size=64 << 20)
    obs.register_system(system)
    kernel = Kernel(system)
    process = kernel.create_process(link([assemble(WORKLOAD)]))
    kernel.run(process)
    assert process.exit_code == 0
    return kernel


def test_kernel_run_feeds_the_sampler():
    _observed_run(sample=500)
    sampler = obs.OBS.sampler
    assert sampler is not None and sampler.taken >= 3
    instrets = [row["instret"] for row in sampler.samples]
    assert instrets == sorted(instrets)
    # The run's mmu counters rode along.
    assert sampler.samples[-1]["roload_checks"] >= 2000
    # And the registry exports the series as the 'timeseries' section.
    snapshot = obs.OBS.registry.collect()
    assert snapshot["timeseries"]["taken"] == sampler.taken


def test_counter_events_render_as_valid_counter_tracks():
    _observed_run(sample=500)
    events = obs.OBS.sampler.counter_events(obs.OBS.events.epoch)
    assert events
    types = {event["type"] for event in events}
    assert "counter.sampled.tiers" in types
    assert "counter.sampled.progress" in types
    trace = chrome_trace(list(obs.OBS.events) + events)
    assert validate_trace(trace) == []
    sampled = [e for e in trace["traceEvents"]
               if e.get("ph") == "C" and e["name"].startswith("sampled.")]
    assert sampled
    assert all(e["tid"] == 7 for e in sampled)   # the flight-recorder row
    track_names = {e["args"]["name"] for e in trace["traceEvents"]
                   if e.get("ph") == "M" and e["name"] == "thread_name"}
    assert "flight recorder" in track_names


def test_sampler_off_by_default():
    obs.enable()
    assert obs.OBS.sampler is None
