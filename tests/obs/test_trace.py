"""Chrome trace exporter: event mapping and the schema validator."""

import json

from repro.obs import (
    EventStream,
    chrome_trace,
    validate_trace,
    write_chrome_trace,
)


def _stream():
    stream = EventStream()
    stream.emit("span.kernel.run", pid=1, dur_us=1500.0, instructions=42)
    stream.emit("counter.tiers", tier0=1, tier1=2, tier2=3)
    stream.emit("jit.compile", pc=4096, instructions=7)
    stream.emit("roload.violation", cat="arch", reason="key_mismatch")
    return stream


def _by_phase(trace):
    out = {}
    for event in trace["traceEvents"]:
        out.setdefault(event["ph"], []).append(event)
    return out


def test_event_mapping():
    trace = chrome_trace(_stream())
    phases = _by_phase(trace)
    [span] = phases["X"]
    assert span["name"] == "kernel.run"
    assert span["dur"] == 1500.0
    assert span["ts"] >= 0  # start = end - dur, never negative here
    [counter] = phases["C"]
    assert counter["args"] == {"tier0": 1, "tier1": 2, "tier2": 3}
    instants = {event["name"] for event in phases["i"]}
    assert instants == {"jit.compile", "roload.violation"}
    # Metadata names the process and every used track.
    names = {event["args"]["name"] for event in phases["M"]}
    assert "roload-sim" in names and "kernel.run" in names


def test_roundtrip_validates(tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(_stream(), path)
    trace = json.loads(path.read_text())
    assert validate_trace(trace) == []
    assert trace["displayTimeUnit"] == "ms"


def test_validator_catches_malformed_traces():
    assert validate_trace([]) != []
    assert validate_trace({}) != []
    assert validate_trace({"traceEvents": []}) != []
    assert validate_trace({"traceEvents": ["nope"]}) != []
    # A complete event without a duration is a schema violation.
    bad = {"traceEvents": [
        {"name": "x", "ph": "X", "ts": 0, "pid": 0, "tid": 0}]}
    assert any("dur" in problem for problem in validate_trace(bad))
    # Counter args must be numeric.
    bad = {"traceEvents": [
        {"name": "c", "ph": "C", "ts": 0, "pid": 0, "tid": 0,
         "args": {"v": "high"}}]}
    assert any("counter" in problem for problem in validate_trace(bad))
