"""Test package."""
