"""Tests for the composed (everything-on) hardening stack."""

import pytest

from repro.attacks import (
    build_victim_module,
    cross_type_vtable_reuse,
    inject_fake_vtable,
    point_at_attacker_data,
    point_at_gadget_code,
    run_attack,
)
from repro.compiler import compile_module, compile_to_assembly
from repro.defenses import (
    TypeBasedCFI,
    VCallProtection,
    describe_keys,
    full_hardening,
)
from repro.kernel import run_program


def victim_hierarchies():
    return {"Benign": "Benign", "Other": "Other"}


class TestComposition:
    def test_functional_preservation(self):
        victim = build_victim_module()
        stack = full_hardening(hierarchies=victim_hierarchies())
        image = compile_module(victim, hardening=stack)
        assert run_program(image).exit_code == 42

    def test_no_key_collisions(self):
        victim = build_victim_module()
        stack = full_hardening(hierarchies=victim_hierarchies())
        compile_to_assembly(victim, hardening=stack)
        vcall, icall = stack[0], stack[1]
        vcall_keys = set(vcall.keys.values())
        icall_keys = set(icall.key_of_type.values())
        assert not vcall_keys & icall_keys

    def test_vcall_keys_win_over_unified(self):
        """With VCall first, ICall must not re-key the vtables."""
        victim = build_victim_module()
        stack = full_hardening(hierarchies=victim_hierarchies())
        asm = compile_to_assembly(victim, hardening=stack)
        vcall = stack[0]
        icall = stack[1]
        assert icall.vtable_key is None  # nothing left to unify
        for key in vcall.keys.values():
            assert f".rodata.key.{key}" in asm

    def test_blocks_every_covered_attack(self):
        victim = build_victim_module()
        image = compile_module(
            victim,
            hardening=full_hardening(hierarchies=victim_hierarchies()))
        for corrupt in (inject_fake_vtable, cross_type_vtable_reuse,
                        point_at_gadget_code, point_at_attacker_data):
            outcome = run_attack(image, corrupt)
            assert outcome.blocked, corrupt.__name__
            assert outcome.roload_violation, corrupt.__name__

    def test_with_return_protection(self):
        from repro.compiler import IRBuilder, Module
        m = Module("combined")
        leaf = m.function("leaf", num_params=1)
        b = IRBuilder(leaf)
        b.ret(b.addi(b.param(0), 2))
        main = m.function("main")
        b = IRBuilder(main)
        b.ret(b.call("leaf", [b.li(40)]))
        stack = full_hardening(protect_returns=["leaf"])
        image = compile_module(m, hardening=stack)
        assert run_program(image).exit_code == 42

    def test_describe_keys(self):
        victim = build_victim_module()
        stack = full_hardening(hierarchies=victim_hierarchies())
        compile_to_assembly(victim, hardening=stack)
        text = describe_keys(stack)
        assert "vtable" in text and "gfpt" in text

    def test_standalone_icall_still_unifies(self):
        """Without VCall in front, ICall keeps its unified-key behaviour."""
        victim = build_victim_module()
        defense = TypeBasedCFI()
        compile_to_assembly(victim, hardening=[defense])
        assert defense.vtable_key is not None
