"""Shared fixtures: a module with virtual calls and indirect calls."""

import pytest

from repro.compiler import (
    I64,
    IRBuilder,
    Module,
    VTable,
    func_type,
    static_object,
)

SIG = func_type(ret=I64)
SIG2 = func_type(I64, ret=I64)


def make_test_module():
    """Two classes with vtables, two free address-taken functions, a main
    that exercises vcalls and icalls. Expected exit code: 42."""
    m = Module("defense_demo")

    a_get = m.function("A_get", func_type=SIG, address_taken=True)
    b = IRBuilder(a_get)
    b.ret(b.li(10))

    b_get = m.function("B_get", func_type=SIG, address_taken=True)
    b = IRBuilder(b_get)
    b.ret(b.li(20))

    double = m.function("double_it", num_params=1, func_type=SIG2,
                        address_taken=True)
    b = IRBuilder(double)
    b.ret(b.mul(b.param(0), b.li(2)))

    inc = m.function("inc", num_params=1, func_type=SIG2,
                     address_taken=True)
    b = IRBuilder(inc)
    b.ret(b.addi(b.param(0), 1))

    m.vtable(VTable("A", entries=["A_get"]))
    m.vtable(VTable("B", entries=["B_get"]))
    static_object(m, "obj_a", "A")
    static_object(m, "obj_b", "B")

    main = m.function("main")
    b = IRBuilder(main)
    oa = b.la("obj_a")
    ob = b.la("obj_b")
    r1 = b.vcall(oa, 0, "A", func_type=SIG)       # 10
    r2 = b.vcall(ob, 0, "B", func_type=SIG)       # 20
    fp = b.la("double_it")
    r3 = b.icall(fp, [b.li(5)], func_type=SIG2)   # 10
    fp2 = b.la("inc")
    r4 = b.icall(fp2, [b.li(1)], func_type=SIG2)  # 2
    b.ret(b.add(b.add(r1, r2), b.add(r3, r4)))    # 42
    return m


@pytest.fixture()
def module():
    return make_test_module()
