"""Defense-pass tests: functional preservation + mechanism checks."""

import pytest

from repro.compiler import (
    KeyAllocator,
    Load,
    Module,
    compile_module,
    compile_to_assembly,
)
from repro.defenses import (
    LabelCFIBaseline,
    TypeBasedCFI,
    VCallProtection,
    VTintBaseline,
    gfpt_symbol,
    id_word,
    type_id,
)
from repro.kernel import run_program

from .conftest import SIG, SIG2, make_test_module


def run(module, hardening=None):
    return run_program(compile_module(module, hardening=hardening))


class TestFunctionalPreservation:
    """Every defense must preserve program behaviour (exit code 42)."""

    def test_plain(self, module):
        assert run(module).exit_code == 42

    @pytest.mark.parametrize("make_defense", [
        lambda: [VCallProtection()],
        lambda: [VTintBaseline()],
        lambda: [TypeBasedCFI()],
        lambda: [LabelCFIBaseline()],
    ], ids=["vcall", "vtint", "icall", "cfi"])
    def test_hardened(self, module, make_defense):
        assert run(module, make_defense()).exit_code == 42

    def test_module_not_mutated_by_compile(self, module):
        compile_module(module, hardening=[VCallProtection()])
        # Original module must be untouched: still no keyed sections.
        assert all(t.section == ".rodata" for t in module.vtables.values())
        assert run(module).exit_code == 42


class TestVCallMechanism:
    def test_vtables_moved_to_keyed_sections(self, module):
        defense = VCallProtection()
        asm = compile_to_assembly(module, hardening=[defense])
        assert defense.keys["A"] != defense.keys["B"]
        for cls in ("A", "B"):
            assert f".section .rodata.key.{defense.keys[cls]}" in asm

    def test_vtable_entry_loads_become_ld_ro(self, module):
        defense = VCallProtection()
        asm = compile_to_assembly(module, hardening=[defense])
        assert defense.loads_annotated == 2
        assert asm.count("ld.ro") >= 2

    def test_vptr_load_stays_plain(self, module):
        """Objects are writable; only the vtable-entry load is ROLoad."""
        defense = VCallProtection()
        compiled = compile_to_assembly(module, hardening=[defense])
        # The two vcalls contribute exactly two ld.ro (entry loads), not
        # four (vptr loads stay normal).
        assert compiled.count("ld.ro") == 2

    def test_hierarchy_grouping_shares_key(self, module):
        defense = VCallProtection(
            key_by_hierarchy={"A": "base", "B": "base"})
        compile_to_assembly(module, hardening=[defense])
        assert defense.keys["A"] == defense.keys["B"]


class TestVTintMechanism:
    def test_range_checks_inserted(self, module):
        defense = VTintBaseline()
        asm = compile_to_assembly(module, hardening=[defense])
        assert defense.checks_inserted == 2
        assert "__rodata_start" in asm and "__rodata_end" in asm
        assert "bltu" in asm and "bgeu" in asm

    def test_no_roload_instructions(self, module):
        """VTint is pure software: no ISA extension used."""
        asm = compile_to_assembly(module, hardening=[VTintBaseline()])
        assert "ld.ro" not in asm

    def test_code_larger_than_vcall(self, module):
        plain = compile_to_assembly(module)
        vtint = compile_to_assembly(module, hardening=[VTintBaseline()])
        vcall = compile_to_assembly(module, hardening=[VCallProtection()])
        assert len(vtint.splitlines()) > len(vcall.splitlines()) \
            >= len(plain.splitlines())


class TestICallMechanism:
    def test_gfpts_built_per_type(self, module):
        defense = TypeBasedCFI()
        asm = compile_to_assembly(module, hardening=[defense])
        sig_key = defense.key_of_type[SIG.signature()]
        sig2_key = defense.key_of_type[SIG2.signature()]
        assert sig_key != sig2_key
        assert gfpt_symbol(sig_key) in asm
        assert gfpt_symbol(sig2_key) in asm

    def test_address_taken_rewritten_to_slots(self, module):
        defense = TypeBasedCFI()
        asm = compile_to_assembly(module, hardening=[defense])
        # 'la ... double_it' must be gone, replaced by a GFPT slot ref.
        for line in asm.splitlines():
            if line.strip().startswith("la ") and "double_it" in line:
                pytest.fail(f"raw function address survived: {line}")
        assert defense.slot_of["double_it"][0].startswith("__gfpt_")

    def test_icalls_get_ld_ro(self, module):
        defense = TypeBasedCFI()
        asm = compile_to_assembly(module, hardening=[defense])
        assert defense.icalls_transformed == 2  # the two plain icalls
        # Two GFPT derefs + two vtable-entry loads, all ld.ro.
        assert asm.count("ld.ro") == 4

    def test_unified_vtable_key(self, module):
        defense = TypeBasedCFI()
        compile_to_assembly(module, hardening=[defense])
        assert defense.vtable_key is not None
        # Both classes in the SAME keyed section (the locality trick).
        asm = compile_to_assembly(module, hardening=[TypeBasedCFI()])
        assert asm.count(
            f".section .rodata.key.{defense.vtable_key}") == 2

    def test_gfpt_slots_deterministic(self, module):
        d1, d2 = TypeBasedCFI(), TypeBasedCFI()
        compile_to_assembly(module, hardening=[d1])
        compile_to_assembly(module, hardening=[d2])
        assert d1.slot_of == d2.slot_of
        assert d1.key_of_type == d2.key_of_type


class TestLabelCFIMechanism:
    def test_ids_at_function_entries(self, module):
        defense = LabelCFIBaseline()
        asm = compile_to_assembly(module, hardening=[defense])
        assert defense.ids_inserted == 4  # four address-taken functions
        assert f"lui zero, {type_id(SIG)}" in asm
        assert f"lui zero, {type_id(SIG2)}" in asm

    def test_checks_before_icalls(self, module):
        defense = LabelCFIBaseline()
        asm = compile_to_assembly(module, hardening=[defense])
        assert defense.checks_inserted == 4  # vcalls are icalls too here
        assert "lwu" in asm

    def test_id_word_is_nop_semantics(self):
        """The ID must write x0 only (architectural nop)."""
        from repro.isa import decode
        insn = decode(id_word(SIG))
        assert insn.name == "lui" and insn.rd == 0

    def test_ids_differ_by_type(self):
        assert type_id(SIG) != type_id(SIG2)

    def test_no_roload_instructions(self, module):
        asm = compile_to_assembly(module, hardening=[LabelCFIBaseline()])
        assert "ld.ro" not in asm


class TestSharedAllocator:
    def test_vcall_and_icall_can_share_key_space(self, module):
        allocator = KeyAllocator()
        vcall = VCallProtection(allocator)
        compile_to_assembly(module, hardening=[vcall])
        icall = TypeBasedCFI(allocator)
        compile_to_assembly(module, hardening=[icall])
        vcall_keys = set(vcall.keys.values())
        icall_keys = set(icall.key_of_type.values())
        assert not vcall_keys & icall_keys
