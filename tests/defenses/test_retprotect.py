"""Tests for the automated backward-edge defense (ReturnProtection)."""

import pytest

from repro.errors import CompilerError
from repro.compiler import (
    IRBuilder,
    Module,
    compile_module,
    compile_to_assembly,
)
from repro.defenses import ReturnProtection, retsite_table_symbol
from repro.kernel import run_program


def make_module():
    """main calls leaf() from two different sites; exit = 2*leaf()+1."""
    m = Module("ret_demo")
    leaf = m.function("leaf", num_params=1)
    b = IRBuilder(leaf)
    b.ret(b.addi(b.param(0), 10))

    main = m.function("main")
    b = IRBuilder(main)
    first = b.call("leaf", [b.li(1)])    # 11
    second = b.call("leaf", [first])     # 21
    b.ret(b.addi(second, 1))             # 22
    return m


class TestFunctional:
    def test_behaviour_preserved(self):
        module = make_module()
        plain = run_program(compile_module(module))
        hardened = run_program(compile_module(
            module, hardening=[ReturnProtection(["leaf"])]))
        assert plain.exit_code == hardened.exit_code == 22

    def test_table_emitted_in_keyed_section(self):
        defense = ReturnProtection(["leaf"])
        asm = compile_to_assembly(make_module(), hardening=[defense])
        key = defense.keys["leaf"]
        assert f".section .rodata.key.{key}" in asm
        assert retsite_table_symbol("leaf") in asm
        assert len(defense.sites["leaf"]) == 2

    def test_protected_epilogue_never_uses_ret(self):
        asm = compile_to_assembly(make_module(),
                                  hardening=[ReturnProtection(["leaf"])])
        lines = asm.splitlines()
        start = lines.index("leaf:")
        end = next(i for i in range(start + 1, len(lines))
                   if lines[i] and not lines[i].startswith((" ", "\t", ".Lepilogue_leaf"))
                   and lines[i].endswith(":") and "leaf" not in lines[i])
        body = "\n".join(lines[start:end])
        assert "ld.ro" in body
        assert "jr t5" in body
        # The trusted-ra return must be gone from the protected function.
        assert "\n    ret" not in body

    def test_cookies_passed_at_call_sites(self):
        asm = compile_to_assembly(make_module(),
                                  hardening=[ReturnProtection(["leaf"])])
        assert "li t6, 0" in asm
        assert "li t6, 1" in asm


class TestConstraints:
    def test_unknown_function(self):
        with pytest.raises(CompilerError):
            compile_to_assembly(make_module(),
                                hardening=[ReturnProtection(["ghost"])])

    def test_non_leaf_rejected(self):
        m = make_module()
        with pytest.raises(CompilerError) as e:
            compile_to_assembly(m, hardening=[ReturnProtection(["main"])])
        assert "leaf" in str(e.value)

    def test_address_taken_rejected(self):
        from repro.compiler import func_type, I64
        m = Module("t")
        f = m.function("cb", func_type=func_type(ret=I64),
                       address_taken=True)
        IRBuilder(f).ret(IRBuilder(f).li(0) if False else None)
        f.ops.clear()
        b = IRBuilder(f)
        b.ret(b.li(0))
        main = m.function("main")
        b = IRBuilder(main)
        b.ret(b.call("cb"))
        with pytest.raises(CompilerError):
            compile_to_assembly(m, hardening=[ReturnProtection(["cb"])])

    def test_uncalled_function_rejected(self):
        m = Module("t")
        f = m.function("orphan")
        b = IRBuilder(f)
        b.ret(b.li(0))
        main = m.function("main")
        b = IRBuilder(main)
        b.ret(b.li(0))
        with pytest.raises(CompilerError):
            compile_to_assembly(m,
                                hardening=[ReturnProtection(["orphan"])])

    def test_empty_protect_list(self):
        with pytest.raises(CompilerError):
            ReturnProtection([])


class TestSecuritySemantics:
    def test_corrupted_cookie_stays_in_allowlist(self):
        """A forged cookie selects another legitimate return site — the
        same in-allowlist reuse residue as forward edges (§V-D)."""
        module = make_module()
        # Manually forge: make the SECOND call pass cookie 0 (site of the
        # first call). Execution returns to just after call #1 — a
        # legitimate site — so the program continues (differently), but
        # control never leaves main's code.
        from repro.compiler.ir import Call
        defense = ReturnProtection(["leaf"])
        import copy
        mutated = copy.deepcopy(module)
        defense.apply(mutated)
        calls = [op for op in mutated.functions["main"].ops
                 if isinstance(op, Call)]
        calls[1].cookie = 0
        from repro.compiler import generate_assembly
        from repro.asm import assemble, link
        from repro.compiler.pipeline import RUNTIME_ASM
        asm = generate_assembly(mutated)
        image = link([assemble(asm), assemble(RUNTIME_ASM)])
        # Returning to site 0 after call 2 flows back into call 2: a
        # legitimate-code infinite loop. That IS the security property —
        # the reused pointee keeps control inside the allowlisted return
        # sites (no hijack, no ROLoad fault), even if the program now
        # misbehaves. Accept either termination or budget exhaustion.
        from repro.errors import SimulationError
        try:
            process = run_program(image, max_instructions=200_000)
            assert process.state.value in ("exited", "killed")
        except SimulationError:
            pass  # looping forever inside legitimate code

    def test_out_of_table_cookie_faults(self):
        """A cookie past the table's keyed page cannot be used: the load
        leaves the allowlist page and the ROLoad check fires."""
        module = make_module()
        from repro.compiler.ir import Call
        defense = ReturnProtection(["leaf"])
        import copy
        mutated = copy.deepcopy(module)
        defense.apply(mutated)
        calls = [op for op in mutated.functions["main"].ops
                 if isinstance(op, Call)]
        calls[0].cookie = 4096 // 8  # first slot of the NEXT page
        from repro.compiler import generate_assembly
        from repro.asm import assemble, link
        from repro.compiler.pipeline import RUNTIME_ASM
        asm = generate_assembly(mutated)
        image = link([assemble(asm), assemble(RUNTIME_ASM)])
        process = run_program(image, max_instructions=1_000_000)
        assert process.state.value == "killed"
        assert process.signal.roload or process.signal.number == 11
