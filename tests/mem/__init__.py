"""Test package."""
