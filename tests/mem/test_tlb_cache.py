"""Tests for the TLB and the timing cache models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.mem import TLB, Cache, TLBEntry


def entry(ppn=1, key=0, writable=False):
    return TLBEntry(ppn=ppn, readable=True, writable=writable,
                    executable=False, user=True, key=key)


class TestTLB:
    def test_miss_then_hit(self):
        tlb = TLB(4)
        assert tlb.lookup(5) is None
        tlb.insert(5, entry(ppn=9, key=3))
        hit = tlb.lookup(5)
        assert hit is not None and hit.ppn == 9 and hit.key == 3
        assert tlb.hits == 1 and tlb.misses == 1

    def test_capacity_eviction_lru(self):
        tlb = TLB(2)
        tlb.insert(1, entry())
        tlb.insert(2, entry())
        tlb.lookup(1)           # 1 is now MRU
        tlb.insert(3, entry())  # evicts 2
        assert tlb.lookup(2) is None
        assert tlb.lookup(1) is not None
        assert tlb.lookup(3) is not None

    def test_flush(self):
        tlb = TLB(4)
        tlb.insert(1, entry())
        tlb.flush()
        assert len(tlb) == 0
        assert tlb.flushes == 1
        assert tlb.lookup(1) is None

    def test_flush_page(self):
        tlb = TLB(4)
        tlb.insert(1, entry())
        tlb.insert(2, entry())
        tlb.flush_page(1)
        assert tlb.lookup(1) is None
        assert tlb.lookup(2) is not None

    def test_reinsert_updates(self):
        tlb = TLB(4)
        tlb.insert(1, entry(key=1))
        tlb.insert(1, entry(key=2))
        assert tlb.lookup(1).key == 2
        assert len(tlb) == 1

    def test_bad_capacity(self):
        with pytest.raises(ConfigError):
            TLB(0)

    def test_hit_rate(self):
        tlb = TLB(4)
        tlb.lookup(1)
        tlb.insert(1, entry())
        tlb.lookup(1)
        assert tlb.hit_rate == pytest.approx(0.5)

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=200),
           st.integers(min_value=1, max_value=32))
    def test_never_exceeds_capacity(self, refs, capacity):
        tlb = TLB(capacity)
        for vpn in refs:
            if tlb.lookup(vpn) is None:
                tlb.insert(vpn, entry(ppn=vpn))
            assert len(tlb) <= capacity

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1,
                    max_size=100))
    def test_within_capacity_never_misses_twice(self, refs):
        """With a working set <= capacity, each vpn misses at most once."""
        tlb = TLB(8)
        missed = set()
        for vpn in refs:
            if tlb.lookup(vpn) is None:
                assert vpn not in missed, "second miss within capacity"
                missed.add(vpn)
                tlb.insert(vpn, entry(ppn=vpn))


class TestCache:
    def test_config_table2(self):
        cache = Cache(size=32 * 1024, ways=8, line_size=64)
        assert cache.num_sets == 64

    def test_miss_then_hit_same_line(self):
        cache = Cache()
        assert not cache.access(0x1000)
        assert cache.access(0x1004)  # same 64B line
        assert not cache.access(0x1040)  # next line

    def test_eviction_within_set(self):
        cache = Cache(size=2 * 64, ways=2, line_size=64)  # 1 set, 2 ways
        cache.access(0x0000)
        cache.access(0x1000)
        cache.access(0x0000)       # MRU: 0x0000
        cache.access(0x2000)       # evicts 0x1000
        assert not cache.access(0x1000)

    def test_flush(self):
        cache = Cache()
        cache.access(0x1000)
        cache.flush()
        assert not cache.access(0x1000)

    def test_invalid_configs(self):
        with pytest.raises(ConfigError):
            Cache(size=1000, ways=3, line_size=64)
        with pytest.raises(ConfigError):
            Cache(size=0)
        with pytest.raises(ConfigError):
            Cache(size=1024, ways=1, line_size=48)

    def test_stats_reset(self):
        cache = Cache()
        cache.access(0x0)
        cache.access(0x0)
        assert cache.hits == 1 and cache.misses == 1
        cache.reset_stats()
        assert cache.hits == 0 and cache.misses == 0

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=1,
                    max_size=300))
    def test_occupancy_bounded(self, addrs):
        cache = Cache(size=1024, ways=2, line_size=64)
        for addr in addrs:
            cache.access(addr)
        for ways in cache._sets:
            assert len(ways) <= cache.ways

    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=0xFFFFF))
    def test_repeat_access_hits(self, addr):
        cache = Cache()
        cache.access(addr)
        assert cache.access(addr)
