"""The MMU's verify-on-hit walk memo must never serve a stale PTE.

The memo (src/repro/mem/mmu.py) caches completed page-table walks
host-side so a TLB miss can skip re-walking — but only after re-reading
the 8-byte leaf PTE and checking it is bit-identical to the word the
walk saw. These tests pin the two kernel-side mutations that must
defeat it: an mprotect-style permission rewrite (followed by the usual
generation bump) and a direct leaf-PTE rewrite in physical memory. In
both cases the next translation must observe the new PTE, and the
architectural walk counters must be exactly what a memo-less MMU would
have charged — on the bare MMU and through every interpreter tier.
"""

import pytest

from repro.cpu import Core, TimingModel
from repro.cpu.trap import Cause
from repro.isa import Instruction, encode
from repro.isa.opcodes import MemOp
from repro.mem import (
    MMU,
    FrameAllocator,
    PageFault,
    PageTableBuilder,
    PhysicalMemory,
)
from repro.mem.pte import make_leaf


@pytest.fixture()
def setup():
    mem = PhysicalMemory(64 << 20)
    builder = PageTableBuilder(mem, FrameAllocator(1 << 20, 32 << 20))
    mmu = MMU(mem)
    mmu.set_root(builder.root_ppn)
    return mem, builder, mmu


def spy_walker(mmu):
    """Count real page-table walks without disturbing their results."""
    calls = []
    real = mmu.walker.walk
    mmu.walker.walk = lambda *a: (calls.append(a), real(*a))[1]
    return calls


# -- unit level: the memo itself ---------------------------------------------

def test_memo_replays_walk_without_rewalking(setup):
    __, builder, mmu = setup
    builder.map_page(0x5000, 0x300000, readable=True)
    mmu.flush()
    walks = spy_walker(mmu)
    first = mmu.translate(0x5000, MemOp.READ)
    assert len(walks) == 1 and mmu.stats.walks == 1
    mmu.flush()  # sfence: TLBs drop, the host-side memo survives
    assert 0x5 in mmu._walk_memo
    second = mmu.translate(0x5000, MemOp.READ)
    # The memo replayed the walk: no new walker activity, but the
    # architectural walk and its access count charged exactly as before.
    assert len(walks) == 1
    assert mmu.stats.walks == 2
    assert second.walk_accesses == first.walk_accesses
    assert second.paddr == first.paddr


def test_mprotect_rewrite_invalidates_memo(setup):
    __, builder, mmu = setup
    builder.map_page(0x5000, 0x300000, readable=True, writable=True)
    mmu.flush()
    mmu.translate(0x5000, MemOp.WRITE)
    walks = spy_walker(mmu)
    # mprotect core: rewrite the leaf's permission bits, then sfence.
    builder.set_protection(0x5000, writable=False)
    mmu.flush()
    assert 0x5 in mmu._walk_memo  # still memoized — verify must catch it
    with pytest.raises(PageFault):
        mmu.translate(0x5000, MemOp.WRITE)
    assert len(walks) == 1  # verify failed, a real walk re-read the PTE
    mmu.flush()
    assert mmu.translate(0x5000, MemOp.READ).paddr == 0x300000


def test_direct_leaf_pte_rewrite_invalidates_memo(setup):
    mem, builder, mmu = setup
    builder.map_page(0x5000, 0x300000, readable=True)
    mmu.flush()
    assert mmu.translate(0x5000, MemOp.READ).paddr == 0x300000
    leaf = mmu.walker.walk(mmu.root_ppn, 0x5000).pte_address
    # Retarget the mapping by writing the raw PTE word — no builder, no
    # bookkeeping, just the store a kernel's remap would do.
    mem.write(leaf, 8, make_leaf(0x301000 >> 12, readable=True).pack())
    mmu.flush()
    walks = spy_walker(mmu)
    assert mmu.translate(0x5000, MemOp.READ).paddr == 0x301000
    assert len(walks) == 1  # the stale memo lost its verify race


def test_leaf_clear_faults_and_drops_memo(setup):
    mem, builder, mmu = setup
    builder.map_page(0x5000, 0x300000, readable=True)
    mmu.flush()
    mmu.translate(0x5000, MemOp.READ)
    leaf = mmu.walker.walk(mmu.root_ppn, 0x5000).pte_address
    mem.write(leaf, 8, 0)  # munmap core: the leaf goes invalid
    mmu.flush()
    with pytest.raises(PageFault):
        mmu.translate(0x5000, MemOp.READ)
    assert 0x5 not in mmu._walk_memo


# -- every tier: the fast paths ride the same memo ---------------------------

# tier name -> (fast_path, jit, tier3, tier4) for the Core constructor.
TIERS = {
    "slow": (False, False, False, False),
    "tier1": (True, False, False, False),
    "tier2": (True, True, False, False),
    "tier3": (True, True, True, False),
    "tier4": (True, True, True, True),
}

CODE_VA = 0x1000
DATA_VA = 0x10000
FRAME_A = 48 << 20
FRAME_B = (48 << 20) + 0x1000

# Three identical hot load loops separated by ebreaks, so the host can
# mutate the page tables between phases while regions are live.
_LOOP_REGS = (7, 28, 29)  # t2, t3, t4 accumulate one phase each


def _program():
    words = []
    for acc in _LOOP_REGS:
        words.append(Instruction("addi", rd=5, rs1=0, imm=40))
        words.append(Instruction("ld", rd=6, rs1=8, imm=0))
        words.append(Instruction("add", rd=acc, rs1=acc, rs2=6))
        words.append(Instruction("addi", rd=5, rs1=5, imm=-1))
        words.append(Instruction("bne", rs1=5, rs2=0, imm=-12))
        words.append(Instruction("ebreak"))
    return words


def _tier_system(tier):
    fast_path, jit, tier3, tier4 = TIERS[tier]
    mem = PhysicalMemory(64 << 20)
    builder = PageTableBuilder(mem, FrameAllocator(1 << 20, 32 << 20))
    builder.map_page(CODE_VA, CODE_VA, readable=True, executable=True)
    builder.map_page(DATA_VA, FRAME_A, readable=True, writable=True)
    mmu = MMU(mem)
    mmu.set_root(builder.root_ppn)
    mem.write(FRAME_A, 8, 1234)
    mem.write(FRAME_B, 8, 99)
    addr = CODE_VA  # identity-mapped, so PA == VA for the code page
    for insn in _program():
        mem.write(addr, 4, encode(insn))
        addr += 4
    core = Core(mem, mmu, timing=TimingModel(), fast_path=fast_path,
                jit=jit, jit_threshold=2, tier3=tier3, tier4=tier4,
                region_threshold=2)
    core.pc = CODE_VA
    core.regs[8] = DATA_VA
    return mem, builder, mmu, core


def _run_phase(core):
    traps = []
    core.run(10_000, trap_handler=lambda t: traps.append(t) and False)
    assert len(traps) == 1 and traps[0].cause == Cause.BREAKPOINT
    core.pc = traps[0].pc + 4


def test_memo_invalidation_identical_across_tiers(monkeypatch):
    """Phase 1 makes the load loop hot (a live region in tiers 3/4);
    between phases the host rewrites the data page's leaf PTE — first
    mprotect-style through the builder, then directly in physical
    memory, retargeting the frame. Every tier must observe each rewrite
    on the very next load, with bit-identical walk charges."""
    monkeypatch.setenv("REPRO_JIT_DEBUG", "1")
    results = {}
    for tier in TIERS:
        mem, builder, mmu, core = _tier_system(tier)
        _run_phase(core)  # phase 1: RW page, loads see frame A
        # Leg 1: mprotect generation bump (permission rewrite + sfence).
        builder.set_protection(DATA_VA, writable=False)
        mmu.flush()
        assert DATA_VA >> 12 in mmu._walk_memo
        _run_phase(core)  # phase 2: read-only now, loads still frame A
        # Leg 2: direct leaf-PTE rewrite retargeting the frame.
        leaf = mmu.walker.walk(mmu.root_ppn, DATA_VA).pte_address
        mem.write(leaf, 8, make_leaf(FRAME_B >> 12, readable=True).pack())
        mmu.flush()
        assert DATA_VA >> 12 in mmu._walk_memo  # stale entry still there
        _run_phase(core)  # phase 3: loads must see frame B
        if tier in ("tier3", "tier4"):
            assert core.regions_compiled >= 1
        if tier == "tier4":
            assert core.flat_regions_compiled >= 1
            assert core.tier4_retired > 0
        results[tier] = (
            tuple(core.regs[r] for r in _LOOP_REGS),
            core.instret, core.cycles,
            mmu.dtlb.hits, mmu.dtlb.misses,
            mmu.itlb.hits, mmu.itlb.misses,
            mmu.stats.walks, mmu.stats.translations,
        )
    for tier in ("tier1", "tier2", "tier3", "tier4"):
        assert results[tier] == results["slow"], tier
    sums = results["slow"][0]
    assert sums == (40 * 1234, 40 * 1234, 40 * 99)
