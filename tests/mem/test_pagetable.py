"""Tests for Sv39 page-table building and walking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageTableError
from repro.mem import (
    PAGE_SIZE,
    FrameAllocator,
    PageTableBuilder,
    PageTableWalker,
    PhysicalMemory,
)
from repro.mem.pagetable import canonical, vpn_fields


@pytest.fixture()
def env():
    mem = PhysicalMemory(64 << 20)
    alloc = FrameAllocator(1 << 20, 32 << 20)
    builder = PageTableBuilder(mem, alloc)
    walker = PageTableWalker(mem)
    return mem, alloc, builder, walker


class TestVpnFields:
    def test_split(self):
        va = (3 << 30) | (5 << 21) | (7 << 12) | 0x123
        assert vpn_fields(va) == (3, 5, 7)

    def test_canonical(self):
        assert canonical(0x0000_0000_1000)
        assert canonical((1 << 38) - 4096)
        assert not canonical(1 << 38)  # bit 38 set but not sign-extended
        assert canonical(0xFFFF_FFC0_0000_0000)  # properly sign-extended


class TestMapWalk:
    def test_simple_mapping(self, env):
        mem, alloc, builder, walker = env
        builder.map_page(0x10000, 0x200000, readable=True, writable=True)
        result = walker.walk(builder.root_ppn, 0x10ABC)
        assert result is not None
        assert result.pte.ppn == 0x200000 >> 12
        assert result.pte.readable and result.pte.writable
        assert result.level == 0
        assert result.accesses == 3  # three-level walk

    def test_unmapped_returns_none(self, env):
        __, __, builder, walker = env
        assert walker.walk(builder.root_ppn, 0xDEAD000) is None

    def test_key_preserved_through_walk(self, env):
        __, __, builder, walker = env
        builder.map_page(0x40000, 0x300000, readable=True, key=111)
        result = walker.walk(builder.root_ppn, 0x40008)
        assert result.pte.key == 111

    def test_non_canonical_walk_fails(self, env):
        __, __, builder, walker = env
        assert walker.walk(builder.root_ppn, 1 << 38) is None

    def test_unaligned_map_rejected(self, env):
        __, __, builder, __ = env
        with pytest.raises(PageTableError):
            builder.map_page(0x1001, 0x2000, readable=True)
        with pytest.raises(PageTableError):
            builder.map_page(0x1000, 0x2001, readable=True)

    def test_remap_overwrites(self, env):
        __, __, builder, walker = env
        builder.map_page(0x5000, 0x100000, readable=True)
        builder.map_page(0x5000, 0x101000, readable=True, writable=True)
        result = walker.walk(builder.root_ppn, 0x5000)
        assert result.pte.ppn == 0x101000 >> 12
        assert result.pte.writable

    def test_unmap(self, env):
        __, __, builder, walker = env
        builder.map_page(0x7000, 0x100000, readable=True)
        assert builder.unmap_page(0x7000)
        assert walker.walk(builder.root_ppn, 0x7000) is None
        assert not builder.unmap_page(0x7000)

    def test_widely_separated_addresses(self, env):
        """Mappings in different VPN[2] regions need distinct subtrees."""
        __, __, builder, walker = env
        va1 = 0x0000_0000_1000
        va2 = 0x0020_0000_0000  # different VPN[2]
        builder.map_page(va1, 0x100000, readable=True, key=1)
        builder.map_page(va2, 0x101000, readable=True, key=2)
        assert walker.walk(builder.root_ppn, va1).pte.key == 1
        assert walker.walk(builder.root_ppn, va2).pte.key == 2


class TestProtection:
    def test_set_protection_changes_key(self, env):
        __, __, builder, walker = env
        builder.map_page(0x9000, 0x100000, readable=True, writable=True)
        builder.set_protection(0x9000, writable=False, key=42)
        pte = walker.walk(builder.root_ppn, 0x9000).pte
        assert not pte.writable
        assert pte.key == 42
        assert pte.is_read_only

    def test_set_protection_keeps_unspecified_fields(self, env):
        __, __, builder, __ = env
        builder.map_page(0xA000, 0x100000, readable=True, executable=True,
                         key=7)
        builder.set_protection(0xA000, key=9)
        pte = builder.lookup(0xA000)
        assert pte.readable and pte.executable and pte.key == 9

    def test_set_protection_unmapped_raises(self, env):
        __, __, builder, __ = env
        with pytest.raises(PageTableError):
            builder.set_protection(0xB000, key=1)

    def test_reserved_combination_rejected(self, env):
        __, __, builder, __ = env
        builder.map_page(0xC000, 0x100000, readable=True, writable=True)
        with pytest.raises(PageTableError):
            builder.set_protection(0xC000, readable=False)


class TestLookupAndIteration:
    def test_lookup_offsets_within_page(self, env):
        __, __, builder, __ = env
        builder.map_page(0xD000, 0x100000, readable=True)
        assert builder.lookup(0xD123) is not None
        assert builder.lookup(0xE000) is None

    def test_mappings_iteration(self, env):
        __, __, builder, __ = env
        vas = [0x1000, 0x2000, 0x200000, 0x40000000]
        for i, va in enumerate(vas):
            builder.map_page(va, 0x100000 + i * PAGE_SIZE, readable=True)
        found = dict(builder.mappings())
        assert set(found) == set(vas)


class TestFrameAllocator:
    def test_alloc_distinct(self):
        alloc = FrameAllocator(0x1000, 0x4000)
        frames = {alloc.alloc() for _ in range(3)}
        assert len(frames) == 3

    def test_exhaustion(self):
        alloc = FrameAllocator(0x1000, 0x3000)
        alloc.alloc()
        alloc.alloc()
        with pytest.raises(PageTableError):
            alloc.alloc()

    def test_accounting(self):
        alloc = FrameAllocator(0x1000, 0x10000)
        alloc.alloc()
        alloc.alloc()
        assert alloc.bytes_allocated == 2 * PAGE_SIZE

    def test_alignment_required(self):
        with pytest.raises(PageTableError):
            FrameAllocator(0x1001, 0x4000)


class TestWalkAgainstOracle:
    """Property: the walker agrees with a flat dict oracle of mappings."""

    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=(1 << 26) - 1),
                  st.integers(min_value=0, max_value=1023),
                  st.booleans()),
        min_size=1, max_size=20, unique_by=lambda t: t[0]))
    def test_walker_matches_oracle(self, mappings):
        mem = PhysicalMemory(256 << 20)
        alloc = FrameAllocator(1 << 20, 128 << 20)
        builder = PageTableBuilder(mem, alloc)
        walker = PageTableWalker(mem)
        oracle = {}
        frame = 0x8000000
        for page_index, key, writable in mappings:
            va = page_index << 12
            builder.map_page(va, frame, readable=True, writable=writable,
                             key=key)
            oracle[va] = (frame >> 12, key, writable)
            frame += PAGE_SIZE
        for va, (ppn, key, writable) in oracle.items():
            result = walker.walk(builder.root_ppn, va + 0x7)
            assert result is not None
            assert result.pte.ppn == ppn
            assert result.pte.key == key
            assert result.pte.writable == writable
        # A page just past each mapping must not resolve unless also mapped.
        for va in oracle:
            neighbour = va + PAGE_SIZE
            if neighbour not in oracle:
                assert walker.walk(builder.root_ppn, neighbour) is None
