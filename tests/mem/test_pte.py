"""Tests for PTE packing, including the key in the reserved top 10 bits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PageTableError
from repro.isa.opcodes import KEY_MAX
from repro.mem.pte import (
    KEY_SHIFT,
    PTE,
    PTE_R,
    PTE_V,
    PTE_W,
    make_leaf,
    make_table_pointer,
)


class TestPacking:
    def test_key_lands_in_top_bits(self):
        pte = make_leaf(0x1234, readable=True, key=0x2AB)
        word = pte.pack()
        assert (word >> KEY_SHIFT) & 0x3FF == 0x2AB
        # Key must not clobber the PPN.
        assert (word >> 10) & ((1 << 44) - 1) == 0x1234

    def test_unpack_key(self):
        word = (0x155 << KEY_SHIFT) | (0x42 << 10) | PTE_V | PTE_R
        pte = PTE.unpack(word)
        assert pte.key == 0x155
        assert pte.ppn == 0x42
        assert pte.valid and pte.readable and not pte.writable

    def test_key_range_enforced(self):
        with pytest.raises(PageTableError):
            PTE(ppn=0, valid=True, key=KEY_MAX + 1).pack()

    def test_ppn_range_enforced(self):
        with pytest.raises(PageTableError):
            PTE(ppn=1 << 44, valid=True).pack()

    @given(st.integers(min_value=0, max_value=(1 << 44) - 1),
           st.integers(min_value=0, max_value=KEY_MAX),
           st.booleans(), st.booleans(), st.booleans(), st.booleans())
    def test_pack_unpack_roundtrip(self, ppn, key, r, x, u, g):
        pte = PTE(ppn=ppn, valid=True, readable=r, writable=False,
                  executable=x, user=u, global_=g, accessed=True,
                  dirty=False, key=key)
        assert PTE.unpack(pte.pack()) == pte


class TestLeafSemantics:
    def test_is_leaf(self):
        assert make_leaf(1, readable=True).is_leaf
        assert not make_table_pointer(1).is_leaf

    def test_is_read_only(self):
        assert make_leaf(1, readable=True).is_read_only
        assert not make_leaf(1, readable=True, writable=True).is_read_only
        assert not PTE(ppn=1, valid=True).is_read_only

    def test_reserved_combination_rejected(self):
        with pytest.raises(PageTableError):
            make_leaf(1, writable=True)  # W without R is reserved

    def test_writable_leaf_is_dirty(self):
        pte = make_leaf(1, readable=True, writable=True)
        assert pte.dirty

    def test_flag_bits_positions(self):
        word = make_leaf(0, readable=True, writable=True).pack()
        assert word & PTE_V
        assert word & PTE_R
        assert word & PTE_W
