"""Tests for the MMU's parallel permission + ROLoad key check.

This is the paper's central hardware contribution; the table below mirrors
its semantics:

    memop     page state                         outcome
    READ      readable                           OK
    READ_RO   read-only, key match               OK (behaves like READ)
    READ_RO   read-only, key mismatch            page fault (ROLoad)
    READ_RO   writable page                      page fault (ROLoad)
    READ_RO   unreadable/unmapped                page fault (ROLoad)
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.opcodes import KEY_MAX, MemOp
from repro.mem import (
    MMU,
    FrameAllocator,
    PageFault,
    PageTableBuilder,
    PhysicalMemory,
    ROLoadFailure,
)


@pytest.fixture()
def setup():
    mem = PhysicalMemory(64 << 20)
    alloc = FrameAllocator(1 << 20, 32 << 20)
    builder = PageTableBuilder(mem, alloc)
    mmu = MMU(mem)
    mmu.set_root(builder.root_ppn)
    return mem, builder, mmu


def map_ro(builder, mmu, va, pa, key):
    builder.map_page(va, pa, readable=True, key=key)
    mmu.flush()


class TestNormalTranslation:
    def test_read_write_exec(self, setup):
        __, builder, mmu = setup
        builder.map_page(0x1000, 0x200000, readable=True, writable=True)
        builder.map_page(0x2000, 0x201000, readable=True, executable=True)
        mmu.flush()
        assert mmu.translate(0x1008, MemOp.READ).paddr == 0x200008
        assert mmu.translate(0x1008, MemOp.WRITE).paddr == 0x200008
        assert mmu.translate(0x2004, MemOp.FETCH).paddr == 0x201004

    def test_write_to_readonly_faults(self, setup):
        __, builder, mmu = setup
        map_ro(builder, mmu, 0x1000, 0x200000, key=0)
        with pytest.raises(PageFault) as e:
            mmu.translate(0x1000, MemOp.WRITE)
        assert not e.value.roload
        assert e.value.scause == 15

    def test_exec_nonexec_faults(self, setup):
        __, builder, mmu = setup
        builder.map_page(0x1000, 0x200000, readable=True, writable=True)
        mmu.flush()
        with pytest.raises(PageFault) as e:
            mmu.translate(0x1000, MemOp.FETCH)
        assert e.value.scause == 12

    def test_unmapped_faults(self, setup):
        __, __, mmu = setup
        with pytest.raises(PageFault) as e:
            mmu.translate(0xDEAD000, MemOp.READ)
        assert e.value.scause == 13

    def test_user_bit_enforced(self, setup):
        __, builder, mmu = setup
        builder.map_page(0x1000, 0x200000, readable=True, user=False)
        mmu.flush()
        with pytest.raises(PageFault):
            mmu.translate(0x1000, MemOp.READ)

    def test_bare_mode_identity(self):
        mmu = MMU(PhysicalMemory(1 << 20))
        assert mmu.translate(0x1234, MemOp.READ).paddr == 0x1234

    def test_tlb_caches_translation(self, setup):
        __, builder, mmu = setup
        map_ro(builder, mmu, 0x1000, 0x200000, key=0)
        first = mmu.translate(0x1000, MemOp.READ)
        second = mmu.translate(0x1000, MemOp.READ)
        assert not first.tlb_hit and second.tlb_hit
        assert first.walk_accesses == 3 and second.walk_accesses == 0


class TestROLoadCheck:
    def test_success_on_matching_readonly(self, setup):
        __, builder, mmu = setup
        map_ro(builder, mmu, 0x1000, 0x200000, key=111)
        result = mmu.translate(0x1008, MemOp.READ_RO, insn_key=111)
        assert result.paddr == 0x200008
        assert mmu.stats.roload_checks == 1
        assert mmu.stats.roload_faults == 0

    def test_key_mismatch_faults(self, setup):
        __, builder, mmu = setup
        map_ro(builder, mmu, 0x1000, 0x200000, key=111)
        with pytest.raises(PageFault) as e:
            mmu.translate(0x1000, MemOp.READ_RO, insn_key=222)
        fault = e.value
        assert fault.roload
        assert fault.reason is ROLoadFailure.KEY_MISMATCH
        assert fault.insn_key == 222 and fault.page_key == 111
        assert fault.scause == 13  # still a load page fault

    def test_writable_page_faults(self, setup):
        """Pointee integrity: data in writable pages is never trusted."""
        __, builder, mmu = setup
        builder.map_page(0x1000, 0x200000, readable=True, writable=True,
                         key=111)
        mmu.flush()
        with pytest.raises(PageFault) as e:
            mmu.translate(0x1000, MemOp.READ_RO, insn_key=111)
        assert e.value.reason is ROLoadFailure.NOT_READ_ONLY

    def test_unmapped_faults_as_roload(self, setup):
        __, __, mmu = setup
        with pytest.raises(PageFault) as e:
            mmu.translate(0xBEEF000, MemOp.READ_RO, insn_key=1)
        assert e.value.roload
        assert e.value.reason is ROLoadFailure.NOT_PRESENT

    def test_normal_read_ignores_key(self, setup):
        """Regular loads must be able to read keyed pages — backward
        compatibility (§V-B: unmodified binaries run unchanged)."""
        __, builder, mmu = setup
        map_ro(builder, mmu, 0x1000, 0x200000, key=999)
        assert mmu.translate(0x1000, MemOp.READ).paddr == 0x200000

    def test_key_zero_default(self, setup):
        __, builder, mmu = setup
        map_ro(builder, mmu, 0x1000, 0x200000, key=0)
        assert mmu.translate(0x1000, MemOp.READ_RO, insn_key=0).paddr == \
            0x200000

    def test_roload_disabled_hardware_skips_check(self, setup):
        """Baseline processor: MMU has no key logic at all."""
        mem, builder, __ = setup
        mmu = MMU(mem, roload_enabled=False)
        mmu.set_root(builder.root_ppn)
        builder.map_page(0x1000, 0x200000, readable=True, writable=True,
                         key=5)
        # Even a writable page passes: the check logic does not exist.
        assert mmu.translate(0x1000, MemOp.READ_RO, insn_key=9).paddr == \
            0x200000
        assert mmu.stats.roload_checks == 0

    def test_mprotect_key_change_visible_after_flush(self, setup):
        """The kernel changes a key via mprotect; after sfence.vma the new
        key takes effect (and the stale TLB entry is gone)."""
        __, builder, mmu = setup
        map_ro(builder, mmu, 0x1000, 0x200000, key=1)
        assert mmu.translate(0x1000, MemOp.READ_RO, insn_key=1)
        builder.set_protection(0x1000, key=2)
        mmu.flush()
        with pytest.raises(PageFault):
            mmu.translate(0x1000, MemOp.READ_RO, insn_key=1)
        assert mmu.translate(0x1000, MemOp.READ_RO, insn_key=2)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=KEY_MAX),
           st.integers(min_value=0, max_value=KEY_MAX),
           st.booleans())
    def test_roload_success_iff_readonly_and_key_match(
            self, page_key, insn_key, writable):
        """The paper's invariant, as a property: ld.ro succeeds exactly when
        the page is read-only and keys agree."""
        mem = PhysicalMemory(64 << 20)
        alloc = FrameAllocator(1 << 20, 32 << 20)
        builder = PageTableBuilder(mem, alloc)
        mmu = MMU(mem)
        mmu.set_root(builder.root_ppn)
        builder.map_page(0x1000, 0x200000, readable=True, writable=writable,
                         key=page_key)
        should_succeed = (not writable) and page_key == insn_key
        try:
            mmu.translate(0x1000, MemOp.READ_RO, insn_key=insn_key)
            succeeded = True
        except PageFault as fault:
            succeeded = False
            assert fault.roload
        assert succeeded == should_succeed


class TestStatsAndProbe:
    def test_probe_no_side_effects(self, setup):
        __, builder, mmu = setup
        map_ro(builder, mmu, 0x1000, 0x200000, key=3)
        before = mmu.dtlb.misses
        pte = mmu.probe(0x1000)
        assert pte.key == 3
        assert mmu.dtlb.misses == before

    def test_stats_reset(self, setup):
        __, builder, mmu = setup
        map_ro(builder, mmu, 0x1000, 0x200000, key=1)
        mmu.translate(0x1000, MemOp.READ_RO, insn_key=1)
        mmu.stats.reset()
        assert mmu.stats.roload_checks == 0
        assert mmu.stats.translations == 0
