"""Tests for the sparse physical memory model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MemoryError_
from repro.mem import PAGE_SIZE, PhysicalMemory


class TestScalarAccess:
    def test_zero_initialised(self):
        mem = PhysicalMemory(1 << 20)
        assert mem.read(0x1234, 8) == 0

    def test_write_read_roundtrip(self):
        mem = PhysicalMemory(1 << 20)
        mem.write(0x100, 8, 0xDEADBEEF_CAFEF00D)
        assert mem.read(0x100, 8) == 0xDEADBEEF_CAFEF00D

    def test_little_endian(self):
        mem = PhysicalMemory(1 << 20)
        mem.write(0x0, 4, 0x11223344)
        assert mem.read(0x0, 1) == 0x44
        assert mem.read(0x3, 1) == 0x11

    def test_value_truncation(self):
        mem = PhysicalMemory(1 << 20)
        mem.write(0x0, 1, 0x1FF)
        assert mem.read(0x0, 1) == 0xFF

    def test_cross_page_access(self):
        mem = PhysicalMemory(1 << 20)
        addr = PAGE_SIZE - 4
        mem.write(addr, 8, 0x1122334455667788)
        assert mem.read(addr, 8) == 0x1122334455667788

    def test_out_of_range(self):
        mem = PhysicalMemory(1 << 20)
        with pytest.raises(MemoryError_):
            mem.read((1 << 20) - 4, 8)
        with pytest.raises(MemoryError_):
            mem.write(1 << 20, 1, 0)

    def test_bad_size_constructor(self):
        with pytest.raises(MemoryError_):
            PhysicalMemory(100)
        with pytest.raises(MemoryError_):
            PhysicalMemory(0)

    @given(st.integers(min_value=0, max_value=(1 << 20) - 8),
           st.sampled_from([1, 2, 4, 8]),
           st.integers(min_value=0))
    def test_read_after_write_property(self, addr, size, value):
        mem = PhysicalMemory(1 << 20)
        truncated = value & ((1 << (8 * size)) - 1)
        mem.write(addr, size, value)
        assert mem.read(addr, size) == truncated


class TestBulkAccess:
    def test_bytes_roundtrip_spanning_frames(self):
        mem = PhysicalMemory(1 << 20)
        data = bytes(range(256)) * 40  # > 2 pages
        mem.write_bytes(PAGE_SIZE - 100, data)
        assert mem.read_bytes(PAGE_SIZE - 100, len(data)) == data

    def test_read_unallocated_returns_zeroes(self):
        mem = PhysicalMemory(1 << 20)
        assert mem.read_bytes(0x5000, 64) == bytes(64)

    def test_fill(self):
        mem = PhysicalMemory(1 << 20)
        mem.fill(0x2000, 32, 0xAB)
        assert mem.read_bytes(0x2000, 32) == b"\xab" * 32

    def test_frame_accounting(self):
        mem = PhysicalMemory(1 << 20)
        assert mem.frame_count() == 0
        mem.write(0, 1, 1)
        mem.write(PAGE_SIZE * 3, 1, 1)
        assert mem.frame_count() == 2
        mem.read(PAGE_SIZE * 7, 8)  # reads do not allocate
        assert mem.frame_count() == 2

    @given(st.binary(min_size=1, max_size=3 * PAGE_SIZE),
           st.integers(min_value=0, max_value=PAGE_SIZE * 4))
    def test_bulk_roundtrip_property(self, data, addr):
        mem = PhysicalMemory(1 << 20)
        mem.write_bytes(addr, data)
        assert mem.read_bytes(addr, len(data)) == data
