"""Failure injection: malformed page tables, stale TLBs, resource
exhaustion — each must fail precisely, never silently."""

import pytest

from repro.errors import KernelError, LoaderError, PageTableError
from repro.isa.opcodes import MemOp
from repro.mem import (
    MMU,
    PAGE_SIZE,
    FrameAllocator,
    PageFault,
    PageTableBuilder,
    PhysicalMemory,
)
from repro.mem.pte import PTE, make_leaf, make_table_pointer


@pytest.fixture()
def env():
    memory = PhysicalMemory(64 << 20)
    allocator = FrameAllocator(1 << 20, 16 << 20)
    builder = PageTableBuilder(memory, allocator)
    mmu = MMU(memory)
    mmu.set_root(builder.root_ppn)
    return memory, builder, mmu


class TestCorruptedPageTables:
    def test_reserved_w_not_r_pte_faults_reads(self, env):
        """A hand-corrupted PTE with W=1,R=0 (reserved) must not grant
        read access."""
        memory, builder, mmu = env
        builder.map_page(0x1000, 0x400000, readable=True)
        leaf_addr = builder._leaf_address(0x1000, create=False)
        pte = PTE.unpack(memory.read(leaf_addr, 8))
        pte.readable = False
        pte.writable = True
        # pack() would reject this; write the raw bits like an attacker
        # with kernel-memory corruption would.
        raw = pte.ppn << 10 | 0b0000101  # V + W, no R
        memory.write(leaf_addr, 8, raw)
        mmu.flush()
        with pytest.raises(PageFault):
            mmu.translate(0x1000, MemOp.READ)
        with pytest.raises(PageFault):
            mmu.translate(0x1000, MemOp.READ_RO, insn_key=0)

    def test_loop_in_page_table_terminates(self, env):
        """A table pointer cycling back to the root must not hang the
        walker (it bottoms out at level 0 without a leaf)."""
        memory, builder, mmu = env
        root = builder.root
        self_ref = make_table_pointer(root >> 12).pack()
        memory.write(root + 0 * 8, 8, self_ref)
        mmu.flush()
        with pytest.raises(PageFault):
            mmu.translate(0x0, MemOp.READ)

    def test_superpage_leaf_rejected(self, env):
        """Leaf at a non-terminal level (superpage) is unsupported and
        must fault rather than mistranslate."""
        memory, builder, mmu = env
        root = builder.root
        leaf = make_leaf(0x400, readable=True).pack()
        memory.write(root + 1 * 8, 8, leaf)  # VPN[2]=1 leaf at level 2
        mmu.flush()
        with pytest.raises(PageFault):
            mmu.translate(1 << 30, MemOp.READ)

    def test_garbage_pte_bits_do_not_crash(self, env):
        memory, builder, mmu = env
        builder.map_page(0x1000, 0x400000, readable=True)
        leaf_addr = builder._leaf_address(0x1000, create=False)
        memory.write(leaf_addr, 8, 0xFFFF_FFFF_FFFF_FFFE)  # V=0, junk
        mmu.flush()
        with pytest.raises(PageFault):
            mmu.translate(0x1000, MemOp.READ)


class TestTLBStaleness:
    def test_unmap_without_flush_keeps_stale_translation(self, env):
        """Architecturally faithful: dropping a mapping without
        sfence.vma leaves the stale TLB entry live."""
        __, builder, mmu = env
        builder.map_page(0x1000, 0x400000, readable=True)
        mmu.flush()
        assert mmu.translate(0x1000, MemOp.READ).paddr == 0x400000
        builder.unmap_page(0x1000)
        # Stale hit:
        assert mmu.translate(0x1000, MemOp.READ).paddr == 0x400000
        mmu.flush()
        with pytest.raises(PageFault):
            mmu.translate(0x1000, MemOp.READ)

    def test_flush_page_is_targeted(self, env):
        __, builder, mmu = env
        builder.map_page(0x1000, 0x400000, readable=True)
        builder.map_page(0x2000, 0x401000, readable=True)
        mmu.translate(0x1000, MemOp.READ)
        mmu.translate(0x2000, MemOp.READ)
        builder.set_protection(0x1000, key=9)
        mmu.flush_page(0x1000)
        # 0x1000 re-walks (sees key 9); 0x2000's entry survived.
        result = mmu.translate(0x1000, MemOp.READ_RO, insn_key=9)
        assert not result.tlb_hit
        assert mmu.translate(0x2000, MemOp.READ).tlb_hit

    def test_key_downgrade_attack_needs_flush(self, env):
        """If a (compromised) kernel path changed a page key without
        flushing, the OLD key keeps being enforced until sfence — the
        TLB is the authority the hardware consults."""
        __, builder, mmu = env
        builder.map_page(0x1000, 0x400000, readable=True, key=5)
        mmu.flush()
        assert mmu.translate(0x1000, MemOp.READ_RO, insn_key=5)
        builder.set_protection(0x1000, key=7)
        # No flush: old key still active.
        assert mmu.translate(0x1000, MemOp.READ_RO, insn_key=5)
        with pytest.raises(PageFault):
            mmu.translate(0x1000, MemOp.READ_RO, insn_key=7)


class TestResourceExhaustion:
    def test_frame_pool_exhaustion_is_loud(self):
        memory = PhysicalMemory(64 << 20)
        allocator = FrameAllocator(1 << 20, (1 << 20) + 4 * PAGE_SIZE)
        builder = PageTableBuilder(memory, allocator)  # uses 1 frame
        with pytest.raises(PageTableError):
            # Spread across VPN[1] regions so every mapping needs a fresh
            # level-0 table frame.
            for region in range(100):
                builder.map_page(region * (2 << 20),
                                 0x400000 + region * PAGE_SIZE,
                                 readable=True)

    def test_kernel_surfaces_loader_errors(self):
        from repro.asm import Executable, Segment
        from repro.kernel import Kernel
        from repro.soc import build_system
        bad = Executable(entry=0x1001, segments=[
            Segment(vaddr=0x1001, data=b"\0" * 16, memsize=16,
                    readable=True, executable=True, name="misaligned")])
        kernel = Kernel(build_system(memory_size=64 << 20))
        with pytest.raises(LoaderError):
            kernel.create_process(bad)

    def test_keyed_writable_segment_rejected_at_load(self):
        from repro.asm import Executable, Segment
        from repro.kernel import Kernel
        from repro.soc import build_system
        bad = Executable(entry=0x1000, segments=[
            Segment(vaddr=0x1000, data=b"\0" * 16, memsize=PAGE_SIZE,
                    readable=True, executable=True, name=".text"),
            Segment(vaddr=0x2000, data=b"", memsize=PAGE_SIZE,
                    readable=True, writable=True, key=9, name="evil")])
        kernel = Kernel(build_system(memory_size=64 << 20))
        with pytest.raises(LoaderError):
            kernel.create_process(bad)


class TestAllowlistMisuse:
    def test_empty_allowlist_rejected(self):
        from repro.compiler import Module
        from repro.defenses import KeyedAllowlist
        from repro.errors import CompilerError
        allowlist = KeyedAllowlist(Module("m"), "empty")
        with pytest.raises(CompilerError):
            allowlist.seal()

    def test_add_after_seal_rejected(self):
        from repro.compiler import GlobalVar, Module
        from repro.defenses import KeyedAllowlist
        from repro.errors import CompilerError
        module = Module("m")
        module.global_var(GlobalVar("x", init=[1]))
        allowlist = KeyedAllowlist(module, "a")
        allowlist.add_symbol("x")
        allowlist.seal()
        with pytest.raises(CompilerError):
            allowlist.add_value(5)

    def test_double_seal_rejected(self):
        from repro.compiler import GlobalVar, Module
        from repro.defenses import KeyedAllowlist
        from repro.errors import CompilerError
        module = Module("m")
        module.global_var(GlobalVar("x", init=[1]))
        allowlist = KeyedAllowlist(module, "a")
        allowlist.add_symbol("x")
        allowlist.seal()
        with pytest.raises(CompilerError):
            allowlist.seal()
