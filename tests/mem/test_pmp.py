"""Tests for the keyed-PMP (MMU-less / IoT) backend."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.isa.opcodes import KEY_MAX, MemOp
from repro.mem import KeyedPMP, PageFault, PMPRegion, ROLoadFailure


def make_pmp():
    return KeyedPMP([
        PMPRegion(0x0000, 0x1000, readable=True, executable=True),   # code
        PMPRegion(0x1000, 0x1000, readable=True, key=7),             # table
        PMPRegion(0x2000, 0x1000, readable=True, writable=True),     # data
    ])


class TestRegions:
    def test_first_match_wins(self):
        pmp = KeyedPMP([
            PMPRegion(0x0, 0x2000, readable=True, key=1),
            PMPRegion(0x1000, 0x1000, readable=True, key=2),
        ])
        assert pmp.region_for(0x1800).key == 1

    def test_invalid_regions(self):
        with pytest.raises(ConfigError):
            PMPRegion(0, 0, readable=True)
        with pytest.raises(ConfigError):
            PMPRegion(0, 0x1000, writable=True)
        with pytest.raises(ConfigError):
            PMPRegion(0, 0x1000, readable=True, key=KEY_MAX + 1)


class TestChecks:
    def test_normal_ops(self):
        pmp = make_pmp()
        assert pmp.translate(0x0100, MemOp.FETCH).paddr == 0x0100
        assert pmp.translate(0x1100, MemOp.READ).paddr == 0x1100
        assert pmp.translate(0x2100, MemOp.WRITE).paddr == 0x2100

    def test_write_to_readonly_faults(self):
        pmp = make_pmp()
        with pytest.raises(PageFault) as e:
            pmp.translate(0x1100, MemOp.WRITE)
        assert not e.value.roload

    def test_roload_matching(self):
        pmp = make_pmp()
        assert pmp.translate(0x1100, MemOp.READ_RO, insn_key=7).paddr == \
            0x1100

    def test_roload_key_mismatch(self):
        pmp = make_pmp()
        with pytest.raises(PageFault) as e:
            pmp.translate(0x1100, MemOp.READ_RO, insn_key=8)
        assert e.value.reason is ROLoadFailure.KEY_MISMATCH

    def test_roload_writable_region(self):
        pmp = make_pmp()
        with pytest.raises(PageFault) as e:
            pmp.translate(0x2100, MemOp.READ_RO, insn_key=0)
        assert e.value.reason is ROLoadFailure.NOT_READ_ONLY

    def test_roload_unprotected_memory_faults(self):
        """Memory outside any region is writable RAM: never a valid
        pointee source."""
        pmp = make_pmp()
        with pytest.raises(PageFault) as e:
            pmp.translate(0x9000, MemOp.READ_RO, insn_key=0)
        assert e.value.roload

    def test_default_allow_for_normal_ops(self):
        pmp = make_pmp()
        assert pmp.translate(0x9000, MemOp.READ).paddr == 0x9000
        assert pmp.translate(0x9000, MemOp.WRITE).paddr == 0x9000

    def test_default_deny(self):
        pmp = KeyedPMP([], default_allow=False)
        with pytest.raises(PageFault):
            pmp.translate(0x0, MemOp.READ)

    def test_roload_disabled(self):
        pmp = KeyedPMP([PMPRegion(0x0, 0x1000, readable=True,
                                  writable=True)], roload_enabled=False)
        assert pmp.translate(0x10, MemOp.READ_RO, insn_key=3).paddr == 0x10

    @given(st.integers(min_value=0, max_value=KEY_MAX),
           st.integers(min_value=0, max_value=KEY_MAX),
           st.booleans())
    def test_invariant_matches_mmu_semantics(self, region_key, insn_key,
                                             writable):
        """Same success predicate as the paged MMU: read-only AND key match."""
        pmp = KeyedPMP([PMPRegion(0x0, 0x1000, readable=True,
                                  writable=writable, key=region_key)])
        should_succeed = (not writable) and region_key == insn_key
        try:
            pmp.translate(0x10, MemOp.READ_RO, insn_key=insn_key)
            succeeded = True
        except PageFault:
            succeeded = False
        assert succeeded == should_succeed
