"""The unified API surface — every public name importable, every
``__all__`` honest, and the ``system_profile=`` → ``profile=`` rename
kept alive through deprecation shims."""

import warnings

import pytest

import repro
import repro.obs
import repro.replay
from repro.eval.measure import run_variant
from repro.workloads import build_workload
from repro.workloads import profile as workload_profile


@pytest.mark.parametrize("module", [repro, repro.replay, repro.obs])
def test_all_names_resolve(module):
    missing = [name for name in module.__all__
               if not hasattr(module, name)]
    assert not missing, f"{module.__name__}.__all__ lists {missing}"


def test_all_has_no_duplicates():
    for module in (repro, repro.replay, repro.obs):
        assert len(module.__all__) == len(set(module.__all__)), \
            module.__name__


def test_top_level_reexports_config_and_replay():
    assert repro.Config is __import__("repro.config",
                                      fromlist=["Config"]).Config
    assert repro.Snapshot is repro.replay.Snapshot
    assert repro.snapshot is repro.replay.snapshot
    assert repro.restore is repro.replay.restore
    for name in ("Config", "Snapshot", "snapshot", "restore"):
        assert name in repro.__all__


class TestProfileKeyword:
    @pytest.fixture(scope="class")
    def program(self):
        return build_workload(workload_profile("456.hmmer"), scale=0.02)

    def test_profile_keyword_is_canonical(self, program):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            measurement = run_variant(program, "base",
                                      profile="processor+kernel")
        assert measurement.system_profile == "processor+kernel"
        assert measurement.profile == "processor+kernel"

    def test_system_profile_keyword_warns_but_works(self, program):
        with pytest.warns(DeprecationWarning, match="system_profile"):
            measurement = run_variant(program, "base",
                                      system_profile="processor+kernel")
        assert measurement.profile == "processor+kernel"

    def test_run_benchmark_shim(self):
        from repro.eval.measure import run_benchmark
        with pytest.warns(DeprecationWarning, match="profile="):
            run = run_benchmark("456.hmmer", ("base",), scale=0.02,
                                system_profile="processor+kernel")
        assert run.measurements["base"].profile == "processor+kernel"
