"""The unified API surface — every public name importable, every
``__all__`` honest, and the ``system_profile=`` → ``profile=`` rename
kept alive through deprecation shims."""

import warnings

import pytest

import repro
import repro.fuzz
import repro.obs
import repro.replay
from repro.eval.measure import run_variant
from repro.workloads import build_workload
from repro.workloads import profile as workload_profile


@pytest.mark.parametrize("module",
                         [repro, repro.replay, repro.obs, repro.fuzz])
def test_all_names_resolve(module):
    missing = [name for name in module.__all__
               if not hasattr(module, name)]
    assert not missing, f"{module.__name__}.__all__ lists {missing}"


def test_all_has_no_duplicates():
    for module in (repro, repro.replay, repro.obs, repro.fuzz):
        assert len(module.__all__) == len(set(module.__all__)), \
            module.__name__


def test_top_level_reexports_config_and_replay():
    assert repro.Config is __import__("repro.config",
                                      fromlist=["Config"]).Config
    assert repro.Snapshot is repro.replay.Snapshot
    assert repro.snapshot is repro.replay.snapshot
    assert repro.restore is repro.replay.restore
    for name in ("Config", "Snapshot", "snapshot", "restore"):
        assert name in repro.__all__


def test_top_level_reexports_eval_model_and_fuzz():
    from repro.eval_model import (CampaignResult, DetectionTable,
                                  RunResult, Verdict)
    assert repro.Verdict is Verdict
    assert repro.RunResult is RunResult
    assert repro.DetectionTable is DetectionTable
    assert repro.CampaignResult is CampaignResult
    assert repro.Campaign is repro.fuzz.Campaign
    assert repro.Corpus is repro.fuzz.Corpus
    assert repro.Mutator is repro.fuzz.Mutator
    assert repro.FuzzInput is repro.fuzz.FuzzInput
    assert repro.VictimSpec is repro.fuzz.VictimSpec
    assert repro.run_comparison is repro.fuzz.run_comparison
    for name in ("Verdict", "RunResult", "DetectionTable",
                 "CampaignResult", "Campaign", "Corpus", "Mutator",
                 "FuzzInput", "VictimSpec", "run_comparison"):
        assert name in repro.__all__


def test_replay_exports_injection_primitives():
    assert repro.replay.apply_injection \
        is __import__("repro.replay.inject",
                      fromlist=["apply_injection"]).apply_injection
    assert repro.replay.classify_outcome is not None
    assert repro.replay.ObsCapture is not None
    for name in ("apply_injection", "classify_outcome", "ObsCapture",
                 "CampaignReport", "InjectionRecord"):
        assert name in repro.replay.__all__


class TestProfileKeyword:
    @pytest.fixture(scope="class")
    def program(self):
        return build_workload(workload_profile("456.hmmer"), scale=0.02)

    def test_profile_keyword_is_canonical(self, program):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            measurement = run_variant(program, "base",
                                      profile="processor+kernel")
        assert measurement.system_profile == "processor+kernel"
        assert measurement.profile == "processor+kernel"

    def test_system_profile_keyword_warns_but_works(self, program):
        with pytest.warns(DeprecationWarning, match="system_profile"):
            measurement = run_variant(program, "base",
                                      system_profile="processor+kernel")
        assert measurement.profile == "processor+kernel"

    def test_run_benchmark_shim(self):
        from repro.eval.measure import run_benchmark
        with pytest.warns(DeprecationWarning, match="profile="):
            run = run_benchmark("456.hmmer", ("base",), scale=0.02,
                                system_profile="processor+kernel")
        assert run.measurements["base"].profile == "processor+kernel"
