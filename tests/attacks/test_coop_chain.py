"""COOP-style chained reuse: composing the §V-D residual surface.

Counterfeit OOP (the paper's citation [1]) chains *existing* virtual
functions; under ROLoad the same idea survives only within matching-key
allowlists. This test builds a victim with a chain of indirect calls and
shows (a) the attacker can permute targets WITHIN each type's allowlist
(the whole chain still runs, attacker-chosen), and (b) any step outside
an allowlist kills the chain at exactly that step.
"""

import pytest

from repro.attacks import AttackError, MemoryCorruption
from repro.compiler import (
    GlobalVar,
    I64,
    IRBuilder,
    Module,
    compile_module,
    func_type,
)
from repro.defenses import TypeBasedCFI
from repro.kernel import Kernel
from repro.soc import build_system

SIG = func_type(I64, ret=I64)


def build_chain_victim():
    """main: x = f1(x); x = f2(x); x = f3(x) through writable slots."""
    m = Module("chain")
    for name, factor in (("step_double", 2), ("step_triple", 3),
                         ("step_inc", 1)):
        fn = m.function(name, num_params=1, func_type=SIG,
                        address_taken=True)
        b = IRBuilder(fn)
        if factor == 1:
            b.ret(b.addi(b.param(0), 1))
        else:
            b.ret(b.mul(b.param(0), b.li(factor)))
    # The "pwned" detector: a same-type function the victim never calls.
    gadget = m.function("gadget", num_params=1, func_type=SIG,
                        address_taken=True)
    b = IRBuilder(gadget)
    b.store(b.li(1), b.la("pwned"))
    b.ret(b.param(0))

    m.global_var(GlobalVar("pwned", section=".data", init=[0]))
    for index, target in enumerate(("step_double", "step_triple",
                                    "step_inc")):
        m.global_var(GlobalVar(f"slot{index}", section=".data",
                               init=[("quad", target)]))

    main = m.function("main")
    b = IRBuilder(main)
    x = b.li(2)
    for index in range(3):
        fp = b.load_fptr(b.la(f"slot{index}"), SIG)
        x = b.icall(fp, [x], func_type=SIG)
    b.ret(x)  # 2*2*3 + 1 = 13
    return m


def run_chain(corrupt):
    defense = TypeBasedCFI()
    image = compile_module(build_chain_victim(), hardening=[defense])
    kernel = Kernel(build_system(memory_size=128 << 20))
    process = kernel.create_process(image, name="chain")
    attacker = MemoryCorruption(kernel, process, image)
    corrupt(attacker, defense)
    kernel.run(process, max_instructions=2_000_000)
    pwned = bool(attacker.read_symbol("pwned")) \
        if process.state.value == "exited" else False
    return process, kernel, pwned


class TestChainedReuse:
    def test_benign_chain(self):
        process, kernel, pwned = run_chain(lambda a, d: None)
        assert process.exit_code == 13
        assert not pwned and not kernel.security_log

    def test_full_chain_permutation_within_allowlist(self):
        """The attacker rewires every step to functions of its choosing
        — all within the type's GFPT — and the whole chain executes."""
        def corrupt(attacker, defense):
            gadget_sym, gadget_idx = defense.slot_of["gadget"]
            inc_sym, inc_idx = defense.slot_of["step_inc"]
            attacker.write_symbol(
                "slot0", attacker.symbol(gadget_sym) + 8 * gadget_idx)
            attacker.write_symbol(
                "slot1", attacker.symbol(inc_sym) + 8 * inc_idx)

        process, kernel, pwned = run_chain(corrupt)
        assert process.state.value == "exited"
        assert pwned                      # attacker-chosen step ran
        assert process.exit_code != 13    # computation diverted
        assert not kernel.security_log    # all in-allowlist: no alarms

    def test_chain_dies_at_first_out_of_allowlist_step(self):
        """Rewire step 2 to raw code: steps 0-1 run, step 2 faults."""
        def corrupt(attacker, defense):
            gadget_sym, gadget_idx = defense.slot_of["gadget"]
            attacker.write_symbol(
                "slot0", attacker.symbol(gadget_sym) + 8 * gadget_idx)
            attacker.write_symbol("slot1",
                                  attacker.symbol("step_triple"))

        process, kernel, pwned = run_chain(corrupt)
        assert process.state.value == "killed"
        assert process.signal.roload
        assert len(kernel.security_log) == 1
        assert kernel.security_log[0].reason == "key_mismatch"

    def test_chain_cannot_reach_foreign_types(self):
        """Even a fully in-allowlist chain cannot call into another
        type's GFPT: the keys partition the reuse surface."""
        def corrupt(attacker, defense):
            # There is only one type here; point a slot at the GFPT page
            # of... the table itself +  out-of-table offset.
            sym, __ = defense.slot_of["gadget"]
            attacker.write_symbol("slot0",
                                  attacker.symbol(sym) + 4096)

        process, kernel, pwned = run_chain(corrupt)
        assert process.state.value == "killed"
