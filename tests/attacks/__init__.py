"""Test package."""
