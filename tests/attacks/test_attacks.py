"""Security-claim tests (§V-C2, §V-D): which attacks are blocked by what.

The table these tests pin down:

    attack                     none    vtint   vcall   icall   cfi
    fake-vtable injection      HIJACK  block   block   block   -
    vtable in-place corruption blocked by W^X for everyone
    cross-type vtable reuse    works   WORKS   block   block   -
    fptr -> raw code address   HIJACK  -       -       block   type-check
    fptr -> attacker data      HIJACK  -       -       block   block
    fptr -> wrong-type slot    -       -       -       block   -
    same-type pointee reuse    works under every defense (§V-D residual)
"""

import pytest

from repro.attacks import (
    AttackError,
    BENIGN_EXIT,
    build_victim_module,
    corrupt_vtable_in_place,
    cross_type_vtable_reuse,
    inject_fake_vtable,
    point_at_attacker_data,
    point_at_gadget_code,
    point_at_wrong_type_slot,
    run_attack,
    same_class_vtable_reuse,
    same_type_slot_reuse,
)
from repro.compiler import compile_module
from repro.defenses import (
    LabelCFIBaseline,
    TypeBasedCFI,
    VCallProtection,
    VTintBaseline,
)


@pytest.fixture(scope="module")
def victim():
    return build_victim_module()


def image(victim, hardening=None):
    return compile_module(victim, hardening=hardening)


class TestBenignBehaviour:
    def test_uncorrupted_runs_clean(self, victim):
        out = run_attack(image(victim), lambda a: None)
        assert out.exit_code == BENIGN_EXIT
        assert not out.hijacked and not out.blocked

    @pytest.mark.parametrize("make", [
        lambda: [VCallProtection()], lambda: [VTintBaseline()],
        lambda: [TypeBasedCFI()], lambda: [LabelCFIBaseline()],
    ], ids=["vcall", "vtint", "icall", "cfi"])
    def test_uncorrupted_runs_clean_hardened(self, victim, make):
        out = run_attack(image(victim, make()), lambda a: None)
        assert out.exit_code == BENIGN_EXIT and not out.blocked


class TestVTableInjection:
    def test_unprotected_is_hijacked(self, victim):
        out = run_attack(image(victim), inject_fake_vtable)
        assert out.hijacked and not out.blocked

    def test_vcall_blocks_with_roload_event(self, victim):
        out = run_attack(image(victim, [VCallProtection()]),
                         inject_fake_vtable)
        assert out.blocked and not out.hijacked
        assert out.roload_violation
        assert out.security_events[0].reason == "not_read_only"

    def test_vtint_blocks(self, victim):
        out = run_attack(image(victim, [VTintBaseline()]),
                         inject_fake_vtable)
        assert out.blocked and not out.hijacked
        assert not out.roload_violation  # software check, not ROLoad

    def test_icall_blocks(self, victim):
        out = run_attack(image(victim, [TypeBasedCFI()]),
                         inject_fake_vtable)
        assert out.blocked and not out.hijacked


class TestVTableInPlaceCorruption:
    def test_rejected_by_memory_protection(self, victim):
        """Vtables are read-only: the write primitive itself fails (the
        attacker cannot write read-only memory under the threat model)."""
        with pytest.raises(AttackError):
            run_attack(image(victim), corrupt_vtable_in_place)


class TestCrossTypeVTableReuse:
    """The attack separating VCall from VTint."""

    def test_unprotected_misdispatches(self, victim):
        out = run_attack(image(victim), cross_type_vtable_reuse)
        assert not out.blocked
        assert out.exit_code != BENIGN_EXIT  # wrong method ran

    def test_vtint_cannot_stop_it(self, victim):
        """Other's vtable is read-only too: the range check passes.
        This is VTint's documented weakness."""
        out = run_attack(image(victim, [VTintBaseline()]),
                         cross_type_vtable_reuse)
        assert not out.blocked
        assert out.exit_code != BENIGN_EXIT

    def test_vcall_key_mismatch_blocks_it(self, victim):
        """Per-class keys: Other's vtable page has a different key."""
        out = run_attack(image(victim, [VCallProtection()]),
                         cross_type_vtable_reuse)
        assert out.blocked
        assert out.security_events[0].reason == "key_mismatch"


class TestFunctionPointerHijack:
    def test_unprotected_is_hijacked(self, victim):
        out = run_attack(image(victim), point_at_gadget_code)
        assert out.hijacked

    def test_icall_blocks_raw_code_address(self, victim):
        out = run_attack(image(victim, [TypeBasedCFI()]),
                         point_at_gadget_code)
        assert out.blocked and not out.hijacked
        assert out.security_events[0].reason == "key_mismatch"

    def test_icall_blocks_attacker_data(self, victim):
        out = run_attack(image(victim, [TypeBasedCFI()]),
                         point_at_attacker_data)
        assert out.blocked
        assert out.security_events[0].reason == "not_read_only"

    def test_icall_blocks_wrong_key_page(self, victim):
        """Redirect to a genuine keyed read-only page of the WRONG key
        (the unified vtable page): read-only, but key mismatch."""
        defense = TypeBasedCFI()
        img = compile_module(victim, hardening=[defense])

        def corrupt(attacker):
            attacker.write_symbol("fp_slot",
                                  attacker.symbol("_ZTV_Benign"),
                                  note="fp_slot -> vtable page")

        out = run_attack(img, corrupt)
        assert out.blocked
        assert out.security_events[0].reason == "key_mismatch"

    def test_label_cfi_allows_same_type_target(self, victim):
        """The gadget has the same type ID: label CFI (a type policy)
        accepts it — equivalent reuse surface, but ICall at least forces
        the value through the GFPT."""
        out = run_attack(image(victim, [LabelCFIBaseline()]),
                         point_at_gadget_code)
        assert out.hijacked  # same-type reuse passes label CFI


class TestPointeeReuseResidual:
    def test_same_type_slot_reuse_succeeds_under_icall(self, victim):
        """§V-D: ROLoad admits reuse of same-keyed pointees. The paper
        accepts this residual; the test documents it."""
        defense = TypeBasedCFI()
        img = compile_module(victim, hardening=[defense])
        out = run_attack(img, lambda a: same_type_slot_reuse(a, defense))
        assert out.hijacked and not out.blocked

    def test_hierarchy_grouped_vcall_reuse(self, victim):
        """With hierarchy-grouped keys, swinging the vptr within the
        group passes — the grouping trades precision for compatibility."""
        defense = VCallProtection(
            key_by_hierarchy={"Benign": "grp", "Other": "grp"})
        img = compile_module(victim, hardening=[defense])
        out = run_attack(img, lambda a: same_class_vtable_reuse(
            a, "_ZTV_Other"))
        assert not out.blocked  # same key: accepted (documented residue)

    def test_reuse_confined_to_allowlist(self, victim):
        """Even the successful reuse only reaches allowlisted values: a
        pointer outside every GFPT still faults."""
        defense = TypeBasedCFI()
        img = compile_module(victim, hardening=[defense])
        out = run_attack(img, point_at_attacker_data)
        assert out.blocked


class TestThreatModelEnforcement:
    def test_cannot_write_code(self, victim):
        img = image(victim)

        def corrupt(attacker):
            attacker.write(attacker.symbol("main"), 0xDEAD)

        with pytest.raises(AttackError):
            run_attack(img, corrupt)

    def test_cannot_write_gfpt(self, victim):
        defense = TypeBasedCFI()
        img = compile_module(victim, hardening=[defense])
        from repro.defenses import gfpt_symbol
        key = next(iter(defense.key_of_type.values()))

        def corrupt(attacker):
            attacker.write(attacker.symbol(gfpt_symbol(key)), 0xDEAD)

        with pytest.raises(AttackError):
            run_attack(img, corrupt)

    def test_can_read_rodata(self, victim):
        img = image(victim)
        seen = {}

        def corrupt(attacker):
            seen["vt"] = attacker.read(attacker.symbol("_ZTV_Benign"))

        run_attack(img, corrupt)
        assert seen["vt"] == img.symbol("Benign_get")

    def test_corruption_log_records_writes(self, victim):
        from repro.attacks import MemoryCorruption
        from repro.kernel import Kernel
        from repro.soc import build_system
        img = image(victim)
        kernel = Kernel(build_system("processor+kernel"))
        process = kernel.create_process(img)
        attacker = MemoryCorruption(kernel, process, img)
        attacker.write_symbol("fp_slot", 0x1234, note="test")
        assert len(attacker.log) == 1
        assert attacker.log[0].note == "test"
