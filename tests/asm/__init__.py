"""Test package."""
