"""Linker tests: layout invariants, relocations, key isolation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import DEFAULT_BASE, Executable, assemble, link
from repro.errors import LinkError

PAGE = 4096


def simple_image(extra=""):
    source = f"""
    .globl _start
    _start:
        la a0, table
        ld.ro a0, (a0), 42
        ebreak
    .section .rodata
    ro_blob: .quad 1
    .section .rodata.key.42
    table: .quad _start
    .section .data
    counter: .quad 0
    .section .bss
    buffer: .zero 128
    {extra}
    """
    return link([assemble(source)])


class TestLayoutInvariants:
    def test_separate_code(self):
        """No page contains both executable bytes and read-only data."""
        img = simple_image()
        page_kinds = {}
        for segment in img.segments:
            for page in range(segment.vaddr // PAGE,
                              (segment.end + PAGE - 1) // PAGE):
                kind = (segment.executable, segment.writable, segment.key)
                assert page not in page_kinds or page_kinds[page] == kind, \
                    f"page {page:#x} shared between segments"
                page_kinds[page] = kind

    def test_keyed_sections_get_own_segments(self):
        img = simple_image(extra=".section .rodata.key.7\nt2: .quad 0")
        keys = sorted(s.key for s in img.segments if s.key)
        assert keys == [7, 42]
        seg42 = next(s for s in img.segments if s.key == 42)
        seg7 = next(s for s in img.segments if s.key == 7)
        assert seg42.vaddr % PAGE == 0 and seg7.vaddr % PAGE == 0
        assert not seg42.writable and not seg7.writable

    def test_segments_do_not_overlap(self):
        img = simple_image()
        spans = sorted((s.vaddr, s.end) for s in img.segments)
        for (a_start, a_end), (b_start, b_end) in zip(spans, spans[1:]):
            assert a_end <= b_start

    def test_segment_order_code_first(self):
        img = simple_image()
        assert img.segments[0].executable
        assert img.segments[0].vaddr == DEFAULT_BASE

    def test_bss_in_data_segment_memsize(self):
        img = simple_image()
        data_segment = next(s for s in img.segments if s.writable)
        assert data_segment.memsize > len(data_segment.data)

    def test_layout_symbols(self):
        img = simple_image()
        assert img.symbol("_end") % PAGE == 0
        ro_start = img.symbol("__rodata_start")
        ro_end = img.symbol("__rodata_end")
        table = img.symbol("table")
        assert ro_start <= table < ro_end
        # Code is NOT inside the rodata range (separate-code).
        assert not ro_start <= img.entry < ro_end


class TestRelocations:
    def test_abs64_quad(self):
        img = simple_image()
        table_addr = img.symbol("table")
        segment = img.find_segment(table_addr)
        offset = table_addr - segment.vaddr
        stored = int.from_bytes(segment.data[offset:offset + 8], "little")
        assert stored == img.entry  # .quad _start

    def test_hi20_lo12_pair(self):
        img = simple_image()
        table_addr = img.symbol("table")
        code = img.segments[0].data
        from repro.isa import decode
        lui = decode(int.from_bytes(code[0:4], "little"))
        addi = decode(int.from_bytes(code[4:8], "little"))
        assert lui.name == "lui" and addi.name == "addi"
        from repro.utils.bits import sext
        reconstructed = ((lui.imm << 12) + addi.imm) & 0xFFFFFFFF
        assert reconstructed == table_addr

    def test_branch_reloc(self):
        source = """
        .globl _start
        _start:
            beq a0, a1, done
            nop
        done:
            ebreak
        """
        img = link([assemble(source, rvc=False)])
        from repro.isa import decode
        beq = decode(int.from_bytes(img.segments[0].data[0:4], "little"))
        assert beq.imm == 8

    def test_undefined_symbol(self):
        with pytest.raises(LinkError) as e:
            link([assemble(".globl _start\n_start: j nowhere")])
        assert "nowhere" in str(e.value)

    def test_missing_entry(self):
        with pytest.raises(LinkError):
            link([assemble("foo: nop")])

    def test_duplicate_symbols_across_objects(self):
        a = assemble(".globl _start\n_start: nop")
        b = assemble("_start: nop")
        with pytest.raises(LinkError):
            link([a, b])

    def test_cross_object_call(self):
        a = assemble(".globl _start\n_start: call helper\nebreak")
        b = assemble(".globl helper\nhelper: ret")
        img = link([a, b])
        assert "helper" in img.symbols

    def test_store_lo12_reloc(self):
        source = """
        .globl _start
        _start:
            lui a1, %hi(counter)
            sd a0, %lo(counter)(a1)
            ebreak
        .section .data
        counter: .quad 0
        """
        img = link([assemble(source, rvc=False)])
        from repro.isa import decode
        sd = decode(int.from_bytes(img.segments[0].data[4:8], "little"))
        counter = img.symbol("counter")
        from repro.utils.bits import sext, split_hi_lo
        assert sd.imm == sext(split_hi_lo(counter)[1], 12)


class TestSerialization:
    def test_roundtrip(self):
        img = simple_image()
        restored = Executable.from_bytes(img.to_bytes())
        assert restored.entry == img.entry
        assert restored.symbols == img.symbols
        assert len(restored.segments) == len(img.segments)
        for a, b in zip(restored.segments, img.segments):
            assert (a.vaddr, a.data, a.memsize, a.key) == \
                (b.vaddr, b.data, b.memsize, b.key)

    def test_bad_magic(self):
        from repro.errors import LoaderError
        with pytest.raises(LoaderError):
            Executable.from_bytes(b"ELF!....")


class TestManyKeys:
    @settings(max_examples=10, deadline=None)
    @given(st.sets(st.integers(min_value=1, max_value=1023), min_size=1,
                   max_size=12))
    def test_every_key_in_distinct_pages(self, keys):
        sections = "\n".join(
            f".section .rodata.key.{k}\nt{k}: .quad {k}" for k in keys)
        source = f".globl _start\n_start: ebreak\n{sections}\n"
        img = link([assemble(source)])
        pages_by_key = {}
        for segment in img.segments:
            if segment.key:
                pages = set(range(segment.vaddr // PAGE,
                                  (segment.end + PAGE - 1) // PAGE))
                pages_by_key[segment.key] = pages
        assert set(pages_by_key) == keys
        all_pages = [p for pages in pages_by_key.values() for p in pages]
        assert len(all_pages) == len(set(all_pages)), \
            "two keys share a physical page"
