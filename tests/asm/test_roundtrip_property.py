"""Property: disassembler output re-assembles to identical encodings.

For every supported instruction (random operands), format_instruction's
text fed back through the assembler must reproduce the original word.
This pins the assembler and disassembler grammars to each other.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.isa import (
    Instruction,
    decode,
    decode_compressed,
    encode,
    format_instruction,
    try_compress,
)
from repro.isa.opcodes import KEY_MAX, SPECS

regs = st.integers(min_value=0, max_value=31)


def reassemble_word(insn: Instruction) -> int:
    text = format_instruction(insn)
    obj = assemble(text, rvc=False)
    data = bytes(obj.sections[".text"].data)
    assert len(data) == 4, f"{text!r} assembled to {len(data)} bytes"
    return int.from_bytes(data, "little")


@st.composite
def arbitrary_instruction(draw):
    name = draw(st.sampled_from(sorted(SPECS)))
    spec = SPECS[name]
    kwargs = {}
    if spec.fmt in ("R", "AMO"):
        kwargs = dict(rd=draw(regs), rs1=draw(regs), rs2=draw(regs))
    elif spec.fmt == "I":
        kwargs = dict(rd=draw(regs), rs1=draw(regs),
                      imm=draw(st.integers(-2048, 2047)))
        if spec.semclass == "fence":
            kwargs = {}
    elif spec.fmt == "S":
        kwargs = dict(rs1=draw(regs), rs2=draw(regs),
                      imm=draw(st.integers(-2048, 2047)))
    elif spec.fmt == "B":
        kwargs = dict(rs1=draw(regs), rs2=draw(regs),
                      imm=draw(st.integers(-2048, 2047)) * 2)
    elif spec.fmt == "U":
        kwargs = dict(rd=draw(regs),
                      imm=draw(st.integers(0, (1 << 20) - 1)))
    elif spec.fmt == "J":
        kwargs = dict(rd=draw(regs),
                      imm=draw(st.integers(-(1 << 19), (1 << 19) - 1)) * 2)
    elif spec.fmt == "SHIFT64":
        kwargs = dict(rd=draw(regs), rs1=draw(regs),
                      imm=draw(st.integers(0, 63)))
    elif spec.fmt == "SHIFT32":
        kwargs = dict(rd=draw(regs), rs1=draw(regs),
                      imm=draw(st.integers(0, 31)))
    elif spec.fmt == "CSR":
        kwargs = dict(rd=draw(regs), rs1=draw(regs),
                      csr=draw(st.sampled_from([0xC00, 0xC01, 0xC02,
                                                0x800, 0x8FF])))
    elif spec.fmt == "CSRI":
        kwargs = dict(rd=draw(regs), imm=draw(st.integers(0, 31)),
                      csr=draw(st.sampled_from([0xC00, 0x800])))
    elif spec.fmt == "RO":
        kwargs = dict(rd=draw(regs), rs1=draw(regs),
                      key=draw(st.integers(0, KEY_MAX)))
    return Instruction(name, semclass=spec.semclass, **kwargs)


@settings(max_examples=400, deadline=None)
@given(arbitrary_instruction())
def test_disasm_asm_roundtrip(insn):
    word = encode(insn)
    assert reassemble_word(decode(word)) == word


@settings(max_examples=150, deadline=None)
@given(arbitrary_instruction())
def test_compressed_roundtrip_through_text(insn):
    """Compressible instructions: text -> assembler (rvc) -> the same
    compressed halfword the direct compressor produces."""
    halfword = try_compress(insn)
    if halfword is None:
        return
    expanded = decode_compressed(halfword)
    text = format_instruction(expanded)
    obj = assemble(text, rvc=True)
    data = bytes(obj.sections[".text"].data)
    assert len(data) == 2, f"{text!r} did not re-compress"
    assert int.from_bytes(data, "little") == try_compress(expanded)
