"""Tests for the static ROLoad-deployment auditor."""

import pytest

from repro.asm import Executable, Segment, assemble, link
from repro.asm.audit import audit_image, collect_roload_keys, is_sound
from repro.compiler import compile_module
from repro.defenses import TypeBasedCFI, VCallProtection


def well_formed_image():
    return link([assemble(r"""
    .globl _start
    _start:
        la a0, table
        ld.ro a1, (a0), 42
        li a7, 93
        ecall
    .section .rodata.key.42
    table: .quad 7
    """)])


class TestSoundImages:
    def test_linker_output_is_sound(self):
        image = well_formed_image()
        findings = audit_image(image)
        assert not [f for f in findings if f.severity == "error"], \
            [str(f) for f in findings]
        assert is_sound(image)

    def test_hardened_victim_sound(self):
        from repro.attacks import build_victim_module
        for hardening in ([VCallProtection()], [TypeBasedCFI()]):
            image = compile_module(build_victim_module(),
                                   hardening=hardening)
            assert is_sound(image), [
                str(f) for f in audit_image(image)]

    def test_key_collection(self):
        keys = collect_roload_keys(well_formed_image())
        assert keys == {42}

    def test_compressed_roload_keys_collected(self):
        image = link([assemble(r"""
        .globl _start
        _start:
            ld.ro a0, (a1), 17
            ebreak
        .section .rodata.key.17
        t: .quad 0
        """)])
        # key 17 < 32 and regs are compressible: the instruction is the
        # 2-byte c.ld.ro, and the auditor still sees its key.
        assert collect_roload_keys(image) == {17}


def _segment(vaddr, size=4096, *, data=b"",
             w=False, x=False, key=0, name="seg"):
    return Segment(vaddr=vaddr, data=data, memsize=size, readable=True,
                   writable=w, executable=x, key=key, name=name)


class TestViolations:
    def test_e1_keyed_writable(self):
        image = Executable(entry=0x1000, segments=[
            _segment(0x1000, x=True, name=".text"),
            _segment(0x2000, w=True, key=5, name="bad"),
        ])
        codes = {f.code for f in audit_image(image)}
        assert "E1" in codes

    def test_e2_key_page_sharing(self):
        image = Executable(entry=0x1000, segments=[
            _segment(0x1000, x=True, name=".text"),
            _segment(0x2000, size=2048, key=1, name="k1"),
            _segment(0x2800, size=2048, key=2, name="k2"),
        ])
        codes = {f.code for f in audit_image(image)}
        assert "E2" in codes

    def test_e3_code_data_page_sharing(self):
        image = Executable(entry=0x1000, segments=[
            _segment(0x1000, size=2048, x=True, name=".text"),
            _segment(0x1800, size=2048, name=".rodata"),
        ])
        codes = {f.code for f in audit_image(image)}
        assert "E3" in codes

    def test_e4_dangling_key(self):
        from repro.isa import Instruction, encode
        code = encode(Instruction("ld.ro", rd=10, rs1=10,
                                  key=99)).to_bytes(4, "little")
        image = Executable(entry=0x1000, segments=[
            _segment(0x1000, data=code, x=True, name=".text"),
        ])
        findings = audit_image(image)
        assert any(f.code == "E4" and "99" in f.message
                   for f in findings)

    def test_w1_unused_key(self):
        image = Executable(entry=0x1000, segments=[
            _segment(0x1000, x=True, name=".text"),
            _segment(0x2000, key=3, name="dead"),
        ])
        findings = audit_image(image)
        assert any(f.code == "W1" for f in findings)
        assert is_sound(image)  # warnings are not errors

    def test_e5_bad_entry(self):
        image = Executable(entry=0x9000, segments=[
            _segment(0x1000, x=True, name=".text"),
        ])
        codes = {f.code for f in audit_image(image)}
        assert "E5" in codes

    def test_findings_format(self):
        image = Executable(entry=0x9000, segments=[
            _segment(0x1000, x=True, name=".text"),
        ])
        text = str(audit_image(image)[0])
        assert text.startswith("[E")
