"""Error-path coverage for the assembler and linker: every malformed
input must produce a located, specific diagnostic."""

import pytest

from repro.asm import assemble, link
from repro.errors import AssemblerError, LinkError


def err(source, name="t.s"):
    with pytest.raises(AssemblerError) as excinfo:
        assemble(source, name=name)
    return str(excinfo.value)


class TestAssemblerDiagnostics:
    def test_wrong_operand_count_rtype(self):
        assert "rd, rs1, rs2" in err("add a0, a1")

    def test_wrong_operand_kind(self):
        assert "register" in err("add a0, a1, 5")

    def test_bad_register_name(self):
        # "q9" parses as a symbol, so the diagnostic is about the slot.
        assert "register" in err("add a0, a1, q9")

    def test_store_needs_memory_operand(self):
        assert "offset(rs1)" in err("sd a0, a1, a2, a3")

    def test_branch_target_kind(self):
        assert "target" in err("beq a0, a1, (a2)")

    def test_shift_amount_range(self):
        assert "range" in err("slli a0, a0, 64")
        assert "range" in err("srliw a0, a0, 32")

    def test_csr_bad_name(self):
        assert "CSR" in err("csrr a0, bogus_csr")

    def test_system_insn_takes_no_operands(self):
        assert "no operands" in err("ecall a0")

    def test_bad_directive(self):
        assert "directive" in err(".frobnicate 3")

    def test_bad_alignment(self):
        assert "alignment" in err(".align 0")
        assert "alignment" in err(".align banana")

    def test_bad_string_literal(self):
        assert "string" in err('.asciz hello')

    def test_bad_data_item(self):
        assert "data item" in err(".byte 1 2")  # missing comma -> junk

    def test_symbol_quad_only(self):
        assert ".quad" in err(".word some_symbol")

    def test_zero_negative(self):
        assert "size" in err(".zero -4")

    def test_bad_option(self):
        assert "option" in err(".option turbo")

    def test_line_numbers_accurate(self):
        message = err("nop\nnop\nadd a0, a1\n", name="multi.s")
        assert "multi.s:3" in message

    def test_ld_ro_key_range(self):
        assert "key" in err("ld.ro a0, (a1), 5000")

    def test_ld_ro_syntax_offset(self):
        assert "key" in err("ld.ro a0, 16(a1), 3")

    def test_li_too_big(self):
        assert "64 bits" in err("li a0, 0x1ffffffffffffffff")

    def test_amo_with_offset(self):
        assert "offset" in err("amoadd.d a0, a1, 8(a2)")


class TestLinkerDiagnostics:
    def test_branch_out_of_range(self):
        # Branch to a label > 4 KiB away.
        source = (".globl _start\n_start: beq a0, a1, far\n"
                  + ".zero 8192\n" + "far: nop\n")
        with pytest.raises(LinkError) as excinfo:
            link([assemble(source, rvc=False)])
        assert "out of range" in str(excinfo.value)

    def test_jump_out_of_range(self):
        source = (".globl _start\n_start: j far\n"
                  + ".zero 3000000\n" + "far: nop\n")
        with pytest.raises(LinkError) as excinfo:
            link([assemble(source, rvc=False)])
        assert "out of range" in str(excinfo.value)

    def test_undefined_symbol_names_source(self):
        with pytest.raises(LinkError) as excinfo:
            link([assemble(".globl _start\n_start: la a0, missing",
                           name="mystery.s")])
        assert "mystery.s" in str(excinfo.value)

    def test_unaligned_base(self):
        from repro.asm.linker import Linker
        with pytest.raises(LinkError):
            Linker(base=0x10001)

    def test_nothing_to_link(self):
        with pytest.raises(LinkError):
            link([])

    def test_addend_forms(self):
        source = """
        .globl _start
        _start:
            la a0, table+16
            ld a0, 0(a0)
            li a7, 93
            ecall
        .section .rodata
        table: .quad 1, 2, 3, 4
        """
        image = link([assemble(source)])
        from repro.kernel import run_program
        assert run_program(image).exit_code == 3

    def test_negative_addend(self):
        source = """
        .globl _start
        _start:
            la a0, anchor-8
            ld a0, 0(a0)
            li a7, 93
            ecall
        .section .rodata
        before: .quad 9
        anchor: .quad 1
        """
        image = link([assemble(source)])
        from repro.kernel import run_program
        assert run_program(image).exit_code == 9

    def test_object_order_deterministic(self):
        a = assemble(".globl _start\n_start: call helper\nebreak",
                     name="a.s")
        b = assemble(".globl helper\nhelper: ret", name="b.s")
        image1 = link([a, b])
        image2 = link([assemble(
            ".globl _start\n_start: call helper\nebreak", name="a.s"),
            assemble(".globl helper\nhelper: ret", name="b.s")])
        assert image1.to_bytes() == image2.to_bytes()
