"""Assembler unit tests: syntax, directives, pseudo-ops, ROLoad syntax."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.errors import AssemblerError
from repro.isa import decode, decode_compressed, instruction_length
from repro.utils.bits import MASK64, to_u64


def first_insn(source, rvc=True):
    obj = assemble(source, rvc=rvc)
    data = obj.sections[".text"].data
    half = int.from_bytes(data[:2], "little")
    if instruction_length(half) == 2:
        return decode_compressed(half)
    return decode(int.from_bytes(data[:4], "little"))


def text_insns(source, rvc=True):
    obj = assemble(source, rvc=rvc)
    data = bytes(obj.sections[".text"].data)
    out, offset = [], 0
    while offset < len(data):
        half = int.from_bytes(data[offset:offset + 2], "little")
        if instruction_length(half) == 2:
            out.append(decode_compressed(half))
            offset += 2
        else:
            out.append(decode(int.from_bytes(data[offset:offset + 4],
                                             "little")))
            offset += 4
    return out


class TestBasicSyntax:
    def test_rtype(self):
        insn = first_insn("add a0, a1, a2", rvc=False)
        assert (insn.name, insn.rd, insn.rs1, insn.rs2) == ("add", 10, 11, 12)

    def test_itype(self):
        insn = first_insn("addi t0, t1, -42", rvc=False)
        assert insn.imm == -42

    def test_load_store(self):
        insn = first_insn("ld a0, -1608(gp)", rvc=False)
        assert (insn.name, insn.rs1, insn.imm) == ("ld", 3, -1608)
        insn = first_insn("sd a0, 16(sp)", rvc=False)
        assert (insn.name, insn.rs2, insn.imm) == ("sd", 10, 16)

    def test_hex_immediates(self):
        assert first_insn("addi a0, zero, 0x7f", rvc=False).imm == 0x7F

    def test_shift(self):
        insn = first_insn("slli a0, a0, 63", rvc=False)
        assert insn.imm == 63

    def test_csr(self):
        insn = first_insn("csrrs a0, cycle, zero", rvc=False)
        assert insn.csr == 0xC00

    def test_csrr_pseudo(self):
        insn = first_insn("csrr a0, instret", rvc=False)
        assert insn.name == "csrrs" and insn.csr == 0xC02 and insn.rs1 == 0

    def test_comments_ignored(self):
        insns = text_insns("addi a0, zero, 1 # comment\n// whole line\n")
        assert len(insns) == 1

    def test_amo_both_syntaxes(self):
        a = first_insn("amoadd.d a0, a1, (a2)", rvc=False)
        b = first_insn("amoadd.d a0, a2, a1", rvc=False)
        assert (a.rs1, a.rs2) == (12, 11)
        assert (b.rs1, b.rs2) == (12, 11)

    def test_unknown_instruction(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate a0, a1")

    def test_immediate_overflow(self):
        with pytest.raises(AssemblerError):
            assemble("addi a0, a0, 4096")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError) as e:
            assemble("nop\nbogus x9\n", name="f.s")
        assert "f.s:2" in str(e.value)


class TestROLoadSyntax:
    def test_paper_listing3_syntax(self):
        insn = first_insn("ld.ro a0, (a0), 111", rvc=False)
        assert insn.name == "ld.ro"
        assert insn.rd == 10 and insn.rs1 == 10 and insn.key == 111

    def test_all_widths(self):
        for name in ("lb.ro", "lh.ro", "lw.ro", "ld.ro", "lbu.ro",
                     "lhu.ro", "lwu.ro"):
            insn = first_insn(f"{name} t0, (t1), 7", rvc=False)
            assert insn.name == name and insn.key == 7

    def test_offset_rejected(self):
        with pytest.raises(AssemblerError) as e:
            assemble("ld.ro a0, 8(a0), 111")
        assert "key" in str(e.value)

    def test_key_out_of_range(self):
        with pytest.raises(AssemblerError):
            assemble("ld.ro a0, (a0), 1024")

    def test_compressed_when_possible(self):
        # rd, rs1 in x8..15 and key < 32: must emit the 2-byte c.ld.ro.
        obj = assemble("ld.ro a0, (a1), 17")
        assert len(obj.sections[".text"].data) == 2

    def test_not_compressed_for_large_key(self):
        obj = assemble("ld.ro a0, (a1), 111")
        assert len(obj.sections[".text"].data) == 4


class TestPseudoInstructions:
    def test_nop_mv_ret(self):
        insns = text_insns("nop\nmv a0, a1\nret", rvc=False)
        assert insns[0].name == "addi" and insns[0].rd == 0
        assert insns[1].name == "addi" and insns[1].rs1 == 11
        assert insns[2].name == "jalr" and insns[2].rs1 == 1

    def test_branch_pseudos(self):
        insns = text_insns(
            "x: beqz a0, x\nbnez a1, x\nbltz a2, x\nbgez a3, x\n"
            "blez a4, x\nbgtz a5, x", rvc=False)
        names = [i.name for i in insns]
        assert names == ["beq", "bne", "blt", "bge", "bge", "blt"]
        assert insns[4].rs1 == 0 and insns[4].rs2 == 14  # blez swaps

    def test_not_neg_seqz_snez(self):
        insns = text_insns("not a0, a1\nneg a2, a3\nseqz a4, a5\n"
                           "snez a6, a7", rvc=False)
        assert insns[0].name == "xori" and insns[0].imm == -1
        assert insns[1].name == "sub" and insns[1].rs1 == 0
        assert insns[2].name == "sltiu" and insns[2].imm == 1
        assert insns[3].name == "sltu" and insns[3].rs1 == 0

    def test_li_small(self):
        insns = text_insns("li a0, -5", rvc=False)
        assert len(insns) == 1 and insns[0].imm == -5

    def test_li_32bit(self):
        insns = text_insns("li a0, 0x12345678", rvc=False)
        assert insns[0].name == "lui"
        assert insns[1].name == "addiw"

    @settings(max_examples=60, deadline=None)
    @given(st.one_of(
        st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1),
        st.integers(min_value=0, max_value=MASK64)))
    def test_li_evaluates_correctly(self, value):
        """Execute the li expansion on a bare core and compare."""
        from repro.cpu import Core
        from repro.mem import MMU, PhysicalMemory
        from repro.isa import encode, try_compress

        obj = assemble(f"li a0, {value}", rvc=False)
        data = obj.sections[".text"].data
        memory = PhysicalMemory(1 << 20)
        memory.write_bytes(0x1000, bytes(data))
        core = Core(memory, MMU(memory))
        core.pc = 0x1000
        end = 0x1000 + len(data)
        while core.pc < end:
            core.step()
        assert core.regs[10] == to_u64(value)


class TestDirectives:
    def test_data_directives(self):
        obj = assemble(
            ".section .data\n.byte 1, 2\n.half 0x1234\n.word 7\n"
            ".quad 0x1122334455667788")
        data = bytes(obj.sections[".data"].data)
        assert data[:2] == b"\x01\x02"
        assert data[2:4] == (0x1234).to_bytes(2, "little")
        assert data[4:8] == (7).to_bytes(4, "little")
        assert data[8:16] == (0x1122334455667788).to_bytes(8, "little")

    def test_asciz(self):
        obj = assemble('.section .rodata\n.asciz "hi"')
        assert bytes(obj.sections[".rodata"].data) == b"hi\0"

    def test_zero_and_align(self):
        obj = assemble(".section .data\n.byte 1\n.align 8\n.byte 2")
        data = bytes(obj.sections[".data"].data)
        assert len(data) == 9 and data[8] == 2

    def test_bss_nobits(self):
        obj = assemble(".section .bss\nbuf:\n.zero 4096")
        section = obj.sections[".bss"]
        assert section.nobits and section.size == 4096
        assert len(section.data) == 0

    def test_keyed_section_key_parsed(self):
        obj = assemble(".section .rodata.key.222\n.quad 0")
        assert obj.sections[".rodata.key.222"].key == 222

    def test_globl(self):
        obj = assemble(".globl foo\nfoo: nop")
        assert obj.symbols["foo"].is_global

    def test_duplicate_label_rejected(self):
        with pytest.raises(Exception):
            assemble("a: nop\na: nop")

    def test_option_norvc(self):
        obj = assemble(".option norvc\nnop")
        assert len(obj.sections[".text"].data) == 4

    def test_quad_symbol_emits_reloc(self):
        obj = assemble(".section .rodata.key.5\ngfpt: .quad target\n"
                       ".section .text\ntarget: nop")
        relocs = [r for r in obj.relocations if r.symbol == "target"]
        assert len(relocs) == 1
        assert relocs[0].section == ".rodata.key.5"


class TestCompression:
    def test_compressible_ops_shrink(self):
        small = assemble("addi sp, sp, -32\nld a0, 0(a0)\nret")
        big = assemble("addi sp, sp, -32\nld a0, 0(a0)\nret", rvc=False)
        assert len(small.sections[".text"].data) < \
            len(big.sections[".text"].data)

    def test_label_targets_stable_with_rvc(self):
        """Branch targets must resolve correctly in mixed-width code."""
        source = """
        _start:
            li a0, 3
        loop:
            addi a0, a0, -1
            bnez a0, loop
            ebreak
        """
        from repro.asm import link
        from repro.cpu import Core, Trap
        from repro.mem import MMU, PhysicalMemory

        obj = assemble(source + "\n.globl _start\n")
        img = link([obj])
        memory = PhysicalMemory(1 << 20)
        for segment in img.segments:
            memory.write_bytes(segment.vaddr, segment.data)
        core = Core(memory, MMU(memory))
        core.pc = img.entry
        with pytest.raises(Trap):
            for __ in range(100):
                core.step()
        assert core.regs[10] == 0
