"""IR construction, types, metadata, and verifier tests."""

import pytest

from repro.errors import CompilerError
from repro.compiler import (
    FuncType,
    GlobalVar,
    I8,
    I32,
    I64,
    IRBuilder,
    KeyAllocator,
    Load,
    Module,
    PTR,
    ROLoadMD,
    VTable,
    func_type,
    verify_function,
    verify_module,
)


class TestTypes:
    def test_int_sizes(self):
        assert I8.size == 1 and I32.size == 4 and I64.size == 8
        assert PTR.size == 8

    def test_bad_width(self):
        from repro.compiler import IntType
        with pytest.raises(ValueError):
            IntType(24)

    def test_signature_strings(self):
        assert func_type(ret=I64).signature() == "i64()"
        assert func_type(I64, PTR, ret=I32).signature() == "i32(i64,ptr)"
        assert func_type(ret=None).signature() == "void()"

    def test_signature_equality_drives_keys(self):
        alloc = KeyAllocator()
        k1 = alloc.key_for(func_type(I64).signature())
        k2 = alloc.key_for(func_type(I64).signature())
        k3 = alloc.key_for(func_type(I32).signature())
        assert k1 == k2 != k3


class TestMetadata:
    def test_key_range(self):
        with pytest.raises(CompilerError):
            ROLoadMD(1024)
        with pytest.raises(CompilerError):
            ROLoadMD(-1)
        assert ROLoadMD(1023).key == 1023

    def test_allocator_deterministic(self):
        a, b = KeyAllocator(), KeyAllocator()
        names = ["zeta", "alpha", "mid"]
        assert [a.key_for(n) for n in names] == \
            [b.key_for(n) for n in names]

    def test_allocator_exhaustion(self):
        alloc = KeyAllocator(first_key=1023)
        alloc.key_for("last")
        with pytest.raises(CompilerError):
            alloc.key_for("one-too-many")

    def test_assignments_snapshot(self):
        alloc = KeyAllocator()
        alloc.key_for("x")
        assert alloc.assignments == {"x": 1}
        assert len(alloc) == 1


class TestBuilder:
    def test_temps_unique(self):
        m = Module()
        b = IRBuilder(m.function("f"))
        assert b.li(1) != b.li(1)

    def test_param_bounds(self):
        m = Module()
        b = IRBuilder(m.function("f", num_params=2))
        assert b.param(0) == "p0"
        with pytest.raises(CompilerError):
            b.param(2)

    def test_vcall_emits_tagged_loads(self):
        m = Module()
        b = IRBuilder(m.function("f"))
        obj = b.la("obj")
        b.vcall(obj, 2, "Widget", func_type=func_type(I64))
        b.ret(b.li(0))
        loads = [op for op in m.functions["f"].ops
                 if isinstance(op, Load)]
        assert loads[0].purpose == "vptr"
        assert loads[0].class_name == "Widget"
        assert loads[1].purpose == "vtable_entry"
        assert loads[1].offset == 16  # slot 2

    def test_load_fptr_tag(self):
        m = Module()
        b = IRBuilder(m.function("f"))
        slot = b.la("fp_var")
        fp = b.load_fptr(slot, func_type(I64))
        b.icall(fp, func_type=func_type(I64))
        b.ret(b.li(0))
        load = next(op for op in m.functions["f"].ops
                    if isinstance(op, Load))
        assert load.purpose == "fptr"
        assert load.func_type == func_type(I64)


class TestVerifier:
    def test_undefined_vreg(self):
        m = Module()
        f = m.function("f")
        b = IRBuilder(f)
        from repro.compiler import Bin
        f.ops.append(Bin("add", "v9", "v8", "v7"))
        b.ret()
        with pytest.raises(CompilerError):
            verify_function(f)

    def test_unknown_label(self):
        m = Module()
        f = m.function("f")
        b = IRBuilder(f)
        b.br(".Lnowhere")
        with pytest.raises(CompilerError):
            verify_function(f)

    def test_missing_terminator(self):
        m = Module()
        f = m.function("f")
        IRBuilder(f).li(1)
        with pytest.raises(CompilerError):
            verify_function(f)

    def test_unknown_callee(self):
        m = Module()
        f = m.function("f")
        b = IRBuilder(f)
        b.call("ghost")
        b.ret()
        with pytest.raises(CompilerError):
            verify_module(m)

    def test_vtable_entry_must_exist(self):
        m = Module()
        f = m.function("f")
        IRBuilder(f).ret()
        m.vtable(VTable("C", entries=["missing_method"]))
        with pytest.raises(CompilerError):
            verify_module(m)

    def test_global_symbol_init_checked(self):
        m = Module()
        f = m.function("f")
        IRBuilder(f).ret()
        m.global_var(GlobalVar("g", init=[("quad", "nope")]))
        with pytest.raises(CompilerError):
            verify_module(m)

    def test_valid_module_passes(self):
        m = Module()
        helper = m.function("helper", num_params=1,
                            func_type=func_type(I64, ret=I64),
                            address_taken=True)
        b = IRBuilder(helper)
        b.ret(b.addi(b.param(0), 1))
        f = m.function("main")
        b = IRBuilder(f)
        r = b.call("helper", [b.li(1)])
        b.ret(r)
        m.vtable(VTable("C", entries=["helper"]))
        m.global_var(GlobalVar("obj", init=[("quad", "_ZTV_C")]))
        verify_module(m)

    def test_duplicate_function(self):
        m = Module()
        m.function("f")
        with pytest.raises(CompilerError):
            m.function("f")
