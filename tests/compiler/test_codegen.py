"""Codegen tests: lowering correctness, executed on the simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import (
    CodeGenerator,
    I64,
    IRBuilder,
    Module,
    ROLoadMD,
    compile_module,
    compile_to_assembly,
    func_type,
    generate_assembly,
)
from repro.kernel import run_program
from repro.utils.bits import to_u64


def run_main(build_body, num_params=0, extra=None):
    """Build main with ``build_body(builder)``, run, return exit code."""
    m = Module("t")
    if extra:
        extra(m)
    main = m.function("main", num_params=num_params)
    b = IRBuilder(main)
    build_body(b)
    process = run_program(compile_module(m))
    assert process.state.value == "exited", process.status()
    return process.exit_code


class TestArithmetic:
    def test_constants_and_add(self):
        assert run_main(lambda b: b.ret(b.add(b.li(40), b.li(2)))) == 42

    def test_sub_mul(self):
        def body(b):
            b.ret(b.sub(b.mul(b.li(7), b.li(7)), b.li(7)))
        assert run_main(body) == 42

    def test_div_rem(self):
        def body(b):
            q = b.bin("div", b.li(100), b.li(7))   # 14
            r = b.bin("rem", b.li(100), b.li(7))   # 2
            b.ret(b.add(q, r))
        assert run_main(body) == 16

    def test_shifts_and_logic(self):
        def body(b):
            x = b.bin("sll", b.li(1), b.li(5))     # 32
            y = b.bin("xor", x, b.li(0xFF))        # 223
            z = b.bin("and", y, b.li(0xF0))        # 208
            b.ret(b.bin("srl", z, b.li(4)))        # 13
        assert run_main(body) == 13

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 30),
           st.integers(min_value=1, max_value=2 ** 15))
    def test_div_property(self, a, n):
        def body(b):
            q = b.bin("divu", b.li(a), b.li(n))
            b.ret(b.bin("and", q, b.li(0xFF)))
        assert run_main(body) == (a // n) & 0xFF


class TestControlFlow:
    def test_loop_sums(self):
        def body(b):
            total = b.li(0)
            i = b.li(10)
            zero = b.li(0)
            loop = b.fresh_label("loop")
            done = b.fresh_label("done")
            b.label(loop)
            b.cbr("eq", i, zero, done)
            from repro.compiler import Mv
            t = b.add(total, i)
            b.function.ops.append(Mv(total, t))
            d = b.addi(i, -1)
            b.function.ops.append(Mv(i, d))
            b.br(loop)
            b.label(done)
            b.ret(total)
        assert run_main(body) == 55

    def test_conditional_select(self):
        def body(b):
            a, c = b.li(5), b.li(3)
            big = b.fresh_label("big")
            out = b.fresh_label("out")
            result = b.li(0)
            from repro.compiler import Mv
            b.cbr("lt", c, a, big)
            b.function.ops.append(Mv(result, b.li(1)))
            b.br(out)
            b.label(big)
            b.function.ops.append(Mv(result, b.li(2)))
            b.label(out)
            b.ret(result)
        assert run_main(body) == 2


class TestMemoryAndLocals:
    def test_stack_local_roundtrip(self):
        def body(b):
            b.local("buf", 16)
            p = b.lea("buf")
            b.store(b.li(77), p, 8)
            b.ret(b.load(p, 8))
        assert run_main(body) == 77

    def test_global_variable(self):
        def extra(m):
            from repro.compiler import GlobalVar
            m.global_var(GlobalVar("counter", init=[5]))

        def body(b):
            p = b.la("counter")
            v = b.load(p)
            b.store(b.addi(v, 1), p)
            b.ret(b.load(p))
        assert run_main(body, extra=extra) == 6

    def test_byte_access(self):
        def body(b):
            b.local("buf", 8)
            p = b.lea("buf")
            b.store(b.li(0x1FF), p, 0, width=1)
            b.ret(b.load(p, 0, width=1, signed=False))
        assert run_main(body) == 0xFF


class TestCalls:
    def test_direct_call_args(self):
        def extra(m):
            f = m.function("addmul", num_params=2)
            b = IRBuilder(f)
            b.ret(b.add(b.mul(b.param(0), b.li(2)), b.param(1)))

        def body(b):
            b.ret(b.call("addmul", [b.li(20), b.li(2)]))
        assert run_main(body, extra=extra) == 42

    def test_many_registers_spill(self):
        """More live values than s-registers forces spilling."""
        def body(b):
            values = [b.li(i) for i in range(30)]
            total = values[0]
            for v in values[1:]:
                total = b.add(total, v)
            b.ret(total)  # sum 0..29 = 435 & 0xff = 179
        assert run_main(body) == 435 & 0xFF

    def test_callee_saved_across_calls(self):
        def extra(m):
            f = m.function("clobber", num_params=0)
            b = IRBuilder(f)
            # Touch many temps to use t/a regs freely.
            acc = b.li(1)
            for i in range(8):
                acc = b.add(acc, b.li(i))
            b.ret(acc)

        def body(b):
            kept = b.li(41)
            b.call("clobber")
            b.ret(b.addi(kept, 1))
        assert run_main(body, extra=extra) == 42

    def test_recursion(self):
        def extra(m):
            f = m.function("fact", num_params=1)
            b = IRBuilder(f)
            n = b.param(0)
            one = b.li(1)
            base = b.fresh_label("base")
            b.cbr("ltu", n, b.li(2), base)
            rec = b.call("fact", [b.sub(n, one)])
            b.ret(b.mul(n, rec))
            b.label(base)
            b.ret(one)

        def body(b):
            b.ret(b.call("fact", [b.li(5)]))
        assert run_main(body, extra=extra) == 120


class TestROLoadEmission:
    def test_annotated_load_emits_ld_ro(self):
        m = Module("t")
        f = m.function("main")
        b = IRBuilder(f)
        p = b.la("x")
        b.ret(b.load(p, 0, roload_md=ROLoadMD(7)))
        from repro.compiler import GlobalVar
        m.global_var(GlobalVar("x", section=".rodata.key.7", init=[42]))
        asm = compile_to_assembly(m)
        assert "ld.ro" in asm
        process = run_program(compile_module(m))
        assert process.exit_code == 42

    def test_offset_inserts_addi(self):
        """The paper: ld.ro has no offset field -> extra addi inserted."""
        m = Module("t")
        f = m.function("main")
        b = IRBuilder(f)
        p = b.la("x")
        b.ret(b.load(p, 8, roload_md=ROLoadMD(7)))
        from repro.compiler import GlobalVar
        m.global_var(GlobalVar("x", section=".rodata.key.7",
                               init=[1, 42]))
        gen = CodeGenerator(m)
        asm = gen.generate()
        assert gen.stats["addi_inserted"] == 1
        assert gen.stats["roload_emitted"] == 1
        # And it still computes the right value.
        from repro.asm import assemble, link
        from repro.compiler.pipeline import RUNTIME_ASM
        img = link([assemble(asm), assemble(RUNTIME_ASM)])
        assert run_program(img).exit_code == 42

    def test_unannotated_load_stays_plain(self):
        m = Module("t")
        f = m.function("main")
        b = IRBuilder(f)
        p = b.la("x")
        b.ret(b.load(p, 0))
        from repro.compiler import GlobalVar
        m.global_var(GlobalVar("x", init=[7]))
        asm = generate_assembly(m)
        assert "ld.ro" not in asm

    def test_width_variants(self):
        for width, signed, expect in ((1, False, 0xEF), (2, False, 0xBEEF),
                                      (4, False, 0xDEADBEEF)):
            m = Module("t")
            f = m.function("main")
            b = IRBuilder(f)
            p = b.la("x")
            v = b.load(p, 0, width=width, signed=signed,
                       roload_md=ROLoadMD(3))
            b.ret(b.bin("and", v, b.li(0xFF)))
            from repro.compiler import GlobalVar
            m.global_var(GlobalVar("x", section=".rodata.key.3",
                                   init=[0xDEADBEEF], width=8))
            assert run_program(compile_module(m)).exit_code == expect & 0xFF


class TestVCallLowering:
    def test_virtual_dispatch_runs(self):
        from repro.compiler import VTable, static_object

        m = Module("t")
        sig = func_type(ret=I64)
        f1 = m.function("A_f", func_type=sig, address_taken=True)
        IRBuilder(f1).ret(IRBuilder(f1).li(1) if False else None)
        # rebuild cleanly:
        f1.ops.clear()
        b = IRBuilder(f1)
        b.ret(b.li(11))
        f2 = m.function("A_g", func_type=sig, address_taken=True)
        b = IRBuilder(f2)
        b.ret(b.li(31))
        m.vtable(VTable("A", entries=["A_f", "A_g"]))
        static_object(m, "obj", "A")
        main = m.function("main")
        b = IRBuilder(main)
        obj = b.la("obj")
        r1 = b.vcall(obj, 0, "A", func_type=sig)
        r2 = b.vcall(obj, 1, "A", func_type=sig)
        b.ret(b.add(r1, r2))
        assert run_program(compile_module(m)).exit_code == 42
