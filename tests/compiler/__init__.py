"""Test package."""
