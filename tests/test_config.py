"""The typed Config surface (repro.config) — DESIGN.md §11 satellite.

Covers: env round-trips for every knob (including the historical
empty-string flag semantics), the override stack, env_knobs restore,
parse_kv error handling, and the tier property driving the replay
checker.
"""

import os

import pytest

from repro import config
from repro.errors import ConfigError


class TestFromEnv:
    def test_defaults_with_empty_env(self):
        cfg = config.Config.from_env({})
        assert cfg == config.Config()
        assert cfg.fast_path and cfg.jit
        assert cfg.jit_threshold == 16
        assert not cfg.obs and not cfg.jit_debug
        assert cfg.jobs == 1 and cfg.bench_scale == 0.1

    def test_every_knob_round_trips_through_to_env(self):
        cfg = config.Config(fast_path=False, jit=False, jit_threshold=4,
                            jit_debug=True, obs=True, obs_events=128,
                            seclog_cap=32, jobs=3, bench_scale=0.5)
        assert config.Config.from_env(cfg.to_env()) == cfg

    def test_default_config_round_trips(self):
        cfg = config.Config()
        assert config.Config.from_env(cfg.to_env()) == cfg

    def test_historical_empty_string_flag_semantics(self):
        # REPRO_FASTPATH= (empty) historically meant ON; REPRO_OBS=
        # (empty) meant OFF. The typed layer must not change that.
        cfg = config.Config.from_env({"REPRO_FASTPATH": "", "REPRO_JIT": "",
                                      "REPRO_OBS": "", "REPRO_JIT_DEBUG": ""})
        assert cfg.fast_path and cfg.jit
        assert not cfg.obs and not cfg.jit_debug

    def test_false_words(self):
        for word in ("0", "off", "no", "false", "OFF", "No"):
            cfg = config.Config.from_env({"REPRO_JIT": word})
            assert not cfg.jit, word

    def test_invalid_ints_keep_defaults(self):
        cfg = config.Config.from_env({"REPRO_JIT_THRESHOLD": "banana",
                                      "REPRO_BENCH_SCALE": "soup"})
        assert cfg.jit_threshold == 16
        assert cfg.bench_scale == 0.1

    def test_jobs_auto_and_invalid(self):
        assert config.Config.from_env({"REPRO_JOBS": "auto"}).jobs == 0
        assert config.Config.from_env({"REPRO_JOBS": "0"}).jobs == 0
        with pytest.raises(ConfigError):
            config.Config.from_env({"REPRO_JOBS": "many"})

    def test_reads_process_environ_by_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT_THRESHOLD", "7")
        assert config.current().jit_threshold == 7


class TestTierProperty:
    def test_tiers_table_matches_tier_property(self):
        for name, changes in config.TIERS.items():
            assert config.Config(**changes).tier == name

    def test_jit_without_fastpath_is_inert(self):
        cfg = config.Config(fast_path=False, jit=True)
        assert not cfg.effective_jit
        assert cfg.tier == "slow"


class TestOverrides:
    def test_overrides_nest_and_restore(self):
        base = config.current()
        with config.overrides(jit=False):
            assert not config.current().jit
            with config.overrides(fast_path=False):
                inner = config.current()
                assert not inner.fast_path and not inner.jit
            assert not config.current().jit
            assert config.current().fast_path == base.fast_path
        assert config.current() == config.current()  # env-derived again

    def test_overrides_do_not_touch_environ(self):
        before = os.environ.get("REPRO_JIT")
        with config.overrides(jit=False):
            assert os.environ.get("REPRO_JIT") == before

    def test_set_override_and_clear(self):
        config.set_override(config.Config(jit_threshold=3))
        try:
            assert config.current().jit_threshold == 3
        finally:
            config.set_override(None)
        assert config.current().jit_threshold == 16

    def test_env_knobs_sets_and_restores_environ(self, monkeypatch):
        monkeypatch.delenv("REPRO_JIT", raising=False)
        with config.env_knobs(jit=False):
            assert os.environ["REPRO_JIT"] == "0"
            assert not config.current().jit
        assert "REPRO_JIT" not in os.environ

    def test_env_knobs_accepts_env_spelling(self):
        with config.env_knobs(REPRO_JIT_THRESHOLD=5):
            assert config.current().jit_threshold == 5

    def test_env_knobs_unknown_name(self):
        with pytest.raises(ConfigError):
            with config.env_knobs(warp_factor=9):
                pass


class TestParseKv:
    def test_field_and_env_names(self):
        out = config.parse_kv(["jit=0", "REPRO_JIT_THRESHOLD=4",
                               "repro_bench_scale=0.3"])
        assert out == {"jit": False, "jit_threshold": 4,
                       "bench_scale": 0.3}

    def test_missing_equals(self):
        with pytest.raises(ConfigError, match="KEY=VAL"):
            config.parse_kv(["jit"])

    def test_unknown_key_lists_fields(self):
        with pytest.raises(ConfigError, match="jit_threshold"):
            config.parse_kv(["warp=9"])


def test_knob_table_mentions_every_knob():
    table = config.knob_table()
    for knob in config.KNOBS:
        assert knob.env in table
        assert knob.field in table


def test_every_config_field_has_a_knob_and_vice_versa():
    # The knob table is the complete public surface: a Config field
    # without an env knob (or a knob without a field) is a docs bug.
    import dataclasses
    fields = {field.name for field in dataclasses.fields(config.Config)}
    knobs = {knob.field for knob in config.KNOBS}
    assert fields == knobs


class TestServeKnobs:
    def test_defaults(self):
        cfg = config.Config.from_env({})
        assert cfg.serve_workers == 2
        assert cfg.serve_sessions == 64
        assert cfg.serve_slice == 50_000
        assert cfg.serve_instret == 10_000_000
        assert cfg.serve_frames == 8192
        assert cfg.serve_boot == 4096

    def test_env_round_trip(self):
        cfg = config.Config(serve_workers=4, serve_sessions=16,
                            serve_slice=1000, serve_instret=50_000,
                            serve_frames=64, serve_boot=100)
        assert config.Config.from_env(cfg.to_env()) == cfg

    def test_workers_auto_rule(self):
        auto = config.Config.from_env({"REPRO_SERVE_WORKERS": "auto"})
        assert auto.serve_workers == 0
        assert auto.resolve_serve_workers() >= 1
        assert config.Config().resolve_serve_workers(3) == 3

    def test_invalid_workers_raises(self):
        with pytest.raises(ConfigError, match="REPRO_SERVE_WORKERS"):
            config.Config.from_env({"REPRO_SERVE_WORKERS": "lots"})
