"""Snapshot/restore (repro.replay.snapshot) — DESIGN.md §11.

The load-bearing property: a restored machine is architecturally
indistinguishable from the machine it was captured from, *including
timing*, even though derived state (TLB, block cache, JIT code) is
dropped and rebuilt.
"""

import pytest

from repro.errors import ReplayError
from repro.kernel import Kernel
from repro.replay import (FORMAT_VERSION, Snapshot, build_inject_image,
                          restore, snapshot, state_hash)
from repro.replay.snapshot import MAGIC
from repro.soc import build_system


@pytest.fixture(scope="module")
def image():
    return build_inject_image(4)


def _run_to(image, stop_after, profile="processor+kernel"):
    system = build_system(profile)
    kernel = Kernel(system)
    process = kernel.create_process(image, name="victim")
    kernel.run(process, stop_after=stop_after)
    return kernel, process


class TestFormat:
    def test_bytes_round_trip_preserves_hash(self, image):
        kernel, _ = _run_to(image, 100)
        snap = snapshot(kernel)
        again = Snapshot.from_bytes(snap.to_bytes())
        assert again.version == FORMAT_VERSION
        assert again.state_hash() == snap.state_hash()
        assert again.instret == snap.instret

    def test_file_round_trip(self, image, tmp_path):
        kernel, _ = _run_to(image, 100)
        snap = snapshot(kernel)
        path = tmp_path / "run.snap"
        snap.save(path)
        assert Snapshot.load(path).state_hash() == snap.state_hash()

    def test_bad_magic_rejected(self):
        with pytest.raises(ReplayError, match="magic|not a"):
            Snapshot.from_bytes(b"NOTASNAP" + bytes(64))

    def test_future_version_rejected(self, image):
        kernel, _ = _run_to(image, 100)
        blob = bytearray(snapshot(kernel).to_bytes())
        offset = len(MAGIC)
        blob[offset:offset + 2] = (FORMAT_VERSION + 1).to_bytes(2, "big")
        with pytest.raises(ReplayError, match="not supported"):
            Snapshot.from_bytes(bytes(blob))

    def test_profile_mismatch_rejected(self, image):
        kernel, _ = _run_to(image, 100, profile="processor+kernel")
        snap = snapshot(kernel)
        other = build_system("processor")
        with pytest.raises(ReplayError, match="profile"):
            restore(snap, system=other)


class TestDifferential:
    """Continuous run == snapshot + restore + run, bit for bit."""

    def test_restore_reproduces_state_hash(self, image):
        kernel, _ = _run_to(image, 150)
        snap = snapshot(kernel)
        restored_kernel, restored = restore(snap)
        assert restored.alive
        assert state_hash(restored_kernel) == snap.state_hash()

    def test_continuous_equals_restored_to_completion(self, image):
        # Continuous: run to N, snapshot (which quiesces), run to end.
        kernel, process = _run_to(image, 150)
        snap = snapshot(kernel)
        kernel.run(process)
        continuous = state_hash(kernel)
        continuous_exit = process.exit_code

        # Restored: fresh machine from the snapshot, run to end.
        fresh_kernel, fresh_process = restore(snap)
        fresh_kernel.run(fresh_process)
        assert state_hash(fresh_kernel) == continuous
        assert fresh_process.exit_code == continuous_exit

    def test_derived_state_rebuilt_not_copied(self, image):
        # The snapshot quiesces: TLB and cache *contents* are dropped
        # (flush counters tick up), so the restored machine re-walks and
        # re-translates — and still ends bit-identical (test above).
        kernel, _ = _run_to(image, 150)
        flushes_before = kernel.system.mmu.dtlb.flushes
        snapshot(kernel)
        assert kernel.system.mmu.dtlb.flushes > flushes_before

    def test_snapshot_is_idempotent(self, image):
        kernel, _ = _run_to(image, 150)
        assert snapshot(kernel).state_hash() == \
            snapshot(kernel).state_hash()

    def test_cannot_snapshot_finished_process(self, image):
        from repro.replay import record_reference
        with pytest.raises(ReplayError, match="finished"):
            record_reference(image, stop_after=10_000_000)


class TestCrossTier:
    def test_replay_bit_identical_across_tiers(self, image):
        from repro.replay import record_reference, verify_replay
        reference = record_reference(image, stop_after=150)
        report = verify_replay(reference,
                               tiers=("slow", "tier1", "tier2"))
        assert report.ok, report.describe()
        hashes = {run.state_hash for run in report.runs}
        hashes.add(report.reference.state_hash)
        assert len(hashes) == 1
        events = {run.arch_events for run in report.runs}
        events.add(report.reference.arch_events)
        assert len(events) == 1

    def test_unknown_tier_rejected(self, image):
        from repro.replay import record_reference, verify_replay
        reference = record_reference(image, stop_after=150)
        with pytest.raises(ReplayError, match="unknown tier"):
            verify_replay(reference, tiers=("tier9",))
