"""Fault-injection harness (repro.replay.inject) — DESIGN.md §11.

The §V-style claim under test: every key-mismatch load that a fault
injection provokes is ROLoad-detected, and no injection escapes to a
successful hijack.
"""

import json

import pytest

from repro.replay import (CampaignReport, build_inject_image,
                          run_campaign)
from repro.replay.inject import KINDS, OUTCOMES


@pytest.fixture(scope="module")
def campaign():
    # 10 stratified points x 6 variants = 60 injections (>= the 50 the
    # acceptance criterion asks for).
    return run_campaign(points=10)


class TestCampaign:
    def test_at_least_fifty_injections_zero_escapes(self, campaign):
        assert campaign.injections >= 50
        assert not campaign.escapes
        assert campaign.ok

    def test_every_kind_injected_and_detected(self, campaign):
        counts = campaign.counts()
        for kind in KINDS:
            assert sum(counts[kind].values()) > 0, kind
            assert counts[kind]["detected"] > 0, kind

    def test_key_perturbations_always_detected(self, campaign):
        # A flipped PTE key makes the next ld.ro a key-mismatch load:
        # the paper's core detection path. No such injection may be
        # benign, crash untyped, or escape.
        for record in campaign.records:
            if record.kind == "pte-key":
                assert record.outcome == "detected", record.to_dict()
                assert "key_mismatch" in record.detail, record.to_dict()

    def test_writable_page_detected_as_not_read_only(self, campaign):
        details = [r.detail for r in campaign.records
                   if r.kind == "pte-writable" and r.outcome == "detected"]
        assert details
        assert all("not_read_only" in d for d in details)

    def test_outcomes_are_from_the_taxonomy(self, campaign):
        for record in campaign.records:
            assert record.outcome in OUTCOMES

    def test_baseline_exit_matches_victim_arithmetic(self, campaign):
        # The unrolled victim accumulates reps x (42) per round.
        assert campaign.baseline_exit == (8 * 42) & 0xFF

    def test_table_lists_every_kind(self, campaign):
        table = campaign.format_table()
        for kind in KINDS:
            assert kind in table
        for outcome in OUTCOMES:
            assert outcome in table

    def test_json_artifact_round_trips(self, campaign, tmp_path):
        path = tmp_path / "table.json"
        campaign.save_json(path)
        data = json.loads(path.read_text())
        assert data["injections"] == campaign.injections
        assert len(data["records"]) == campaign.injections
        assert data["ok"] is True


class TestHarness:
    def test_victim_image_builds_and_is_hardened(self):
        image = build_inject_image(4)
        assert image.symbol("attacker_buf") is not None
        assert any(segment.key for segment in image.segments)

    def test_kind_filter(self):
        report = run_campaign(points=2, kinds=("pte-key",))
        assert report.injections > 0
        assert all(r.kind == "pte-key" for r in report.records)

    def test_unknown_kind_rejected(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            run_campaign(points=1, kinds=("pte-unicorn",))

    def test_report_type(self, campaign):
        assert isinstance(campaign, CampaignReport)
        assert campaign.total_instructions > 0
