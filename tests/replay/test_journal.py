"""Record/replay journal (repro.replay.journal) — DESIGN.md §11.

Entropy is the one real nondeterminism hole (getrandom); everything
else the journal records is a *verification* point that fails fast on
divergence.
"""

import pytest

from repro.errors import ReplayError
from repro.kernel import Kernel
from repro.replay import Journal, record_reference, replay_tier
from repro.soc import build_system
from repro.tools import asmtool

GETRANDOM_SOURCE = r"""
.globl _start
_start:
    li s0, 64            # burn some instructions so there is a
spin:                    # snapshot point before the syscall
    addi s0, s0, -1
    bnez s0, spin
    la a0, buf
    li a1, 8
    li a2, 0
    li a7, 278           # getrandom(buf, 8, 0)
    ecall
    la a0, buf
    ld a1, 0(a0)
    andi a0, a1, 0x7f    # exit code = low entropy bits
    li a7, 93
    ecall
.section .data
buf: .quad 0
"""


@pytest.fixture(scope="module")
def entropy_image(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("journal")
    source = tmp / "rand.s"
    source.write_text(GETRANDOM_SOURCE)
    out = tmp / "rand.rex"
    assert asmtool.main([str(source), "-o", str(out)]) == 0
    from repro.asm import Executable
    return Executable.from_bytes(out.read_bytes())


class TestUnit:
    def test_record_then_replay_consumes_everything(self):
        journal = Journal.recording()
        data = journal.entropy(8)
        journal.syscall(100, 278, 8)
        journal.signal(200, 11, 0x1000)

        replaying = journal.replay()
        assert replaying.entropy(8) == data
        replaying.syscall(100, 278, 8)
        replaying.signal(200, 11, 0x1000)
        replaying.finish()

    def test_each_replay_gets_a_fresh_cursor(self):
        journal = Journal.recording()
        data = journal.entropy(4)
        for _ in range(2):
            replaying = journal.replay()
            assert replaying.entropy(4) == data
            replaying.finish()

    def test_diverging_syscall_result_raises(self):
        journal = Journal.recording()
        journal.syscall(100, 64, 5)
        replaying = journal.replay()
        with pytest.raises(ReplayError, match="diverged"):
            replaying.syscall(100, 64, 6)

    def test_diverging_event_kind_raises(self):
        journal = Journal.recording()
        journal.syscall(100, 64, 5)
        replaying = journal.replay()
        with pytest.raises(ReplayError, match="expected a syscall"):
            replaying.signal(100, 11, 0)

    def test_entropy_length_mismatch_raises(self):
        journal = Journal.recording()
        journal.entropy(8)
        replaying = journal.replay()
        with pytest.raises(ReplayError, match="bytes"):
            replaying.entropy(16)

    def test_extra_event_past_end_raises(self):
        journal = Journal.recording()
        replaying = journal.replay()
        with pytest.raises(ReplayError, match="last journal entry"):
            replaying.syscall(1, 93, 0)

    def test_unconsumed_entries_fail_finish(self):
        journal = Journal.recording()
        journal.syscall(100, 64, 5)
        replaying = journal.replay()
        with pytest.raises(ReplayError, match="unconsumed"):
            replaying.finish()

    def test_file_round_trip(self, tmp_path):
        journal = Journal.recording()
        data = journal.entropy(8)
        journal.syscall(50, 278, 8)
        path = tmp_path / "run.journal"
        journal.save(path)
        replaying = Journal.load(path)
        assert replaying.entropy(8) == data
        replaying.syscall(50, 278, 8)
        replaying.finish()

    def test_replay_without_entries_rejected(self):
        with pytest.raises(ReplayError, match="recorded entries"):
            Journal("replay")


class TestGetrandomReplay:
    """End to end: a program whose exit code *is* entropy replays
    bit-identically because the journal substitutes the recorded bytes."""

    def test_entropy_substitution_makes_replay_identical(self,
                                                         entropy_image):
        reference = record_reference(entropy_image, stop_after=50)
        assert any(e["kind"] == "entropy"
                   for e in reference.journal.entries)
        for tier in ("slow", "tier1", "tier2"):
            run = replay_tier(reference, tier)
            assert run.matches(reference.result), tier
            assert run.exit_code == reference.result.exit_code

    def test_kernel_without_journal_uses_host_entropy(self, entropy_image):
        system = build_system("processor+kernel")
        kernel = Kernel(system)
        process = kernel.create_process(entropy_image, name="rand")
        kernel.run(process)
        assert process.state.value == "exited"

    def test_tampered_journal_detected(self, entropy_image):
        reference = record_reference(entropy_image, stop_after=50)
        exit_entry = next(e for e in reference.journal.entries
                          if e["kind"] == "syscall" and e["number"] == 93)
        exit_entry["result"] = (exit_entry["result"] or 0) ^ 1
        with pytest.raises(ReplayError, match="diverged"):
            replay_tier(reference, "tier1")
