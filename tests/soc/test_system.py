"""Tests for SoC configuration and system profiles."""

import pytest

from repro.errors import ConfigError
from repro.mem import PMPRegion
from repro.soc import PROFILES, SoCConfig, System, build_embedded_system, \
    build_system
from repro.soc.devices import UART_BASE


class TestSoCConfig:
    def test_table2_defaults(self):
        config = SoCConfig()
        assert config.isa == "RV64IMAC"
        assert config.l1i.size == 32 * 1024 and config.l1i.ways == 8
        assert config.l1d.size == 32 * 1024 and config.l1d.ways == 8
        assert config.itlb_entries == 32 and config.dtlb_entries == 32
        assert config.memory_size == 4 << 30
        assert config.frequency_mhz == pytest.approx(125.0)

    def test_profiles(self):
        assert SoCConfig.for_profile("baseline").profile == "baseline"
        assert SoCConfig.for_profile("processor").profile == "processor"
        assert SoCConfig.for_profile("processor+kernel").profile == \
            "processor+kernel"

    def test_unknown_profile(self):
        with pytest.raises(ConfigError):
            SoCConfig.for_profile("turbo")

    def test_kernel_without_processor_rejected(self):
        with pytest.raises(ConfigError):
            SoCConfig(roload_processor=False, roload_kernel=True)

    def test_describe_rows(self):
        rows = dict(SoCConfig().describe())
        assert "RV64IMAC" in rows["ISA Extensions"]
        assert "32KiB 8-way" in rows["Caches"]
        assert "32-entry I-TLB" in rows["TLBs"]

    def test_override(self):
        config = SoCConfig.for_profile("baseline", itlb_entries=64)
        assert config.itlb_entries == 64
        assert config.profile == "baseline"


class TestSystem:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_build_all_profiles(self, profile):
        system = build_system(profile, memory_size=1 << 20)
        assert system.profile == profile
        assert system.core.roload_enabled == (profile != "baseline")
        assert system.mmu.roload_enabled == (profile != "baseline")

    def test_uart_output(self):
        system = build_system(memory_size=1 << 20)
        # Bare mode: write straight to the UART THR.
        system.core.store(UART_BASE, 1, ord("h"))
        system.core.store(UART_BASE, 1, ord("i"))
        assert system.uart.text == "hi"

    def test_reset_stats(self):
        system = build_system(memory_size=1 << 20)
        system.core.store(0x2000, 8, 1)
        assert system.timing.stats.cycles >= 0
        system.reset_stats()
        assert system.timing.stats.cycles == 0
        assert system.dcache.hits == 0 and system.dcache.misses == 0

    def test_seconds_at_frequency(self):
        system = build_system(memory_size=1 << 20)
        system.timing.stats.cycles = 125_000_000
        assert system.seconds() == pytest.approx(1.0)


class TestEmbeddedSystem:
    def test_pmp_backend(self):
        regions = [PMPRegion(0x0, 0x10000, readable=True, executable=True),
                   PMPRegion(0x10000, 0x1000, readable=True, key=5)]
        system = build_embedded_system(regions)
        # ld.ro against the keyed region succeeds via the PMP backend.
        from repro.isa.opcodes import MemOp
        assert system.mmu.translate(0x10008, MemOp.READ_RO,
                                    insn_key=5).paddr == 0x10008

    def test_pmp_backend_disabled(self):
        system = build_embedded_system([], roload_enabled=False)
        assert system.profile == "baseline"
