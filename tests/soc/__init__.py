"""Test package."""
