"""Tests for SoC peripherals (UART, boot ROM, MMIO plumbing)."""

import pytest

from repro.cpu import Core, MMIORegion
from repro.mem import MMU, PhysicalMemory
from repro.soc.devices import BOOT_ROM_BASE, BootROM, ConsoleUART, \
    UART_BASE


class TestConsoleUART:
    def test_collects_bytes(self):
        uart = ConsoleUART()
        region = uart.region()
        region.write(UART_BASE, 1, ord("o"))
        region.write(UART_BASE, 1, ord("k"))
        assert uart.text == "ok"

    def test_lsr_reports_ready(self):
        uart = ConsoleUART()
        region = uart.region()
        assert region.read(UART_BASE + 5, 1) == 0x20
        assert region.read(UART_BASE + 1, 1) == 0

    def test_non_thr_writes_ignored(self):
        uart = ConsoleUART()
        region = uart.region()
        region.write(UART_BASE + 4, 1, 0xFF)
        assert uart.text == ""

    def test_bare_metal_putchar_loop(self):
        """A bare-metal program prints via the UART MMIO window."""
        from repro.asm import assemble, link
        source = r"""
        .globl _start
        _start:
            li t0, 0x10000000
            li t1, 72          # 'H'
            sb t1, 0(t0)
            li t1, 105         # 'i'
            sb t1, 0(t0)
            ebreak
        """
        image = link([assemble(source)])
        memory = PhysicalMemory(1 << 28)
        core = Core(memory, MMU(memory))
        uart = ConsoleUART()
        core.add_mmio(uart.region())
        for segment in image.segments:
            memory.write_bytes(segment.vaddr, segment.data)
        core.pc = image.entry
        from repro.cpu import Trap
        with pytest.raises(Trap):
            for __ in range(100):
                core.step()
        assert uart.text == "Hi"


class TestBootROM:
    def test_load_into_memory(self):
        rom = BootROM(contents=b"BOOT")
        memory = PhysicalMemory(1 << 20)
        rom.load_into(memory)
        assert memory.read_bytes(BOOT_ROM_BASE, 4) == b"BOOT"

    def test_oversized_contents_rejected(self):
        with pytest.raises(ValueError):
            BootROM(contents=b"x" * (65 * 1024))

    def test_empty_rom_noop(self):
        rom = BootROM()
        memory = PhysicalMemory(1 << 20)
        rom.load_into(memory)
        assert memory.frame_count() == 0


class TestMMIORouting:
    def test_read_write_handlers(self):
        memory = PhysicalMemory(1 << 20)
        core = Core(memory, MMU(memory))
        seen = {}
        core.add_mmio(MMIORegion(
            0x8000, 0x100,
            read=lambda addr, width: 0xAB,
            write=lambda addr, width, value: seen.update(
                {addr: value})))
        core.store(0x8010, 1, 0x55)
        assert seen == {0x8010: 0x55}
        assert core.load(0x8000, 1, signed=False) == 0xAB

    def test_non_mmio_goes_to_memory(self):
        memory = PhysicalMemory(1 << 20)
        core = Core(memory, MMU(memory))
        core.add_mmio(MMIORegion(0x8000, 0x100))
        core.store(0x9000, 8, 7)
        assert memory.read(0x9000, 8) == 7
