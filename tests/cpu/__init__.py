"""Test package."""
