"""Tests for tracing/profiling tooling."""

import pytest

from repro.asm import assemble, link
from repro.cpu.tracer import Profiler, ROLoadMonitor, Tracer
from repro.kernel import Kernel
from repro.soc import build_system

SOURCE = r"""
.globl _start
_start:
    li t0, 5
loop:
    la a0, table
    ld.ro a1, (a0), 12
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    li a7, 93
    ecall
.section .rodata.key.12
table: .quad 1
"""


@pytest.fixture()
def machine():
    kernel = Kernel(build_system(memory_size=64 << 20))
    process = kernel.create_process(link([assemble(SOURCE)]))
    return kernel, process


class TestTracer:
    def test_records_instructions(self, machine):
        kernel, process = machine
        with Tracer(kernel.system.core, limit=1000) as tracer:
            kernel.run(process)
        assert tracer.entries
        texts = [e.text for e in tracer.entries]
        assert any("ld.ro" in t for t in texts)
        assert any("addi" in t for t in texts)
        # ecall traps instead of retiring, so it is (correctly) absent.
        assert not any("ecall" in t for t in texts)

    def test_limit_bounds_memory(self, machine):
        kernel, process = machine
        with Tracer(kernel.system.core, limit=5) as tracer:
            kernel.run(process)
        assert len(tracer.entries) == 5
        # Indices stay global even when trimmed.
        assert tracer.entries[-1].index > 5

    def test_filter_by_mnemonic(self, machine):
        kernel, process = machine
        with Tracer(kernel.system.core, only="ld.ro") as tracer:
            kernel.run(process)
        assert len(tracer.entries) == 5  # one per loop iteration
        assert all("ld.ro" in e.text for e in tracer.entries)

    def test_detach_restores_hook(self, machine):
        kernel, process = machine
        core = kernel.system.core
        tracer = Tracer(core)
        tracer.attach()
        tracer.detach()
        assert core.trace_hook is None
        kernel.run(process)  # runs fine without the hook

    def test_format(self, machine):
        kernel, process = machine
        with Tracer(kernel.system.core) as tracer:
            kernel.run(process)
        text = tracer.format(last=3)
        assert len(text.splitlines()) == 3


class TestProfiler:
    def test_cycle_attribution_sums(self, machine):
        kernel, process = machine
        core = kernel.system.core
        start_cycles = core.timing.stats.cycles
        with Profiler(core) as profiler:
            kernel.run(process)
        attributed = sum(profiler.cycle_counts.values())
        elapsed = core.timing.stats.cycles - start_cycles
        assert attributed == elapsed

    def test_hot_loop_dominates(self, machine):
        kernel, process = machine
        with Profiler(kernel.system.core) as profiler:
            kernel.run(process)
        pc, cycles, count = profiler.hottest(1)[0]
        assert count >= 5  # a loop-body instruction

    def test_format_with_symbols(self, machine):
        kernel, process = machine
        image = link([assemble(SOURCE)])
        with Profiler(kernel.system.core) as profiler:
            kernel.run(process)
        text = profiler.format(5, symbols=image.symbols)
        assert "_start" in text or "loop" in text


class TestROLoadMonitor:
    def test_counts_by_key(self, machine):
        kernel, process = machine
        with ROLoadMonitor(kernel.system.core) as monitor:
            kernel.run(process)
        assert monitor.by_key == {12: 5}
        assert all(e.mnemonic == "ld.ro" for e in monitor.events)
        assert "12" in monitor.format()

    def test_chained_hooks(self, machine):
        """Two attachables stack: both observe every instruction."""
        kernel, process = machine
        core = kernel.system.core
        with Profiler(core) as profiler:
            with ROLoadMonitor(core) as monitor:
                kernel.run(process)
        assert monitor.by_key[12] == 5
        assert profiler.instruction_counts

    def test_out_of_order_detach(self, machine):
        """Hooks detach independently, in any order."""
        kernel, process = machine
        core = kernel.system.core
        profiler = Profiler(core).attach()
        monitor = ROLoadMonitor(core).attach()
        profiler.detach()           # not last-attached-first
        kernel.run(process)
        monitor.detach()
        assert core.trace_hook is None
        assert monitor.by_key == {12: 5}
        assert not profiler.instruction_counts  # detached before the run


class TestJITBlindSpot:
    """Attaching an observer must deoptimize the tiered interpreter:
    every retired instruction reaches the hook, even ones that used to
    run inside hot tier-1/tier-2 compiled blocks (the blind spot)."""

    def _hot_core(self, monkeypatch):
        from .test_jit import countdown_loop, jit_core
        monkeypatch.setenv("REPRO_JIT", "1")
        core = jit_core(monkeypatch, threshold=2)
        countdown_loop(core, 200)
        return core

    def test_tracer_sees_every_instruction_when_attached_hot(
            self, monkeypatch):
        core = self._hot_core(monkeypatch)
        # Heat the loop until tier-2 blocks are compiled and running
        # (the tight budget raises; the compiled state survives).
        with pytest.raises(Exception):
            core.run(200, trap_handler=None)
        assert core.jit_compiled >= 1 and core._jit_blocks
        attach_instret = core.instret
        with Profiler(core) as profiler:
            # Attaching dropped the compiled state: no stale chain may
            # keep retiring instructions underneath the hook.
            assert not core._jit_blocks and not core._blocks
            core.run(10_000, trap_handler=None)  # runs to ebreak
        observed = sum(profiler.instruction_counts.values())
        assert observed == core.instret - attach_instret
        assert observed > 0

    def test_retiering_resumes_after_detach(self, monkeypatch):
        core = self._hot_core(monkeypatch)
        with Profiler(core):
            with pytest.raises(Exception):
                core.run(50, trap_handler=None)
        assert core.trace_hook is None
        compiled_before = core.jit_compiled
        core.run(10_000, trap_handler=None)
        # The loop got hot again and recompiled after the detach flush.
        assert core.jit_compiled > compiled_before
