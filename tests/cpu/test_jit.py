"""Tier-2 trace compiler: compilation, chaining, invalidation, faults.

The compiled tier (src/repro/cpu/jit.py) must be architecturally
invisible. These tests pin down the machinery itself: blocks past the
promotion threshold really compile, chain links form and are torn down
on every invalidation edge (fence.i, MMU generation bumps, SMC), and a
ROLoad fault raised from *inside* a hot compiled block is delivered
bit-identically to the slow interpreter — including the case where the
faulting ld.ro itself was hot (the pointer walks off its key's page).
"""

import pytest

from repro.asm import assemble, link
from repro.cpu import Core, TimingModel
from repro.cpu.jit import MAX_COMPILED_ENTRIES
from repro.kernel import Kernel, ProcessState, SIGSEGV
from repro.mem import MMU, PhysicalMemory
from repro.mem.tlb import TLB, TLBEntry
from repro.soc import build_system

from .conftest import CODE_BASE, I, assemble_at


def jit_core(monkeypatch, jit=True, threshold=1):
    monkeypatch.setenv("REPRO_JIT_DEBUG", "1")
    memory = PhysicalMemory(1 << 20)
    core = Core(memory, MMU(memory), timing=TimingModel(),
                fast_path=True, jit=jit, jit_threshold=threshold)
    core.pc = CODE_BASE
    return core


def countdown_loop(core, iters, body=2, tail=()):
    """li t0, iters; loop: <body x addi>; addi t0,-1; bnez loop; <tail>;
    ebreak. Returns the loop's start pc."""
    addr = assemble_at(core, [I("addi", rd=5, rs1=0, imm=iters)])
    loop_pc = addr
    insns = [I("addi", rd=6 + i, rs1=6 + i, imm=1) for i in range(body)]
    insns.append(I("addi", rd=5, rs1=5, imm=-1))
    addr = assemble_at(core, insns, addr)
    offset = loop_pc - addr
    addr = assemble_at(core, [I("bne", rs1=5, rs2=0, imm=offset)], addr)
    addr = assemble_at(core, list(tail) + [I("ebreak")], addr)
    return loop_pc


def run_to_ebreak(core, budget=10_000):
    return core.run(budget, trap_handler=None)


def test_hot_block_compiles_and_matches_tier1(monkeypatch):
    outcomes = {}
    for jit in (False, True):
        core = jit_core(monkeypatch, jit=jit, threshold=2)
        countdown_loop(core, 10)
        run_to_ebreak(core)
        outcomes[jit] = (core.regs[5], core.regs[6], core.regs[7],
                        core.instret, core.cycles)
        if jit:
            assert core.jit_compiled >= 1
            assert core._jit_blocks
        else:
            assert core.jit_compiled == 0 and not core._jit_blocks
    assert outcomes[True] == outcomes[False]
    assert outcomes[True][1] == 10  # the loop body really ran 10 times


def test_jit_disabled_by_constructor(monkeypatch):
    core = jit_core(monkeypatch, jit=False, threshold=1)
    countdown_loop(core, 10)
    run_to_ebreak(core)
    assert core.jit_compiled == 0 and not core._jit_blocks


def test_hot_loop_chains_to_itself(monkeypatch):
    core = jit_core(monkeypatch, threshold=2)
    loop_pc = countdown_loop(core, 10)
    run_to_ebreak(core)
    rec = core._jit_blocks[loop_pc]
    # The back edge of a hot loop is the simplest chain: the block links
    # straight back to its own compiled body.
    assert rec.links.get(loop_pc) is rec


def test_fence_i_flushes_compiled_blocks_and_links(monkeypatch):
    core = jit_core(monkeypatch, threshold=2)
    countdown_loop(core, 10, tail=[I("fence.i"),
                                   I("addi", rd=28, rs1=0, imm=7)])
    # By the time the run stops at ebreak the fence.i has executed.
    run_to_ebreak(core)
    assert core.regs[28] == 7
    assert core.jit_flushes >= 1
    assert not core._jit_blocks  # the hot loop's compiled body is gone


def test_fence_i_clears_links_of_surviving_references(monkeypatch):
    """Anyone still holding a JITBlock across a fence.i must see its
    chain links gone — a stale link would jump into dead code."""
    core = jit_core(monkeypatch, threshold=2)
    loop_pc = countdown_loop(core, 10)
    run_to_ebreak(core)
    rec = core._jit_blocks[loop_pc]
    assert rec.links  # non-vacuous: the self-link from the hot loop
    core.flush_decode_cache()  # what the fence.i handler calls
    assert not rec.links
    assert not core._jit_blocks
    assert core.jit_flushes >= 1


def test_generation_bump_flushes_compiled_blocks(monkeypatch):
    core = jit_core(monkeypatch, threshold=2)
    loop_pc = countdown_loop(core, 10)
    run_to_ebreak(core)
    rec = core._jit_blocks[loop_pc]
    core.mmu.flush()  # sfence.vma: bumps the MMU generation
    # The flush is lazy: the next dispatch notices the stale generation.
    core.pc = CODE_BASE
    run_to_ebreak(core)
    assert core.jit_flushes >= 1
    assert not rec.links
    assert core._jit_blocks.get(loop_pc) is not rec


def test_smc_store_flushes_compiled_blocks(monkeypatch):
    """A store over compiled code must drop the stale translation and
    execute the patched instruction — same result as the slow tier."""
    def program(core):
        insns = [
            I("lui", rd=5, imm=0x8),                  # t0 = DATA area
            I("lw", rd=6, rs1=5, imm=0),              # patched word
            I("lui", rd=7, imm=0x1),                  # t2 = 0x1000
            I("sw", rs1=7, rs2=6, imm=16),
            I("addi", rd=10, rs1=0, imm=1),           # gets patched
            I("ebreak"),
        ]
        assemble_at(core, insns)
        from repro.isa import encode
        core.memory.write(0x8000, 4,
                          encode(I("addi", rd=10, rs1=0, imm=9)))

    outcomes = {}
    for jit in (False, True):
        core = jit_core(monkeypatch, jit=jit, threshold=1)
        program(core)
        retired = run_to_ebreak(core)
        outcomes[jit] = (core.regs[10], retired, core.cycles)
        if jit:
            assert core.jit_flushes >= 1
    assert outcomes[True] == outcomes[False]
    assert outcomes[True][0] == 9


def test_oversized_block_splits(monkeypatch):
    """A block longer than MAX_COMPILED_ENTRIES compiles as a prefix;
    the suffix is promoted organically as its own block."""
    n = MAX_COMPILED_ENTRIES + 40
    outcomes = {}
    for jit in (False, True):
        core = jit_core(monkeypatch, jit=jit, threshold=2)
        addr = CODE_BASE
        for __ in range(n):
            addr = assemble_at(core, [I("addi", rd=6, rs1=6, imm=1)], addr)
        assemble_at(core, [I("jal", rd=0, imm=CODE_BASE - addr)], addr)
        with pytest.raises(Exception):
            core.run(6 * (n + 1))
        outcomes[jit] = (core.regs[6], core.instret, core.cycles)
        if jit:
            assert core.jit_compiled >= 2  # prefix + promoted suffix
            sizes = sorted(rec.n for rec in core._jit_blocks.values())
            assert sizes[-1] == MAX_COMPILED_ENTRIES
    assert outcomes[True] == outcomes[False]


# -- ROLoad faults raised from inside a hot compiled block -------------------

# The faulting ld.ro is itself the hot instruction: the pointer walks a
# table that fills its key-5 page exactly, then steps onto the next page.
# The linker places keyed rodata in ascending key order, each group page
# aligned, so the quad after the table lives on the key-9 page: the
# 513th iteration faults with KEY_MISMATCH from compiled code.
HOT_WALK_KEY = (
    ".globl _start\n"
    "_start:\n"
    "    li t0, 520\n"
    "    la s0, table\n"
    "loop:\n"
    "    ld.ro a1, (s0), 5\n"
    "    add s1, s1, a1\n"
    "    addi s0, s0, 8\n"
    "    addi t0, t0, -1\n"
    "    bnez t0, loop\n"
    "    li a7, 93\n"
    "    ecall\n"
    ".section .rodata.key.5\n"
    "table:\n" + "    .quad 1\n" * 512 +
    ".section .rodata.key.9\n"
    "sentinel:\n"
    "    .quad 2\n"
)

# Same walk, but the page after the table is ordinary writable .data:
# the pointee is not immutable, so ld.ro faults with NOT_READ_ONLY.
HOT_WALK_WRITABLE = (
    ".globl _start\n"
    "_start:\n"
    "    li t0, 520\n"
    "    la s0, table\n"
    "loop:\n"
    "    ld.ro a1, (s0), 5\n"
    "    add s1, s1, a1\n"
    "    addi s0, s0, 8\n"
    "    addi t0, t0, -1\n"
    "    bnez t0, loop\n"
    "    li a7, 93\n"
    "    ecall\n"
    ".section .rodata.key.5\n"
    "table:\n" + "    .quad 1\n" * 512 +
    ".section .data\n"
    "sentinel:\n"
    "    .quad 2\n"
)

TIERS = {
    "slow": ("0", "0", "0", "0"),
    "tier1": ("1", "0", "0", "0"),
    "tier2": ("1", "1", "0", "0"),
    "tier3": ("1", "1", "1", "0"),
    "tier4": ("1", "1", "1", "1"),
}

COMPARED = ("tier1", "tier2", "tier3", "tier4")


def run_hot_fault(monkeypatch, source, tier):
    fastpath, jit, tier3, tier4 = TIERS[tier]
    monkeypatch.setenv("REPRO_FASTPATH", fastpath)
    monkeypatch.setenv("REPRO_JIT", jit)
    monkeypatch.setenv("REPRO_TIER3", tier3)
    monkeypatch.setenv("REPRO_TIER4", tier4)
    monkeypatch.setenv("REPRO_JIT_THRESHOLD", "2")
    monkeypatch.setenv("REPRO_REGION_THRESHOLD", "2")
    monkeypatch.setenv("REPRO_JIT_DEBUG", "1")
    kernel = Kernel(build_system("processor+kernel", memory_size=64 << 20))
    process = kernel.create_process(link([assemble(source)]))
    kernel.run(process)
    return kernel, process


@pytest.mark.parametrize("source,reason,page_key", [
    (HOT_WALK_KEY, "key_mismatch", 9),
    (HOT_WALK_WRITABLE, "not_read_only", 0),
], ids=["key-mismatch", "writable-page"])
def test_roload_fault_inside_hot_compiled_block(monkeypatch, source,
                                                reason, page_key):
    results = {}
    for tier in TIERS:
        kernel, process = run_hot_fault(monkeypatch, source, tier)
        assert process.state is ProcessState.KILLED, tier
        assert process.signal.number == SIGSEGV, tier
        assert process.signal.roload, tier
        event = kernel.security_log[0]
        core = kernel.system.core
        if tier in ("tier2", "tier3", "tier4"):
            # Non-vacuity: the faulting pc lies inside a block that was
            # compiled and still cached when the fault was delivered.
            assert core.jit_compiled >= 1
            assert any(rec.start_pc <= event.pc < rec.end_pc
                       for rec in core._jit_blocks.values())
        if tier in ("tier3", "tier4"):
            # And the hot ld.ro loop really ran as a compiled region.
            assert core.regions_compiled >= 1
            assert any(region.covers(event.pc)
                       for region in core._regions.values())
        if tier == "tier4":
            # ... lowered by the flat backend, raising from inside it.
            assert core.flat_regions_compiled >= 1
            assert core.tier4_retired > 0
        results[tier] = (
            core.cycles, core.instret, len(kernel.security_log),
            event.reason, event.insn_key, event.page_key,
            event.pc, event.fault_address,
        )
    for tier in COMPARED:
        assert results[tier] == results["slow"], tier
    assert results["slow"][3] == reason
    assert results["slow"][4] == 5
    assert results["slow"][5] == page_key


@pytest.mark.parametrize("source,reason", [
    (HOT_WALK_KEY, "key_mismatch"),
    (HOT_WALK_WRITABLE, "not_read_only"),
], ids=["key-mismatch", "writable-page"])
def test_arch_event_stream_identical_across_tiers(monkeypatch, source,
                                                  reason):
    """The observability contract across tiers: the architectural event
    subsequence (faults, signals, MMU bumps — everything cat="arch") of
    a run that faults inside a hot compiled block is bit-identical in
    all four interpreter tiers."""
    from repro import obs
    from repro.obs import arch_sequence

    sequences = {}
    try:
        for tier in TIERS:
            obs.disable()
            obs.enable()
            kernel, __ = run_hot_fault(monkeypatch, source, tier)
            assert kernel.security_log  # the fault really happened
            sequences[tier] = arch_sequence(obs.OBS.events)
    finally:
        obs.disable()

    for tier in COMPARED:
        assert sequences[tier] == sequences["slow"], tier
    # Non-vacuity: the stream carries the violation and its signal.
    types = [dict(payload)["type"] for payload in sequences["slow"]]
    assert "roload.violation" in types
    assert "signal.delivery" in types
    violation = next(dict(payload) for payload in sequences["slow"]
                     if dict(payload)["type"] == "roload.violation")
    assert violation["reason"] == reason
    assert violation["insn_key"] == 5


def test_audit_chain_identical_across_tiers(monkeypatch):
    """The tamper-evident audit trail is part of the same cross-tier
    contract: a ROLoad key-mismatch raised inside a compiled region must
    produce a bit-identical hash chain — same records, same hashes, same
    head — under every interpreter tier, because audit records carry
    guest instret, never host time. Alongside it, the architectural
    event subsequence must also match (the satellite differential)."""
    from repro import obs
    from repro.obs import arch_sequence, verify_chain

    chains = {}
    sequences = {}
    try:
        for tier in TIERS:
            obs.disable()
            obs.enable(audit=True)
            kernel, __ = run_hot_fault(monkeypatch, HOT_WALK_KEY, tier)
            assert kernel.security_log, tier  # the fault really happened
            obs.OBS.audit.seal()
            chains[tier] = [dict(record)
                            for record in obs.OBS.audit.records]
            sequences[tier] = arch_sequence(obs.OBS.events)
    finally:
        obs.disable()

    for tier in COMPARED:
        assert chains[tier] == chains["slow"], tier
        assert sequences[tier] == sequences["slow"], tier
    chain = chains["slow"]
    assert verify_chain(chain) == []
    assert chain[0]["type"] == "audit.genesis"
    assert chain[-1]["type"] == "audit.seal"
    violation = next(record for record in chain
                     if record["type"] == "roload.violation")
    assert violation["reason"] == "key_mismatch"
    assert violation["insn_key"] == 5
    # Guest time, identical in every tier: 512 good walks retired the
    # same instruction count everywhere before the 513th ld.ro faulted.
    assert isinstance(violation["instret"], int)
    assert violation["instret"] > 512


@pytest.mark.parametrize("source", [HOT_WALK_KEY, HOT_WALK_WRITABLE],
                         ids=["key-mismatch", "writable-page"])
@pytest.mark.parametrize("tier", list(TIERS))
def test_roload_monitor_complete_under_hot_fault(monkeypatch, source,
                                                 tier):
    """An attached ROLoadMonitor observes every *retired* ld.ro in every
    tier — 512 good walks; the faulting 513th never retires. Attaching
    deoptimizes, so the compiled tier cannot hide executions from it."""
    from repro.cpu.tracer import ROLoadMonitor

    fastpath, jit, tier3, tier4 = TIERS[tier]
    monkeypatch.setenv("REPRO_FASTPATH", fastpath)
    monkeypatch.setenv("REPRO_JIT", jit)
    monkeypatch.setenv("REPRO_TIER3", tier3)
    monkeypatch.setenv("REPRO_TIER4", tier4)
    monkeypatch.setenv("REPRO_JIT_THRESHOLD", "2")
    monkeypatch.setenv("REPRO_REGION_THRESHOLD", "2")
    kernel = Kernel(build_system("processor+kernel", memory_size=64 << 20))
    process = kernel.create_process(link([assemble(source)]))
    with ROLoadMonitor(kernel.system.core) as monitor:
        kernel.run(process)
    assert process.state is ProcessState.KILLED
    assert monitor.by_key == {5: 512}


# -- the TLB shadow coupling the compiled memo relies on ---------------------

def _entry(ppn):
    return TLBEntry(ppn=ppn, readable=True, writable=False,
                    executable=False, user=True, key=0)


def test_tlb_shadow_purged_on_replace_evict_and_flush():
    tlb = TLB(entries=2)
    shadow = {}
    tlb.shadows = (shadow,)

    tlb.insert(1, _entry(11))
    shadow[1] = "memo"
    tlb.insert(1, _entry(12))      # replacement invalidates the memo
    assert 1 not in shadow

    shadow[1] = "memo"
    tlb.insert(2, _entry(22))
    tlb.insert(3, _entry(33))      # capacity eviction of vpn 1
    assert 1 not in shadow

    shadow[2] = shadow[3] = "memo"
    tlb.flush_page(3)
    assert 3 not in shadow and 2 in shadow
    tlb.flush()
    assert not shadow
