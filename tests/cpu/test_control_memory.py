"""Branches, jumps, loads/stores, AMO, CSR, and traps."""

import pytest

from repro.cpu import Cause, Core, TimingModel, Trap
from repro.cpu.csr import CSR_CYCLE, CSR_INSTRET, SCRATCH_BASE
from repro.errors import SimulationError
from repro.mem import MMU, PhysicalMemory
from repro.utils.bits import MASK64, to_u64

from .conftest import CODE_BASE, DATA_BASE, I, assemble_at, run_insns


@pytest.fixture()
def core():
    memory = PhysicalMemory(1 << 20)
    core = Core(memory, MMU(memory), timing=TimingModel())
    core.pc = CODE_BASE
    return core


class TestBranches:
    def test_taken_branch_redirects(self, core):
        core.regs[5] = core.regs[6] = 1
        assemble_at(core, [
            I("beq", rs1=5, rs2=6, imm=8),
            I("addi", rd=7, rs1=0, imm=1),   # skipped
            I("addi", rd=8, rs1=0, imm=2),
        ])
        core.step()
        assert core.pc == CODE_BASE + 8
        core.step()
        assert core.regs[7] == 0 and core.regs[8] == 2

    def test_not_taken_falls_through(self, core):
        core.regs[5], core.regs[6] = 1, 2
        assemble_at(core, [I("beq", rs1=5, rs2=6, imm=8)])
        core.step()
        assert core.pc == CODE_BASE + 4

    def test_backward_branch(self, core):
        core.regs[5] = 3
        # loop: addi t0, t0, -1 ; bne t0, x0, -4
        assemble_at(core, [
            I("addi", rd=5, rs1=5, imm=-1),
            I("bne", rs1=5, rs2=0, imm=-4),
        ])
        for __ in range(6):
            core.step()
        assert core.regs[5] == 0
        assert core.pc == CODE_BASE + 8

    def test_signed_vs_unsigned_branches(self, core):
        core.regs[5] = to_u64(-1)
        core.regs[6] = 1
        assemble_at(core, [I("blt", rs1=5, rs2=6, imm=100)])
        core.step()
        assert core.pc == CODE_BASE + 100  # -1 < 1 signed
        core.pc = CODE_BASE + 200
        assemble_at(core, [I("bltu", rs1=5, rs2=6, imm=100)],
                    base=CODE_BASE + 200)
        core.step()
        assert core.pc == CODE_BASE + 204  # 0xFFF..F > 1 unsigned

    def test_taken_branch_costs_more(self, core):
        core.regs[5] = core.regs[6] = 7
        assemble_at(core, [I("beq", rs1=5, rs2=6, imm=8)])
        core.step()
        assert core.timing.stats.branch_penalty_cycles > 0


class TestJumps:
    def test_jal_links(self, core):
        assemble_at(core, [I("jal", rd=1, imm=16)])
        core.step()
        assert core.pc == CODE_BASE + 16
        assert core.regs[1] == CODE_BASE + 4

    def test_jalr_clears_bit0(self, core):
        core.regs[5] = CODE_BASE + 17
        assemble_at(core, [I("jalr", rd=1, rs1=5, imm=0)])
        core.step()
        assert core.pc == CODE_BASE + 16

    def test_call_return_sequence(self, core):
        # jal ra, +12 ; addi t2, x0, 9 ; <target>: jalr x0, ra, 0
        assemble_at(core, [
            I("jal", rd=1, imm=12),
            I("addi", rd=7, rs1=0, imm=9),
            I("addi", rd=8, rs1=0, imm=5),
            I("jalr", rd=0, rs1=1, imm=0),  # ret
        ])
        core.step()          # call -> jalr at +12
        assert core.pc == CODE_BASE + 12
        core.step()          # ret -> back to +4
        assert core.pc == CODE_BASE + 4
        core.step()          # t2 = 9
        core.step()          # t3 = 5
        assert core.regs[7] == 9 and core.regs[8] == 5


class TestLoadsStores:
    def test_store_load_all_widths(self, core):
        core.regs[5] = DATA_BASE
        core.regs[6] = 0xDEADBEEF_CAFE_F00D & MASK64
        assemble_at(core, [
            I("sd", rs1=5, rs2=6, imm=0),
            I("ld", rd=7, rs1=5, imm=0),
            I("lw", rd=8, rs1=5, imm=0),
            I("lwu", rd=9, rs1=5, imm=0),
            I("lh", rd=10, rs1=5, imm=0),
            I("lhu", rd=11, rs1=5, imm=0),
            I("lb", rd=12, rs1=5, imm=0),
            I("lbu", rd=13, rs1=5, imm=0),
        ])
        for __ in range(8):
            core.step()
        assert core.regs[7] == 0xDEADBEEFCAFEF00D
        assert core.regs[8] == to_u64(0xFFFFFFFF_CAFEF00D)  # lw sign-extends
        assert core.regs[9] == 0xCAFEF00D
        assert core.regs[10] == to_u64(0xFFFF_FFFF_FFFF_F00D)
        assert core.regs[11] == 0xF00D
        assert core.regs[12] == to_u64(0x0D)
        assert core.regs[13] == 0x0D

    def test_negative_offset(self, core):
        core.regs[5] = DATA_BASE + 8
        core.regs[6] = 77
        assemble_at(core, [
            I("sw", rs1=5, rs2=6, imm=-8),
            I("lw", rd=7, rs1=5, imm=-8),
        ])
        core.step()
        core.step()
        assert core.regs[7] == 77

    def test_misaligned_load_traps(self, core):
        core.regs[5] = DATA_BASE + 1
        assemble_at(core, [I("ld", rd=7, rs1=5, imm=0)])
        with pytest.raises(Trap) as e:
            core.step()
        assert e.value.cause == Cause.MISALIGNED_LOAD

    def test_misaligned_store_traps(self, core):
        core.regs[5] = DATA_BASE + 2
        assemble_at(core, [I("sw", rs1=5, rs2=6, imm=0)])
        with pytest.raises(Trap) as e:
            core.step()
        assert e.value.cause == Cause.MISALIGNED_STORE


class TestAtomics:
    def test_lr_sc_success(self, core):
        core.regs[5] = DATA_BASE
        core.regs[6] = 42
        assemble_at(core, [
            I("lr.d", rd=7, rs1=5),
            I("sc.d", rd=8, rs1=5, rs2=6),
        ])
        core.step()
        core.step()
        assert core.regs[8] == 0  # success
        assert core.memory.read(DATA_BASE, 8) == 42

    def test_sc_without_reservation_fails(self, core):
        core.regs[5] = DATA_BASE
        core.regs[6] = 42
        assemble_at(core, [I("sc.d", rd=8, rs1=5, rs2=6)])
        core.step()
        assert core.regs[8] == 1
        assert core.memory.read(DATA_BASE, 8) == 0

    def test_amoadd(self, core):
        core.memory.write(DATA_BASE, 8, 10)
        core.regs[5] = DATA_BASE
        core.regs[6] = 5
        assemble_at(core, [I("amoadd.d", rd=7, rs1=5, rs2=6)])
        core.step()
        assert core.regs[7] == 10  # old value
        assert core.memory.read(DATA_BASE, 8) == 15

    def test_amoswap_w_sign_extends_old(self, core):
        core.memory.write(DATA_BASE, 4, 0x8000_0000)
        core.regs[5] = DATA_BASE
        core.regs[6] = 1
        assemble_at(core, [I("amoswap.w", rd=7, rs1=5, rs2=6)])
        core.step()
        assert core.regs[7] == 0xFFFF_FFFF_8000_0000
        assert core.memory.read(DATA_BASE, 4) == 1

    def test_amomax_signed(self, core):
        core.memory.write(DATA_BASE, 8, to_u64(-5))
        core.regs[5] = DATA_BASE
        core.regs[6] = 3
        assemble_at(core, [I("amomax.d", rd=7, rs1=5, rs2=6)])
        core.step()
        assert core.memory.read(DATA_BASE, 8) == 3

    def test_amominu_unsigned(self, core):
        core.memory.write(DATA_BASE, 8, to_u64(-5))  # huge unsigned
        core.regs[5] = DATA_BASE
        core.regs[6] = 3
        assemble_at(core, [I("amominu.d", rd=7, rs1=5, rs2=6)])
        core.step()
        assert core.memory.read(DATA_BASE, 8) == 3


class TestCSRAndSystem:
    def test_rdcycle_rdinstret(self, core):
        assemble_at(core, [
            I("addi", rd=5, rs1=0, imm=1),
            I("csrrs", rd=7, rs1=0, csr=CSR_INSTRET),
        ])
        core.step()
        core.step()
        # The csrrs reads instret mid-instruction: it sees the 1 retired
        # instruction before it (retirement is counted after execution).
        assert core.regs[7] == 1

    def test_cycle_advances(self, core):
        assemble_at(core, [
            I("csrrs", rd=7, rs1=0, csr=CSR_CYCLE),
            I("csrrs", rd=8, rs1=0, csr=CSR_CYCLE),
        ])
        core.step()
        core.step()
        assert core.regs[8] > core.regs[7]

    def test_scratch_csr_write_read(self, core):
        core.regs[5] = 0x1234
        assemble_at(core, [
            I("csrrw", rd=0, rs1=5, csr=SCRATCH_BASE),
            I("csrrs", rd=7, rs1=0, csr=SCRATCH_BASE),
        ])
        core.step()
        core.step()
        assert core.regs[7] == 0x1234

    def test_write_readonly_csr_traps(self, core):
        core.regs[5] = 1
        assemble_at(core, [I("csrrw", rd=0, rs1=5, csr=CSR_CYCLE)])
        with pytest.raises(Trap) as e:
            core.step()
        assert e.value.cause == Cause.ILLEGAL_INSTRUCTION

    def test_ecall_traps(self, core):
        assemble_at(core, [I("ecall")])
        with pytest.raises(Trap) as e:
            core.step()
        assert e.value.cause == Cause.ECALL_FROM_U
        assert e.value.pc == CODE_BASE

    def test_ebreak_traps(self, core):
        assemble_at(core, [I("ebreak")])
        with pytest.raises(Trap) as e:
            core.step()
        assert e.value.cause == Cause.BREAKPOINT

    def test_illegal_instruction_traps(self, core):
        core.memory.write(CODE_BASE, 4, 0xFFFF_FFFF)
        with pytest.raises(Trap) as e:
            core.step()
        assert e.value.cause == Cause.ILLEGAL_INSTRUCTION

    def test_fence_i_flushes_decode_cache(self, core):
        assemble_at(core, [I("addi", rd=5, rs1=0, imm=1), I("fence.i")])
        core.step()
        assert core._decode_cache
        core.step()
        assert not core._decode_cache


class TestRunLoop:
    def test_run_with_trap_handler(self, core):
        assemble_at(core, [
            I("addi", rd=10, rs1=0, imm=7),
            I("ecall"),
        ])
        seen = []

        def handler(trap):
            seen.append(trap.cause)
            return False

        retired = core.run(100, handler)
        assert retired == 1
        assert seen == [Cause.ECALL_FROM_U]

    def test_run_budget_exhaustion(self, core):
        assemble_at(core, [I("jal", rd=0, imm=0)])  # tight infinite loop
        with pytest.raises(SimulationError):
            core.run(100)

    def test_compressed_execution(self, core):
        from repro.isa import Instruction
        assemble_at(core, [
            (Instruction("addi", rd=10, rs1=0, imm=5), "c"),   # c.li a0, 5
            (Instruction("addi", rd=10, rs1=10, imm=3), "c"),  # c.addi
        ])
        core.step()
        core.step()
        assert core.regs[10] == 8
        assert core.pc == CODE_BASE + 4  # two 2-byte instructions
