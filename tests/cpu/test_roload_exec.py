"""End-to-end execution of ROLoad instructions through MMU translation.

These tests run ld.ro on a paged system: the full pipeline the paper
describes (decode -> new memory op type -> TLB permission + key check).
"""

import pytest

from repro.cpu import Cause, Core, TimingModel, Trap
from repro.isa import Instruction, encode, try_compress
from repro.mem import (
    MMU,
    FrameAllocator,
    PageTableBuilder,
    PhysicalMemory,
    ROLoadFailure,
)

CODE_VA = 0x10000
TABLE_VA = 0x20000   # read-only, keyed
DATA_VA = 0x30000    # read-write

CODE_PA = 0x400000
TABLE_PA = 0x401000
DATA_PA = 0x402000


def build_machine(table_key=111, *, roload_enabled=True,
                  table_writable=False):
    memory = PhysicalMemory(64 << 20)
    alloc = FrameAllocator(1 << 20, 4 << 20)
    builder = PageTableBuilder(memory, alloc)
    builder.map_page(CODE_VA, CODE_PA, readable=True, executable=True)
    builder.map_page(TABLE_VA, TABLE_PA, readable=True,
                     writable=table_writable, key=table_key)
    builder.map_page(DATA_VA, DATA_PA, readable=True, writable=True)
    mmu = MMU(memory, roload_enabled=roload_enabled)
    mmu.set_root(builder.root_ppn)
    core = Core(memory, mmu, timing=TimingModel(),
                roload_enabled=roload_enabled)
    core.pc = CODE_VA
    return core, builder


def put_code(core, insns, va=CODE_VA, pa=CODE_PA):
    offset = 0
    for insn in insns:
        if isinstance(insn, tuple) and insn[1] == "c":
            halfword = try_compress(insn[0])
            core.memory.write(pa + offset, 2, halfword)
            offset += 2
        else:
            core.memory.write(pa + offset, 4, encode(insn))
            offset += 4


class TestROLoadExecution:
    def test_successful_roload(self):
        core, __ = build_machine(table_key=111)
        core.memory.write(TABLE_PA + 8, 8, 0xCAFEBABE)
        core.regs[10] = TABLE_VA + 8
        put_code(core, [Instruction("ld.ro", rd=10, rs1=10, key=111)])
        core.step()
        assert core.regs[10] == 0xCAFEBABE

    def test_key_mismatch_traps_with_discrimination_info(self):
        core, __ = build_machine(table_key=111)
        core.regs[10] = TABLE_VA
        put_code(core, [Instruction("ld.ro", rd=10, rs1=10, key=222)])
        with pytest.raises(Trap) as e:
            core.step()
        trap = e.value
        assert trap.cause == Cause.LOAD_PAGE_FAULT
        assert trap.is_roload_fault
        assert trap.roload_reason is ROLoadFailure.KEY_MISMATCH
        assert trap.insn_key == 222 and trap.page_key == 111
        assert trap.tval == TABLE_VA

    def test_writable_page_traps(self):
        core, __ = build_machine(table_key=111, table_writable=True)
        core.regs[10] = TABLE_VA
        put_code(core, [Instruction("ld.ro", rd=10, rs1=10, key=111)])
        with pytest.raises(Trap) as e:
            core.step()
        assert e.value.roload_reason is ROLoadFailure.NOT_READ_ONLY

    def test_normal_load_from_keyed_page_still_works(self):
        core, __ = build_machine(table_key=111)
        core.memory.write(TABLE_PA, 8, 7)
        core.regs[10] = TABLE_VA
        put_code(core, [Instruction("ld", rd=10, rs1=10, imm=0)])
        core.step()
        assert core.regs[10] == 7

    def test_roload_from_writable_data_page_traps(self):
        """The attack path: a pointer redirected into attacker-controlled
        writable memory must fault."""
        core, __ = build_machine()
        core.memory.write(DATA_PA, 8, 0x41414141)  # injected "vtable"
        core.regs[10] = DATA_VA
        put_code(core, [Instruction("ld.ro", rd=10, rs1=10, key=111)])
        with pytest.raises(Trap) as e:
            core.step()
        assert e.value.is_roload_fault

    def test_baseline_core_raises_illegal_instruction(self):
        """§V-B baseline system: ld.ro is an unimplemented opcode."""
        core, __ = build_machine(roload_enabled=False)
        core.regs[10] = TABLE_VA
        put_code(core, [Instruction("ld.ro", rd=10, rs1=10, key=111)])
        with pytest.raises(Trap) as e:
            core.step()
        assert e.value.cause == Cause.ILLEGAL_INSTRUCTION

    def test_compressed_c_ld_ro_executes(self):
        core, __ = build_machine(table_key=17)
        core.memory.write(TABLE_PA, 8, 0x1234)
        core.regs[10] = TABLE_VA
        put_code(core, [(Instruction("ld.ro", rd=10, rs1=10, key=17), "c")])
        core.step()
        assert core.regs[10] == 0x1234
        assert core.pc == CODE_VA + 2

    def test_roload_ignores_offset_semantics(self):
        """ld.ro has no immediate offset: the address is exactly rs1."""
        core, __ = build_machine(table_key=5)
        core.memory.write(TABLE_PA, 8, 1111)
        core.memory.write(TABLE_PA + 8, 8, 2222)
        core.regs[10] = TABLE_VA + 8
        put_code(core, [Instruction("ld.ro", rd=11, rs1=10, key=5)])
        core.step()
        assert core.regs[11] == 2222

    def test_all_roload_widths(self):
        core, __ = build_machine(table_key=3)
        core.memory.write(TABLE_PA, 8, 0xFFFF_FFFF_FFFF_FFFF)
        widths = {"lb.ro": 0xFFFF_FFFF_FFFF_FFFF, "lbu.ro": 0xFF,
                  "lh.ro": 0xFFFF_FFFF_FFFF_FFFF, "lhu.ro": 0xFFFF,
                  "lw.ro": 0xFFFF_FFFF_FFFF_FFFF, "lwu.ro": 0xFFFF_FFFF,
                  "ld.ro": 0xFFFF_FFFF_FFFF_FFFF}
        for i, (name, expected) in enumerate(widths.items()):
            core.pc = CODE_VA
            core.regs[10] = TABLE_VA
            put_code(core, [Instruction(name, rd=11, rs1=10, key=3)])
            core.flush_decode_cache()
            core.step()
            assert core.regs[11] == expected, name

    def test_ld_ro_same_cost_as_ld(self):
        """Paper's central claim: the key check is free (parallel logic).

        Run identical loops with ld vs ld.ro (read-only page, warm TLB and
        cache); cycle counts must be identical.
        """
        def run_loop(use_roload):
            core, __ = build_machine(table_key=9)
            core.memory.write(TABLE_PA, 8, TABLE_VA)  # self-pointer
            load = Instruction("ld.ro", rd=11, rs1=10, key=9) \
                if use_roload else Instruction("ld", rd=11, rs1=10, imm=0)
            put_code(core, [
                Instruction("addi", rd=5, rs1=0, imm=100),
                load,
                Instruction("addi", rd=5, rs1=5, imm=-1),
                Instruction("bne", rs1=5, rs2=0, imm=-8),
            ])
            core.regs[10] = TABLE_VA
            for __ in range(1 + 3 * 100):
                core.step()
            return core.timing.stats.cycles

        assert run_loop(True) == run_loop(False)
