"""Region backends: formation, deoptimization, five-tier identity.

The region compiler (src/repro/cpu/regions.py) inlines hot tier-2 block
chains into single superblock functions; the tier-4 flat core
(src/repro/cpu/flatcore.py) lowers the same plans to pre-decoded array
dispatch. Like the tiers below them, both must be architecturally
invisible: these tests pin formation (hot loops really become regions),
the deoptimization edges (an SMC store and an MMU-generation bump taken
*mid-region* continue bit-identically in all five tiers), and the
overlap-suppression policy that keeps alternate entry splits of a live
region from recompiling near-identical superblocks.
"""

from repro.asm import assemble, link
from repro.cpu import Core, TimingModel
from repro.cpu.regions import DEFER, Region, compile_region
from repro.kernel import Kernel, ProcessState
from repro.mem import MMU, PhysicalMemory
from repro.soc import build_system

from .conftest import CODE_BASE, I, assemble_at

# tier name -> (fast_path, jit, tier3, tier4) for the Core constructor.
TIERS = {
    "slow": (False, False, False, False),
    "tier1": (True, False, False, False),
    "tier2": (True, True, False, False),
    "tier3": (True, True, True, False),
    "tier4": (True, True, True, True),
}

COMPARED = ("tier1", "tier2", "tier3", "tier4")


def tier_core(monkeypatch, tier):
    fast_path, jit, tier3, tier4 = TIERS[tier]
    monkeypatch.setenv("REPRO_JIT_DEBUG", "1")
    memory = PhysicalMemory(1 << 20)
    core = Core(memory, MMU(memory), timing=TimingModel(),
                fast_path=fast_path, jit=jit, jit_threshold=2,
                tier3=tier3, tier4=tier4, region_threshold=2)
    core.pc = CODE_BASE
    return core


def countdown_loop(core, iters, body=2):
    addr = assemble_at(core, [I("addi", rd=5, rs1=0, imm=iters)])
    loop_pc = addr
    insns = [I("addi", rd=6 + i, rs1=6 + i, imm=1) for i in range(body)]
    insns.append(I("addi", rd=5, rs1=5, imm=-1))
    addr = assemble_at(core, insns, addr)
    addr = assemble_at(core, [I("bne", rs1=5, rs2=0, imm=loop_pc - addr)],
                       addr)
    assemble_at(core, [I("ebreak")], addr)
    return loop_pc


# -- formation ---------------------------------------------------------------

def test_hot_loop_forms_region(monkeypatch):
    outcomes = {}
    for tier in TIERS:
        core = tier_core(monkeypatch, tier)
        loop_pc = countdown_loop(core, 50)
        core.run(10_000, trap_handler=None)  # stops at ebreak
        outcomes[tier] = (core.regs[5], core.regs[6], core.regs[7],
                         core.instret, core.cycles)
        if tier in ("tier3", "tier4"):
            assert core.regions_compiled >= 1
            region = core._regions[loop_pc]
            assert region.loop
            assert loop_pc in region.pcs
            if tier == "tier4":
                assert region.tier4
                assert core.flat_regions_compiled >= 1
                assert core.tier4_retired > 0
            else:
                assert not region.tier4
                assert core.tier3_retired > 0
        else:
            assert core.regions_compiled == 0 and not core._regions
    for tier in COMPARED:
        assert outcomes[tier] == outcomes["slow"], tier
    assert outcomes["slow"][1] == 50  # the body really ran 50 times


def test_residency_attributes_region_instructions(monkeypatch):
    core = tier_core(monkeypatch, "tier3")
    countdown_loop(core, 50)
    core.run(10_000, trap_handler=None)
    residency = core.tier_residency()
    assert residency["tier3_retired"] == core.tier3_retired > 0
    assert (residency["tier0_retired"] + residency["tier1_retired"]
            + residency["tier2_retired"] + residency["tier3_retired"]
            + residency["tier4_retired"]) == residency["retired"]
    assert residency["regions_compiled"] == core.regions_compiled >= 1


def test_residency_attributes_flat_region_instructions(monkeypatch):
    core = tier_core(monkeypatch, "tier4")
    countdown_loop(core, 50)
    core.run(10_000, trap_handler=None)
    residency = core.tier_residency()
    assert residency["tier4_retired"] == core.tier4_retired > 0
    assert residency["tier3_retired"] == 0
    assert (residency["tier0_retired"] + residency["tier1_retired"]
            + residency["tier2_retired"] + residency["tier3_retired"]
            + residency["tier4_retired"]) == residency["retired"]
    assert residency["flat_regions_compiled"] \
        == core.flat_regions_compiled >= 1


# -- overlap suppression -----------------------------------------------------

def test_region_covers_spans():
    region = Region(fn=None, n=4, vpn=1, start_pc=0x1000,
                    pcs=(0x1000, 0x2000), loop=True,
                    spans=((0x1000, 0x1010), (0x2000, 0x2008)))
    assert region.covers(0x1000)
    assert region.covers(0x100C)
    assert region.covers(0x2004)
    assert not region.covers(0x1010)
    assert not region.covers(0x0FFC)
    assert not region.covers(0x2008)


def test_alternate_entry_inside_live_region_defers(monkeypatch):
    """A head pc lying inside a live region's instruction range is an
    alternate entry split: compilation defers while lukewarm instead of
    building a near-identical superblock (or pinning the pc)."""
    core = tier_core(monkeypatch, "tier3")
    loop_pc = countdown_loop(core, 50)
    core.run(10_000, trap_handler=None)
    assert core._regions[loop_pc].covers(loop_pc + 4)
    assert compile_region(core, loop_pc + 4, 0) is DEFER
    # Past the escalated arrival bar the duplicate compile is allowed
    # again; here there is no tier-2 block at the split, so planning
    # (not deferral) rejects it.
    assert compile_region(core, loop_pc + 4, 10 ** 9) is None


# -- deoptimization: SMC store taken mid-region ------------------------------

def test_smc_store_mid_region_deoptimizes_identically(monkeypatch):
    """Twenty clean iterations make the loop a compiled region; then a
    side-exit block stores a patched encoding over the live region's
    body (no fence.i) and jumps back in. The patch must take effect on
    the very next iteration, identically in every tier."""
    from repro.isa import Instruction, encode

    def program(core):
        # 0x2000 holds the patch word: "addi a0, a0, 2".
        core.memory.write(0x2000, 4,
                          encode(Instruction("addi", rd=10, rs1=10, imm=2)))
        insns = [
            I("addi", rd=5, rs1=0, imm=30),     # t0 = 30 iterations
            I("addi", rd=29, rs1=0, imm=10),    # t4: patch trigger count
            I("lui", rd=6, imm=0x2),            # t1 = 0x2000
            I("lw", rd=7, rs1=6, imm=0),        # t2 = patch word
            I("lui", rd=28, imm=0x1),           # t3 = 0x1000
            # loop (0x1014):
            I("addi", rd=9, rs1=9, imm=1),      # s1 += 1
            I("addi", rd=10, rs1=10, imm=1),    # a0 += 1  <- 0x1018, patched
            I("addi", rd=5, rs1=5, imm=-1),
            I("beq", rs1=5, rs2=29, imm=12),    # t0 == 10: go patch
            I("bne", rs1=5, rs2=0, imm=-16),    # backedge
            I("ebreak"),
            # patch block (0x102c): store over the hot loop, re-enter.
            I("sw", rs1=28, rs2=7, imm=0x18),
            I("jal", rd=0, imm=-28),
        ]
        assemble_at(core, insns)

    outcomes = {}
    for tier in TIERS:
        core = tier_core(monkeypatch, tier)
        program(core)
        core.run(10_000, trap_handler=None)
        outcomes[tier] = (core.regs[9], core.regs[10], core.instret,
                         core.cycles)
        if tier in ("tier3", "tier4"):
            # The region formed during the clean phase, before the SMC
            # store invalidated it.
            assert core.regions_compiled >= 1
    for tier in COMPARED:
        assert outcomes[tier] == outcomes["slow"], tier
    # 20 iterations at +1, then the patch, then 10 at +2.
    assert outcomes["slow"][0] == 30
    assert outcomes["slow"][1] == 40


# -- deoptimization: MMU generation bump taken mid-run -----------------------

MPROTECT_BETWEEN_LOOPS = r"""
.globl _start
_start:
    li a0, 0
    li a1, 4096
    li a2, 3          # PROT_READ|PROT_WRITE
    li a3, 0
    li a4, 0
    li a7, 222
    ecall             # mmap a scratch page
    mv s0, a0
    li t0, 1234
    sd t0, 0(s0)
    li t1, 48
loop1:                # hot loop 1: plain loads from the RW page
    ld a1, 0(s0)
    add s1, s1, a1
    addi t1, t1, -1
    bnez t1, loop1
    mv a0, s0
    li a1, 4096
    li a2, 1          # PROT_READ
    li a3, 55         # seal with a key: sfence.vma mid-run
    li a7, 226
    ecall
    li t1, 48
loop2:                # hot loop 2: the same page, now keyed ld.ro
    ld.ro a2, (s0), 55
    add s2, s2, a2
    addi t1, t1, -1
    bnez t1, loop2
    li a0, 0
    li a7, 93
    ecall
"""


def run_kernel_tier(monkeypatch, source, tier):
    fast_path, jit, tier3, tier4 = TIERS[tier]
    monkeypatch.setenv("REPRO_FASTPATH", "1" if fast_path else "0")
    monkeypatch.setenv("REPRO_JIT", "1" if jit else "0")
    monkeypatch.setenv("REPRO_TIER3", "1" if tier3 else "0")
    monkeypatch.setenv("REPRO_TIER4", "1" if tier4 else "0")
    monkeypatch.setenv("REPRO_JIT_THRESHOLD", "2")
    monkeypatch.setenv("REPRO_REGION_THRESHOLD", "2")
    monkeypatch.setenv("REPRO_JIT_DEBUG", "1")
    kernel = Kernel(build_system("processor+kernel", memory_size=64 << 20))
    process = kernel.create_process(link([assemble(source)]))
    kernel.run(process)
    return kernel, process


def test_mmu_generation_bump_mid_region_identical(monkeypatch):
    """mprotect between two hot loops bumps the MMU generation while
    tier 3 has live regions; execution must continue bit-identically
    (same cycles, instructions, TLB behavior) in all four tiers."""
    results = {}
    for tier in TIERS:
        kernel, process = run_kernel_tier(monkeypatch,
                                          MPROTECT_BETWEEN_LOOPS, tier)
        assert process.state is ProcessState.EXITED, tier
        assert process.exit_code == 0, tier
        core = kernel.system.core
        mmu = kernel.system.mmu
        if tier in ("tier3", "tier4"):
            # Both hot loops became regions, before and after the bump.
            assert core.regions_compiled >= 2
            if tier == "tier4":
                assert core.tier4_retired > 0
            else:
                assert core.tier3_retired > 0
        results[tier] = (
            core.cycles, core.instret, mmu.generation,
            mmu.dtlb.hits, mmu.dtlb.misses, mmu.stats.walks,
            len(kernel.security_log),
        )
    for tier in COMPARED:
        assert results[tier] == results["slow"], tier
    assert results["slow"][6] == 0  # the sealed ld.ro never faulted
