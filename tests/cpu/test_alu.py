"""ALU, shift, and M-extension semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import Core, TimingModel
from repro.mem import MMU, PhysicalMemory
from repro.utils.bits import MASK64, to_s64, to_u64

from .conftest import CODE_BASE, I, run_insns

u64 = st.integers(min_value=0, max_value=MASK64)


def fresh_core(rs1=0, rs2=0):
    memory = PhysicalMemory(1 << 20)
    core = Core(memory, MMU(memory), timing=TimingModel())
    core.pc = CODE_BASE
    core.regs[5] = rs1  # t0
    core.regs[6] = rs2  # t1
    return core


def alu(name, rs1, rs2):
    core = fresh_core(rs1, rs2)
    run_insns(core, [I(name, rd=7, rs1=5, rs2=6)])
    return core.regs[7]


def alui(name, rs1, imm):
    core = fresh_core(rs1)
    run_insns(core, [I(name, rd=7, rs1=5, imm=imm)])
    return core.regs[7]


class TestBasicALU:
    def test_add_wraps(self):
        assert alu("add", MASK64, 1) == 0

    def test_sub_wraps(self):
        assert alu("sub", 0, 1) == MASK64

    def test_logic(self):
        assert alu("xor", 0b1100, 0b1010) == 0b0110
        assert alu("or", 0b1100, 0b1010) == 0b1110
        assert alu("and", 0b1100, 0b1010) == 0b1000

    def test_slt_signed_unsigned(self):
        assert alu("slt", to_u64(-1), 1) == 1
        assert alu("sltu", to_u64(-1), 1) == 0

    def test_shifts(self):
        assert alu("sll", 1, 63) == 1 << 63
        assert alu("srl", 1 << 63, 63) == 1
        assert alu("sra", to_u64(-8), 2) == to_u64(-2)

    def test_shift_uses_low_6_bits(self):
        assert alu("sll", 1, 64) == 1  # shamt 64 & 63 == 0

    def test_immediates(self):
        assert alui("addi", 5, -3) == 2
        assert alui("andi", 0xFF, 0x0F) == 0x0F
        assert alui("slti", to_u64(-5), 0) == 1
        assert alui("sltiu", 3, 5) == 1
        assert alui("xori", 0b101, -1) == to_u64(~0b101)

    def test_lui_sign_extends(self):
        core = fresh_core()
        run_insns(core, [I("lui", rd=7, imm=0x80000)])
        assert core.regs[7] == 0xFFFF_FFFF_8000_0000

    def test_auipc(self):
        core = fresh_core()
        run_insns(core, [I("auipc", rd=7, imm=1)])
        assert core.regs[7] == CODE_BASE + 0x1000

    def test_x0_writes_discarded(self):
        core = fresh_core(5, 5)
        run_insns(core, [I("add", rd=0, rs1=5, rs2=6)])
        assert core.regs[0] == 0


class TestWordOps:
    def test_addw_truncates_and_sign_extends(self):
        assert alu("addw", 0x7FFF_FFFF, 1) == 0xFFFF_FFFF_8000_0000

    def test_subw(self):
        assert alu("subw", 0, 1) == MASK64

    def test_sllw(self):
        assert alu("sllw", 1, 31) == 0xFFFF_FFFF_8000_0000

    def test_srlw_zero_extends_input(self):
        assert alu("srlw", 0xFFFF_FFFF_8000_0000, 31) == 1

    def test_sraw(self):
        assert alu("sraw", 0x8000_0000, 31) == MASK64

    def test_addiw(self):
        assert alui("addiw", 0xFFFF_FFFF, 0) == MASK64

    def test_word_shift_imm(self):
        assert alui("slliw", 1, 31) == 0xFFFF_FFFF_8000_0000
        assert alui("srliw", 0x8000_0000, 31) == 1
        assert alui("sraiw", 0x8000_0000, 31) == MASK64


class TestMExtension:
    def test_mul(self):
        assert alu("mul", 7, 6) == 42

    def test_mulh_signed(self):
        assert alu("mulh", to_u64(-1), to_u64(-1)) == 0  # (-1)*(-1)=1, hi=0

    def test_mulhu(self):
        assert alu("mulhu", MASK64, MASK64) == MASK64 - 1

    def test_mulhsu(self):
        assert alu("mulhsu", to_u64(-1), MASK64) == MASK64  # -1 * huge

    def test_div_semantics(self):
        assert to_s64(alu("div", to_u64(-7), 2)) == -3  # trunc toward zero
        assert to_s64(alu("rem", to_u64(-7), 2)) == -1

    def test_div_by_zero(self):
        assert alu("div", 42, 0) == MASK64
        assert alu("divu", 42, 0) == MASK64
        assert alu("rem", 42, 0) == 42
        assert alu("remu", 42, 0) == 42

    def test_div_overflow(self):
        min64 = 1 << 63
        assert alu("div", min64, to_u64(-1)) == min64
        assert alu("rem", min64, to_u64(-1)) == 0

    def test_word_div(self):
        assert alu("divw", to_u64(-8 & 0xFFFFFFFF), 2) == to_u64(-4)
        assert alu("divw", 42, 0) == MASK64
        assert alu("remw", 7, 0) == 7
        min32 = 0x8000_0000
        assert alu("divw", min32, 0xFFFF_FFFF) == 0xFFFF_FFFF_8000_0000

    def test_divuw_remuw(self):
        assert alu("divuw", 0x8000_0000, 2) == 0x4000_0000
        assert alu("remuw", 0x8000_0001, 2) == 1
        assert alu("divuw", 1, 0) == MASK64
        assert alu("remuw", 0xFFFF_FFFF, 0) == MASK64  # sext32 of input

    @settings(max_examples=50, deadline=None)
    @given(u64, u64)
    def test_mul_matches_python(self, a, b):
        assert alu("mul", a, b) == (a * b) & MASK64

    @settings(max_examples=50, deadline=None)
    @given(u64, st.integers(min_value=1, max_value=MASK64))
    def test_divu_matches_python(self, a, b):
        assert alu("divu", a, b) == a // b
        assert alu("remu", a, b) == a % b

    @settings(max_examples=50, deadline=None)
    @given(u64, u64)
    def test_div_rem_identity(self, a, b):
        """RISC-V requires a == div(a,b)*b + rem(a,b) (mod 2^64), b != 0."""
        if b == 0:
            return
        q = alu("div", a, b)
        r = alu("rem", a, b)
        assert (q * b + r) & MASK64 == a

    def test_muldiv_timing_charged(self):
        core = fresh_core(10, 3)
        run_insns(core, [I("div", rd=7, rs1=5, rs2=6)])
        assert core.timing.stats.muldiv_cycles >= 32
