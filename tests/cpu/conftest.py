"""Shared helpers for CPU tests: a bare-mode core running raw encodings."""

import pytest

from repro.cpu import Core, TimingModel
from repro.isa import Instruction, encode, try_compress
from repro.mem import MMU, PhysicalMemory

CODE_BASE = 0x1000
DATA_BASE = 0x8000


@pytest.fixture()
def machine():
    """A bare-translation core with 1 MiB of RAM; code at CODE_BASE."""
    memory = PhysicalMemory(1 << 20)
    mmu = MMU(memory)  # bare mode: identity translation
    core = Core(memory, mmu, timing=TimingModel())
    core.pc = CODE_BASE
    return core


def assemble_at(core, insns, base=CODE_BASE):
    """Write a list of Instructions (or (insn, 'c') for compressed) into
    memory at ``base`` and return the end address."""
    addr = base
    for item in insns:
        if isinstance(item, tuple) and item[1] == "c":
            halfword = try_compress(item[0])
            assert halfword is not None, f"not compressible: {item[0]}"
            core.memory.write(addr, 2, halfword)
            addr += 2
        else:
            core.memory.write(addr, 4, encode(item))
            addr += 4
    return addr


def run_insns(core, insns, steps=None):
    """Assemble at pc and execute each instruction once."""
    assemble_at(core, insns, core.pc)
    count = steps if steps is not None else len(insns)
    for __ in range(count):
        core.step()
    return core


def I(name, **kw):  # noqa: E743 - terse test helper
    return Instruction(name, **kw)
