"""Unit tests for the verdict machinery (cheap claims only; the full
sweep is benchmarks/test_verdicts.py)."""

import pytest

from repro.eval.verdicts import (
    Verdict,
    _hardware_claims,
    _loc_claim,
    _security_claims,
    render_verdicts,
)


class TestVerdictRecord:
    def test_str_pass_fail(self):
        good = Verdict("X", "s", "claim", True, "m")
        bad = Verdict("Y", "s", "claim", False, "m")
        assert "PASS" in str(good) and "FAIL" in str(bad)

    def test_render_counts(self):
        text = render_verdicts([
            Verdict("A", "s", "c", True, "m"),
            Verdict("B", "s", "c", False, "m"),
        ])
        assert "1/2 claims hold" in text


class TestCheapClaims:
    def test_hardware_claims_pass(self):
        verdicts = _hardware_claims()
        assert len(verdicts) == 3
        assert all(v.holds for v in verdicts)

    def test_loc_claim_passes(self):
        assert _loc_claim().holds

    def test_security_claims_pass(self):
        verdicts = _security_claims()
        assert len(verdicts) == 4
        assert all(v.holds for v in verdicts), \
            [str(v) for v in verdicts if not v.holds]


class TestMarkdownWriter:
    def test_write_markdown(self, tmp_path):
        # Use the report module with verdicts disabled via a tiny scale
        # is still expensive; test the formatting path only.
        from repro.eval.report import write_markdown
        import repro.eval.report as report_module
        original = report_module.full_report
        report_module.full_report = lambda scale: "BODY"
        try:
            target = tmp_path / "RESULTS.md"
            write_markdown(target, scale=0.1)
            text = target.read_text()
            assert "BODY" in text and text.startswith("# RESULTS")
        finally:
            report_module.full_report = original
