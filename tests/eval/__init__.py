"""Test package."""
