"""Unit tests for the roload-bench regression gate and record schema."""

import pytest

from repro.errors import ReproError
from repro.tools.benchtool import (DEFAULT_TOLERANCE, SCHEMA_VERSION,
                                   baseline_mips, build_parser, build_record,
                                   evaluate_gate)


def tier(mips, seconds=10.0):
    return {"sim_mips": mips, "wall_seconds": seconds,
            "instructions": int(mips * seconds * 1e6), "cycles": 0,
            "measurements": {}}


V2_RECORD = {
    "schema_version": 2,
    "scale": 1.0,
    "tiers": {"slow": tier(0.2), "tier1": tier(0.5), "tier2": tier(0.8)},
}

V1_RECORD = {"fast": {"sim_mips": 0.5}}  # the PR 1 schema


def test_baseline_prefers_tier2():
    assert baseline_mips(V2_RECORD) == 0.8


def test_baseline_falls_back_through_tiers():
    assert baseline_mips({"tiers": {"tier1": tier(0.5)}}) == 0.5
    assert baseline_mips({"tiers": {"slow": tier(0.2)}}) == 0.2


def test_baseline_reads_v1_schema():
    assert baseline_mips(V1_RECORD) == 0.5


def test_baseline_rejects_unknown_schema():
    with pytest.raises(ReproError):
        baseline_mips({"tiers": {}})
    with pytest.raises(ReproError):
        baseline_mips({"something": "else"})


def test_gate_passes_within_tolerance():
    # 15% default tolerance: floor is 0.8 * 0.85 = 0.68.
    ok, reference, floor = evaluate_gate(0.70, V2_RECORD)
    assert ok and reference == 0.8 and floor == pytest.approx(0.68)


def test_gate_fails_below_floor():
    ok, __, floor = evaluate_gate(0.60, V2_RECORD)
    assert not ok and 0.60 < floor


def test_gate_faster_is_never_an_error():
    ok, __, __ = evaluate_gate(5.0, V2_RECORD)
    assert ok


def test_gate_custom_tolerance():
    assert not evaluate_gate(0.70, V2_RECORD, tolerance=0.05)[0]
    assert evaluate_gate(0.70, V2_RECORD, tolerance=0.20)[0]


def test_build_record_schema():
    tiers = {"slow": tier(0.2, 40.0), "tier1": tier(0.5, 16.0),
             "tier2": tier(0.8, 10.0)}
    record = build_record(["429.mcf"], ["base", "cfi"], 0.5, tiers)
    assert record["schema_version"] == SCHEMA_VERSION
    assert record["tool"] == "roload-bench"
    assert record["scale"] == 0.5
    assert record["benchmarks"] == ["429.mcf"]
    assert record["variants"] == ["base", "cfi"]
    assert set(record["host"]) == {"python", "platform", "cpu_count"}
    assert record["speedup"] == {"tier1_over_slow": 2.5,
                                 "tier2_over_tier1": 1.6,
                                 "tier2_over_slow": 4.0}
    # The gate reads its reference straight back out of the record.
    assert baseline_mips(record) == 0.8


def test_build_record_prefers_sim_seconds():
    # Speedups compare simulation time when the sweeps carry it (wall
    # time includes tier-independent workload generation); the plain
    # wall_seconds fallback is what the other tests above exercise.
    tiers = {"tier1": dict(tier(0.5, 16.0), sim_seconds=8.0),
             "tier2": dict(tier(0.8, 10.0), sim_seconds=4.0)}
    record = build_record([], [], 1.0, tiers)
    assert record["speedup"]["tier2_over_tier1"] == 2.0


def test_build_record_partial_tiers():
    record = build_record([], [], 1.0, {"tier1": tier(0.5, 16.0)})
    assert "speedup" not in record
    assert baseline_mips(record) == 0.5


def test_parser_gate_flags():
    args = build_parser().parse_args(["--check-against", "BENCH_interp.json",
                                      "--report-only"])
    assert args.check_against.name == "BENCH_interp.json"
    assert args.report_only
    assert args.tolerance == DEFAULT_TOLERANCE
