"""Evaluation-harness tests (tiny scales; the real runs live in
benchmarks/)."""

import pytest

from repro.eval import (
    VARIANTS,
    make_hardening,
    run_benchmark,
    run_system_comparison,
    section_5b,
    table1,
    table2,
    table3_text,
)
from repro.eval.figures import FigureData
from repro.workloads import build_workload, profile

SCALE = 0.02


@pytest.fixture(scope="module")
def omnetpp_run():
    return run_benchmark("471.omnetpp", scale=SCALE)


class TestMeasurement:
    def test_all_variants_present(self, omnetpp_run):
        assert set(omnetpp_run.measurements) == set(VARIANTS)

    def test_functional_equivalence(self, omnetpp_run):
        codes = {m.exit_code for m in omnetpp_run.measurements.values()}
        assert len(codes) == 1

    def test_overhead_signs(self, omnetpp_run):
        """VTint and CFI must cost more than VCall and ICall."""
        assert omnetpp_run.overhead("vtint") > \
            omnetpp_run.overhead("vcall")
        assert omnetpp_run.overhead("cfi") > \
            omnetpp_run.overhead("icall")

    def test_cpi_reasonable(self, omnetpp_run):
        base = omnetpp_run.measurements["base"]
        assert 1.0 <= base.cpi < 5.0

    def test_memory_positive(self, omnetpp_run):
        assert omnetpp_run.measurements["base"].memory_kib > 1000

    def test_make_hardening(self):
        program = build_workload(profile("471.omnetpp"), scale=SCALE)
        assert make_hardening("base", program) is None
        assert len(make_hardening("vcall", program)) == 1
        with pytest.raises(Exception):
            make_hardening("nope", program)


class TestSystemComparison:
    def test_section_5b_zero_overhead(self):
        """§V-B: unhardened binaries run identically on all three
        profiles — the modifications are fully backward compatible."""
        rows = run_system_comparison("401.bzip2", scale=SCALE)
        cycles = {r.cycles for r in rows.values()}
        memory = {r.memory_kib for r in rows.values()}
        assert len(cycles) == 1, "system modifications changed timing"
        assert len(memory) == 1

    def test_section_5b_text(self):
        text = section_5b(scale=SCALE, benchmarks=["401.bzip2"])
        assert "401.bzip2" in text
        assert "0.000%" in text


class TestTables:
    def test_table1_components(self):
        text = table1()
        for label in ("RISC-V Processor", "Linux Kernel", "LLVM Back-end",
                      "Total"):
            assert label in text

    def test_table2_matches_paper_config(self):
        text = table2()
        assert "RV64IMAC" in text
        assert "32KiB 8-way" in text
        assert "4GiB DDR3" in text

    def test_table3_bounds(self):
        text = table3_text()
        assert "without ld.ro" in text and "with ld.ro" in text


class TestFigureData:
    def test_render_and_average(self):
        fig = FigureData(
            title="t", metric="cycles", benchmarks=["a", "b"],
            series={"x": [1.0, 3.0], "y": [2.0, 2.0]},
            paper_averages={"x": 2.0, "y": 2.0})
        assert fig.average("x") == 2.0
        text = fig.render()
        assert "paper avg" in text and "average" in text
