"""Test package."""
