"""End-to-end campaigns: classification at scale, dedup + minimization
through the journal, replay verification, and the schema-v1 record."""

import pytest

from repro.eval_model import Verdict
from repro.fuzz import (Campaign, comparison_from_records,
                        comparison_record, run_comparison)
from repro.fuzz.corpus import FuzzInput, ScheduleEntry
from repro.fuzz.executor import WarmVictimPool
from repro.fuzz.minimizer import dedup_key, minimize, replay_verify
from repro.fuzz.target import VictimSpec
from repro.tools.statstool import (is_campaign_record,
                                   validate_campaign_record)


@pytest.fixture(scope="module")
def pool():
    return WarmVictimPool()


@pytest.fixture(scope="module")
def small_report():
    return Campaign(executions=40, workers=1, mode="guided",
                    seed=11, schedule_max=2).run()


class TestExecutor:
    @pytest.mark.parametrize("kind,reason", [
        ("pte-key", "key_mismatch"),
        ("pte-writable", "not_read_only"),
        ("allowlist-ptr", "not_read_only"),
        ("wild-ptr", "not_present"),
    ])
    def test_each_kind_is_detected_with_its_reason(self, pool, kind,
                                                   reason):
        inp = FuzzInput(spec=VictimSpec(reps=6),
                        schedule=(ScheduleEntry(kind, 800),))
        outcome = pool.execute(inp)
        assert outcome.result.verdict is Verdict.DETECTED
        assert reason in outcome.result.detail
        assert outcome.result.coverage == outcome.signature
        assert outcome.result.divergence is not None

    def test_empty_schedule_is_benign(self, pool):
        outcome = pool.execute(FuzzInput(spec=VictimSpec(reps=4)))
        assert outcome.result.verdict is Verdict.BENIGN
        assert outcome.result.divergence is None  # matches baseline


class TestTriage:
    def test_minimize_preserves_the_dedup_key(self, pool):
        inp = FuzzInput(
            spec=VictimSpec(reps=10, vcalls=2, icalls=2, arith=4),
            schedule=(ScheduleEntry("pte-key", 500, 1),
                      ScheduleEntry("wild-ptr", 3000),
                      ScheduleEntry("pte-writable", 3500)))
        reference = pool.execute(inp).result
        small, small_run = minimize(pool, inp, reference)
        assert dedup_key(small, small_run) == dedup_key(inp, reference)
        assert len(small.schedule) <= len(inp.schedule)
        assert small.spec.reps <= inp.spec.reps

    def test_replay_verify_confirms_a_reproducer(self, pool):
        inp = FuzzInput(spec=VictimSpec(reps=8),
                        schedule=(ScheduleEntry("pte-key", 1000),))
        verified, run = replay_verify(pool, inp)
        assert verified
        assert run.verdict is Verdict.DETECTED


class TestCampaign:
    def test_small_guided_campaign_is_ok(self, small_report):
        report = small_report
        assert report.executions == 40
        assert report.result.injections > 0
        assert len(report.result.escapes) == 0
        assert report.unexplained_escapes == 0
        assert report.ok
        assert report.unique_signatures > 0
        assert report.corpus_size > 0
        # The coverage curve is monotone and ends at the final count.
        counts = [count for _, count in report.coverage_curve]
        assert counts == sorted(counts)
        assert counts[-1] == report.unique_signatures

    def test_record_validates_against_schema_v1(self, small_report):
        record = small_report.to_record()
        assert is_campaign_record(record)
        assert validate_campaign_record(record) == []

    def test_unknown_mode_rejected(self):
        from repro.errors import ReplayError
        with pytest.raises(ReplayError, match="unknown campaign mode"):
            Campaign(executions=1, mode="psychic")

    def test_worker_fanout_matches_serial(self):
        """The multiprocessing path must classify identically to the
        serial path (same seed, same budget)."""
        serial = Campaign(executions=16, workers=1, mode="random",
                          seed=3, schedule_max=2).run()
        fanned = Campaign(executions=16, workers=2, mode="random",
                          seed=3, schedule_max=2).run()
        assert serial.unique_signatures == fanned.unique_signatures
        assert serial.result.table.to_dict() \
            == fanned.result.table.to_dict()


class TestComparison:
    def test_comparison_record_shape(self):
        guided, rand = run_comparison(executions=12, workers=1, seed=2,
                                      schedule_max=2)
        record = comparison_record(guided, rand)
        versus = record["guided_vs_random"]
        assert versus["budget"] == 12
        assert versus["guided_unique"] == guided.unique_signatures
        assert versus["random_unique"] == rand.unique_signatures
        assert record["ok"] == (guided.ok and rand.ok
                                and versus["guided_wins"])
        # Merging the saved records reproduces the same annotation.
        merged = comparison_from_records(guided.to_record(),
                                         rand.to_record())
        assert merged == record
