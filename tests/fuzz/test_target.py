"""The parameterized victim family: normalization bounds, the 12-bit
frame budget for unrolled shapes, and clean execution of the extremes."""

import pytest

from repro.fuzz.target import (ARITH_RANGE, CALLS_RANGE, REPS_RANGE,
                               VictimSpec, build_image)
from repro.kernel import run_program


class TestNormalization:
    def test_clamps_into_bounds(self):
        spec = VictimSpec(reps=999, vcalls=-2, icalls=99,
                          arith=999).normalized()
        assert REPS_RANGE[0] <= spec.reps <= REPS_RANGE[1]
        assert spec.vcalls == CALLS_RANGE[0]
        assert spec.icalls == CALLS_RANGE[1]
        assert spec.arith == ARITH_RANGE[1]

    def test_keeps_at_least_one_keyed_load(self):
        spec = VictimSpec(vcalls=0, icalls=0).normalized()
        assert spec.vcalls + spec.icalls >= 1

    def test_loop_specs_keep_full_reps_range(self):
        spec = VictimSpec(reps=REPS_RANGE[1], loop=True, vcalls=3,
                          icalls=3, arith=ARITH_RANGE[1]).normalized()
        assert spec.reps == REPS_RANGE[1]

    def test_unrolled_reps_shrink_with_round_size(self):
        slim = VictimSpec(reps=REPS_RANGE[1], vcalls=1, icalls=0,
                          arith=0).normalized()
        busy = VictimSpec(reps=REPS_RANGE[1], vcalls=3, icalls=3,
                          arith=ARITH_RANGE[1]).normalized()
        assert busy.reps < slim.reps

    def test_roundtrip_and_replace(self):
        spec = VictimSpec(reps=5, loop=True, vcalls=2)
        assert VictimSpec.from_dict(spec.to_dict()) == spec.normalized()
        assert spec.replace(arith=3).arith == 3
        assert spec.replace(arith=3).loop is True


@pytest.mark.parametrize("loop", [False, True])
@pytest.mark.parametrize("vcalls,icalls,arith",
                         [(1, 0, 0), (0, 3, 6), (3, 3, ARITH_RANGE[1])])
def test_extreme_shapes_build_and_run(loop, vcalls, icalls, arith):
    """Every corner of the spec space must assemble (the 12-bit frame
    budget) and exit cleanly when unperturbed."""
    spec = VictimSpec(reps=REPS_RANGE[1], loop=loop, vcalls=vcalls,
                      icalls=icalls, arith=arith)
    image = build_image(spec)
    process = run_program(image)
    assert process.state.value == "exited", process.status()
