"""The typed evaluation model: verdicts, run results, detection tables
— and the bit-for-bit compatibility with the PR 5 dict shapes."""

import json

import pytest

from repro.errors import ReproError
from repro.eval_model import (DEFAULT_KINDS, VERDICTS, CampaignResult,
                              DetectionTable, RunResult, Verdict)


class TestVerdict:
    def test_values_and_order(self):
        assert VERDICTS == ("detected", "benign", "crashed", "escaped")

    def test_prints_as_bare_word(self):
        assert f"{Verdict.DETECTED}" == "detected"
        assert str(Verdict.ESCAPED) == "escaped"

    def test_fail_stop(self):
        assert Verdict.DETECTED.fail_stop
        assert Verdict.BENIGN.fail_stop
        assert Verdict.CRASHED.fail_stop
        assert not Verdict.ESCAPED.fail_stop

    def test_coerces_from_string(self):
        assert Verdict("detected") is Verdict.DETECTED
        with pytest.raises(ValueError):
            Verdict("exploded")


class TestRunResult:
    def test_to_dict_is_the_old_injection_record_shape(self):
        result = RunResult(kind="pte-key", trigger=120, target="obj",
                           verdict="detected", detail="key_mismatch",
                           exit_code=None, signal=11)
        assert result.to_dict() == {
            "kind": "pte-key", "trigger": 120, "target": "obj",
            "outcome": "detected", "detail": "key_mismatch",
            "exit_code": None, "signal": 11}
        # Key order is part of the committed-JSON compatibility.
        assert list(result.to_dict()) == ["kind", "trigger", "target",
                                          "outcome", "detail",
                                          "exit_code", "signal"]

    def test_fuzz_fields_appended_only_when_present(self):
        result = RunResult(kind="wild-ptr", trigger=9, target="fp_slot",
                           verdict=Verdict.DETECTED,
                           coverage="abc123", divergence=451)
        data = result.to_dict()
        assert data["coverage"] == "abc123"
        assert data["divergence"] == 451
        assert list(data)[-2:] == ["coverage", "divergence"]

    def test_roundtrip(self):
        result = RunResult(kind="allowlist-ptr", trigger=7,
                           target="fp_slot", verdict="escaped",
                           detail="exit 66", exit_code=66,
                           coverage="ffff", divergence=12)
        again = RunResult.from_dict(result.to_dict())
        assert again == result
        assert again.verdict is Verdict.ESCAPED

    def test_outcome_property(self):
        result = RunResult(kind="pte-key", trigger=0, target="x",
                           verdict="benign")
        assert result.outcome == "benign"


class TestDetectionTable:
    def _results(self):
        mk = lambda kind, verdict: RunResult(
            kind=kind, trigger=0, target="t", verdict=verdict)
        return [mk("pte-key", "detected"), mk("pte-key", "benign"),
                mk("pte-writable", "detected"),
                mk("allowlist-ptr", "escaped"),
                mk("wild-ptr+pte-key", "detected")]

    def test_rate_excludes_benign(self):
        table = DetectionTable.from_results(self._results())
        # 4 consumed (1 benign), 3 detected.
        assert table.rate() == pytest.approx(3 / 4)
        assert table.total == 5

    def test_row_order_known_kinds_first(self):
        table = DetectionTable.from_results(self._results())
        order = table.row_order()
        assert order[:3] == list(DEFAULT_KINDS)
        assert order[3:] == ["wild-ptr+pte-key"]

    def test_format_has_all_columns(self):
        text = DetectionTable.from_results(self._results()).format()
        for word in ("class", "injected") + VERDICTS:
            assert word in text

    def test_dict_roundtrip(self):
        table = DetectionTable.from_results(self._results())
        again = DetectionTable.from_dict(table.to_dict())
        assert again.to_dict() == table.to_dict()
        assert again.rate() == table.rate()
        assert again.format() == table.format()


class TestCampaignResult:
    def _campaign(self):
        result = CampaignResult(baseline_exit=42,
                                total_instructions=1000)
        result.records.append(RunResult(
            kind="pte-key", trigger=5, target="obj",
            verdict="detected", signal=11))
        result.records.append(RunResult(
            kind="pte-writable", trigger=9, target="obj",
            verdict="benign", exit_code=42))
        return result

    def test_to_dict_is_the_old_campaign_report_shape(self):
        data = self._campaign().to_dict()
        assert list(data) == ["baseline_exit", "total_instructions",
                              "injections", "table", "escapes", "ok",
                              "records"]
        assert data["injections"] == 2
        assert data["escapes"] == 0
        assert data["ok"] is True

    def test_json_roundtrip(self, tmp_path):
        campaign = self._campaign()
        path = tmp_path / "table.json"
        campaign.save_json(path)
        again = CampaignResult.from_dict(json.loads(path.read_text()))
        assert again.to_dict() == campaign.to_dict()

    def test_from_dict_requires_records(self):
        with pytest.raises(ReproError, match="records"):
            CampaignResult.from_dict({"baseline_exit": 0})

    def test_escape_flips_ok(self):
        campaign = self._campaign()
        campaign.records.append(RunResult(
            kind="allowlist-ptr", trigger=1, target="fp_slot",
            verdict="escaped"))
        assert not campaign.ok
        assert len(campaign.escapes) == 1


def test_injection_record_alias_warns_but_works():
    from repro.replay.inject import CampaignReport, InjectionRecord
    with pytest.warns(DeprecationWarning, match="RunResult"):
        record = InjectionRecord(kind="pte-key", trigger=3,
                                 target="obj", outcome="detected")
    assert isinstance(record, RunResult)
    assert record.verdict is Verdict.DETECTED
    assert CampaignReport is CampaignResult
