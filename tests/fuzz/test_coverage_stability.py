"""Coverage signatures are tier-stable: the fork-determinism contract
extended to the fuzzer's feedback.

The same input — a loop victim long enough to push the tier-2/3/4
compilers past their thresholds, plus a multi-entry injection schedule
— must hash to the same signature and the same divergence point on
every interpreter tier. Without this, a corpus built on one tier would
be garbage on another, and "new coverage" could mean "different
simulator backend" instead of "different behavior"."""

import pytest

from repro.fuzz.corpus import FuzzInput, ScheduleEntry
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.executor import WarmVictimPool
from repro.fuzz.target import VictimSpec

TIERS = ("slow", "tier1", "tier2", "tier3", "tier4")


@pytest.fixture(scope="module")
def pool():
    return WarmVictimPool()


@pytest.fixture(scope="module")
def deep_input():
    # A loop victim hot enough to compile on tiers 2-4, injected twice:
    # a PTE key flip mid-run and a wild pointer later.
    return FuzzInput(
        spec=VictimSpec(reps=30, loop=True, vcalls=2, icalls=1,
                        arith=2),
        schedule=(ScheduleEntry("pte-key", 1400, 1),
                  ScheduleEntry("wild-ptr", 3000, 0)))


def test_signature_identical_across_tiers(pool, deep_input):
    outcomes = {tier: pool.execute(deep_input, tier=tier)
                for tier in TIERS}
    signatures = {tier: o.signature for tier, o in outcomes.items()}
    assert len(set(signatures.values())) == 1, signatures
    divergences = {tier: o.result.divergence
                   for tier, o in outcomes.items()}
    assert len(set(divergences.values())) == 1, divergences
    verdicts = {tier: o.result.verdict for tier, o in outcomes.items()}
    assert len(set(verdicts.values())) == 1, verdicts
    checks = {tier: o.checks_at for tier, o in outcomes.items()}
    assert len(set(checks.values())) == 1, checks


def test_baseline_signature_identical_across_tiers(pool):
    baseline = FuzzInput(spec=VictimSpec(reps=25, loop=True, vcalls=1,
                                         icalls=2))
    signatures = {tier: pool.execute(baseline, tier=tier).signature
                  for tier in TIERS}
    assert len(set(signatures.values())) == 1, signatures


def test_coverage_map_counts_novelty_once(pool, deep_input):
    coverage = CoverageMap()
    first = pool.execute(deep_input)
    assert coverage.add(first.signature)
    again = pool.execute(deep_input)
    assert again.signature == first.signature   # same input, same class
    assert not coverage.add(again.signature)
    assert len(coverage) == 1
