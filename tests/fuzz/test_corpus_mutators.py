"""The input model (schedules, corpus) and the mutation engine."""

import random

import pytest

from repro.errors import ReplayError
from repro.fuzz.corpus import (FRAC_SCALE, FUZZ_KINDS, Corpus, FuzzInput,
                               ScheduleEntry, VARIANT_SPAN)
from repro.fuzz.mutators import (HavocMutator, default_mutators,
                                 random_input)
from repro.fuzz.scheduler import GuidedScheduler, RandomScheduler
from repro.fuzz.target import VictimSpec


class TestScheduleEntry:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ReplayError, match="unknown injection kind"):
            ScheduleEntry(kind="cosmic-ray", frac=0).normalized()

    def test_clamps_frac_and_folds_variant(self):
        entry = ScheduleEntry(kind="pte-key", frac=99999,
                              variant=VARIANT_SPAN + 2).normalized()
        assert entry.frac == FRAC_SCALE - 1
        assert entry.variant == 2

    def test_wild_ptr_is_a_fuzz_kind(self):
        assert "wild-ptr" in FUZZ_KINDS
        ScheduleEntry(kind="wild-ptr", frac=0).normalized()


class TestFuzzInput:
    def test_kind_label(self):
        assert FuzzInput(spec=VictimSpec()).kind == "baseline"
        inp = FuzzInput(spec=VictimSpec(), schedule=(
            ScheduleEntry("pte-key", 10), ScheduleEntry("wild-ptr", 20)))
        assert inp.kind == "pte-key+wild-ptr"

    def test_dict_roundtrip(self):
        inp = FuzzInput(spec=VictimSpec(reps=3, loop=True),
                        schedule=(ScheduleEntry("pte-writable", 7, 1),))
        again = FuzzInput.from_dict(inp.to_dict())
        assert again.key() == inp.normalized().key()


class TestCorpus:
    def test_add_keyed_by_signature(self):
        corpus = Corpus(cap=8)
        inp = FuzzInput(spec=VictimSpec())
        assert corpus.add(inp, "sig-a")
        assert not corpus.add(inp, "sig-a")
        assert corpus.add(inp, "sig-b")
        assert len(corpus) == 2

    def test_eviction_drops_lowest_energy(self):
        corpus = Corpus(cap=2)
        rng = random.Random(0)
        corpus.add(FuzzInput(spec=VictimSpec(reps=1)), "a")
        corpus.add(FuzzInput(spec=VictimSpec(reps=2)), "b")
        for _ in range(10):     # decay whichever gets picked
            corpus.pick(rng)
        corpus.add(FuzzInput(spec=VictimSpec(reps=3)), "c")
        assert len(corpus) == 2
        assert "c" in {e.signature for e in corpus}

    def test_pick_decays_energy(self):
        corpus = Corpus()
        corpus.add(FuzzInput(spec=VictimSpec()), "only")
        entry = corpus.pick(random.Random(1))
        assert entry.picks == 1
        assert entry.energy < 1.0

    def test_pick_empty_returns_none(self):
        assert Corpus().pick(random.Random(1)) is None


class TestMutators:
    def test_random_input_is_normalized_and_deterministic(self):
        a = random_input(random.Random(42), 3)
        b = random_input(random.Random(42), 3)
        assert a.key() == b.key()
        assert a.normalized().key() == a.key()
        assert len(a.schedule) >= 1

    @pytest.mark.parametrize("mutator", default_mutators(3),
                             ids=lambda m: type(m).__name__)
    def test_mutations_stay_in_the_input_space(self, mutator):
        rng = random.Random(7)
        seed = random_input(rng, 3)
        for _ in range(50):
            mutated = mutator.mutate(rng, seed)
            assert mutated.key() == mutated.normalized().key()
            seed = mutated

    def test_havoc_changes_the_input(self):
        rng = random.Random(9)
        seed = random_input(rng, 3)
        assert any(HavocMutator(3).mutate(rng, seed).key() != seed.key()
                   for _ in range(8))


class TestSchedulers:
    def test_random_scheduler_ignores_feedback(self):
        rng = random.Random(3)
        sched = RandomScheduler(rng, 3)
        inp = sched.propose()
        sched.feedback(inp, "sig", True)
        assert sched.propose().key() != inp.key()

    def test_guided_explores_until_corpus_seeds(self):
        sched = GuidedScheduler(random.Random(5), 3)
        assert sched.explore_probability() == 1.0
        inp = sched.propose()
        sched.feedback(inp, "sig-1", True)
        assert len(sched.corpus) == 1
        assert sched.explore_probability() < 1.0

    def test_fixed_explore_pins_the_mix(self):
        sched = GuidedScheduler(random.Random(5), 3, explore=0.25)
        inp = sched.propose()
        sched.feedback(inp, "sig-1", True)
        assert sched.explore_probability() == 0.25

    def test_adaptive_mix_follows_novelty(self):
        sched = GuidedScheduler(random.Random(5), 3)
        inp = sched.propose()
        sched.feedback(inp, "sig-0", True)
        # Make exploration stop paying and exploitation keep paying.
        sched._hits["explore"].extend([0] * 40)
        sched._hits["exploit"].extend([1] * 40)
        assert sched.explore_probability() < 0.5
        assert sched.explore_probability() >= sched.MIN_MIX
