"""Test package."""
