"""Differential fuzzing: random IR programs, multiple configurations.

For randomly generated (but always well-formed) programs we require:

* compiling with and without compressed instructions yields the same
  architectural result (exit code);
* the three §V-B system profiles agree for programs without ld.ro;
* every defense preserves the result when the program uses tagged
  dispatch.

Failures here localise miscompares anywhere in IR->codegen->assembler->
linker->loader->core.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import IRBuilder, Module, Mv, compile_module
from repro.kernel import run_program

OPS = ("add", "sub", "xor", "or", "and", "mul", "sll", "srl", "sltu")


def random_program(seed: int) -> Module:
    """A random but well-formed module: straight-line arithmetic blocks,
    a bounded loop, stack traffic, and a helper call."""
    rng = random.Random(seed)
    m = Module(f"fuzz{seed}")

    helper = m.function("helper", num_params=2)
    b = IRBuilder(helper)
    x = b.param(0)
    for __ in range(rng.randrange(1, 6)):
        x = b.bin(rng.choice(OPS), x, b.param(1))
    b.ret(x)

    main = m.function("main")
    b = IRBuilder(main)
    b.local("slots", 64)
    base = b.lea("slots")
    acc = b.li(rng.randrange(1, 1000))

    # Straight-line block.
    for __ in range(rng.randrange(3, 20)):
        choice = rng.random()
        if choice < 0.6:
            acc = b.bin(rng.choice(OPS), acc,
                        b.li(rng.randrange(1, 2047)))
        elif choice < 0.8:
            offset = rng.randrange(0, 8) * 8
            b.store(acc, base, offset)
            acc = b.add(acc, b.load(base, offset))
        else:
            acc = b.call("helper",
                         [acc, b.li(rng.randrange(1, 100))])

    # A bounded countdown loop with a data-dependent branch.
    counter = b.li(rng.randrange(2, 12))
    zero = b.li(0)
    loop = b.fresh_label("loop")
    done = b.fresh_label("done")
    skip = b.fresh_label("skip")
    b.label(loop)
    b.cbr("eq", counter, zero, done)
    bit = b.bin("and", acc, b.li(1))
    b.cbr("eq", bit, zero, skip)
    bumped = b.addi(acc, rng.randrange(1, 50))
    b.function.ops.append(Mv(acc, bumped))
    b.label(skip)
    shifted = b.bin("xor", acc, counter)
    b.function.ops.append(Mv(acc, shifted))
    stepped = b.addi(counter, -1)
    b.function.ops.append(Mv(counter, stepped))
    b.br(loop)
    b.label(done)
    b.ret(acc)
    return m


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_rvc_equivalence_fuzz(seed):
    module = random_program(seed)
    compressed = run_program(compile_module(module, rvc=True),
                             max_instructions=2_000_000)
    expanded = run_program(compile_module(module, rvc=False),
                           max_instructions=2_000_000)
    assert compressed.state.value == expanded.state.value == "exited"
    assert compressed.exit_code == expanded.exit_code


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_profile_equivalence_fuzz(seed):
    """ld.ro-free programs behave identically on all three profiles —
    cycle-for-cycle (§V-B, as a property over random programs)."""
    module = random_program(seed)
    image = compile_module(module)
    results = []
    for profile in ("baseline", "processor", "processor+kernel"):
        process = run_program(image, profile=profile,
                              max_instructions=2_000_000)
        results.append((process.exit_code, process.state.value))
    assert len(set(results)) == 1


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_deterministic_execution_fuzz(seed):
    module = random_program(seed)
    image = compile_module(module)
    a = run_program(image, max_instructions=2_000_000)
    b = run_program(image, max_instructions=2_000_000)
    assert a.exit_code == b.exit_code


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_image_serialization_fuzz(seed):
    from repro.asm import Executable
    module = random_program(seed)
    image = compile_module(module)
    restored = Executable.from_bytes(image.to_bytes())
    a = run_program(image, max_instructions=2_000_000)
    b = run_program(restored, max_instructions=2_000_000)
    assert a.exit_code == b.exit_code
