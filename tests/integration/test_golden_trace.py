"""Golden-trace regression pin: the exact execution of a fixed program.

If any layer (assembler, linker, loader, decoder, executor, timing)
changes behaviour, this trace changes — a tripwire for accidental
semantic drift. Update the expectations ONLY after confirming the change
is intentional and correct.
"""

from repro.asm import assemble, link
from repro.cpu.tracer import Tracer
from repro.kernel import Kernel
from repro.soc import build_system

SOURCE = r"""
.option norvc
.globl _start
_start:
    li t0, 3
    la t1, table
loop:
    ld.ro t2, (t1), 21
    add t3, t3, t2
    addi t0, t0, -1
    bnez t0, loop
    mv a0, t3
    li a7, 93
    ecall
.section .rodata.key.21
table: .quad 5
"""


def test_golden_trace():
    image = link([assemble(SOURCE)])
    kernel = Kernel(build_system(memory_size=64 << 20))
    process = kernel.create_process(image)
    with Tracer(kernel.system.core, limit=100) as tracer:
        kernel.run(process)

    assert process.exit_code == 15  # 3 iterations x 5

    texts = [e.text for e in tracer.entries]
    assert texts == [
        "addi t0, zero, 3",
        "lui t1, 17",
        "addi t1, t1, 0",
        "ld.ro t2, (t1), 21",
        "add t3, t3, t2",
        "addi t0, t0, -1",
        "bne t0, zero, -12",
        "ld.ro t2, (t1), 21",
        "add t3, t3, t2",
        "addi t0, t0, -1",
        "bne t0, zero, -12",
        "ld.ro t2, (t1), 21",
        "add t3, t3, t2",
        "addi t0, t0, -1",
        "bne t0, zero, -12",
        "addi a0, t3, 0",
        "addi a7, zero, 93",
    ]

    # Cycle pin: 17 instructions, 3 ROLoad checks, deterministic timing.
    stats = kernel.system.timing.stats
    assert stats.instructions == 17
    assert kernel.system.mmu.stats.roload_checks == 3
    # The exact cycle count is part of the pin (update deliberately).
    assert stats.cycles == tracer.entries[-1].cycles


def test_golden_image_layout():
    image = link([assemble(SOURCE)])
    assert image.entry == 0x10000
    names = [s.name for s in image.segments]
    assert names == [".text", ".rodata.key.21"]
    assert image.segments[1].vaddr == 0x11000
    assert image.segments[1].key == 21
    assert image.symbols["table"] == 0x11000
