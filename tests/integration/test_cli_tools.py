"""CLI tool tests (main() invoked directly; no subprocesses needed)."""

import json
import os

import pytest

from repro.tools import asmtool, audittool, injecttool, objdump, runtool

GOOD_SOURCE = r"""
.globl _start
_start:
    la a0, table
    ld.ro a1, (a0), 42
    mv a0, a1
    li a7, 93
    ecall
.section .rodata.key.42
table: .quad 7
"""

DANGLING_KEY_SOURCE = r"""
.globl _start
_start:
    la a0, table
    ld.ro a1, (a0), 99
    ebreak
.section .rodata.key.42
table: .quad 7
"""


@pytest.fixture()
def good_image(tmp_path):
    source = tmp_path / "prog.s"
    source.write_text(GOOD_SOURCE)
    out = tmp_path / "prog.rex"
    assert asmtool.main([str(source), "-o", str(out)]) == 0
    return out


class TestAsmTool:
    def test_assemble_and_link(self, tmp_path, capsys):
        source = tmp_path / "p.s"
        source.write_text(GOOD_SOURCE)
        assert asmtool.main([str(source)]) == 0
        assert (tmp_path / "p.rex").exists()
        assert "entry" in capsys.readouterr().out

    def test_syntax_error_fails(self, tmp_path, capsys):
        source = tmp_path / "bad.s"
        source.write_text("frobnicate a0\n.globl _start\n_start: nop")
        assert asmtool.main([str(source)]) == 1
        assert "bad.s" in capsys.readouterr().err

    def test_missing_file(self, tmp_path):
        assert asmtool.main([str(tmp_path / "nope.s")]) == 1

    def test_audit_flag_catches_dangling_key(self, tmp_path, capsys):
        source = tmp_path / "d.s"
        source.write_text(DANGLING_KEY_SOURCE)
        assert asmtool.main([str(source), "--audit"]) == 2
        assert "E4" in capsys.readouterr().err

    def test_no_rvc_larger_output(self, tmp_path):
        source = tmp_path / "p.s"
        source.write_text(GOOD_SOURCE)
        small = tmp_path / "s.rex"
        big = tmp_path / "b.rex"
        asmtool.main([str(source), "-o", str(small)])
        asmtool.main([str(source), "-o", str(big), "--no-rvc"])
        assert big.stat().st_size >= small.stat().st_size


class TestRunTool:
    def test_run_exit_code_propagates(self, good_image):
        assert runtool.main([str(good_image)]) == 7

    def test_stats_output(self, good_image, capsys):
        runtool.main([str(good_image), "--stats"])
        out = capsys.readouterr().out
        assert "instructions" in out and "ROLoad checks" in out

    def test_trace_and_hot(self, good_image, capsys):
        runtool.main([str(good_image), "--trace", "5", "--hot", "3"])
        out = capsys.readouterr().out
        assert "trace" in out and "hottest" in out

    def test_baseline_profile_sigill(self, good_image, capsys):
        code = runtool.main([str(good_image), "--profile", "baseline"])
        assert code == 128 + 4  # SIGILL
        assert "SIGILL" in capsys.readouterr().out

    def test_missing_image(self, tmp_path):
        assert runtool.main([str(tmp_path / "nope.rex")]) == 1


class TestObjdump:
    def test_headers_default(self, good_image, capsys):
        assert objdump.main([str(good_image)]) == 0
        out = capsys.readouterr().out
        assert ".rodata.key.42" in out and "entry" in out

    def test_symbols(self, good_image, capsys):
        objdump.main([str(good_image), "-t"])
        assert "_start" in capsys.readouterr().out

    def test_disassembly_contains_ld_ro(self, good_image, capsys):
        objdump.main([str(good_image), "-d"])
        out = capsys.readouterr().out
        assert "ld.ro" in out
        assert "<_start>" in out


class TestAuditTool:
    def test_clean_image(self, good_image, capsys):
        assert audittool.main([str(good_image)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_dangling_key_fails(self, tmp_path, capsys):
        source = tmp_path / "d.s"
        source.write_text(DANGLING_KEY_SOURCE)
        out = tmp_path / "d.rex"
        asmtool.main([str(source), "-o", str(out)])
        assert audittool.main([str(out)]) == 2
        assert "E4" in capsys.readouterr().out

    def test_strict_warnings(self, tmp_path, capsys):
        source = tmp_path / "w.s"
        # Keyed section never loaded with ld.ro: W1 warning.
        source.write_text(
            ".globl _start\n_start: ebreak\n"
            ".section .rodata.key.5\nt: .quad 1\n")
        out = tmp_path / "w.rex"
        asmtool.main([str(source), "-o", str(out)])
        assert audittool.main([str(out)]) == 0
        assert audittool.main([str(out), "--strict"]) == 3


class TestConfigFlag:
    """The shared --config KEY=VAL surface (tools/cli.py)."""

    def test_runtool_accepts_field_and_env_spellings(self, good_image):
        assert runtool.main([str(good_image), "--config", "fast_path=0",
                             "--config", "REPRO_JIT=0"]) == 7

    def test_overrides_do_not_leak_into_environ(self, good_image):
        before = os.environ.get("REPRO_JIT")
        runtool.main([str(good_image), "--config", "jit=0"])
        assert os.environ.get("REPRO_JIT") == before

    def test_unknown_knob_is_a_usage_error(self, good_image, capsys):
        assert runtool.main([str(good_image), "--config", "warp=9"]) == 1
        assert "unknown config knob" in capsys.readouterr().err

    def test_missing_equals_is_a_usage_error(self, good_image, capsys):
        assert runtool.main([str(good_image), "--config", "jit"]) == 1
        assert "KEY=VAL" in capsys.readouterr().err

    def test_audittool_has_the_flag(self, good_image):
        assert audittool.main([str(good_image), "--config", "jit=0"]) == 0


class TestInjectTool:
    def test_verify_deterministic_across_tiers(self, tmp_path, capsys):
        snap = tmp_path / "ref.snap"
        journal = tmp_path / "ref.journal"
        code = injecttool.main(
            ["verify", "--stop-after", "150",
             "--snapshot-out", str(snap), "--journal-out", str(journal)])
        out = capsys.readouterr().out
        assert code == 0
        assert "replay deterministic across slow, tier1, tier2, tier3" in out
        assert "DIVERGED" not in out
        assert snap.exists() and journal.exists()

    def test_verify_honours_config_flag(self, capsys):
        code = injecttool.main(
            ["verify", "--stop-after", "150", "--tiers", "tier2",
             "--config", "jit_threshold=4"])
        assert code == 0

    def test_campaign_smoke_with_table(self, tmp_path, capsys):
        table = tmp_path / "table.json"
        code = injecttool.main(
            ["campaign", "--points", "1", "--quiet",
             "--table", str(table)])
        out = capsys.readouterr().out
        assert code == 0
        assert "escapes: 0" in out
        data = json.loads(table.read_text())
        assert data["ok"] is True
        assert data["injections"] == len(data["records"]) > 0

    def test_campaign_kind_filter(self, capsys):
        code = injecttool.main(
            ["campaign", "--points", "1", "--quiet",
             "--kinds", "pte-key"])
        assert code == 0
        assert "pte-key" in capsys.readouterr().out

    def test_campaign_writes_verifiable_audit_trail(self, tmp_path,
                                                    capsys):
        """--audit-out on a campaign seals per-injection verdicts and
        the campaign summary into a hash chain that verifies clean."""
        import json as _json
        from repro import obs
        from repro.obs import verify_file
        audit = tmp_path / "audit.jsonl"
        try:
            code = injecttool.main(
                ["campaign", "--points", "1", "--quiet",
                 "--kinds", "pte-key", "--audit-out", str(audit)])
        finally:
            obs.disable()
        assert code == 0
        assert "[audit:" in capsys.readouterr().out
        assert verify_file(audit) == []
        records = [_json.loads(line)
                   for line in audit.read_text().splitlines()]
        verdicts = [r for r in records if r["type"] == "inject.verdict"]
        assert len(verdicts) == 3          # one point x three key flips
        assert all(v["outcome"] == "detected" for v in verdicts)
        summary = next(r for r in records
                       if r["type"] == "inject.campaign")
        assert summary["ok"] is True and summary["escapes"] == 0
