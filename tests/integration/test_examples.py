"""Every example script must run clean and print its key findings.

Examples are user-facing documentation; these tests keep them from
rotting as the library evolves.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "exited with code 0" in out
        assert "key_mismatch" in out
        assert "SIGILL" in out            # baseline profile
        assert "security log" in out

    def test_vcall_protection(self, capsys):
        out = run_example("vcall_protection", capsys)
        assert "HIJACKED" in out          # the unprotected case
        assert "blocked by ROLoad" in out
        assert "blocked by software check" in out
        # The headline: VTint survives cross-type reuse, VCall blocks it.
        assert out.count("key_mismatch") >= 1

    def test_forward_edge_cfi(self, capsys):
        out = run_example("forward_edge_cfi", capsys)
        assert "ld.ro" in out
        assert "-> key" in out
        assert "exit=42" in out
        assert "hijacked=True" in out     # the §V-D residual, shown

    def test_allowlist_sandbox(self, capsys):
        out = run_example("allowlist_sandbox", capsys)
        assert "benign: exit=73" in out
        assert "pointee integrity violation" in out

    def test_embedded_iot(self, capsys):
        out = run_example("embedded_iot", capsys)
        assert "total reading = 42" in out
        assert "key=900" in out

    def test_profiling(self, capsys):
        out = run_example("profiling", capsys)
        assert "Hottest locations" in out
        assert "unified vtable key" in out
        assert "CPI" in out

    def test_all_examples_covered(self):
        """Every example file in examples/ has a test here."""
        scripts = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
        tested = {name[5:] for name in dir(TestExamples)
                  if name.startswith("test_") and
                  name != "test_all_examples_covered"}
        assert scripts <= tested, scripts - tested
