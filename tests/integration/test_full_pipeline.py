"""End-to-end integration tests across the whole stack."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import Executable, assemble, link
from repro.compiler import (
    GlobalVar,
    IRBuilder,
    Module,
    compile_module,
    func_type,
    I64,
)
from repro.defenses import TypeBasedCFI, VCallProtection
from repro.kernel import Kernel, run_program
from repro.soc import build_system
from repro.workloads import build_workload, profile


class TestToolchainRoundTrips:
    def test_hardened_binary_serialization_roundtrip(self):
        """A hardened image survives save/load and still enforces."""
        from repro.attacks import (build_victim_module, run_attack,
                                   inject_fake_vtable)
        image = compile_module(build_victim_module(),
                               hardening=[VCallProtection()])
        restored = Executable.from_bytes(image.to_bytes())
        outcome = run_attack(restored, inject_fake_vtable)
        assert outcome.blocked and outcome.roload_violation

    def test_rvc_equivalence(self):
        """The same module compiled with and without compression produces
        identical architectural results (exit code), with smaller code
        when compressed."""
        program = build_workload(profile("458.sjeng"), scale=0.02)
        small = compile_module(program.module, rvc=True)
        big = compile_module(program.module, rvc=False)
        code_small = sum(len(s.data) for s in small.segments
                         if s.executable)
        code_big = sum(len(s.data) for s in big.segments if s.executable)
        assert code_small < code_big
        a = run_program(small, max_instructions=20_000_000)
        b = run_program(big, max_instructions=20_000_000)
        assert a.exit_code == b.exit_code

    def test_disassembler_assembler_roundtrip_on_real_code(self):
        """Disassembling a compiled text segment and reassembling it
        reproduces the exact bytes (for the 4-byte subset: compressed
        re-encoding is canonical too, so the full stream round-trips)."""
        from repro.isa import disassemble_bytes
        program = build_workload(profile("401.bzip2"), scale=0.01)
        image = compile_module(program.module, rvc=False)
        text_segment = next(s for s in image.segments if s.executable)
        lines = []
        for __addr, __size, text in disassemble_bytes(text_segment.data):
            lines.append(text)
        # Data words inside .text (alignment padding) appear as .word 0;
        # replace with a nop-equivalent directive the assembler accepts.
        source = "\n".join(
            line if not line.startswith(".half") else ".half 0"
            for line in lines)
        reassembled = assemble(source, rvc=False)
        assert bytes(reassembled.sections[".text"].data) == \
            bytes(text_segment.data)

    def test_two_defenses_stack(self):
        """VCall + ICall can be applied together with one key space."""
        from repro.compiler import KeyAllocator
        from repro.attacks import build_victim_module
        allocator = KeyAllocator()
        victim = build_victim_module()
        image = compile_module(
            victim,
            hardening=[VCallProtection(allocator),
                       TypeBasedCFI(allocator)])
        process = run_program(image)
        assert process.state.value == "exited"


class TestMultiProcessIsolation:
    def test_keys_are_per_address_space(self):
        """Two processes with different keys on the same virtual address
        cannot interfere: keys live in per-process page tables."""
        def program(key):
            return link([assemble(f"""
            .globl _start
            _start:
                la a0, t
                ld.ro a1, (a0), {key}
                mv a0, a1
                li a7, 93
                ecall
            .section .rodata.key.{key}
            t: .quad {key}
            """)])

        kernel = Kernel(build_system(memory_size=128 << 20))
        p1 = kernel.create_process(program(7))
        p2 = kernel.create_process(program(9))
        kernel.run(p1)
        kernel.run(p2)
        assert p1.exit_code == 7
        assert p2.exit_code == 9
        assert not kernel.security_log

    def test_context_switch_preserves_registers(self):
        source = """
        .globl _start
        _start:
            li s1, 0x1234
            li a0, 0
            li a7, 93
            ecall
        """
        kernel = Kernel(build_system(memory_size=128 << 20))
        p1 = kernel.create_process(link([assemble(source)]))
        p2 = kernel.create_process(link([assemble(source)]))
        kernel.run(p1)
        kernel.run(p2)
        assert p1.saved_regs[9] == 0x1234
        assert p2.saved_regs[9] == 0x1234


class TestDefensePreservationProperty:
    @settings(max_examples=5, deadline=None)
    @given(st.sampled_from(["445.gobmk", "471.omnetpp", "473.astar"]),
           st.sampled_from(["vcall", "vtint", "icall", "cfi"]))
    def test_any_defense_preserves_behaviour(self, name, variant):
        """Property: for any benchmark and defense, hardened output ==
        baseline output (at tiny scale)."""
        from repro.eval.measure import make_hardening, run_variant
        program = build_workload(profile(name), scale=0.01)
        if variant in ("vcall", "vtint") and not program.module.vtables:
            return
        base = run_variant(program, "base")
        hardened = run_variant(program, variant)
        assert hardened.exit_code == base.exit_code


class TestComputationCorrectness:
    def test_fibonacci_via_compiler(self):
        m = Module("fib")
        fib = m.function("fib", num_params=1)
        b = IRBuilder(fib)
        n = b.param(0)
        base_case = b.fresh_label("base")
        b.cbr("ltu", n, b.li(2), base_case)
        a = b.call("fib", [b.addi(n, -1)])
        c = b.call("fib", [b.addi(n, -2)])
        b.ret(b.add(a, c))
        b.label(base_case)
        b.ret(n)
        main = m.function("main")
        b = IRBuilder(main)
        b.ret(b.call("fib", [b.li(10)]))
        assert run_program(compile_module(m)).exit_code == 55

    def test_memoized_loop_through_keyed_table(self):
        """Constants fetched through ld.ro behave exactly like plain
        loads in computation."""
        m = Module("t")
        m.global_var(GlobalVar("coeffs", section=".rodata.key.33",
                               init=[3, 5, 7, 11]))
        main = m.function("main")
        b = IRBuilder(main)
        from repro.compiler import ROLoadMD
        base = b.la("coeffs")
        total = b.li(0)
        for index in range(4):
            value = b.load(b.addi(base, 8 * index), 0,
                           roload_md=ROLoadMD(33))
            total = b.add(total, value)
        b.ret(total)
        assert run_program(compile_module(m)).exit_code == 26
