"""Tests for register naming and the disassembler."""

import pytest

from repro.errors import AssemblerError
from repro.isa import (
    Instruction,
    disassemble_bytes,
    disassemble_word,
    encode,
    format_instruction,
    try_compress,
)
from repro.isa import registers as R


class TestRegisters:
    def test_abi_names_roundtrip(self):
        for i in range(32):
            assert R.reg_index(R.reg_name(i)) == i

    def test_xn_names(self):
        assert R.reg_index("x0") == 0
        assert R.reg_index("x31") == 31

    def test_fp_alias(self):
        assert R.reg_index("fp") == R.reg_index("s0") == 8

    def test_case_insensitive(self):
        assert R.reg_index("A0") == 10

    def test_unknown_raises(self):
        with pytest.raises(AssemblerError):
            R.reg_index("q7")

    def test_reg_name_bounds(self):
        with pytest.raises(ValueError):
            R.reg_name(32)

    def test_rvc_regs(self):
        assert R.is_rvc_reg(8) and R.is_rvc_reg(15)
        assert not R.is_rvc_reg(7) and not R.is_rvc_reg(16)

    def test_calling_convention_partition(self):
        all_regs = set(R.CALLER_SAVED) | set(R.CALLEE_SAVED) | \
            {R.ZERO, R.SP, R.GP, R.TP}
        assert all_regs == set(range(32))
        assert not set(R.CALLER_SAVED) & set(R.CALLEE_SAVED)


class TestDisasm:
    def test_roload_paper_syntax(self):
        """Listing 3 syntax: ld.ro a0, (a0), 111"""
        text = format_instruction(Instruction("ld.ro", rd=10, rs1=10,
                                              key=111))
        assert text == "ld.ro a0, (a0), 111"

    def test_load_store(self):
        assert disassemble_word(
            encode(Instruction("ld", rd=10, rs1=3, imm=-1608))) == \
            "ld a0, -1608(gp)"
        assert disassemble_word(
            encode(Instruction("sd", rs1=3, rs2=10, imm=-1600))) == \
            "sd a0, -1600(gp)"

    def test_branch_and_jump(self):
        assert disassemble_word(
            encode(Instruction("beq", rs1=10, rs2=11, imm=16))) == \
            "beq a0, a1, 16"
        assert disassemble_word(
            encode(Instruction("jal", rd=1, imm=-32))) == "jal ra, -32"

    def test_system(self):
        assert disassemble_word(0x00000073) == "ecall"

    def test_csr(self):
        text = disassemble_word(
            encode(Instruction("csrrs", rd=10, rs1=0, csr=0xC00)))
        assert text == "csrrs a0, cycle, zero"

    def test_stream_mixed_widths(self):
        stream = bytearray()
        stream += encode(Instruction("addi", rd=10, rs1=0, imm=7)) \
            .to_bytes(4, "little")
        stream += try_compress(Instruction("add", rd=10, rs1=10, rs2=11)) \
            .to_bytes(2, "little")
        stream += encode(Instruction("ld.ro", rd=10, rs1=10, key=9)) \
            .to_bytes(4, "little")
        out = list(disassemble_bytes(bytes(stream), base_address=0x1000))
        assert out[0] == (0x1000, 4, "addi a0, zero, 7")
        assert out[1] == (0x1004, 2, "add a0, a0, a1")
        assert out[2] == (0x1006, 4, "ld.ro a0, (a0), 9")

    def test_stream_undecodable_emits_word(self):
        data = (0xFFFFFFFF).to_bytes(4, "little")
        out = list(disassemble_bytes(data))
        assert out[0][2].startswith(".word")
