"""Unit and property tests for repro.utils.bits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import bits as B


class TestMaskAndFields:
    def test_mask_widths(self):
        assert B.mask(0) == 0
        assert B.mask(1) == 1
        assert B.mask(8) == 0xFF
        assert B.mask(64) == B.MASK64

    def test_mask_negative_raises(self):
        with pytest.raises(ValueError):
            B.mask(-1)

    def test_bits_extract(self):
        assert B.bits(0b1011_0000, 7, 4) == 0b1011
        assert B.bits(0xDEADBEEF, 31, 16) == 0xDEAD
        assert B.bits(0xDEADBEEF, 15, 0) == 0xBEEF

    def test_bits_bad_range(self):
        with pytest.raises(ValueError):
            B.bits(0, 3, 5)

    def test_bit(self):
        assert B.bit(0b100, 2) == 1
        assert B.bit(0b100, 1) == 0

    def test_deposit(self):
        assert B.deposit(0, 7, 4, 0xA) == 0xA0
        assert B.deposit(0xFF, 3, 0, 0) == 0xF0

    def test_deposit_overflow_raises(self):
        with pytest.raises(ValueError):
            B.deposit(0, 3, 0, 16)

    @given(st.integers(min_value=0, max_value=B.MASK64),
           st.integers(min_value=0, max_value=63),
           st.integers(min_value=0, max_value=63))
    def test_deposit_then_extract(self, value, a, b):
        hi, lo = max(a, b), min(a, b)
        field = value & B.mask(hi - lo + 1)
        assert B.bits(B.deposit(0, hi, lo, field), hi, lo) == field


class TestSignExtension:
    def test_sext_basic(self):
        assert B.sext(0xFF, 8) == -1
        assert B.sext(0x7F, 8) == 127
        assert B.sext(0x800, 12) == -2048

    @given(st.integers(min_value=-(2 ** 11), max_value=2 ** 11 - 1))
    def test_sext_roundtrip_12(self, value):
        assert B.sext(value & 0xFFF, 12) == value

    @given(st.integers())
    def test_to_u64_to_s64_consistent(self, value):
        u = B.to_u64(value)
        assert B.to_u64(B.to_s64(u)) == u

    def test_sext32_to_u64(self):
        assert B.sext32_to_u64(0x8000_0000) == 0xFFFF_FFFF_8000_0000
        assert B.sext32_to_u64(1) == 1


class TestAlignment:
    def test_align_down_up(self):
        assert B.align_down(0x1FFF, 0x1000) == 0x1000
        assert B.align_up(0x1001, 0x1000) == 0x2000
        assert B.align_up(0x1000, 0x1000) == 0x1000

    @given(st.integers(min_value=0, max_value=2 ** 48),
           st.sampled_from([2, 4, 8, 16, 4096]))
    def test_align_invariants(self, value, alignment):
        down = B.align_down(value, alignment)
        up = B.align_up(value, alignment)
        assert down <= value <= up
        assert down % alignment == 0
        assert up % alignment == 0
        assert up - down in (0, alignment)

    def test_is_aligned(self):
        assert B.is_aligned(0x2000, 0x1000)
        assert not B.is_aligned(0x2001, 0x1000)


class TestFit:
    def test_fits_signed(self):
        assert B.fits_signed(2047, 12)
        assert not B.fits_signed(2048, 12)
        assert B.fits_signed(-2048, 12)
        assert not B.fits_signed(-2049, 12)

    def test_fits_unsigned(self):
        assert B.fits_unsigned(1023, 10)
        assert not B.fits_unsigned(1024, 10)
        assert not B.fits_unsigned(-1, 10)


class TestSplitHiLo:
    @given(st.integers(min_value=0, max_value=B.MASK32))
    def test_lui_addi_reconstruction(self, value):
        hi, lo = B.split_hi_lo(value)
        reconstructed = ((hi << 12) + B.sext(lo, 12)) & B.MASK32
        assert reconstructed == value

    def test_known_case(self):
        hi, lo = B.split_hi_lo(0x11604)
        assert hi == 0x11
        assert lo == 0x604


class TestMisc:
    def test_popcount(self):
        assert B.popcount(0) == 0
        assert B.popcount(0xFF) == 8
        assert B.popcount(B.MASK64) == 64

    def test_clog2(self):
        assert B.clog2(1) == 0
        assert B.clog2(2) == 1
        assert B.clog2(32) == 5
        assert B.clog2(33) == 6

    def test_clog2_invalid(self):
        with pytest.raises(ValueError):
            B.clog2(0)
