"""Test package."""
