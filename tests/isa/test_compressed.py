"""Tests for RVC decode and auto-compression, including c.ld.ro."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DecodingError
from repro.isa import (
    Instruction,
    decode_compressed,
    encode,
    try_compress,
)
from repro.isa.opcodes import RVC_KEY_MAX

rvc_regs = st.integers(min_value=8, max_value=15)


def fields_equal(a: Instruction, b: Instruction) -> bool:
    return (a.name == b.name and a.rd == b.rd and a.rs1 == b.rs1
            and a.rs2 == b.rs2 and a.imm == b.imm and a.key == b.key)


class TestCLdRo:
    """The paper's compressed ROLoad: reserved quadrant-0 funct3=100 slot."""

    def test_encoding_slot(self):
        hw = try_compress(Instruction("ld.ro", rd=8, rs1=9, key=0))
        assert hw is not None
        assert hw & 0b11 == 0b00          # quadrant 0
        assert (hw >> 13) & 0b111 == 0b100  # the reserved funct3 slot

    @given(rvc_regs, rvc_regs, st.integers(min_value=0, max_value=RVC_KEY_MAX))
    def test_roundtrip(self, rd, rs1, key):
        insn = Instruction("ld.ro", rd=rd, rs1=rs1, key=key)
        hw = try_compress(insn)
        assert hw is not None
        back = decode_compressed(hw)
        assert back.name == "ld.ro"
        assert back.length == 2
        assert fields_equal(back, insn)

    def test_key_too_large_not_compressible(self):
        assert try_compress(Instruction("ld.ro", rd=8, rs1=9, key=32)) is None

    def test_non_rvc_reg_not_compressible(self):
        assert try_compress(Instruction("ld.ro", rd=1, rs1=9, key=3)) is None
        assert try_compress(Instruction("ld.ro", rd=9, rs1=16, key=3)) is None

    def test_decoded_is_roload(self):
        hw = try_compress(Instruction("ld.ro", rd=10, rs1=11, key=5))
        assert decode_compressed(hw).is_roload


class TestKnownCompressed:
    """Golden RVC encodings from the C-extension spec."""

    def test_c_nop(self):
        insn = decode_compressed(0x0001)
        assert insn.name == "addi" and insn.rd == 0 and insn.imm == 0

    def test_c_ret(self):
        # c.jr ra == ret == 0x8082
        insn = decode_compressed(0x8082)
        assert insn.name == "jalr" and insn.rd == 0 and insn.rs1 == 1
        assert insn.imm == 0

    def test_c_ebreak(self):
        assert decode_compressed(0x9002).name == "ebreak"

    def test_c_li(self):
        # c.li a0, 1 = 0x4505
        insn = decode_compressed(0x4505)
        assert insn.name == "addi" and insn.rd == 10 and insn.rs1 == 0
        assert insn.imm == 1

    def test_c_mv(self):
        # c.mv a0, a1 = 0x852e
        insn = decode_compressed(0x852E)
        assert insn.name == "add" and insn.rd == 10
        assert insn.rs1 == 0 and insn.rs2 == 11

    def test_c_addi16sp(self):
        # c.addi16sp -32 = 0x7139 (addi sp, sp, -64)? use encode side:
        hw = try_compress(Instruction("addi", rd=2, rs1=2, imm=-64))
        back = decode_compressed(hw)
        assert back.rd == 2 and back.rs1 == 2 and back.imm == -64

    def test_illegal_zero(self):
        with pytest.raises(DecodingError):
            decode_compressed(0x0000)

    def test_not_compressed(self):
        with pytest.raises(DecodingError):
            decode_compressed(0x0003)  # low bits 11 = 32-bit encoding


def _candidate_instructions():
    """A spread of instructions whose compressed forms exist."""
    return [
        Instruction("addi", rd=0, rs1=0, imm=0),
        Instruction("addi", rd=5, rs1=5, imm=-4),
        Instruction("addi", rd=9, rs1=2, imm=16),
        Instruction("addi", rd=2, rs1=2, imm=32),
        Instruction("addi", rd=7, rs1=0, imm=-31),
        Instruction("addiw", rd=12, rs1=12, imm=7),
        Instruction("lui", rd=5, imm=0xFFFFF),  # -1 in 20-bit => c.lui
        Instruction("lw", rd=8, rs1=9, imm=64),
        Instruction("ld", rd=8, rs1=9, imm=64),
        Instruction("ld", rd=11, rs1=2, imm=40),
        Instruction("lw", rd=11, rs1=2, imm=40),
        Instruction("sw", rs1=9, rs2=8, imm=64),
        Instruction("sd", rs1=9, rs2=8, imm=64),
        Instruction("sd", rs1=2, rs2=1, imm=8),
        Instruction("sw", rs1=2, rs2=1, imm=8),
        Instruction("srli", rd=8, rs1=8, imm=3),
        Instruction("srai", rd=15, rs1=15, imm=63),
        Instruction("andi", rd=8, rs1=8, imm=-1),
        Instruction("sub", rd=8, rs1=8, rs2=9),
        Instruction("xor", rd=8, rs1=8, rs2=9),
        Instruction("or", rd=8, rs1=8, rs2=9),
        Instruction("and", rd=8, rs1=8, rs2=9),
        Instruction("subw", rd=8, rs1=8, rs2=9),
        Instruction("addw", rd=8, rs1=8, rs2=9),
        Instruction("slli", rd=4, rs1=4, imm=12),
        Instruction("add", rd=4, rs1=0, rs2=5),
        Instruction("add", rd=4, rs1=4, rs2=5),
        Instruction("jalr", rd=0, rs1=1, imm=0),
        Instruction("jalr", rd=1, rs1=5, imm=0),
        Instruction("jal", rd=0, imm=-2),
        Instruction("jal", rd=0, imm=100),
        Instruction("beq", rs1=8, rs2=0, imm=-2),
        Instruction("bne", rs1=15, rs2=0, imm=254),
        Instruction("ebreak"),
        Instruction("ld.ro", rd=8, rs1=15, key=31),
    ]


class TestCompressionRoundtrip:
    @pytest.mark.parametrize("insn", _candidate_instructions(),
                             ids=lambda i: f"{i.name}-{i.rd}-{i.imm}-{i.key}")
    def test_compress_then_decode_equals_original(self, insn):
        hw = try_compress(insn)
        assert hw is not None, f"{insn.name} unexpectedly not compressible"
        back = decode_compressed(hw)
        assert fields_equal(back, insn)

    @pytest.mark.parametrize("insn", _candidate_instructions(),
                             ids=lambda i: f"{i.name}-{i.rd}-{i.imm}-{i.key}")
    def test_semantics_match_32bit_twin(self, insn):
        """Compression must never change what executes: the expanded form
        of the compressed word equals the instruction's own fields."""
        if insn.name == "ebreak":
            return
        word = encode(insn)  # the 32-bit twin must also exist
        assert word is not None

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_decode_total_or_error(self, hw):
        try:
            insn = decode_compressed(hw)
        except DecodingError:
            return
        assert insn.length == 2
        # Every decodable compressed instruction recompresses to *some*
        # halfword that decodes to identical fields (canonicalisation may
        # pick a different but equivalent encoding).
        hw2 = try_compress(insn)
        if hw2 is not None:
            assert fields_equal(decode_compressed(hw2), insn)


class TestNotCompressible:
    def test_large_immediates(self):
        assert try_compress(Instruction("addi", rd=5, rs1=5, imm=100)) is None
        assert try_compress(Instruction("lw", rd=8, rs1=9, imm=1024)) is None

    def test_wrong_registers(self):
        assert try_compress(Instruction("sub", rd=1, rs1=1, rs2=2)) is None
        assert try_compress(Instruction("lw", rd=16, rs1=9, imm=4)) is None

    def test_unrelated_instruction(self):
        assert try_compress(Instruction("mul", rd=8, rs1=8, rs2=9)) is None
        assert try_compress(Instruction("ecall")) is None
