"""Encode/decode tests for 32-bit instructions, including the ROLoad family."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DecodingError, EncodingError
from repro.isa import Instruction, decode, encode, instruction_length
from repro.isa.opcodes import KEY_MAX, SPECS

regs = st.integers(min_value=0, max_value=31)
imm12 = st.integers(min_value=-2048, max_value=2047)


def roundtrip(insn: Instruction) -> Instruction:
    return decode(encode(insn))


def fields_equal(a: Instruction, b: Instruction) -> bool:
    return (a.name == b.name and a.rd == b.rd and a.rs1 == b.rs1
            and a.rs2 == b.rs2 and a.imm == b.imm and a.csr == b.csr
            and a.key == b.key)


class TestKnownEncodings:
    """Golden encodings cross-checked against the RISC-V spec."""

    def test_addi(self):
        # addi a0, a1, 42 -> imm=0x02A rs1=11 f3=0 rd=10 op=0x13
        assert encode(Instruction("addi", rd=10, rs1=11, imm=42)) == \
            0x02A58513

    def test_lui(self):
        assert encode(Instruction("lui", rd=10, imm=0x11)) == 0x00011537

    def test_ld(self):
        # ld a0, -1608(gp)  (paper Listing 3, line 1)
        word = encode(Instruction("ld", rd=10, rs1=3, imm=-1608))
        back = decode(word)
        assert back.name == "ld" and back.imm == -1608 and back.rs1 == 3

    def test_ecall_ebreak(self):
        assert encode(Instruction("ecall")) == 0x00000073
        assert encode(Instruction("ebreak")) == 0x00100073

    def test_nop(self):
        assert encode(Instruction("addi", rd=0, rs1=0, imm=0)) == 0x00000013

    def test_jal_ret_style(self):
        word = encode(Instruction("jalr", rd=0, rs1=1, imm=0))  # ret
        assert word == 0x00008067

    def test_sd(self):
        word = encode(Instruction("sd", rs1=2, rs2=10, imm=8))
        back = decode(word)
        assert back.name == "sd" and back.imm == 8
        assert back.rs1 == 2 and back.rs2 == 10


class TestROLoadEncoding:
    """The paper's ld.ro family: custom-0 opcode, key in imm[11:0]."""

    def test_ld_ro_key_in_imm_field(self):
        word = encode(Instruction("ld.ro", rd=10, rs1=10, key=111))
        assert word & 0x7F == 0b0001011  # custom-0
        assert (word >> 20) & 0xFFF == 111

    def test_all_widths_roundtrip(self):
        for name in ("lb.ro", "lh.ro", "lw.ro", "ld.ro",
                     "lbu.ro", "lhu.ro", "lwu.ro"):
            insn = Instruction(name, rd=5, rs1=6, key=222)
            back = roundtrip(insn)
            assert back.name == name
            assert back.key == 222
            assert back.is_roload

    def test_key_bounds(self):
        encode(Instruction("ld.ro", rd=1, rs1=1, key=KEY_MAX))
        with pytest.raises(EncodingError):
            encode(Instruction("ld.ro", rd=1, rs1=1, key=KEY_MAX + 1))
        with pytest.raises(EncodingError):
            encode(Instruction("ld.ro", rd=1, rs1=1, key=-1))

    def test_reserved_key_bits_reject_on_decode(self):
        # Bits beyond KEY_BITS in the key field are reserved; a word with
        # them set must not decode.
        word = encode(Instruction("ld.ro", rd=1, rs1=1, key=KEY_MAX))
        word |= 0x800 << 20  # set bit 11 of the key field
        with pytest.raises(DecodingError):
            decode(word)

    @given(regs, regs, st.integers(min_value=0, max_value=KEY_MAX))
    def test_roload_roundtrip_property(self, rd, rs1, key):
        insn = Instruction("ld.ro", rd=rd, rs1=rs1, key=key)
        assert fields_equal(roundtrip(insn), insn)

    def test_roload_has_no_offset(self):
        """ld.ro re-uses the immediate field for the key: decode leaves
        imm == 0, which is why the compiler inserts addi for offsets."""
        back = roundtrip(Instruction("ld.ro", rd=3, rs1=4, key=7))
        assert back.imm == 0


class TestRoundtripAllSpecs:
    @pytest.mark.parametrize("name", sorted(SPECS))
    def test_each_mnemonic_roundtrips(self, name):
        spec = SPECS[name]
        if spec.fmt in ("R", "AMO"):
            kwargs = {"rd": 11, "rs1": 12, "rs2": 13}
        elif spec.fmt == "I":
            kwargs = {"rd": 11, "rs1": 12, "imm": -5}
        elif spec.fmt == "S":
            kwargs = {"rs1": 12, "rs2": 13, "imm": -5}
        elif spec.fmt == "B":
            kwargs = {"rs1": 12, "rs2": 13, "imm": -8}
        elif spec.fmt == "U":
            kwargs = {"rd": 11, "imm": 0x12345}
        elif spec.fmt == "J":
            kwargs = {"rd": 11, "imm": 2048}
        elif spec.fmt == "SHIFT64":
            kwargs = {"rd": 11, "rs1": 12, "imm": 33}
        elif spec.fmt == "SHIFT32":
            kwargs = {"rd": 11, "rs1": 12, "imm": 13}
        elif spec.fmt == "CSR":
            kwargs = {"rd": 11, "rs1": 12, "csr": 0xC00}
        elif spec.fmt == "CSRI":
            kwargs = {"rd": 11, "csr": 0xC00, "imm": 9}
        elif spec.fmt == "RO":
            kwargs = {"rd": 11, "rs1": 12, "key": 42}
        else:  # SYS
            kwargs = {}
        if spec.semclass == "fence":
            kwargs = {}
        insn = Instruction(name, **kwargs)
        back = roundtrip(insn)
        assert fields_equal(back, insn), f"{name}: {back} != {insn}"

    @given(regs, regs, imm12)
    def test_itype_property(self, rd, rs1, imm):
        insn = Instruction("addi", rd=rd, rs1=rs1, imm=imm)
        assert fields_equal(roundtrip(insn), insn)

    @given(regs, regs, imm12)
    def test_stype_property(self, rs1, rs2, imm):
        insn = Instruction("sd", rs1=rs1, rs2=rs2, imm=imm)
        assert fields_equal(roundtrip(insn), insn)

    @given(regs, regs,
           st.integers(min_value=-2048, max_value=2047).map(lambda i: i * 2))
    def test_btype_property(self, rs1, rs2, imm):
        insn = Instruction("beq", rs1=rs1, rs2=rs2, imm=imm)
        assert fields_equal(roundtrip(insn), insn)

    @given(regs, st.integers(min_value=-(2 ** 19), max_value=2 ** 19 - 1)
           .map(lambda i: i * 2))
    def test_jtype_property(self, rd, imm):
        insn = Instruction("jal", rd=rd, imm=imm)
        assert fields_equal(roundtrip(insn), insn)

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_decode_total_or_error(self, word):
        """decode() either returns an Instruction or raises DecodingError —
        never crashes with another exception type."""
        try:
            insn = decode(word)
        except DecodingError:
            return
        assert isinstance(insn, Instruction)
        # Any successfully decoded word must re-encode to itself.
        assert encode(insn) == word


class TestEncodeErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(EncodingError):
            encode(Instruction("bogus"))

    def test_imm_overflow(self):
        with pytest.raises(EncodingError):
            encode(Instruction("addi", rd=1, rs1=1, imm=5000))

    def test_odd_branch_offset(self):
        with pytest.raises(EncodingError):
            encode(Instruction("beq", rs1=1, rs2=2, imm=3))

    def test_shift_overflow(self):
        with pytest.raises(EncodingError):
            encode(Instruction("slli", rd=1, rs1=1, imm=64))
        with pytest.raises(EncodingError):
            encode(Instruction("slliw", rd=1, rs1=1, imm=32))


class TestInstructionLength:
    def test_compressed_vs_full(self):
        assert instruction_length(0x0001) == 2
        assert instruction_length(0x8082) == 2
        assert instruction_length(0x0013) == 4
        assert instruction_length(0x0073) == 4
