"""End-to-end serve stack: asyncio front end, worker pool, sessions.

Boots a real server (worker processes included) on a Unix socket in a
tmpdir and drives it exactly like a client would. Small workload and
boot point keep this in CI-smoke territory; the heavy concurrency run
lives in the CI serve leg (repro.serve.loadgen).
"""

import asyncio
import json

import pytest

from repro.serve import protocol
from repro.serve.server import serve
from repro.serve.worker import Worker

BASE = {"profile": "processor+kernel", "workload": "429.mcf",
        "scale": 0.02, "variant": "vcall", "boot": 2000}


def _drive(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=120))


async def _with_server(scenario, workers=2):
    """Run ``scenario(request)`` against a live server."""
    import tempfile, os
    bound = asyncio.Event()
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "serve.sock")
        task = asyncio.create_task(
            serve(path=path, workers=workers, ready=lambda _: bound.set()))
        await asyncio.wait_for(bound.wait(), timeout=30)
        reader, writer = await asyncio.open_unix_connection(path)

        async def request(**fields):
            writer.write(protocol.encode(fields))
            await writer.drain()
            return json.loads(await reader.readline())

        try:
            return await scenario(request)
        finally:
            writer.close()
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass


class TestServerEndToEnd:
    def test_full_session_lifecycle_over_the_socket(self):
        async def scenario(request):
            reply = await request(op="ping")
            assert reply["ok"] and reply["workers"] == 2

            reply = await request(op="warm", **BASE)
            assert reply["ok"] and reply["workers"] == 2

            # Two sessions land on different workers (sid % 2).
            sids = []
            for tier in ("tier1", "tier4"):
                reply = await request(op="create", tier=tier, **BASE)
                assert reply["ok"], reply
                assert reply["source"] == "fork"
                sids.append(reply["session"])
            assert sids == [0, 1]

            for sid in sids:
                reply = await request(op="step", session=sid, n=1500)
                assert reply["ok"] and reply["executed"] == 1500

            # Same workload, same plan, different tiers and workers:
            # identical outside-visible state.
            hashes, heads = set(), set()
            for sid in sids:
                reply = await request(op="query", session=sid,
                                      hash=True)
                assert reply["ok"] and reply["state"] == "running"
                hashes.add(reply["state_hash"])
                heads.add(reply["audit"]["head"])
            assert len(hashes) == 1 and len(heads) == 1

            reply = await request(op="detach", session=sids[0])
            assert reply["ok"] and reply["state"] == "detached"
            reply = await request(op="step", session=sids[0], n=10)
            assert not reply["ok"] and "detached" in reply["error"]
            reply = await request(op="reattach", session=sids[0])
            assert reply["ok"] and reply["state"] == "running"

            reply = await request(op="stats")
            assert reply["ok"]
            assert sum(w["sessions"] for w in reply["workers"]) == 2

            for sid in sids:
                reply = await request(op="destroy", session=sid)
                assert reply["ok"]
                from repro.obs.audit import verify_chain
                assert verify_chain(reply["audit"]) == []

        _drive(_with_server(scenario))

    def test_protocol_violations_answered_not_fatal(self):
        async def scenario(request):
            reply = await request(op="conquer")
            assert not reply["ok"] and "unknown op" in reply["error"]
            reply = await request(op="step", session=999, n=10)
            assert not reply["ok"] and "unknown session" in reply["error"]
            reply = await request(op="create", profile="quantum",
                                  workload="429.mcf")
            assert not reply["ok"]
            # The server survived all of it.
            reply = await request(op="ping")
            assert reply["ok"]

        _drive(_with_server(scenario, workers=1))

    def test_cap_request_above_maximum_denied_at_create(self):
        async def scenario(request):
            reply = await request(op="create",
                                  caps={"instret": 10**12}, **BASE)
            assert not reply["ok"]
            assert "exceeds the server maximum" in reply["error"]

        _drive(_with_server(scenario, workers=1))


class TestWorkerInline:
    """Worker dispatch details that don't need real processes."""

    def test_session_limit_fails_closed(self):
        from repro import config
        with config.overrides(serve_sessions=1):
            worker = Worker(0, config.current())
            reply = worker.handle({"op": "create", "session": 0, **BASE})
            assert reply["ok"]
            reply = worker.handle({"op": "create", "session": 1, **BASE})
            assert not reply["ok"]
            assert "session limit" in reply["error"]
            worker.handle({"op": "destroy", "session": 0})
            reply = worker.handle({"op": "create", "session": 1, **BASE})
            assert reply["ok"]

    def test_duplicate_session_id_denied(self):
        worker = Worker(0)
        assert worker.handle({"op": "create", "session": 5, **BASE})["ok"]
        reply = worker.handle({"op": "create", "session": 5, **BASE})
        assert not reply["ok"] and "already exists" in reply["error"]

    def test_worker_never_raises(self):
        worker = Worker(0)
        reply = worker.handle({"op": "query", "session": 404})
        assert reply == {"ok": False, "error": "unknown session 404"}
        reply = worker.handle({"op": "shutdown"})
        assert not reply["ok"]
