"""Session lifecycle and fail-closed resource caps (repro.serve).

A session must die — never degrade — when it hits its instruction
budget or frame cap; cap requests above the server maxima must be
denied at create; detached sessions must refuse to step.
"""

import pytest

from repro import config
from repro.errors import ServeError
from repro.serve.session import (CAPPED, DESTROYED, DETACHED, EXITED,
                                 RUNNING, Session, SessionCaps)


def _fork_session(pool, key, caps=None, tier=None, sid=0):
    kernel, process, _ = pool.fork(key, tier=tier)
    return Session(sid, kernel, process,
                   caps or SessionCaps.from_request(),
                   tier=tier, workload=key.workload)


class TestCapsRequest:
    def test_defaults_are_the_server_maxima(self):
        cfg = config.current()
        caps = SessionCaps.from_request()
        assert caps.instret == cfg.serve_instret
        assert caps.frames == cfg.serve_frames
        assert caps.seclog == cfg.seclog_cap

    def test_caps_may_be_lowered(self):
        caps = SessionCaps.from_request({"instret": 5000, "frames": 16})
        assert caps.instret == 5000
        assert caps.frames == 16

    def test_raising_above_the_maximum_is_denied(self):
        too_many = config.current().serve_instret + 1
        with pytest.raises(ServeError, match="exceeds the server"):
            SessionCaps.from_request({"instret": too_many})

    def test_unknown_cap_is_denied(self):
        with pytest.raises(ServeError, match="unknown session cap"):
            SessionCaps.from_request({"instrets": 100})

    def test_non_positive_and_non_int_denied(self):
        for bad in (0, -5, "100", 1.5, True):
            with pytest.raises(ServeError):
                SessionCaps.from_request({"instret": bad})


class TestSessionLifecycle:
    def test_step_advances_and_reports(self, pool, warm_key):
        session = _fork_session(pool, warm_key)
        result = session.step(500)
        assert result["executed"] == 500
        assert result["state"] == RUNNING
        assert session.retired == 500

    def test_step_zero_denied(self, pool, warm_key):
        session = _fork_session(pool, warm_key)
        with pytest.raises(ServeError, match="not positive"):
            session.step(0)

    def test_detach_blocks_stepping_until_reattach(self, pool, warm_key):
        session = _fork_session(pool, warm_key)
        session.state = DETACHED
        with pytest.raises(ServeError, match="detached"):
            session.step(10)
        session.state = RUNNING
        assert session.step(10)["executed"] == 10

    def test_exit_is_terminal(self, pool, warm_key):
        session = _fork_session(pool, warm_key)
        while session.state == RUNNING:
            session.step(50_000)
        assert session.state == EXITED
        assert "exited" in session.detail
        with pytest.raises(ServeError):
            session.step(1)

    def test_destroy_seals_the_chain(self, pool, warm_key):
        from repro.obs.audit import verify_chain
        session = _fork_session(pool, warm_key)
        session.step(100)
        out = session.destroy()
        assert session.state == DESTROYED
        assert verify_chain(out["audit"]) == []
        assert out["audit"][-1]["type"] == "audit.seal"


class TestFailClosed:
    def test_instret_budget_caps_the_session(self, pool, warm_key):
        caps = SessionCaps.from_request({"instret": 1000})
        session = _fork_session(pool, warm_key, caps=caps)
        result = session.step(5000)       # asks for more than the budget
        assert result["executed"] == 1000  # clamped, never exceeded
        assert session.state == CAPPED
        assert "budget" in session.detail
        with pytest.raises(ServeError, match="capped"):
            session.step(1)
        records = [r["type"] for r in session.audit.records]
        assert "serve.cap" in records

    def test_frame_cap_kills_after_the_offending_slice(self, pool,
                                                       warm_key):
        caps = SessionCaps.from_request({"frames": 1})
        session = _fork_session(pool, warm_key, caps=caps)
        while session.state == RUNNING:
            session.step(500)
        assert session.state == CAPPED
        assert "frame cap" in session.detail

    def test_seclog_cap_bounds_the_event_ring(self, pool, warm_key):
        caps = SessionCaps.from_request({"seclog": 2})
        session = _fork_session(pool, warm_key, caps=caps)
        assert session.kernel.security_log.capacity == 2

    def test_query_reports_caps_and_residency(self, pool, warm_key):
        session = _fork_session(pool, warm_key, tier="tier1")
        session.step(2000)
        out = session.query()
        assert out["caps"]["instret"] == config.current().serve_instret
        assert out["retired"] == 2000
        assert out["tier"] == "tier1"
        assert sum(out["residency"].values()) == \
            out["metrics"]["instructions"]
        assert out["audit"]["head"]
