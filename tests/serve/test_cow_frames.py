"""Copy-on-write frame sharing (repro.mem.physical) — PR 9 tentpole.

The properties that make snapshot forking safe: forked memories share
frame bytes until first write, writes never leak between forks or back
into the shared layer, and frame accounting distinguishes logical
pages (what the guest sees) from private pages (what the session
costs). Plus the restore_frames validation satellite: malformed frame
dicts are rejected with a typed error before any state changes.
"""

import pytest

from repro.errors import MemoryError_
from repro.mem.physical import PAGE_SIZE, CowFrameMap, PhysicalMemory


def _seeded_memory():
    memory = PhysicalMemory(1 << 20)
    memory.write_bytes(0x0000, b"frame-zero".ljust(64, b"\0"))
    memory.write_bytes(0x3000, b"frame-three".ljust(64, b"\0"))
    return memory


def _fork(shared):
    memory = PhysicalMemory(1 << 20)
    memory.restore_frames_cow(shared)
    return memory


class TestCowSharing:
    def test_fork_reads_shared_bytes(self):
        shared = _seeded_memory().snapshot_frames()
        fork = _fork(shared)
        assert fork.read_bytes(0, 10) == b"frame-zero"
        assert fork.read_bytes(0x3000, 11) == b"frame-three"

    def test_untouched_fork_materializes_nothing(self):
        shared = _seeded_memory().snapshot_frames()
        fork = _fork(shared)
        assert fork.private_frame_count() == 0
        assert fork.frame_count() == len(shared)
        # First touch — read or write — materializes exactly the frame
        # touched, nothing else (the fast paths bind frames.get() for
        # loads too, so reads copy as well; the frame cap meters both).
        fork.read_bytes(0, 64)
        assert fork.private_frame_count() == 1

    def test_write_copies_only_the_touched_frame(self):
        shared = _seeded_memory().snapshot_frames()
        fork = _fork(shared)
        fork.write_bytes(0x3000, b"CHANGED")
        assert fork.private_frame_count() == 1
        assert fork.read_bytes(0x3000, 7) == b"CHANGED"
        # The rest of the touched frame kept its shared content.
        assert fork.read_bytes(0x3007, 4) == b"hree"

    def test_writes_do_not_leak_between_forks(self):
        shared = _seeded_memory().snapshot_frames()
        one, two = _fork(shared), _fork(shared)
        one.write_bytes(0x0000, b"ONE")
        two.write_bytes(0x0000, b"TWO")
        assert one.read_bytes(0, 3) == b"ONE"
        assert two.read_bytes(0, 3) == b"TWO"
        assert shared[0][:10] == b"frame-zero"

    def test_fresh_frame_allocation_still_works(self):
        fork = _fork(_seeded_memory().snapshot_frames())
        fork.write_bytes(0x8000, b"new page")
        assert fork.read_bytes(0x8000, 8) == b"new page"
        assert fork.private_frame_count() == 1

    def test_snapshot_of_a_fork_includes_shared_frames(self):
        shared = _seeded_memory().snapshot_frames()
        fork = _fork(shared)
        fork.write_bytes(0x0000, b"ONE")
        again = fork.snapshot_frames()
        assert again[0][:3] == b"ONE"
        assert again[3][:11] == b"frame-three"

    def test_clear_detaches_from_the_shared_layer(self):
        shared = _seeded_memory().snapshot_frames()
        fork = _fork(shared)
        fork.frame_map.clear()
        assert fork.frame_count() == 0
        assert fork.read_bytes(0, 10) == bytes(10)
        assert shared[0][:10] == b"frame-zero"

    def test_cow_restore_refuses_a_dirty_memory(self):
        memory = _seeded_memory()
        with pytest.raises(MemoryError_, match="untouched"):
            memory.restore_frames_cow({0: bytes(PAGE_SIZE)})


class TestCowFrameMap:
    def test_get_materializes_a_private_copy(self):
        shared = {5: b"\xaa" * PAGE_SIZE}
        frames = CowFrameMap(shared)
        frame = frames.get(5)
        assert isinstance(frame, bytearray)
        assert frames.get(5) is frame          # stable identity
        frame[0] = 0xBB
        assert shared[5][0] == 0xAA

    def test_missing_frame_is_none_like_a_plain_dict(self):
        frames = CowFrameMap({1: b"\x01" * PAGE_SIZE})
        assert frames.get(99) is None
        with pytest.raises(KeyError):
            frames[99]


class TestRestoreValidation:
    """Satellite: restore_frames validates against frame geometry."""

    def _memory(self):
        return PhysicalMemory(1 << 20)     # 256 frames

    def test_wrong_frame_size_rejected(self):
        with pytest.raises(MemoryError_, match="byte"):
            self._memory().restore_frames({0: b"short"})

    def test_out_of_range_index_rejected(self):
        with pytest.raises(MemoryError_, match="geometry"):
            self._memory().restore_frames({256: bytes(PAGE_SIZE)})

    def test_negative_index_rejected(self):
        with pytest.raises(MemoryError_, match="geometry"):
            self._memory().restore_frames({-1: bytes(PAGE_SIZE)})

    def test_non_int_index_rejected(self):
        with pytest.raises(MemoryError_):
            self._memory().restore_frames({"0": bytes(PAGE_SIZE)})

    def test_rejection_leaves_memory_untouched(self):
        memory = self._memory()
        memory.write_bytes(0, b"keep")
        with pytest.raises(MemoryError_):
            memory.restore_frames({0: bytes(PAGE_SIZE), 999: b"x"})
        assert memory.read_bytes(0, 4) == b"keep"

    def test_cow_restore_validates_too(self):
        with pytest.raises(MemoryError_, match="geometry"):
            self._memory().restore_frames_cow({400: bytes(PAGE_SIZE)})

    def test_valid_restore_still_works(self):
        memory = self._memory()
        memory.restore_frames({2: b"\x02" * PAGE_SIZE})
        assert memory.read_bytes(2 * PAGE_SIZE, 1) == b"\x02"
