"""Fork determinism across interpreter tiers — PR 9 satellite.

The serve-level restatement of the repo's core differential property:
two sessions forked from the *same* warm snapshot and stepped through
the same workload must be bit-identical from the outside — same
retired-instruction and cycle counts, same architectural state hash,
same audit chain head-for-head — even when one simulates on tier1 and
the other on tier4. A client can't tell (and must not be able to tell)
which interpreter served it.
"""

import pytest

from repro.serve.session import Session, SessionCaps


def _drive(pool, key, tier, slices, sid=0):
    kernel, process, _ = pool.fork(key, tier=tier)
    session = Session(sid, kernel, process, SessionCaps.from_request(),
                      tier=tier, workload=key.workload)
    for n in slices:
        session.step(n)
    return session


class TestForkDeterminism:
    @pytest.mark.parametrize("other_tier", ["slow", "tier2", "tier4"])
    def test_same_hash_cycles_and_chain_across_tiers(self, pool,
                                                     warm_key,
                                                     other_tier):
        slices = [700, 1300, 2500]
        one = _drive(pool, warm_key, "tier1", slices, sid=1)
        two = _drive(pool, warm_key, other_tier, slices, sid=2)

        # Same instructions retired, same simulated cycle count.
        stats_one = one.kernel.system.timing.stats
        stats_two = two.kernel.system.timing.stats
        assert stats_one.instructions == stats_two.instructions
        assert stats_one.cycles == stats_two.cycles

        # Bit-identical architectural state (hash quiesces, so only
        # compare at the end — this is the final barrier).
        q_one = one.query(with_hash=True)
        q_two = two.query(with_hash=True)
        assert q_one["state_hash"] == q_two["state_hash"]

        # Identical audit chains, record for record: chain content is
        # a pure function of execution history, not of who simulated
        # it or which session id it ran under.
        assert one.audit.records == two.audit.records
        assert q_one["audit"]["head"] == q_two["audit"]["head"]

    def test_slicing_granularity_is_architecturally_invisible(
            self, pool, warm_key):
        # The step plan is part of the determinism contract: each
        # slice entry re-activates the address space (a TLB flush), so
        # *timing* counters legitimately depend on slicing. What must
        # NOT depend on it is the architectural machine: registers,
        # memory, and process state after N instructions are identical
        # however those N were sliced.
        from repro.replay.snapshot import snapshot
        coarse = _drive(pool, warm_key, "tier1", [4500], sid=3)
        fine = _drive(pool, warm_key, "tier1", [500] * 9, sid=4)
        state_c = snapshot(coarse.kernel).state
        state_f = snapshot(fine.kernel).state
        for section in ("core", "memory", "processes", "kernel",
                        "uart"):
            assert state_c[section] == state_f[section], section
        assert state_c["timing"]["instructions"] == \
            state_f["timing"]["instructions"]

    def test_fork_is_isolated_from_its_sibling(self, pool, warm_key):
        # The leader runs to completion of its plan before the laggard
        # even starts: if COW leaked the leader's progress into the
        # shared frames, the laggard (same plan) would see it.
        ahead = _drive(pool, warm_key, "tier1", [3000], sid=5)
        behind = _drive(pool, warm_key, "tier1", [3000], sid=6)
        assert ahead.retired == behind.retired == 3000
        assert behind.query(with_hash=True)["state_hash"] == \
            ahead.query(with_hash=True)["state_hash"]

    def test_fork_is_much_faster_than_cold_boot(self, pool, warm_key):
        entry, built = pool.warm(warm_key)
        assert not built                  # warmed by the fixture
        _, _, fork_seconds = pool.fork(warm_key)
        # Acceptance floor is 10x; leave headroom for noisy runners
        # (observed ~100-300x on the CI container).
        assert fork_seconds < entry.boot_seconds / 10
