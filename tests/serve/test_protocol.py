"""Serve protocol validation (repro.serve.protocol): deny, don't guess.

Every malformed request must be rejected *before* touching simulator
state — unknown ops, unknown fields, wrong-shaped values, and caps or
pool keys the server can't verify.
"""

import json

import pytest

from repro.errors import ServeError
from repro.serve import protocol


def _parse(**fields):
    return protocol.parse_request(json.dumps(fields))


class TestParsing:
    def test_not_json(self):
        with pytest.raises(ServeError, match="not valid JSON"):
            protocol.parse_request("{nope")

    def test_not_an_object(self):
        with pytest.raises(ServeError, match="not a JSON object"):
            protocol.parse_request("[1,2]")

    def test_missing_op(self):
        with pytest.raises(ServeError, match="no 'op'"):
            _parse(session=0)

    def test_unknown_op_denied(self):
        with pytest.raises(ServeError, match="unknown op"):
            _parse(op="teleport")

    def test_unknown_field_denied_not_ignored(self):
        # A typo ("cap" for "caps") must never silently weaken limits.
        with pytest.raises(ServeError, match="does not accept"):
            _parse(op="step", session=0, cap=10)

    def test_ping_and_stats_take_no_fields(self):
        assert _parse(op="ping") == {"op": "ping"}
        with pytest.raises(ServeError, match="does not accept"):
            _parse(op="ping", loud=True)


class TestSessionOps:
    def test_session_must_be_a_nonneg_int(self):
        for bad in (-1, "0", 1.5, True, None):
            with pytest.raises(ServeError, match="session"):
                _parse(op="step", session=bad, n=10)

    def test_step_n_validated(self):
        for bad in (0, -5, "10", 1.5):
            with pytest.raises(ServeError, match="'n'"):
                _parse(op="step", session=0, n=bad)

    def test_step_n_capped_by_slice_limit(self):
        from repro import config
        too_big = config.current().serve_slice + 1
        with pytest.raises(ServeError, match="per-slice limit"):
            _parse(op="step", session=0, n=too_big)

    def test_query_flags_must_be_booleans(self):
        with pytest.raises(ServeError, match="'hash'"):
            _parse(op="query", session=0, hash=1)

    def test_session_of_routing(self):
        assert protocol.session_of(_parse(op="query", session=7)) == 7
        assert protocol.session_of(_parse(op="ping")) is None


class TestCreateValidation:
    BASE = dict(op="create", profile="processor+kernel",
                workload="429.mcf", scale=0.02, boot=100)

    def test_valid_create_passes(self):
        request = _parse(**self.BASE)
        key = protocol.pool_key(request)
        assert key.workload == "429.mcf"
        assert key.variant == "vcall"          # the hardened default

    def test_unknown_profile_denied(self):
        with pytest.raises(ServeError, match="unknown SoC profile"):
            _parse(**{**self.BASE, "profile": "quantum"})

    def test_unknown_workload_denied(self):
        with pytest.raises(ServeError, match="unknown workload"):
            _parse(**{**self.BASE, "workload": "999.doom"})

    def test_unknown_variant_denied(self):
        with pytest.raises(ServeError, match="unknown hardening"):
            _parse(**{**self.BASE, "variant": "extreme"})

    def test_unknown_tier_denied(self):
        with pytest.raises(ServeError, match="unknown tier"):
            _parse(**{**self.BASE, "tier": "tier9"})

    def test_bad_scale_denied(self):
        with pytest.raises(ServeError, match="scale"):
            _parse(**{**self.BASE, "scale": -1})
        with pytest.raises(ServeError, match="scale"):
            _parse(**{**self.BASE, "scale": "big"})

    def test_bad_boot_denied(self):
        with pytest.raises(ServeError, match="boot"):
            _parse(**{**self.BASE, "boot": 0})

    def test_caps_must_be_an_object(self):
        with pytest.raises(ServeError, match="caps"):
            _parse(**{**self.BASE, "caps": [1, 2]})


class TestEncoding:
    def test_responses_are_single_lines(self):
        blob = protocol.encode(protocol.ok(value={"a": 1}))
        assert blob.endswith(b"\n")
        assert blob.count(b"\n") == 1
        assert json.loads(blob)["ok"] is True

    def test_error_shape(self):
        assert protocol.error("nope") == {"ok": False, "error": "nope"}
