"""Shared serve fixtures: one tiny warm snapshot per test session.

Booting a workload costs ~100ms; forking from the warm snapshot costs
microseconds. Every serve test that needs a live machine forks from
this one pool entry, which is exactly the production shape.
"""

import pytest

from repro.serve.pool import PoolKey, SnapshotPool

# Small enough to boot fast, big enough to survive thousands of step
# instructions past the boot point before exiting.
KEY = PoolKey(profile="processor+kernel", workload="429.mcf",
              scale=0.02, variant="vcall", boot=2000)


@pytest.fixture(scope="session")
def pool():
    return SnapshotPool()


@pytest.fixture(scope="session")
def warm_key(pool):
    pool.warm(KEY)
    return KEY
