"""Test package."""
