"""Typed evaluation model: one schema for every security campaign.

PR 5's injection harness, the coverage-guided fuzzer, and the
``roload-stats`` validators each grew an ad-hoc verdict dict; this
module is the single typed surface they all speak now:

* :class:`Verdict` — the four-way outcome taxonomy of the §V detection
  argument (``detected`` / ``benign`` / ``crashed`` / ``escaped``).
* :class:`RunResult` — one perturbed execution, classified.
* :class:`DetectionTable` — verdict counts per injection class, with
  the §V-style text rendering and per-class detection rates.
* :class:`CampaignResult` — a whole campaign: baseline facts plus the
  classified runs, rendering and serializing through the table.

Compatibility: the old dict shapes (``InjectionRecord.to_dict()``,
``CampaignReport.to_dict()``) are preserved bit-for-bit by
:meth:`RunResult.to_dict` / :meth:`CampaignResult.to_dict`; the old
class names survive as deprecated aliases in :mod:`repro.replay.inject`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError


class Verdict(str, Enum):
    """Outcome of one perturbed run (DESIGN.md §11 taxonomy)."""

    DETECTED = "detected"   # ROLoad-discriminated SIGSEGV: defense fired
    BENIGN = "benign"       # corruption never consumed
    CRASHED = "crashed"     # died of a non-ROLoad signal: still fail-stop
    ESCAPED = "escaped"     # consumed without detection: the only failure

    def __str__(self) -> str:  # prints as the bare word in f-strings
        return self.value

    @property
    def fail_stop(self) -> bool:
        """Did the machine stop before attacker code could profit?"""
        return self is not Verdict.ESCAPED


# Canonical column order — the old inject.OUTCOMES tuple.
VERDICTS: "Tuple[str, ...]" = tuple(v.value for v in Verdict)

# The PR 5 injection classes; the fuzzer extends these (see repro.fuzz).
DEFAULT_KINDS: "Tuple[str, ...]" = ("pte-key", "pte-writable",
                                    "allowlist-ptr")


@dataclass
class RunResult:
    """One injection/fuzz execution and its classified outcome."""

    kind: str
    trigger: int                        # retired-instruction count at
                                        # (first) injection
    target: str                         # what was perturbed
    verdict: Verdict
    detail: str = ""
    exit_code: "Optional[int]" = None
    signal: "Optional[int]" = None
    coverage: "Optional[str]" = None    # coverage signature (fuzz runs)
    divergence: "Optional[int]" = None  # replay-verified divergence
                                        # point, in retired instructions

    def __post_init__(self):
        self.verdict = Verdict(self.verdict)

    @property
    def outcome(self) -> str:
        """The verdict as its bare string — the pre-typed spelling."""
        return self.verdict.value

    def to_dict(self) -> dict:
        """The historical ``InjectionRecord`` dict shape, bit-for-bit;
        fuzz-only fields are appended only when present."""
        out = {"kind": self.kind, "trigger": self.trigger,
               "target": self.target, "outcome": self.verdict.value,
               "detail": self.detail, "exit_code": self.exit_code,
               "signal": self.signal}
        if self.coverage is not None:
            out["coverage"] = self.coverage
        if self.divergence is not None:
            out["divergence"] = self.divergence
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        return cls(kind=data["kind"], trigger=data["trigger"],
                   target=data["target"],
                   verdict=Verdict(data.get("outcome")
                                   or data.get("verdict")),
                   detail=data.get("detail", ""),
                   exit_code=data.get("exit_code"),
                   signal=data.get("signal"),
                   coverage=data.get("coverage"),
                   divergence=data.get("divergence"))


@dataclass
class DetectionTable:
    """Verdict counts per injection class.

    ``kinds`` fixes the row order for the known classes; classes that
    only appear in the data (composite fuzz schedules like
    ``pte-key+wild-ptr``) render after them, sorted.
    """

    counts: "Dict[str, Dict[str, int]]" = field(default_factory=dict)
    kinds: "Tuple[str, ...]" = DEFAULT_KINDS

    @classmethod
    def from_results(cls, results: "Iterable[RunResult]",
                     kinds: "Tuple[str, ...]" = DEFAULT_KINDS) \
            -> "DetectionTable":
        table = cls(kinds=kinds)
        for result in results:
            table.add(result)
        return table

    def add(self, result: RunResult) -> None:
        row = self.counts.setdefault(
            result.kind, {outcome: 0 for outcome in VERDICTS})
        row[result.verdict.value] += 1

    # -- derived views -------------------------------------------------------

    def row_order(self) -> "List[str]":
        known = [kind for kind in self.kinds if kind in self.counts]
        extra = sorted(kind for kind in self.counts
                       if kind not in self.kinds)
        return known + extra

    @property
    def total(self) -> int:
        return sum(sum(row.values()) for row in self.counts.values())

    def count(self, verdict) -> int:
        name = Verdict(verdict).value
        return sum(row.get(name, 0) for row in self.counts.values())

    def rate(self) -> float:
        """Detection rate: of the injections that *were* consumed
        (non-benign), the fraction ROLoad discriminated. Crashes are
        fail-stop but score as misses here — the rate measures the
        paper's discrimination claim, not mere robustness."""
        consumed = self.total - self.count(Verdict.BENIGN)
        if consumed <= 0:
            return 1.0
        return self.count(Verdict.DETECTED) / consumed

    def rates(self) -> "Dict[str, float]":
        """Per-class detection rate, same definition as :meth:`rate`."""
        out = {}
        for kind in self.row_order():
            row = self.counts[kind]
            consumed = sum(row.values()) - row.get("benign", 0)
            out[kind] = (row.get("detected", 0) / consumed) \
                if consumed > 0 else 1.0
        return out

    def format(self) -> str:
        """The §V-style text table (identical to the PR 5 rendering)."""
        header = (f"{'class':<16} {'injected':>8} "
                  + " ".join(f"{o:>8}" for o in VERDICTS))
        lines = [header, "-" * len(header)]
        for kind in self.row_order():
            row = self.counts[kind]
            total = sum(row.values())
            lines.append(f"{kind:<16} {total:>8} "
                         + " ".join(f"{row[o]:>8}" for o in VERDICTS))
        total_row = {o: sum(self.counts.get(k, {}).get(o, 0)
                            for k in self.counts) for o in VERDICTS}
        lines.append("-" * len(header))
        lines.append(f"{'total':<16} {self.total:>8} "
                     + " ".join(f"{total_row[o]:>8}" for o in VERDICTS))
        return "\n".join(lines)

    def to_dict(self) -> "Dict[str, Dict[str, int]]":
        """The plain counts mapping (the old ``counts()`` shape)."""
        return {kind: dict(row) for kind, row in self.counts.items()}

    @classmethod
    def from_dict(cls, counts: "Dict[str, Dict[str, int]]",
                  kinds: "Tuple[str, ...]" = DEFAULT_KINDS) \
            -> "DetectionTable":
        table = cls(kinds=kinds)
        for kind, row in counts.items():
            table.counts[kind] = {outcome: int(row.get(outcome, 0))
                                  for outcome in VERDICTS}
        return table


@dataclass
class CampaignResult:
    """A classified campaign: the baseline facts plus every run.

    This is the PR 5 ``CampaignReport`` promoted to the shared model —
    same field names, same methods, same serialized shape — so the
    injection harness and the fuzzer publish interchangeable results.
    """

    baseline_exit: "Optional[int]"
    total_instructions: int
    records: "List[RunResult]" = field(default_factory=list)
    kinds: "Tuple[str, ...]" = DEFAULT_KINDS

    @property
    def table(self) -> DetectionTable:
        return DetectionTable.from_results(self.records, kinds=self.kinds)

    def counts(self) -> "Dict[str, Dict[str, int]]":
        return self.table.to_dict()

    @property
    def injections(self) -> int:
        return len(self.records)

    @property
    def escapes(self) -> "List[RunResult]":
        return [r for r in self.records if r.verdict is Verdict.ESCAPED]

    @property
    def crashes(self) -> "List[RunResult]":
        return [r for r in self.records if r.verdict is Verdict.CRASHED]

    @property
    def ok(self) -> bool:
        return self.injections > 0 and not self.escapes

    def format_table(self) -> str:
        return self.table.format()

    def to_dict(self) -> dict:
        return {"baseline_exit": self.baseline_exit,
                "total_instructions": self.total_instructions,
                "injections": self.injections,
                "table": self.counts(),
                "escapes": len(self.escapes),
                "ok": self.ok,
                "records": [r.to_dict() for r in self.records]}

    def save_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignResult":
        if "records" not in data:
            raise ReproError("not a campaign result: no 'records'")
        return cls(baseline_exit=data.get("baseline_exit"),
                   total_instructions=data.get("total_instructions", 0),
                   records=[RunResult.from_dict(r)
                            for r in data["records"]])
