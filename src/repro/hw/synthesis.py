"""Table III regeneration and hardware-cost ablations.

:func:`table3` produces the two rows of the paper's Table III from the
structural cost model; the ablation sweeps quantify how the delta scales
with key width and D-TLB size — the design-space questions the paper's
fixed prototype leaves open.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.soc.config import SoCConfig
from repro.hw.rocket import (
    BASELINE_CORE_FF,
    BASELINE_CORE_LUT,
    BASELINE_SYSTEM_FF,
    BASELINE_SYSTEM_LUT,
    roload_delta,
    synthesize,
)


@dataclass
class Table3Row:
    name: str
    core_lut: int
    core_lut_pct: "float | None"
    core_ff: int
    core_ff_pct: "float | None"
    system_lut: int
    system_lut_pct: "float | None"
    system_ff: int
    system_ff_pct: "float | None"
    slack_ns: float
    fmax_mhz: float


def _pct(new: int, base: int) -> float:
    return 100.0 * (new - base) / base


def table3(config: "SoCConfig | None" = None) -> "List[Table3Row]":
    """The two rows of Table III (without/with ld.ro)."""
    rows = []
    for with_roload in (False, True):
        result = synthesize(with_roload, config)
        rows.append(Table3Row(
            name=result.name,
            core_lut=result.core_lut,
            core_lut_pct=None if not with_roload else
            _pct(result.core_lut, BASELINE_CORE_LUT),
            core_ff=result.core_ff,
            core_ff_pct=None if not with_roload else
            _pct(result.core_ff, BASELINE_CORE_FF),
            system_lut=result.system_lut,
            system_lut_pct=None if not with_roload else
            _pct(result.system_lut, BASELINE_SYSTEM_LUT),
            system_ff=result.system_ff,
            system_ff_pct=None if not with_roload else
            _pct(result.system_ff, BASELINE_SYSTEM_FF),
            slack_ns=result.slack_ns,
            fmax_mhz=result.fmax_mhz,
        ))
    return rows


@dataclass
class AblationPoint:
    parameter: str
    value: int
    delta_lut: int
    delta_ff: int
    core_lut_pct: float
    core_ff_pct: float


def ablate_key_width(widths=(4, 6, 8, 10, 12, 16)) -> "List[AblationPoint]":
    """How the hardware delta scales with the key width (bits 63:54 give
    the paper 10 bits; narrower keys buy cheaper TLBs, fewer allowlists)."""
    points = []
    for width in widths:
        delta = roload_delta(key_bits=width)
        points.append(AblationPoint(
            "key_bits", width, delta.luts, delta.ffs,
            100.0 * delta.luts / BASELINE_CORE_LUT,
            100.0 * delta.ffs / BASELINE_CORE_FF))
    return points


def ablate_dtlb_entries(sizes=(16, 32, 64, 128)) -> "List[AblationPoint]":
    """How the delta scales with D-TLB capacity (the dominant FF term)."""
    points = []
    for entries in sizes:
        config = SoCConfig(dtlb_entries=entries)
        delta = roload_delta(config)
        points.append(AblationPoint(
            "dtlb_entries", entries, delta.luts, delta.ffs,
            100.0 * delta.luts / BASELINE_CORE_LUT,
            100.0 * delta.ffs / BASELINE_CORE_FF))
    return points


def format_table3(rows: "List[Table3Row]") -> str:
    """Render Table III in the paper's layout."""
    def pct(value):
        return f"+{value:.5f}" if value is not None else "-"

    lines = [
        "TABLE III: Hardware resource cost of systems without and with "
        "ROLoad (structural model).",
        f"{'':14s} {'#LUT':>8s} {'%':>10s} {'#FF':>8s} {'%':>10s} "
        f"{'#LUT':>8s} {'%':>10s} {'#FF':>8s} {'%':>10s} "
        f"{'Slack(ns)':>10s} {'Fmax(MHz)':>10s}",
        f"{'':14s} {'----- RISC-V Rocket Cores -----':>38s} "
        f"{'--------- Whole Systems ---------':>38s}",
    ]
    for row in rows:
        lines.append(
            f"{row.name:14s} {row.core_lut:8,d} {pct(row.core_lut_pct):>10s} "
            f"{row.core_ff:8,d} {pct(row.core_ff_pct):>10s} "
            f"{row.system_lut:8,d} {pct(row.system_lut_pct):>10s} "
            f"{row.system_ff:8,d} {pct(row.system_ff_pct):>10s} "
            f"{row.slack_ns:10.3f} {row.fmax_mhz:10.2f}")
    return "\n".join(lines)
