"""Hardware cost modelling (Table III) and LoC accounting (Table I)."""

from repro.hw.loc import PAPER_TABLE1, ComponentLoC, scan_file, scan_tree
from repro.hw.resources import (
    ResourceCount,
    and_gate_luts,
    decoder_luts,
    equality_comparator_luts,
    mux_luts,
    register_ffs,
)
from repro.hw.rocket import (
    BASELINE_CORE_FF,
    BASELINE_CORE_LUT,
    SynthesisResult,
    roload_delta,
    synthesize,
)
from repro.hw.synthesis import (
    AblationPoint,
    Table3Row,
    ablate_dtlb_entries,
    ablate_key_width,
    format_table3,
    table3,
)

__all__ = [
    "PAPER_TABLE1", "ComponentLoC", "scan_file", "scan_tree",
    "ResourceCount", "and_gate_luts", "decoder_luts",
    "equality_comparator_luts", "mux_luts", "register_ffs",
    "BASELINE_CORE_FF", "BASELINE_CORE_LUT", "SynthesisResult",
    "roload_delta", "synthesize", "AblationPoint", "Table3Row",
    "ablate_dtlb_entries", "ablate_key_width", "format_table3", "table3",
]
