"""Rocket-core cost model: baseline anchors + the structural ROLoad delta.

Baselines (the "without ld.ro" row of Table III) are the paper's own
measured numbers for a Rocket core and the full SoC on a Kintex-7 — we
anchor to them because re-deriving a whole core's LUT count from first
principles is meaningless. The *delta* is computed structurally from the
actual configuration (what the ROLoad modification adds):

* decoder entries for the 7 ``ld.ro``-family encodings + ``c.ld.ro``;
* a ``key`` field travelling with the memory operation through the
  pipeline stages between decode and the TLB lookup;
* a ``key`` field in every D-TLB entry (the I-TLB never serves data
  loads, so it is untouched) plus the mux that reads the hit entry's key;
* the key-equality comparator and read-only check, ANDed with the
  existing permission logic (one extra gate — this parallelism is why
  Fmax is essentially unchanged);
* key extraction from the PTE on refill (wiring + a few LUTs of masking).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import KEY_BITS
from repro.soc.config import SoCConfig
from repro.hw.resources import (
    ResourceCount,
    and_gate_luts,
    decoder_luts,
    equality_comparator_luts,
    mux_luts,
    register_ffs,
)

# Paper-measured anchors (Table III, "without ld.ro").
BASELINE_CORE_LUT = 20_722
BASELINE_CORE_FF = 11_855
BASELINE_SYSTEM_LUT = 37_428
BASELINE_SYSTEM_FF = 29_913
BASELINE_SLACK_NS = 0.119
TARGET_FREQUENCY_MHZ = 125.0

# Pipeline stages a load's key must ride through (decode -> mem in the
# 5-stage Rocket pipeline).
KEY_PIPELINE_STAGES = 2

# Placement/routing congestion: empirical slack loss per 1% core LUT
# growth (fitted to the paper's 0.119 -> 0.099 ns at +1.44% core LUTs).
SLACK_LOSS_NS_PER_PCT_LUT = 0.014

N_ROLOAD_ENCODINGS = 7   # lb.ro .. lwu.ro, ld.ro
N_RVC_ENCODINGS = 1      # c.ld.ro


def roload_delta(config: "SoCConfig | None" = None,
                 key_bits: int = KEY_BITS) -> ResourceCount:
    """Structural LUT/FF cost of adding ROLoad to the configured core."""
    config = config or SoCConfig()
    delta = ResourceCount()
    delta.add("decoder: ld.ro family",
              luts=decoder_luts(N_ROLOAD_ENCODINGS))
    delta.add("decoder: c.ld.ro (RVC expander)",
              luts=decoder_luts(N_RVC_ENCODINGS) + 4)
    delta.add("pipeline: key field latches",
              luts=2,
              ffs=register_ffs(key_bits * KEY_PIPELINE_STAGES))
    delta.add("pipeline: new memory-op type bit",
              ffs=register_ffs(KEY_PIPELINE_STAGES))
    delta.add("d-tlb: key field per entry",
              ffs=register_ffs(key_bits * config.dtlb_entries))
    delta.add("d-tlb: key read mux",
              luts=mux_luts(key_bits, config.dtlb_entries))
    delta.add("d-tlb: key comparator",
              luts=equality_comparator_luts(key_bits))
    delta.add("d-tlb: read-only check (R & ~W)", luts=1)
    delta.add("d-tlb: AND with permission logic",
              luts=and_gate_luts(3))
    delta.add("ptw: key extraction from PTE",
              luts=4, ffs=register_ffs(key_bits))
    delta.add("fault path: ROLoad cause wiring", luts=6, ffs=2)
    return delta


@dataclass
class SynthesisResult:
    """One row of Table III."""

    name: str
    core_lut: int
    core_ff: int
    system_lut: int
    system_ff: int
    slack_ns: float

    @property
    def fmax_mhz(self) -> float:
        period_ns = 1000.0 / TARGET_FREQUENCY_MHZ
        return 1000.0 / (period_ns - self.slack_ns)


def synthesize(with_roload: bool,
               config: "SoCConfig | None" = None,
               key_bits: int = KEY_BITS) -> SynthesisResult:
    """Produce a Table III row for the core and whole system."""
    if not with_roload:
        return SynthesisResult(
            name="without ld.ro", core_lut=BASELINE_CORE_LUT,
            core_ff=BASELINE_CORE_FF, system_lut=BASELINE_SYSTEM_LUT,
            system_ff=BASELINE_SYSTEM_FF, slack_ns=BASELINE_SLACK_NS)
    delta = roload_delta(config, key_bits=key_bits)
    lut_growth_pct = 100.0 * delta.luts / BASELINE_CORE_LUT
    slack = BASELINE_SLACK_NS - SLACK_LOSS_NS_PER_PCT_LUT * lut_growth_pct
    return SynthesisResult(
        name="with ld.ro",
        core_lut=BASELINE_CORE_LUT + delta.luts,
        core_ff=BASELINE_CORE_FF + delta.ffs,
        system_lut=BASELINE_SYSTEM_LUT + delta.luts,
        system_ff=BASELINE_SYSTEM_FF + delta.ffs,
        slack_ns=round(slack, 3))
