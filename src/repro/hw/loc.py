"""Lines-of-code accounting for Table I.

The paper reports how many lines each ROLoad component took (Chisel
processor: 59; Linux kernel: 121; LLVM back-end: 270). We reproduce the
*accounting*, not the numbers: ROLoad-specific code in this repository is
delimited by machine-readable markers —

    # [roload-begin: processor|kernel|compiler]
    ...
    # [roload-end]

or a whole-file tag ``# [roload-file: <component>]`` — and this module
counts the non-blank, non-comment lines inside them per component. The
absolute counts differ from the paper's (Python vs Chisel/C/C++ and a
simulator vs RTL), but the claim Table I supports — *the mechanism is a
few-hundred-line change, concentrated in the compiler, with a tiny
processor diff* — is checkable against the same kind of evidence.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

COMPONENTS = ("processor", "kernel", "compiler")

_BEGIN = re.compile(r"#\s*\[roload-begin:\s*(\w+)\]")
_END = re.compile(r"#\s*\[roload-end\]")
_FILE = re.compile(r"#\s*\[roload-file:\s*(\w+)\]")


@dataclass
class ComponentLoC:
    component: str
    lines: int = 0
    sites: int = 0                     # number of marked regions/files
    files: "List[str]" = field(default_factory=list)


def _countable(line: str) -> bool:
    stripped = line.strip()
    return bool(stripped) and not stripped.startswith("#")


def scan_file(path: Path) -> "Dict[str, tuple[int, int]]":
    """Return {component: (lines, sites)} for one source file."""
    text = path.read_text()
    results: "Dict[str, tuple[int, int]]" = {}

    def bump(component: str, lines: int, sites: int = 1) -> None:
        old = results.get(component, (0, 0))
        results[component] = (old[0] + lines, old[1] + sites)

    file_match = _FILE.search(text)
    lines = text.splitlines()
    if file_match:
        component = file_match.group(1)
        bump(component, sum(1 for ln in lines if _countable(ln)))
        return results

    current = None
    count = 0
    for line in lines:
        begin = _BEGIN.search(line)
        if begin:
            current = begin.group(1)
            count = 0
            continue
        if _END.search(line):
            if current is not None:
                bump(current, count)
            current = None
            continue
        if current is not None and _countable(line):
            count += 1
    return results


def scan_tree(root: "Path | str | None" = None) \
        -> "Dict[str, ComponentLoC]":
    """Scan the repro source tree; returns per-component totals."""
    if root is None:
        import repro
        root = Path(repro.__file__).parent
    root = Path(root)
    totals = {name: ComponentLoC(name) for name in COMPONENTS}
    for path in sorted(root.rglob("*.py")):
        for component, (lines, sites) in scan_file(path).items():
            if component not in totals:
                totals[component] = ComponentLoC(component)
            entry = totals[component]
            entry.lines += lines
            entry.sites += sites
            entry.files.append(str(path.relative_to(root)))
    return totals


# The paper's Table I, for side-by-side reporting.
PAPER_TABLE1 = {
    "processor": {"language": "Chisel", "added": 29, "modified": 30,
                  "total": 59},
    "kernel": {"language": "C", "added": 118, "modified": 3, "total": 121},
    "compiler": {"language": "C++ and TableGen", "added": 268,
                 "modified": 2, "total": 270},
}
PAPER_TOTAL = 450
