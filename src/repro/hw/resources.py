"""FPGA resource estimation primitives (6-input-LUT fabric).

We cannot run Vivado, so Table III is regenerated from a *structural*
model: count the flip-flops and LUTs each added hardware structure needs
on a Xilinx 7-series-style fabric. The formulas below are standard
first-order estimates:

* an N-bit register costs N FFs;
* an N-bit equality comparator costs ceil(N/3) LUT6 (3 bit-pairs per
  LUT) plus a ceil/6 reduction tree;
* an N-bit W-way one-hot mux costs roughly N * ceil(W/4) LUTs (a LUT6
  packs ~4 mux inputs with the select logic);
* a decoder match of one instruction pattern (opcode[7] + funct3[3])
  costs ~2 LUTs.

Absolute truth varies by tool and seed; what matters for the paper's
claim is the *ratio* against the known Rocket-core baseline, which the
model anchors to the paper's own measured baseline numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List


def register_ffs(bits: int) -> int:
    """Flip-flops for a ``bits``-wide register."""
    return bits


def equality_comparator_luts(bits: int) -> int:
    """LUT6s for an N-bit equality comparator with AND reduction."""
    pair_luts = math.ceil(bits / 3)
    reduce_luts = math.ceil(pair_luts / 6) if pair_luts > 1 else 0
    return pair_luts + reduce_luts


def mux_luts(bits: int, ways: int) -> int:
    """LUT6s for a ``ways``-to-1 mux of ``bits``-wide values."""
    if ways <= 1:
        return 0
    per_bit = math.ceil(ways / 4)
    return bits * per_bit


def decoder_luts(patterns: int) -> int:
    """LUT6s to match ``patterns`` instruction encodings (opcode+funct)."""
    return 2 * patterns


def and_gate_luts(inputs: int) -> int:
    """LUT6s for a wide AND (the permission-check combiner)."""
    return max(1, math.ceil(inputs / 6))


@dataclass
class ResourceCount:
    """A LUT/FF tally with an itemised breakdown."""

    luts: int = 0
    ffs: int = 0
    items: "List[tuple[str, int, int]]" = field(default_factory=list)

    def add(self, name: str, luts: int = 0, ffs: int = 0) -> None:
        self.luts += luts
        self.ffs += ffs
        self.items.append((name, luts, ffs))

    def merge(self, other: "ResourceCount", prefix: str = "") -> None:
        for name, luts, ffs in other.items:
            self.add(prefix + name, luts, ffs)

    def breakdown(self) -> "Dict[str, tuple[int, int]]":
        return {name: (luts, ffs) for name, luts, ffs in self.items}
