"""Two-address textual assembler for the RV64IMAC + ROLoad subset.

Accepts the syntax our disassembler emits (round-trip tested) plus the
directives and pseudo-instructions the compiler back-end needs:

* sections: ``.section .text`` / ``.rodata`` / ``.rodata.key.N`` /
  ``.data`` / ``.bss`` (keyed read-only sections are how allowlists are
  placed in tamper-proof areas — Listing 3 lines 7-10)
* data: ``.byte .half .word .quad .asciz .ascii .zero .align .balign``
  (``.quad symbol`` emits an ABS64 relocation — how GFPT entries point at
  functions)
* symbols: labels, ``.globl``
* pseudo-instructions: ``li la mv not neg nop j jr ret call tail
  beqz bnez bltz bgez seqz snez csrr``
* ROLoad: ``ld.ro rd, (rs1), key`` (paper Listing 3), auto-compressed to
  ``c.ld.ro`` when registers and key allow (``.option rvc`` default on)

Instructions referring to symbols always use 4-byte encodings so the
single-pass layout is stable; everything else is compressed when possible.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.errors import AssemblerError
from repro.isa.compressed import try_compress
from repro.isa.disasm import CSR_NAMES
from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import KEY_MAX, SPECS
from repro.isa.registers import NAME_TO_INDEX, reg_index
from repro.asm.objfile import ObjectFile, Relocation, RelocType
from repro.utils.bits import fits_signed, split_hi_lo

_CSR_NUMBERS = {name: num for num, name in CSR_NAMES.items()}

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*:\s*(.*)$")
_SYMBOL_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")

# Operand grammar, compiled once (the assembler is on the benchmark
# harness's critical path — see DESIGN.md §8).
_HILO_RE = re.compile(r"%(hi|lo)\(([^)]+)\)$")
_LOMEM_RE = re.compile(r"%lo\(([^)]+)\)\(([\w$.]+)\)$")
_MEM_RE = re.compile(r"(-?\w*)\(([\w$.]+)\)$")
_SYM_ADDEND_RE = re.compile(r"([A-Za-z_.$][\w.$]*)\s*(?:([+-])\s*(\d+))?$")

# Operand parsing is context-free (no section/line state feeds into the
# result), so parsed operand lists are memoized by their exact text.
# Compiler-generated assembly reuses a small set of operand spellings
# ("a0, a1, a2", "0(sp)", ...) thousands of times per module. _Operand
# objects are immutable-by-convention (constructed once, only read by
# the _asm_* emitters), which makes sharing them safe. Bounded so
# adversarial input cannot grow it without limit.
_OPERAND_CACHE: dict = {}
_OPERAND_CACHE_MAX = 8192

# Every mnemonic _pseudo() handles, so real instructions skip its chain.
_PSEUDO_NAMES = frozenset((
    "nop", "li", "la", "mv", "not", "neg", "negw", "sext.w", "seqz",
    "snez", "j", "jr", "ret", "call", "tail", "beqz", "bnez", "bltz",
    "bgez", "blez", "bgtz", "csrr",
))


def _split_operands(text: str) -> List[str]:
    """Split an operand string on top-level commas."""
    # str.split handles everything except commas nested in parentheses;
    # segments are re-joined while the running paren depth is open, which
    # reproduces the character-walk exactly (including never splitting
    # again once an unbalanced ")" drives the depth negative).
    parts, depth, acc = [], 0, []
    for part in text.split(","):
        acc.append(part)
        depth += part.count("(") - part.count(")")
        if depth == 0:
            parts.append(",".join(acc).strip())
            acc = []
    if acc:
        parts.append(",".join(acc).strip())
    if parts and not parts[-1]:
        parts.pop()
    return parts


def _parse_int(text: str) -> Optional[int]:
    try:
        return int(text, 0)
    except ValueError:
        return None


class _Operand:
    """A parsed operand: int, register, memory ref, symbol, or %hi/%lo."""

    __slots__ = ("kind", "value", "reg", "symbol", "addend")

    def __init__(self, kind, value=0, reg=0, symbol="", addend=0):
        self.kind = kind          # "reg" | "imm" | "mem" | "sym" | "hi" | "lo"
        self.value = value
        self.reg = reg
        self.symbol = symbol
        self.addend = addend


class Assembler:
    """Assemble one translation unit into an :class:`ObjectFile`."""

    def __init__(self, source: str, name: str = "<asm>", rvc: bool = True):
        self.source = source
        self.name = name
        self.rvc = rvc
        self.obj = ObjectFile(source=name)
        self._section = self.obj.section(".text")
        self._line = 0
        self._globals: set = set()

    # -- public entry --------------------------------------------------------

    def assemble(self) -> ObjectFile:
        for self._line, raw in enumerate(self.source.splitlines(), start=1):
            line = self._strip_comment(raw).strip()
            while ":" in line:
                match = _LABEL_RE.match(line)
                if match:
                    label, line = match.group(1), match.group(2).strip()
                    self._define_label(label)
                    continue
                break
            if not line:
                continue
            if line.startswith("."):
                self._directive(line)
            else:
                self._instruction(line)
        for name in self._globals:
            if name in self.obj.symbols:
                self.obj.symbols[name].is_global = True
        return self.obj

    # -- helpers -------------------------------------------------------------

    def _error(self, message: str) -> AssemblerError:
        return AssemblerError(message, line=self._line, source=self.name)

    @staticmethod
    def _strip_comment(line: str) -> str:
        for marker in ("#", "//"):
            index = line.find(marker)
            if index >= 0:
                line = line[:index]
        return line

    def _define_label(self, label: str) -> None:
        self.obj.define_symbol(label, self._section.name,
                               self._section.length)

    def _emit_insn(self, insn: Instruction,
                   reloc: "Optional[tuple[str, str, int]]" = None) -> None:
        """Encode and append; ``reloc`` = (rtype, symbol, addend)."""
        section = self._section
        if reloc is None and self.rvc:
            halfword = try_compress(insn)
            if halfword is not None:
                section.data += halfword.to_bytes(2, "little")
                return
        if reloc is not None:
            rtype, symbol, addend = reloc
            self.obj.relocations.append(Relocation(
                section.name, section.length, rtype, symbol, addend))
        section.data += encode(insn).to_bytes(4, "little")

    # -- directives ----------------------------------------------------------

    def _directive(self, line: str) -> None:
        parts = line.split(None, 1)
        name = parts[0]
        rest = parts[1].strip() if len(parts) > 1 else ""
        if name == ".section":
            self._section = self.obj.section(_split_operands(rest)[0])
        elif name in (".text", ".data", ".bss", ".rodata"):
            self._section = self.obj.section(name)
        elif name == ".globl" or name == ".global":
            for symbol in _split_operands(rest):
                self._globals.add(symbol)
        elif name in (".align", ".balign"):
            alignment = _parse_int(rest)
            if alignment is None or alignment <= 0:
                raise self._error(f"bad alignment {rest!r}")
            self._section.align_to(alignment)
        elif name == ".p2align":
            power = _parse_int(rest)
            if power is None or power < 0:
                raise self._error(f"bad p2align {rest!r}")
            self._section.align_to(1 << power)
        elif name in (".byte", ".half", ".word", ".quad"):
            width = {".byte": 1, ".half": 2, ".word": 4, ".quad": 8}[name]
            for item in _split_operands(rest):
                self._data_item(item, width)
        elif name in (".zero", ".space", ".skip"):
            count = _parse_int(rest)
            if count is None or count < 0:
                raise self._error(f"bad size {rest!r}")
            self._section.reserve(count)
        elif name in (".asciz", ".string", ".ascii"):
            text = self._parse_string(rest)
            self._section.data += text.encode()
            if name != ".ascii":
                self._section.data += b"\0"
        elif name == ".option":
            if rest == "rvc":
                self.rvc = True
            elif rest == "norvc":
                self.rvc = False
            else:
                raise self._error(f"unknown option {rest!r}")
        elif name in (".file", ".ident", ".size", ".type"):
            pass  # accepted and ignored
        else:
            raise self._error(f"unknown directive {name!r}")

    def _parse_string(self, rest: str) -> str:
        rest = rest.strip()
        if len(rest) < 2 or rest[0] != '"' or rest[-1] != '"':
            raise self._error(f"bad string literal {rest!r}")
        body = rest[1:-1]
        return (body.replace("\\n", "\n").replace("\\t", "\t")
                .replace("\\0", "\0").replace('\\"', '"')
                .replace("\\\\", "\\"))

    def _data_item(self, item: str, width: int) -> None:
        value = _parse_int(item)
        if value is not None:
            mask = (1 << (8 * width)) - 1
            self._section.data += (value & mask).to_bytes(width, "little")
            return
        symbol, addend = self._split_symbol_addend(item)
        if symbol is None:
            raise self._error(f"bad data item {item!r}")
        if width != 8:
            raise self._error("symbol references need .quad (8 bytes)")
        self.obj.relocations.append(Relocation(
            self._section.name, self._section.length, RelocType.ABS64,
            symbol, addend))
        self._section.data += bytes(8)

    @staticmethod
    def _split_symbol_addend(text: str):
        match = _SYM_ADDEND_RE.match(text.strip())
        if not match:
            return None, 0
        addend = int(match.group(3)) if match.group(3) else 0
        if match.group(2) == "-":
            addend = -addend
        return match.group(1), addend

    # -- operand parsing -----------------------------------------------------

    def _operand(self, text: str) -> _Operand:
        text = text.strip()
        # The two overwhelmingly common operand shapes — a register name
        # or a plain integer — resolve without regexes or exceptions.
        # Register names cannot parse as ints, %-relocs, or memory refs,
        # so probing them first changes no parse.
        reg = NAME_TO_INDEX.get(text)
        if reg is not None:
            return _Operand("reg", reg=reg)
        head = text[:1]
        if head.isdigit() or head == "-" or head == "+":
            value = _parse_int(text)
            if value is not None:
                return _Operand("imm", value=value)
        if text.endswith(")"):
            match = _HILO_RE.match(text)
            if match:
                symbol, addend = self._split_symbol_addend(match.group(2))
                if symbol is None:
                    raise self._error(
                        f"bad %{match.group(1)} operand {text!r}")
                return _Operand(match.group(1), symbol=symbol, addend=addend)
            match = _LOMEM_RE.match(text)
            if match:
                symbol, addend = self._split_symbol_addend(match.group(1))
                if symbol is None:
                    raise self._error(f"bad %lo memory operand {text!r}")
                return _Operand("lomem", reg=reg_index(match.group(2)),
                                symbol=symbol, addend=addend)
            match = _MEM_RE.match(text)
            if match:
                offset_text, reg_text = match.group(1), match.group(2)
                offset = _parse_int(offset_text) if offset_text else 0
                if offset is None:
                    raise self._error(f"bad memory offset in {text!r}")
                return _Operand("mem", value=offset, reg=reg_index(reg_text))
        try:
            return _Operand("reg", reg=reg_index(text))
        except AssemblerError:
            pass
        symbol, addend = self._split_symbol_addend(text)
        if symbol is not None:
            return _Operand("sym", symbol=symbol, addend=addend)
        raise self._error(f"cannot parse operand {text!r}")

    def _want_reg(self, op: _Operand, what: str) -> int:
        if op.kind != "reg":
            raise self._error(f"{what} must be a register")
        return op.reg

    def _want_imm(self, op: _Operand, what: str) -> int:
        if op.kind != "imm":
            raise self._error(f"{what} must be an integer")
        return op.value

    # -- instructions --------------------------------------------------------

    def _instruction(self, line: str) -> None:
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        if operand_text:
            operands = _OPERAND_CACHE.get(operand_text)
            if operands is None:
                operands = [self._operand(t) for t in
                            _split_operands(operand_text)]
                if len(_OPERAND_CACHE) < _OPERAND_CACHE_MAX:
                    _OPERAND_CACHE[operand_text] = operands
        else:
            operands = []
        if mnemonic in _PSEUDO_NAMES and \
                self._pseudo(mnemonic, operands, operand_text):
            return
        spec = SPECS.get(mnemonic)
        if spec is None:
            raise self._error(f"unknown instruction {mnemonic!r}")
        self._ASM_FORMATS[spec.fmt](self, mnemonic, spec, operands)

    def _asm_unsupported(self, mnemonic, spec, operands):
        raise self._error(f"format {spec.fmt} of {mnemonic!r} unsupported")

    def _asm_r(self, mnemonic, spec, operands):
        if len(operands) != 3:
            raise self._error(f"{mnemonic} needs rd, rs1, rs2")
        rd = self._want_reg(operands[0], "rd")
        rs1 = self._want_reg(operands[1], "rs1")
        rs2 = self._want_reg(operands[2], "rs2")
        self._emit_insn(Instruction(mnemonic, rd=rd, rs1=rs1, rs2=rs2,
                                    semclass=spec.semclass))

    def _asm_amo(self, mnemonic, spec, operands):
        if len(operands) != 3:
            raise self._error(f"{mnemonic} needs rd, rs2, (rs1)")
        rd = self._want_reg(operands[0], "rd")
        # Accept both GNU "rd, rs2, (rs1)" and plain "rd, rs1, rs2".
        if operands[2].kind == "mem":
            rs2 = self._want_reg(operands[1], "rs2")
            rs1 = operands[2].reg
            if operands[2].value:
                raise self._error("AMO memory operand takes no offset")
        else:
            rs1 = self._want_reg(operands[1], "rs1")
            rs2 = self._want_reg(operands[2], "rs2")
        self._emit_insn(Instruction(mnemonic, rd=rd, rs1=rs1, rs2=rs2,
                                    semclass=spec.semclass))

    def _asm_i(self, mnemonic, spec, operands):
        if spec.semclass == "fence":
            self._emit_insn(Instruction(mnemonic, semclass=spec.semclass))
            return
        if spec.semclass == "load" or mnemonic == "jalr":
            self._asm_load_like(mnemonic, spec, operands)
            return
        if len(operands) != 3:
            raise self._error(f"{mnemonic} needs rd, rs1, imm")
        rd = self._want_reg(operands[0], "rd")
        rs1 = self._want_reg(operands[1], "rs1")
        imm_op = operands[2]
        if imm_op.kind == "lo":
            self._emit_insn(
                Instruction(mnemonic, rd=rd, rs1=rs1, imm=0,
                            semclass=spec.semclass),
                reloc=(RelocType.LO12_I, imm_op.symbol, imm_op.addend))
            return
        imm = self._want_imm(imm_op, "immediate")
        if not fits_signed(imm, 12):
            raise self._error(f"immediate {imm} out of 12-bit range")
        self._emit_insn(Instruction(mnemonic, rd=rd, rs1=rs1, imm=imm,
                                    semclass=spec.semclass))

    def _asm_load_like(self, mnemonic, spec, operands):
        if len(operands) == 2 and operands[1].kind == "lomem":
            rd = self._want_reg(operands[0], "rd")
            self._emit_insn(
                Instruction(mnemonic, rd=rd, rs1=operands[1].reg, imm=0,
                            semclass=spec.semclass),
                reloc=(RelocType.LO12_I, operands[1].symbol,
                       operands[1].addend))
            return
        if len(operands) == 2 and operands[1].kind == "mem":
            rd = self._want_reg(operands[0], "rd")
            self._emit_insn(Instruction(
                mnemonic, rd=rd, rs1=operands[1].reg, imm=operands[1].value,
                semclass=spec.semclass))
            return
        if len(operands) == 3 and operands[2].kind == "lo":
            rd = self._want_reg(operands[0], "rd")
            rs1 = self._want_reg(operands[1], "rs1")
            self._emit_insn(
                Instruction(mnemonic, rd=rd, rs1=rs1, imm=0,
                            semclass=spec.semclass),
                reloc=(RelocType.LO12_I, operands[2].symbol,
                       operands[2].addend))
            return
        if len(operands) == 3:
            rd = self._want_reg(operands[0], "rd")
            rs1 = self._want_reg(operands[1], "rs1")
            imm = self._want_imm(operands[2], "offset")
            self._emit_insn(Instruction(mnemonic, rd=rd, rs1=rs1, imm=imm,
                                        semclass=spec.semclass))
            return
        raise self._error(f"{mnemonic} needs rd, offset(rs1)")

    # [roload-begin: compiler]
    def _asm_ro(self, mnemonic, spec, operands):
        """The paper's syntax: ld.ro rd, (rs1), key (Listing 3)."""
        if len(operands) != 3 or operands[1].kind != "mem":
            raise self._error(f"{mnemonic} needs rd, (rs1), key")
        if operands[1].value:
            raise self._error(f"{mnemonic} takes no address offset — the "
                              f"immediate field holds the key")
        rd = self._want_reg(operands[0], "rd")
        key = self._want_imm(operands[2], "key")
        if not 0 <= key <= KEY_MAX:
            raise self._error(f"key {key} out of range 0..{KEY_MAX}")
        self._emit_insn(Instruction(mnemonic, rd=rd, rs1=operands[1].reg,
                                    key=key, semclass=spec.semclass))
    # [roload-end]

    def _asm_s(self, mnemonic, spec, operands):
        if len(operands) == 2 and operands[1].kind == "lomem":
            rs2 = self._want_reg(operands[0], "rs2")
            self._emit_insn(
                Instruction(mnemonic, rs1=operands[1].reg, rs2=rs2, imm=0,
                            semclass=spec.semclass),
                reloc=(RelocType.LO12_S, operands[1].symbol,
                       operands[1].addend))
            return
        if len(operands) == 2 and operands[1].kind == "mem":
            rs2 = self._want_reg(operands[0], "rs2")
            self._emit_insn(Instruction(
                mnemonic, rs1=operands[1].reg, rs2=rs2,
                imm=operands[1].value, semclass=spec.semclass))
            return
        if len(operands) == 3 and operands[2].kind == "lo":
            rs2 = self._want_reg(operands[0], "rs2")
            rs1 = self._want_reg(operands[1], "rs1")
            self._emit_insn(
                Instruction(mnemonic, rs1=rs1, rs2=rs2, imm=0,
                            semclass=spec.semclass),
                reloc=(RelocType.LO12_S, operands[2].symbol,
                       operands[2].addend))
            return
        raise self._error(f"{mnemonic} needs rs2, offset(rs1)")

    def _asm_b(self, mnemonic, spec, operands):
        if len(operands) != 3:
            raise self._error(f"{mnemonic} needs rs1, rs2, target")
        rs1 = self._want_reg(operands[0], "rs1")
        rs2 = self._want_reg(operands[1], "rs2")
        target = operands[2]
        if target.kind == "imm":
            self._emit_insn(Instruction(mnemonic, rs1=rs1, rs2=rs2,
                                        imm=target.value,
                                        semclass=spec.semclass))
        elif target.kind == "sym":
            self._emit_insn(
                Instruction(mnemonic, rs1=rs1, rs2=rs2, imm=0,
                            semclass=spec.semclass),
                reloc=(RelocType.BRANCH, target.symbol, target.addend))
        else:
            raise self._error("branch target must be a label or offset")

    def _asm_u(self, mnemonic, spec, operands):
        if len(operands) != 2:
            raise self._error(f"{mnemonic} needs rd, imm20")
        rd = self._want_reg(operands[0], "rd")
        imm_op = operands[1]
        if imm_op.kind == "hi":
            self._emit_insn(
                Instruction(mnemonic, rd=rd, imm=0, semclass=spec.semclass),
                reloc=(RelocType.HI20, imm_op.symbol, imm_op.addend))
            return
        imm = self._want_imm(imm_op, "imm20")
        self._emit_insn(Instruction(mnemonic, rd=rd, imm=imm & 0xFFFFF,
                                    semclass=spec.semclass))

    def _asm_j(self, mnemonic, spec, operands):
        if len(operands) != 2:
            raise self._error(f"{mnemonic} needs rd, target")
        rd = self._want_reg(operands[0], "rd")
        target = operands[1]
        if target.kind == "imm":
            self._emit_insn(Instruction(mnemonic, rd=rd, imm=target.value,
                                        semclass=spec.semclass))
        elif target.kind == "sym":
            self._emit_insn(
                Instruction(mnemonic, rd=rd, imm=0, semclass=spec.semclass),
                reloc=(RelocType.JAL, target.symbol, target.addend))
        else:
            raise self._error("jump target must be a label or offset")

    def _asm_shift64(self, mnemonic, spec, operands):
        self._asm_shift(mnemonic, spec, operands, 64)

    def _asm_shift32(self, mnemonic, spec, operands):
        self._asm_shift(mnemonic, spec, operands, 32)

    def _asm_shift(self, mnemonic, spec, operands, width):
        if len(operands) != 3:
            raise self._error(f"{mnemonic} needs rd, rs1, shamt")
        rd = self._want_reg(operands[0], "rd")
        rs1 = self._want_reg(operands[1], "rs1")
        shamt = self._want_imm(operands[2], "shift amount")
        if not 0 <= shamt < width:
            raise self._error(f"shift amount {shamt} out of range")
        self._emit_insn(Instruction(mnemonic, rd=rd, rs1=rs1, imm=shamt,
                                    semclass=spec.semclass))

    def _csr_number(self, op: _Operand) -> int:
        if op.kind == "imm":
            return op.value
        if op.kind == "sym" and op.symbol in _CSR_NUMBERS:
            return _CSR_NUMBERS[op.symbol]
        raise self._error("bad CSR name/number")

    def _asm_csr(self, mnemonic, spec, operands):
        if len(operands) != 3:
            raise self._error(f"{mnemonic} needs rd, csr, rs1")
        rd = self._want_reg(operands[0], "rd")
        csr = self._csr_number(operands[1])
        rs1 = self._want_reg(operands[2], "rs1")
        self._emit_insn(Instruction(mnemonic, rd=rd, rs1=rs1, csr=csr,
                                    semclass=spec.semclass))

    def _asm_csri(self, mnemonic, spec, operands):
        if len(operands) != 3:
            raise self._error(f"{mnemonic} needs rd, csr, imm5")
        rd = self._want_reg(operands[0], "rd")
        csr = self._csr_number(operands[1])
        imm = self._want_imm(operands[2], "imm5")
        self._emit_insn(Instruction(mnemonic, rd=rd, imm=imm, csr=csr,
                                    semclass=spec.semclass))

    def _asm_sys(self, mnemonic, spec, operands):
        if operands:
            raise self._error(f"{mnemonic} takes no operands")
        self._emit_insn(Instruction(mnemonic, semclass=spec.semclass))

    # -- pseudo-instructions -------------------------------------------------

    def _pseudo(self, mnemonic, operands, operand_text) -> bool:
        emit = self._emit_insn
        if mnemonic == "nop":
            emit(Instruction("addi", rd=0, rs1=0, imm=0))
            return True
        if mnemonic == "li":
            rd = self._want_reg(operands[0], "rd")
            value = self._want_imm(operands[1], "value")
            self._emit_li(rd, value)
            return True
        if mnemonic == "la":
            rd = self._want_reg(operands[0], "rd")
            target = operands[1]
            if target.kind != "sym":
                raise self._error("la needs a symbol")
            emit(Instruction("lui", rd=rd, imm=0),
                 reloc=(RelocType.HI20, target.symbol, target.addend))
            emit(Instruction("addi", rd=rd, rs1=rd, imm=0),
                 reloc=(RelocType.LO12_I, target.symbol, target.addend))
            return True
        if mnemonic == "mv":
            rd = self._want_reg(operands[0], "rd")
            rs = self._want_reg(operands[1], "rs")
            emit(Instruction("addi", rd=rd, rs1=rs, imm=0))
            return True
        if mnemonic == "not":
            rd = self._want_reg(operands[0], "rd")
            rs = self._want_reg(operands[1], "rs")
            emit(Instruction("xori", rd=rd, rs1=rs, imm=-1))
            return True
        if mnemonic == "neg":
            rd = self._want_reg(operands[0], "rd")
            rs = self._want_reg(operands[1], "rs")
            emit(Instruction("sub", rd=rd, rs1=0, rs2=rs))
            return True
        if mnemonic == "negw":
            rd = self._want_reg(operands[0], "rd")
            rs = self._want_reg(operands[1], "rs")
            emit(Instruction("subw", rd=rd, rs1=0, rs2=rs))
            return True
        if mnemonic == "sext.w":
            rd = self._want_reg(operands[0], "rd")
            rs = self._want_reg(operands[1], "rs")
            emit(Instruction("addiw", rd=rd, rs1=rs, imm=0))
            return True
        if mnemonic == "seqz":
            rd = self._want_reg(operands[0], "rd")
            rs = self._want_reg(operands[1], "rs")
            emit(Instruction("sltiu", rd=rd, rs1=rs, imm=1))
            return True
        if mnemonic == "snez":
            rd = self._want_reg(operands[0], "rd")
            rs = self._want_reg(operands[1], "rs")
            emit(Instruction("sltu", rd=rd, rs1=0, rs2=rs))
            return True
        if mnemonic == "j":
            self._asm_j("jal", SPECS["jal"],
                        [_Operand("reg", reg=0), operands[0]])
            return True
        if mnemonic == "jr":
            rs = self._want_reg(operands[0], "rs")
            emit(Instruction("jalr", rd=0, rs1=rs, imm=0, semclass="jalr"))
            return True
        if mnemonic == "ret":
            emit(Instruction("jalr", rd=0, rs1=1, imm=0, semclass="jalr"))
            return True
        if mnemonic == "call":
            self._asm_j("jal", SPECS["jal"],
                        [_Operand("reg", reg=1), operands[0]])
            return True
        if mnemonic == "tail":
            self._asm_j("jal", SPECS["jal"],
                        [_Operand("reg", reg=0), operands[0]])
            return True
        if mnemonic in ("beqz", "bnez", "bltz", "bgez", "blez", "bgtz"):
            rs = self._want_reg(operands[0], "rs")
            target = operands[1]
            table = {"beqz": ("beq", rs, 0), "bnez": ("bne", rs, 0),
                     "bltz": ("blt", rs, 0), "bgez": ("bge", rs, 0),
                     "blez": ("bge", 0, rs), "bgtz": ("blt", 0, rs)}
            name, rs1, rs2 = table[mnemonic]
            self._asm_b(name, SPECS[name],
                        [_Operand("reg", reg=rs1), _Operand("reg", reg=rs2),
                         target])
            return True
        if mnemonic == "csrr":
            rd = self._want_reg(operands[0], "rd")
            csr = self._csr_number(operands[1])
            emit(Instruction("csrrs", rd=rd, rs1=0, csr=csr,
                             semclass="csr"))
            return True
        return False

    def _emit_li(self, rd: int, value: int) -> None:
        """Load an arbitrary 64-bit constant (GNU-as style expansion)."""
        from repro.utils.bits import sext
        if value >= 1 << 63:  # accept unsigned 64-bit spellings
            value -= 1 << 64
        if not fits_signed(value, 64):
            raise self._error(f"li constant {value:#x} exceeds 64 bits")
        if fits_signed(value, 12):
            self._emit_insn(Instruction("addi", rd=rd, rs1=0, imm=value))
            return
        if fits_signed(value, 32):
            hi20, lo12 = split_hi_lo(value & 0xFFFFFFFF)
            self._emit_insn(Instruction("lui", rd=rd, imm=hi20))
            lo_signed = sext(lo12, 12)
            if lo_signed:
                self._emit_insn(Instruction("addiw", rd=rd, rs1=rd,
                                            imm=lo_signed))
            return
        # 64-bit: build the upper part, shift by 12, add a signed chunk.
        lo_signed = sext(value & 0xFFF, 12)
        upper = (value - lo_signed) >> 12
        self._emit_li(rd, upper)
        self._emit_insn(Instruction("slli", rd=rd, rs1=rd, imm=12))
        if lo_signed:
            self._emit_insn(Instruction("addi", rd=rd, rs1=rd,
                                        imm=lo_signed))


# Format -> emitter, resolved once instead of per-instruction getattr.
Assembler._ASM_FORMATS = {
    fmt: getattr(Assembler, f"_asm_{fmt.lower()}", Assembler._asm_unsupported)
    for fmt in {spec.fmt for spec in SPECS.values()}
}


def assemble(source: str, name: str = "<asm>", rvc: bool = True) \
        -> ObjectFile:
    """Assemble a source string into an object file."""
    return Assembler(source, name=name, rvc=rvc).assemble()
