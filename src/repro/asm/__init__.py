"""Toolchain back half: assembler, linker, and the REX object format."""

from repro.asm.assembler import Assembler, assemble
from repro.asm.audit import Finding, audit_image, collect_roload_keys, \
    is_sound
from repro.asm.linker import DEFAULT_BASE, Linker, link
from repro.asm.objfile import (
    Executable,
    ObjectFile,
    Relocation,
    RelocType,
    Section,
    Segment,
    Symbol,
    section_kind,
)

__all__ = [
    "Assembler", "assemble", "Finding", "audit_image",
    "collect_roload_keys", "is_sound", "DEFAULT_BASE", "Linker", "link",
    "Executable", "ObjectFile", "Relocation", "RelocType", "Section",
    "Segment", "Symbol", "section_kind",
]
