"""Linker: object files -> loadable executable image.

Layout enforces the two properties the paper's toolchain needs:

* **separate-code** (the ``-z separate-code`` linker flag): executable
  pages never share a page with read-only data, "otherwise the linker will
  store read-only data into the pages that are both readable and
  executable, violating the read-only requirement of ROLoad-family
  instructions".
* **key isolation**: every ``.rodata.key.N`` group gets its own
  page-aligned segment, so two different keys can never land in the same
  page (a page has exactly one key in its PTE).

The linker also defines bookkeeping symbols: ``_end`` (heap start for the
loader), and ``__rodata_start``/``__rodata_end`` spanning all read-only
data segments — exactly the bounds VTint-style range checks test against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import LinkError
from repro.isa.encoding import decode, encode
from repro.asm.objfile import (
    Executable,
    ObjectFile,
    RelocType,
    Section,
    Segment,
)
from repro.utils.bits import align_up, fits_signed, sext, split_hi_lo

PAGE = 4096
DEFAULT_BASE = 0x10000


@dataclass
class _PlacedSection:
    object_index: int
    section: Section
    vaddr: int = 0


@dataclass
class LinkedLayout:
    """Intermediate result exposed for tests and the memory accounting."""

    segments: "List[Segment]" = field(default_factory=list)
    section_addresses: "Dict[tuple, int]" = field(default_factory=dict)


class Linker:
    """Link one or more object files into an :class:`Executable`."""

    def __init__(self, base: int = DEFAULT_BASE,
                 entry_symbol: str = "_start", page_size: int = PAGE):
        if base % page_size:
            raise LinkError("base address must be page aligned")
        self.base = base
        self.page_size = page_size
        self.entry_symbol = entry_symbol

    # -- public --------------------------------------------------------------

    def link(self, objects: "List[ObjectFile]",
             metadata: "Dict[str, str] | None" = None) -> Executable:
        if not objects:
            raise LinkError("nothing to link")
        placed = self._collect(objects)
        segments, section_addr = self._layout(placed)
        symbols = self._resolve_symbols(objects, section_addr)
        self._define_layout_symbols(symbols, segments)
        self._apply_relocations(objects, placed, section_addr, symbols)
        self._finalize_segment_data(placed, segments)
        try:
            entry = symbols[self.entry_symbol]
        except KeyError:
            raise LinkError(
                f"entry symbol {self.entry_symbol!r} undefined") from None
        return Executable(entry=entry, segments=segments,
                          symbols=dict(symbols),
                          metadata=dict(metadata or {}))

    # -- phases ---------------------------------------------------------------

    @staticmethod
    def _group_rank(section: Section) -> "tuple[int, int]":
        """Layout order: code, plain rodata, keyed rodata (by key), data,
        bss."""
        if section.executable:
            return (0, 0)
        if not section.writable and section.key == 0:
            return (1, 0)
        if not section.writable:
            return (2, section.key)
        if not section.nobits:
            return (3, 0)
        return (4, 0)

    def _collect(self, objects) -> "List[_PlacedSection]":
        # Empty sections are kept: their symbols still need addresses
        # (they contribute no segment bytes).
        placed = [
            _PlacedSection(index, section)
            for index, obj in enumerate(objects)
            for section in obj.sections.values()
        ]
        placed.sort(key=lambda p: (self._group_rank(p.section),
                                   p.object_index, p.section.name))
        return placed

    def _layout(self, placed) \
            -> "tuple[List[Segment], Dict[tuple, int]]":
        segments: "List[Segment]" = []
        section_addr: "Dict[tuple, int]" = {}
        cursor = self.base
        # Group sections that may share a segment: same permissions AND key.
        groups: "List[tuple[tuple, List[_PlacedSection]]]" = []
        for item in placed:
            signature = (item.section.executable, item.section.writable,
                         item.section.key, item.section.nobits
                         and item.section.writable)
            if groups and groups[-1][0] == (signature[0], signature[1],
                                            signature[2]):
                groups[-1][1].append(item)
            else:
                groups.append(((signature[0], signature[1], signature[2]),
                               [item]))
        for (executable, writable, key), items in groups:
            cursor = align_up(cursor, self.page_size)
            segment_start = cursor
            filesize = 0
            memsize = 0
            for item in items:
                align = max(item.section.align, 2)
                cursor = align_up(cursor, align)
                item.vaddr = cursor
                section_addr[(item.object_index, item.section.name)] = cursor
                cursor += item.section.length
                memsize = cursor - segment_start
                if not item.section.nobits:
                    filesize = cursor - segment_start
            if memsize == 0:
                continue  # only empty sections: nothing to load
            name = items[0].section.name
            if key:
                name = f".rodata.key.{key}"
            segments.append(Segment(
                vaddr=segment_start, data=bytes(filesize), memsize=memsize,
                readable=True, writable=writable, executable=executable,
                key=key, name=name))
        return segments, section_addr

    def _resolve_symbols(self, objects, section_addr) -> "Dict[str, int]":
        symbols: "Dict[str, int]" = {}
        for index, obj in enumerate(objects):
            for symbol in obj.symbols.values():
                address_base = section_addr.get((index, symbol.section))
                if address_base is None:
                    # Symbol in an empty section: place at base of nothing.
                    continue
                address = address_base + symbol.offset
                if symbol.name in symbols:
                    raise LinkError(f"duplicate symbol {symbol.name!r}")
                symbols[symbol.name] = address
        return symbols

    def _define_layout_symbols(self, symbols, segments) -> None:
        end = max((s.end for s in segments), default=self.base)
        symbols.setdefault("_end", align_up(end, self.page_size))
        ro_segments = [s for s in segments
                       if not s.writable and not s.executable]
        if ro_segments:
            symbols.setdefault("__rodata_start",
                               min(s.vaddr for s in ro_segments))
            symbols.setdefault("__rodata_end",
                               align_up(max(s.end for s in ro_segments),
                                        self.page_size))

    def _apply_relocations(self, objects, placed, section_addr,
                           symbols) -> None:
        for index, obj in enumerate(objects):
            for reloc in obj.relocations:
                section = obj.sections[reloc.section]
                base = section_addr.get((index, reloc.section))
                if base is None:
                    raise LinkError(f"relocation in unplaced section "
                                    f"{reloc.section!r}")
                target = symbols.get(reloc.symbol)
                if target is None:
                    raise LinkError(f"undefined symbol {reloc.symbol!r} "
                                    f"referenced from {obj.source}")
                value = target + reloc.addend
                place = base + reloc.offset
                self._patch(section, reloc, place, value, obj.source)

    @staticmethod
    def _patch(section, reloc, place, value, source) -> None:
        data = section.data
        offset = reloc.offset
        if reloc.rtype == RelocType.ABS64:
            data[offset:offset + 8] = value.to_bytes(8, "little")
            return
        word = int.from_bytes(data[offset:offset + 4], "little")
        insn = decode(word)
        if reloc.rtype == RelocType.HI20:
            insn.imm = split_hi_lo(value)[0]
        elif reloc.rtype == RelocType.LO12_I:
            insn.imm = sext(split_hi_lo(value)[1], 12)
        elif reloc.rtype == RelocType.LO12_S:
            insn.imm = sext(split_hi_lo(value)[1], 12)
        elif reloc.rtype == RelocType.BRANCH:
            delta = value - place
            if not fits_signed(delta, 13):
                raise LinkError(f"branch to {reloc.symbol!r} out of range "
                                f"({delta} bytes) in {source}")
            insn.imm = delta
        elif reloc.rtype == RelocType.JAL:
            delta = value - place
            if not fits_signed(delta, 21):
                raise LinkError(f"jump to {reloc.symbol!r} out of range "
                                f"({delta} bytes) in {source}")
            insn.imm = delta
        else:
            raise LinkError(f"unknown relocation type {reloc.rtype!r}")
        data[offset:offset + 4] = encode(insn).to_bytes(4, "little")

    def _finalize_segment_data(self, placed, segments) -> None:
        by_segment: "Dict[int, bytearray]" = {}
        for item in placed:
            if item.section.nobits or not item.section.data:
                continue
            for seg_index, segment in enumerate(segments):
                if segment.vaddr <= item.vaddr < segment.end:
                    buffer = by_segment.setdefault(
                        seg_index, bytearray(len(segment.data)))
                    start = item.vaddr - segment.vaddr
                    buffer[start:start + len(item.section.data)] = \
                        item.section.data
                    break
            else:
                raise LinkError(f"section {item.section.name!r} not inside "
                                f"any segment")
        for seg_index, buffer in by_segment.items():
            segments[seg_index] = Segment(
                vaddr=segments[seg_index].vaddr, data=bytes(buffer),
                memsize=segments[seg_index].memsize,
                readable=segments[seg_index].readable,
                writable=segments[seg_index].writable,
                executable=segments[seg_index].executable,
                key=segments[seg_index].key,
                name=segments[seg_index].name)


def link(objects: "List[ObjectFile]", base: int = DEFAULT_BASE,
         entry_symbol: str = "_start",
         metadata: "Dict[str, str] | None" = None) -> Executable:
    """Convenience wrapper around :class:`Linker`."""
    return Linker(base=base, entry_symbol=entry_symbol).link(
        objects, metadata=metadata)
