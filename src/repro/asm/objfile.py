"""Object and executable formats (the "REX" format).

The paper's toolchain emits ELF with ``.rodata.key.N`` sections and links
with ``-z separate-code``. We define a minimal equivalent:

* :class:`Section` — named byte container with alloc/write/exec flags and a
  **page key** (non-zero only for ``.rodata.key.N`` sections).
* :class:`ObjectFile` — sections + symbols + relocations, produced by the
  assembler.
* :class:`Executable` — the linked image: page-aligned segments, each with
  R/W/X permissions and a key, plus an entry point and a symbol table
  (kept for the attack tooling and debuggers).

``Executable.to_bytes``/``from_bytes`` give a simple serialized form so
examples can save/load hardened binaries.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import LinkError, LoaderError
from repro.isa.opcodes import KEY_MAX

RODATA_KEY_PREFIX = ".rodata.key."


def section_kind(name: str) -> "tuple[bool, bool, bool, int]":
    """Infer (write, exec, nobits, key) from a section name."""
    if name == ".text" or name.startswith(".text."):
        return False, True, False, 0
    if name == ".bss" or name.startswith(".bss."):
        return True, False, True, 0
    if name.startswith(RODATA_KEY_PREFIX):
        try:
            key = int(name[len(RODATA_KEY_PREFIX):], 0)
        except ValueError:
            raise LinkError(f"bad keyed section name {name!r}") from None
        if not 0 <= key <= KEY_MAX:
            raise LinkError(f"section {name!r}: key out of range")
        return False, False, False, key
    if name == ".rodata" or name.startswith(".rodata."):
        return False, False, False, 0
    if name == ".data" or name.startswith(".data."):
        return True, False, False, 0
    # Unknown sections default to read-only data.
    return False, False, False, 0


@dataclass
class Section:
    """One named section inside an object file."""

    name: str
    data: bytearray = field(default_factory=bytearray)
    writable: bool = False
    executable: bool = False
    nobits: bool = False      # .bss-style: occupies memory, no file bytes
    key: int = 0
    align: int = 8
    size: int = 0             # for nobits sections

    @classmethod
    def named(cls, name: str) -> "Section":
        writable, executable, nobits, key = section_kind(name)
        return cls(name=name, writable=writable, executable=executable,
                   nobits=nobits, key=key)

    @property
    def readable(self) -> bool:
        return True

    @property
    def length(self) -> int:
        return self.size if self.nobits else len(self.data)

    def reserve(self, nbytes: int) -> int:
        """Append ``nbytes`` (zeroed or nobits); return the prior offset."""
        offset = self.length
        if self.nobits:
            self.size += nbytes
        else:
            self.data += bytes(nbytes)
        return offset

    def align_to(self, alignment: int) -> None:
        if alignment & (alignment - 1):
            raise LinkError(f"alignment {alignment} not a power of two")
        remainder = self.length % alignment
        if remainder:
            self.reserve(alignment - remainder)
        self.align = max(self.align, alignment)


@dataclass
class Symbol:
    name: str
    section: str
    offset: int
    is_global: bool = False


class RelocType:
    """Relocation kinds understood by the linker."""

    ABS64 = "abs64"      # 8-byte absolute address (.quad symbol)
    HI20 = "hi20"        # lui: upper 20 bits (with lo12 carry)
    LO12_I = "lo12_i"    # I-type immediate: lower 12 bits
    LO12_S = "lo12_s"    # S-type immediate: lower 12 bits
    BRANCH = "branch"    # B-type pc-relative
    JAL = "jal"          # J-type pc-relative


@dataclass
class Relocation:
    section: str
    offset: int
    rtype: str
    symbol: str
    addend: int = 0


@dataclass
class ObjectFile:
    """Assembler output: sections with symbols and pending relocations."""

    sections: "Dict[str, Section]" = field(default_factory=dict)
    symbols: "Dict[str, Symbol]" = field(default_factory=dict)
    relocations: "List[Relocation]" = field(default_factory=list)
    source: str = "<asm>"

    def section(self, name: str) -> Section:
        sec = self.sections.get(name)
        if sec is None:
            sec = Section.named(name)
            self.sections[name] = sec
        return sec

    def define_symbol(self, name: str, section: str, offset: int,
                      is_global: bool = False) -> None:
        if name in self.symbols:
            raise LinkError(f"duplicate symbol {name!r} in {self.source}")
        self.symbols[name] = Symbol(name, section, offset, is_global)


@dataclass
class Segment:
    """One loadable piece of the final image."""

    vaddr: int
    data: bytes
    memsize: int          # >= len(data); excess is zero-filled (.bss)
    readable: bool = True
    writable: bool = False
    executable: bool = False
    key: int = 0
    name: str = ""

    def __post_init__(self):
        if self.memsize < len(self.data):
            raise LinkError(f"segment {self.name!r}: memsize < filesize")

    @property
    def end(self) -> int:
        return self.vaddr + self.memsize


@dataclass
class Executable:
    """A linked, loadable program image."""

    entry: int
    segments: "List[Segment]"
    symbols: "Dict[str, int]" = field(default_factory=dict)
    metadata: "Dict[str, str]" = field(default_factory=dict)

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise LoaderError(f"symbol {name!r} not in image") from None

    def find_segment(self, vaddr: int) -> Optional[Segment]:
        for segment in self.segments:
            if segment.vaddr <= vaddr < segment.end:
                return segment
        return None

    # -- serialization -------------------------------------------------------

    MAGIC = b"REX1"

    def to_bytes(self) -> bytes:
        """Serialize: JSON header + concatenated segment payloads."""
        header = {
            "entry": self.entry,
            "symbols": self.symbols,
            "metadata": self.metadata,
            "segments": [
                {"vaddr": s.vaddr, "filesize": len(s.data),
                 "memsize": s.memsize, "r": s.readable, "w": s.writable,
                 "x": s.executable, "key": s.key, "name": s.name}
                for s in self.segments
            ],
        }
        blob = json.dumps(header).encode()
        out = bytearray(self.MAGIC)
        out += struct.pack("<I", len(blob))
        out += blob
        for segment in self.segments:
            out += segment.data
        return bytes(out)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Executable":
        if raw[:4] != cls.MAGIC:
            raise LoaderError("bad executable magic")
        (header_len,) = struct.unpack_from("<I", raw, 4)
        header = json.loads(raw[8:8 + header_len].decode())
        cursor = 8 + header_len
        segments = []
        for meta in header["segments"]:
            data = raw[cursor:cursor + meta["filesize"]]
            if len(data) != meta["filesize"]:
                raise LoaderError("truncated segment payload")
            cursor += meta["filesize"]
            segments.append(Segment(
                vaddr=meta["vaddr"], data=bytes(data),
                memsize=meta["memsize"], readable=meta["r"],
                writable=meta["w"], executable=meta["x"], key=meta["key"],
                name=meta["name"]))
        return cls(entry=header["entry"], segments=segments,
                   symbols=dict(header["symbols"]),
                   metadata=dict(header.get("metadata", {})))
