"""Static auditor for ROLoad deployment invariants in linked images.

A hardened binary is only as good as its layout. This auditor checks an
:class:`~repro.asm.objfile.Executable` for the properties the paper's
design depends on, before it ever runs:

* **E1 keyed-writable**: a segment with a non-zero key must be read-only
  (a writable "allowlist" is no allowlist).
* **E2 key page-sharing**: no two segments with different keys (or a
  keyed and an unkeyed segment) may share a 4 KiB page — a page has
  exactly one key in its PTE.
* **E3 separate-code**: executable bytes must not share a page with
  non-executable read-only data (the ``-z separate-code`` requirement the
  paper calls out explicitly).
* **E4 dangling key**: every key used by an ``ld.ro``/``c.ld.ro`` in the
  code must correspond to some keyed read-only segment, else the load
  can never succeed.
* **W1 unused key**: a keyed segment no instruction references is
  suspicious (dead allowlist or missed instrumentation).
* **E5 entry**: the entry point must be inside an executable segment.

Returns :class:`Finding` records; ``audit_image(...)`` raises nothing —
callers decide what is fatal (the linker already prevents E1-E3 for
images it produced; the auditor exists for third-party/foreign images
and as a regression tripwire).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from repro.asm.objfile import Executable, Segment
from repro.isa.compressed import decode_compressed
from repro.isa.encoding import decode, instruction_length

PAGE = 4096


@dataclass(frozen=True)
class Finding:
    code: str          # E1..E5, W1
    severity: str      # "error" | "warning"
    message: str

    def __str__(self) -> str:
        return f"[{self.code}/{self.severity}] {self.message}"


def _pages(segment: Segment):
    return range(segment.vaddr // PAGE,
                 (segment.end + PAGE - 1) // PAGE)


def collect_roload_keys(image: Executable) -> "Set[int]":
    """Keys referenced by ROLoad instructions in executable segments."""
    keys: "Set[int]" = set()
    for segment in image.segments:
        if not segment.executable:
            continue
        data = segment.data
        offset = 0
        while offset + 2 <= len(data):
            half = int.from_bytes(data[offset:offset + 2], "little")
            length = instruction_length(half)
            if offset + length > len(data):
                break
            try:
                if length == 2:
                    insn = decode_compressed(half)
                else:
                    word = int.from_bytes(data[offset:offset + 4],
                                          "little")
                    insn = decode(word)
                if insn.is_roload:
                    keys.add(insn.key)
            except Exception:
                pass  # data islands inside .text
            offset += length
    return keys


def audit_image(image: Executable) -> "List[Finding]":
    """Run all checks; returns findings sorted errors-first."""
    findings: "List[Finding]" = []

    # E1: keyed segments must be read-only.
    for segment in image.segments:
        if segment.key and segment.writable:
            findings.append(Finding(
                "E1", "error",
                f"segment {segment.name!r} has key {segment.key} but is "
                f"writable"))

    # E2/E3: page-sharing rules.
    page_owner: "dict[int, Segment]" = {}
    for segment in image.segments:
        for page in _pages(segment):
            other = page_owner.get(page)
            if other is None:
                page_owner[page] = segment
                continue
            if other.key != segment.key:
                findings.append(Finding(
                    "E2", "error",
                    f"page {page * PAGE:#x} shared by {other.name!r} "
                    f"(key {other.key}) and {segment.name!r} "
                    f"(key {segment.key})"))
            if other.executable != segment.executable and (
                    not other.writable and not segment.writable):
                findings.append(Finding(
                    "E3", "error",
                    f"page {page * PAGE:#x} mixes code and read-only "
                    f"data ({other.name!r} / {segment.name!r})"))

    # E4/W1: key cross-reference.
    used_keys = collect_roload_keys(image)
    provided_keys = {s.key for s in image.segments
                     if s.key and not s.writable}
    for key in sorted(used_keys - provided_keys):
        if key == 0:
            continue  # key 0 matches any unkeyed read-only page
        findings.append(Finding(
            "E4", "error",
            f"ld.ro uses key {key} but no segment provides it — the "
            f"load can never succeed"))
    for key in sorted(provided_keys - used_keys):
        findings.append(Finding(
            "W1", "warning",
            f"keyed segment (key {key}) is never referenced by any "
            f"ROLoad instruction"))

    # E5: entry point must be executable.
    entry_segment = image.find_segment(image.entry)
    if entry_segment is None or not entry_segment.executable:
        findings.append(Finding(
            "E5", "error",
            f"entry point {image.entry:#x} is not in an executable "
            f"segment"))

    findings.sort(key=lambda f: (f.severity != "error", f.code))
    return findings


def is_sound(image: Executable) -> bool:
    """True when the image has no error-severity findings."""
    return not any(f.severity == "error" for f in audit_image(image))
