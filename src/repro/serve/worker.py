"""One serve worker: a share-nothing process hosting many sessions.

A worker owns its own :class:`~repro.serve.pool.SnapshotPool` and a
dict of live :class:`~repro.serve.session.Session` objects, and serves
requests one at a time over a ``multiprocessing.Pipe`` from the front
end — sessions inside a worker advance cooperatively, never
concurrently, which is what makes the per-slice ``OBS.audit`` swap in
:meth:`Session.step` safe. Workers share nothing with each other: the
front end shards sessions across them by id.

Every request is answered; a :class:`~repro.errors.ServeError` (bad
request, unknown session, cap breach) becomes an ``{"ok": false}``
response and never kills the worker. Anything else propagating out of
the simulator is reported with its type and message, and the offending
session — if one was targeted — is killed fail-closed rather than left
in a half-stepped state.
"""

from __future__ import annotations

from typing import Dict

from repro import config as _config
from repro import obs as _obs
from repro.errors import ReproError, ServeError
from repro.serve import protocol
from repro.serve.pool import SnapshotPool
from repro.serve.session import DETACHED, RUNNING, Session, SessionCaps


class Worker:
    """Request dispatcher for one worker process (also usable inline,
    which is how the unit tests drive it without forking)."""

    def __init__(self, worker_id: int = 0, config=None):
        self.worker_id = worker_id
        self.config = config or _config.current()
        self.pool = SnapshotPool()
        self.sessions: "Dict[int, Session]" = {}
        self.served = 0

    # -- operations ----------------------------------------------------------

    def _session(self, sid: int) -> Session:
        session = self.sessions.get(sid)
        if session is None:
            raise ServeError(f"unknown session {sid}")
        return session

    def _create(self, request: dict) -> dict:
        if len(self.sessions) >= self.config.serve_sessions:
            raise ServeError(
                f"worker {self.worker_id} is at its session limit "
                f"({self.config.serve_sessions}, REPRO_SERVE_SESSIONS); "
                f"destroy a session first")
        sid = request["session"]
        if sid in self.sessions:
            raise ServeError(f"session {sid} already exists")
        caps = SessionCaps.from_request(request.get("caps"), self.config)
        key = protocol.pool_key(request, self.config)
        tier = request.get("tier")
        _, built = self.pool.warm(key)
        kernel, process, fork_seconds = self.pool.fork(key, tier=tier)
        session = Session(sid, kernel, process, caps, tier=tier,
                          workload=key.workload,
                          source="boot" if built else "fork",
                          fork_seconds=fork_seconds)
        self.sessions[sid] = session
        return protocol.ok(session=sid, state=session.state,
                           source=session.source,
                           fork_us=fork_seconds * 1e6,
                           caps=caps.as_dict(), worker=self.worker_id)

    def _step(self, request: dict) -> dict:
        session = self._session(request["session"])
        n = request.get("n", self.config.serve_slice)
        try:
            result = session.step(n)
        except ServeError:
            raise
        except ReproError as error:
            # A simulator fault escaping the slice leaves the machine
            # in an unknown state: kill the session, keep the worker.
            session._kill("killed", f"{type(error).__name__}: {error}")
            raise ServeError(f"session {session.sid} killed: "
                             f"{type(error).__name__}: {error}")
        return protocol.ok(session=session.sid, **result)

    def _query(self, request: dict) -> dict:
        session = self._session(request["session"])
        return protocol.ok(**session.query(
            with_hash=bool(request.get("hash")),
            with_audit=bool(request.get("audit"))))

    def _detach(self, request: dict) -> dict:
        session = self._session(request["session"])
        if session.state != RUNNING:
            raise ServeError(f"session {session.sid} is "
                             f"{session.state}, not running")
        session.state = DETACHED
        return protocol.ok(session=session.sid, state=session.state)

    def _reattach(self, request: dict) -> dict:
        session = self._session(request["session"])
        if session.state != DETACHED:
            raise ServeError(f"session {session.sid} is "
                             f"{session.state}, not detached")
        session.state = RUNNING
        return protocol.ok(session=session.sid, state=session.state)

    def _destroy(self, request: dict) -> dict:
        session = self.sessions.pop(request["session"], None)
        if session is None:
            raise ServeError(f"unknown session {request['session']}")
        return protocol.ok(**session.destroy())

    def _warm(self, request: dict) -> dict:
        key = protocol.pool_key(request, self.config)
        entry, built = self.pool.warm(key)
        return protocol.ok(built=built, worker=self.worker_id,
                           boot_us=entry.boot_seconds * 1e6,
                           frames=len(entry.snapshot.state["memory"]))

    def _stats(self, request: dict) -> dict:
        by_state: "Dict[str, int]" = {}
        for session in self.sessions.values():
            by_state[session.state] = by_state.get(session.state, 0) + 1
        return protocol.ok(worker=self.worker_id, served=self.served,
                           sessions=len(self.sessions), states=by_state,
                           pool=self.pool.stats())

    _OPS = {"create": _create, "step": _step, "query": _query,
            "detach": _detach, "reattach": _reattach,
            "destroy": _destroy, "warm": _warm, "stats": _stats}

    def handle(self, request: dict) -> dict:
        """Serve one validated request; never raises."""
        self.served += 1
        handler = self._OPS.get(request.get("op"))
        try:
            if handler is None:
                raise ServeError(f"op {request.get('op')!r} is not a "
                                 f"worker operation")
            return handler(self, request)
        except ServeError as error:
            return protocol.error(str(error))
        except Exception as error:  # noqa: BLE001 — the worker must live
            return protocol.error(f"internal: {type(error).__name__}: "
                                  f"{error}")


def worker_main(conn, worker_id: int, env: "dict | None" = None) -> None:
    """Entry point of a forked worker process.

    Speaks dict-in/dict-out over ``conn`` until a ``shutdown`` request
    (or EOF) arrives. Observability is enabled once here so the
    per-session audit instrumentation sites are live; the per-slice
    trail swap happens inside :meth:`Session.step`.
    """
    import os

    for name, value in (env or {}).items():
        os.environ[name] = value
    _config.set_override(None)   # workers read the env they were handed
    _obs.enable(audit=True)
    worker = Worker(worker_id)
    try:
        while True:
            try:
                request = conn.recv()
            except (EOFError, OSError):
                break
            if not isinstance(request, dict) or \
                    request.get("op") == "shutdown":
                conn.send(protocol.ok(worker=worker_id,
                                      served=worker.served))
                break
            conn.send(worker.handle(request))
    finally:
        conn.close()
