"""roload-serve: the asyncio front end over the worker-process pool.

The server listens on a local socket (Unix-domain by default, TCP with
``--host``) and speaks the line-JSON protocol of :mod:`repro.serve.
protocol`. It owns no simulator state itself: sessions live in a pool
of share-nothing worker processes (:mod:`repro.serve.worker`), sharded
by session id (``sid % workers``), so two sessions on different
workers advance in true parallel while sessions on one worker share it
cooperatively via bounded step slices.

Requests that fail validation are answered ``{"ok": false}`` and
change nothing; a client protocol error never reaches a worker. The
front end allocates session ids itself — clients name sessions only by
the ids the server handed out, so one client cannot address another's
worker state by guessing.
"""

from __future__ import annotations

import argparse
import asyncio
import multiprocessing
import os
import sys
from time import perf_counter
from typing import Optional

from repro import config as _config
from repro.errors import ServeError
from repro.serve import protocol
from repro.serve.worker import worker_main

_FORWARDED_ENV = ("PYTHONPATH", "PYTHONHASHSEED")


def _worker_env() -> dict:
    """Environment snapshot the workers re-read their config from."""
    env = {name: value for name, value in os.environ.items()
           if name.startswith("REPRO_")}
    for name in _FORWARDED_ENV:
        if name in os.environ:
            env[name] = os.environ[name]
    return env


class WorkerHandle:
    """One worker process plus the pipe and lock guarding it."""

    def __init__(self, worker_id: int, env: dict):
        context = multiprocessing.get_context(
            "fork" if sys.platform != "win32" else "spawn")
        self.worker_id = worker_id
        self.conn, child = context.Pipe()
        self.process = context.Process(
            target=worker_main, args=(child, worker_id, env),
            name=f"roload-serve-worker-{worker_id}", daemon=True)
        self.process.start()
        child.close()
        self.lock = asyncio.Lock()

    def _call_sync(self, request: dict) -> dict:
        self.conn.send(request)
        return self.conn.recv()

    async def call(self, request: dict) -> dict:
        """Send one request and await its reply, one at a time."""
        async with self.lock:
            if not self.process.is_alive():
                return protocol.error(
                    f"worker {self.worker_id} is dead")
            try:
                return await asyncio.to_thread(self._call_sync, request)
            except (EOFError, OSError) as error:
                return protocol.error(f"worker {self.worker_id} pipe "
                                      f"broke: {error}")

    def shutdown(self) -> None:
        try:
            self.conn.send({"op": "shutdown"})
            self.conn.recv()
        except (EOFError, OSError, BrokenPipeError):
            pass
        self.process.join(timeout=5)
        if self.process.is_alive():
            self.process.terminate()
        self.conn.close()


class ServeFrontEnd:
    """Session-id allocation, sharding, and protocol dispatch."""

    def __init__(self, workers: "Optional[int]" = None, config=None):
        self.config = config or _config.current()
        count = self.config.resolve_serve_workers(workers)
        env = _worker_env()
        self.workers = [WorkerHandle(i, env) for i in range(count)]
        self.next_sid = 0
        self.started = perf_counter()
        self.requests = 0

    def _shard(self, sid: int) -> WorkerHandle:
        return self.workers[sid % len(self.workers)]

    async def handle(self, request: dict) -> dict:
        """Dispatch one *validated* request."""
        self.requests += 1
        op = request["op"]
        if op == "ping":
            return protocol.ok(server="roload-serve",
                               workers=len(self.workers),
                               requests=self.requests,
                               uptime_s=perf_counter() - self.started)
        if op == "stats":
            replies = await asyncio.gather(
                *(worker.call(request) for worker in self.workers))
            return protocol.ok(workers=list(replies),
                               requests=self.requests)
        if op == "warm":
            # Warm every worker: a later create lands on the shard its
            # session id picks, and each must already hold the snapshot
            # for forking to be cheap there.
            replies = await asyncio.gather(
                *(worker.call(request) for worker in self.workers))
            bad = next((r for r in replies if not r.get("ok")), None)
            if bad is not None:
                return bad
            return protocol.ok(
                built=sum(1 for r in replies if r.get("built")),
                workers=len(replies),
                boot_us=[r["boot_us"] for r in replies
                         if r.get("built")])
        if op == "create":
            sid = self.next_sid
            self.next_sid += 1
            routed = dict(request)
            routed["session"] = sid
            return await self._shard(sid).call(routed)
        sid = protocol.session_of(request)
        if sid is None:
            return protocol.error(f"op {op!r} is not routable")
        if sid >= self.next_sid:
            return protocol.error(f"unknown session {sid}")
        return await self._shard(sid).call(request)

    async def handle_line(self, line: str) -> dict:
        try:
            request = protocol.parse_request(line)
        except ServeError as error:
            return protocol.error(str(error))
        return await self.handle(request)

    def shutdown(self) -> None:
        for worker in self.workers:
            worker.shutdown()


async def _client_loop(front: ServeFrontEnd, reader, writer) -> None:
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            response = await front.handle_line(text)
            writer.write(protocol.encode(response))
            await writer.drain()
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        writer.close()


async def serve(path: "Optional[str]" = None,
                host: "Optional[str]" = None, port: int = 0,
                workers: "Optional[int]" = None,
                ready=None) -> None:
    """Run the server until cancelled.

    ``ready``, if given, is called with the listening address once the
    socket is bound — the load generator and tests use it to connect
    without racing the bind.
    """
    front = ServeFrontEnd(workers)

    async def on_client(reader, writer):
        await _client_loop(front, reader, writer)

    if host is not None:
        server = await asyncio.start_server(on_client, host, port)
        address = server.sockets[0].getsockname()[:2]
    else:
        if path is None:
            raise ServeError("serve() needs a socket path or a host")
        server = await asyncio.start_unix_server(on_client, path)
        address = path
    try:
        if ready is not None:
            ready(address)
        async with server:
            await server.serve_forever()
    finally:
        front.shutdown()
        if host is None and path is not None:
            try:
                os.unlink(path)
            except OSError:
                pass


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="roload-serve",
        description="Snapshot-forked multi-session simulation service "
                    "speaking line-JSON over a local socket.")
    parser.add_argument("--socket", metavar="PATH",
                        default="roload-serve.sock",
                        help="Unix socket path (default: "
                             "./roload-serve.sock)")
    parser.add_argument("--host", default=None,
                        help="serve TCP on this host instead of a "
                             "Unix socket")
    parser.add_argument("--port", type=int, default=7333,
                        help="TCP port with --host (default: 7333)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: "
                             "REPRO_SERVE_WORKERS; 0 = one per CPU)")
    args = parser.parse_args(argv)

    def announce(address):
        print(f"roload-serve: listening on {address} "
              f"({_config.current().resolve_serve_workers(args.workers)}"
              f" workers)", flush=True)

    try:
        asyncio.run(serve(path=None if args.host else args.socket,
                          host=args.host, port=args.port,
                          workers=args.workers, ready=announce))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
