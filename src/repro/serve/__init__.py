"""roload-serve: snapshot-forked multi-session simulation service.

Layers, bottom up:

* :mod:`repro.serve.pool` — warm snapshot pool; cold-boots one machine
  per (profile, workload, scale, variant, boot) key and forks sessions
  from it copy-on-write in milliseconds.
* :mod:`repro.serve.session` — one guest machine with fail-closed
  resource caps and its own hash-chained audit trail.
* :mod:`repro.serve.worker` — a share-nothing worker process hosting
  many sessions cooperatively via bounded ``Kernel.run`` slices.
* :mod:`repro.serve.protocol` — line-JSON request validation; unknown
  operations and fields are denied, never ignored.
* :mod:`repro.serve.server` — the asyncio front end (``roload-serve``)
  that shards sessions across the worker pool.
* :mod:`repro.serve.loadgen` — load generator and ``BENCH_serve.json``
  writer.
"""

from repro.serve.pool import PoolKey, SnapshotPool
from repro.serve.session import Session, SessionCaps

__all__ = ["PoolKey", "SnapshotPool", "Session", "SessionCaps"]
