"""One guest session: a forked machine with fail-closed resource caps.

A :class:`Session` owns a full simulated machine (kernel + process),
normally forked copy-on-write from a warm :class:`~repro.serve.pool.
SnapshotPool` snapshot, and advances it cooperatively in bounded slices
(``Kernel.run(stop_after=N)``) so one worker process can host many
sessions without any of them monopolizing the loop.

The monitor stays trustworthy against a hostile guest by construction:

* **Instruction budget** — a session may retire at most ``caps.instret``
  instructions over its lifetime; reaching the budget kills the session
  (state ``capped``), it is never silently truncated or extended.
* **Frame cap** — a session may materialize at most ``caps.frames``
  private page frames (copy-on-write copies plus pages it allocates);
  exceeding the cap kills the session after the offending slice.
* **Security-event ring** — the per-session kernel security log is a
  bounded ring of ``caps.seclog`` events with a dropped counter, so a
  fault-storm guest cannot grow the monitor without limit.

Every session carries its own SHA-256 hash-chained audit trail
(:class:`~repro.obs.audit.AuditTrail`): ROLoad violations and guest
cache invalidations recorded by the existing instrumentation sites,
plus ``serve.*`` lifecycle records appended here. Chain content is
keyed to guest ``instret`` only, so two sessions forked from the same
snapshot and stepped through the same workload produce bit-identical
chains — on *different* interpreter tiers included (the fork-
determinism test asserts exactly that).
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional

from repro import config as _config
from repro import obs as _obs
from repro.errors import ServeError
from repro.kernel.fault import SecurityLog
from repro.obs.audit import AuditTrail, sealed_view

# Session lifecycle states. "capped" and "killed" are terminal fail-
# closed states; "exited" is the guest's own clean or signalled end.
RUNNING = "running"
DETACHED = "detached"
EXITED = "exited"
CAPPED = "capped"
DESTROYED = "destroyed"


class SessionCaps:
    """Per-session resource limits, clamped to the server's maxima.

    A create request may *lower* any cap below the configured default
    but never raise it — asking for more than the server allows is an
    unverifiable configuration and is denied outright.
    """

    __slots__ = ("instret", "frames", "seclog")

    def __init__(self, instret: int, frames: int, seclog: int):
        self.instret = instret
        self.frames = frames
        self.seclog = seclog

    @classmethod
    def from_request(cls, requested: "Optional[dict]" = None,
                     config: "Optional[_config.Config]" = None) \
            -> "SessionCaps":
        cfg = config or _config.current()
        maxima = {"instret": cfg.serve_instret, "frames": cfg.serve_frames,
                  "seclog": cfg.seclog_cap}
        values = dict(maxima)
        for name, value in (requested or {}).items():
            if name not in maxima:
                raise ServeError(f"unknown session cap {name!r} "
                                 f"(one of: {', '.join(sorted(maxima))})")
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value <= 0:
                raise ServeError(f"session cap {name}={value!r} is not a "
                                 f"positive integer")
            if value > maxima[name]:
                raise ServeError(
                    f"session cap {name}={value} exceeds the server "
                    f"maximum {maxima[name]} (denied, fail closed)")
            values[name] = value
        return cls(**values)

    def as_dict(self) -> dict:
        return {"instret": self.instret, "frames": self.frames,
                "seclog": self.seclog}


class Session:
    """A live guest machine hosted by one serve worker."""

    def __init__(self, sid: int, kernel, process, caps: SessionCaps, *,
                 tier: "Optional[str]" = None, workload: str = "",
                 source: str = "fork", fork_seconds: float = 0.0):
        self.sid = sid
        self.kernel = kernel
        self.process = process
        self.caps = caps
        self.tier = tier
        self.workload = workload
        self.source = source
        self.fork_seconds = fork_seconds
        self.state = RUNNING
        self.detail = ""
        self.retired = 0            # instructions retired in this session
        self.steps = 0              # step slices served
        # The session's own bounded security-event ring (the snapshot's
        # events, if any, carry over) and its own audit chain.
        log = SecurityLog(caps.seclog)
        for event in kernel.security_log:
            log.append(event)
        kernel.faults.security_log = log
        # Chain records never carry session identity, tier, or host
        # time: the chain is a pure function of (snapshot, workload,
        # steps), which is what lets identical-workload sessions be
        # compared head-for-head across interpreter tiers.
        self.audit = AuditTrail()
        self.audit.append("serve.create", workload=workload,
                          instret=self._instret(),
                          caps=self.caps.as_dict())

    # -- helpers -------------------------------------------------------------

    def _instret(self) -> int:
        return self.kernel.system.timing.stats.instructions

    def _tier_scope(self):
        from contextlib import nullcontext
        if self.tier is None:
            return nullcontext()
        return _config.overrides(**_config.TIERS[self.tier])

    @property
    def alive(self) -> bool:
        return self.state in (RUNNING, DETACHED)

    def _kill(self, state: str, detail: str) -> None:
        self.state = state
        self.detail = detail

    # -- the time slice ------------------------------------------------------

    def step(self, n: int) -> dict:
        """Advance the guest by up to ``n`` instructions, fail closed.

        The worker swaps the process-wide audit hook to this session's
        chain for the duration of the slice, so instrumentation sites
        (ROLoad faults, guest ``fence.i``/SMC flushes) append to the
        right chain; sessions never run concurrently inside a worker.
        """
        if self.state == DETACHED:
            raise ServeError(f"session {self.sid} is detached; "
                             f"reattach before stepping")
        if not self.alive:
            raise ServeError(f"session {self.sid} is {self.state}"
                             f"{' (' + self.detail + ')' if self.detail else ''}")
        if n <= 0:
            raise ServeError(f"step count {n} is not positive")
        left = self.caps.instret - self.retired
        if left <= 0:                      # can't happen: capped below
            self._kill(CAPPED, "instret budget exhausted")
            raise ServeError(f"session {self.sid} is {CAPPED}")
        slice_n = min(n, left)
        began = perf_counter()
        core = self.kernel.system.core
        before = core.instret
        saved_audit = _obs.OBS.audit
        _obs.OBS.audit = self.audit
        try:
            with self._tier_scope():
                self.kernel.run(self.process,
                                max_instructions=left,
                                stop_after=slice_n)
        finally:
            _obs.OBS.audit = saved_audit
        executed = core.instret - before
        self.retired += executed
        self.steps += 1
        if not self.process.alive:
            self.state = EXITED
            self.detail = self.process.status()
            self.audit.append("serve.exit", status=self.detail,
                              instret=self._instret())
        elif self.retired >= self.caps.instret:
            self._kill(CAPPED, f"instret budget ({self.caps.instret}) "
                               f"exhausted")
            self.audit.append("serve.cap", what="instret",
                              cap=self.caps.instret,
                              instret=self._instret())
        else:
            frames = self.kernel.system.memory.private_frame_count()
            if frames > self.caps.frames:
                self._kill(CAPPED, f"frame cap ({self.caps.frames}) "
                                   f"exceeded: {frames} private frames")
                self.audit.append("serve.cap", what="frames",
                                  cap=self.caps.frames, frames=frames,
                                  instret=self._instret())
        return {"executed": executed, "retired": self.retired,
                "state": self.state, "detail": self.detail,
                "wall_us": (perf_counter() - began) * 1e6}

    # -- introspection -------------------------------------------------------

    def query(self, *, with_hash: bool = False,
              with_audit: bool = False) -> dict:
        """Metrics, tier residency, caps, and the audit head.

        ``with_hash`` computes the architectural state hash — which
        *quiesces* the machine (a deterministic barrier: compare hashes
        only between sessions queried at the same point). ``with_audit``
        attaches a sealed, verifiable copy of the full chain.
        """
        system = self.kernel.system
        core = system.core
        stats = system.timing.stats
        memory = system.memory
        seclog = self.kernel.security_log
        tier2 = (core.instret - core.tier0_retired - core.tier1_retired
                 - core.tier3_retired - core.tier4_retired)
        out = {
            "session": self.sid,
            "state": self.state,
            "detail": self.detail,
            "workload": self.workload,
            "tier": self.tier or "ambient",
            "source": self.source,
            "steps": self.steps,
            "retired": self.retired,
            "caps": self.caps.as_dict(),
            "metrics": {
                "instructions": stats.instructions,
                "cycles": stats.cycles,
                "icache_misses": stats.icache_misses,
                "dcache_misses": stats.dcache_misses,
                "frames": memory.frame_count(),
                "private_frames": memory.private_frame_count(),
            },
            "residency": {
                "tier0": core.tier0_retired,
                "tier1": core.tier1_retired,
                "tier2": tier2,
                "tier3": core.tier3_retired,
                "tier4": core.tier4_retired,
            },
            "seclog": {"total": seclog.total, "dropped": seclog.dropped,
                       "capacity": seclog.capacity},
            "audit": {"head": self.audit.head,
                      "events": self.audit.events},
        }
        if with_hash:
            with self._tier_scope():
                from repro.replay.snapshot import state_hash
                out["state_hash"] = state_hash(self.kernel)
        if with_audit:
            out["audit"]["records"] = sealed_view(self.audit)
        return out

    def destroy(self) -> dict:
        """Tear the session down; returns the sealed audit chain."""
        if self.state != DESTROYED:
            self.audit.append("serve.destroy", state=self.state,
                              instret=self._instret())
            self.audit.seal()
            self.state = DESTROYED
        return {"session": self.sid, "state": self.state,
                "audit": list(self.audit.records)}
