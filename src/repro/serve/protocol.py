"""Line-JSON serve protocol: one request object per line, fail closed.

Every request is a single JSON object terminated by ``\\n`` with an
``op`` field; every response is a single JSON object with ``ok`` (and
``error`` when ``ok`` is false). Validation is allow-list based and
denies rather than ignores: an unknown ``op``, an unknown field on a
known ``op``, or a value of the wrong shape is a :class:`~repro.errors.
ServeError` before any simulator state is touched. A server must never
guess what a half-understood request meant.

The operations:

======== ================================================== ==========
op       fields                                             routing
======== ================================================== ==========
create   profile, workload, [scale, variant, tier, boot,    one worker
         caps{instret,frames,seclog}]
step     session, [n]                                       by session
query    session, [hash, audit]                             by session
detach   session                                            by session
reattach session                                            by session
destroy  session                                            by session
warm     profile, workload, [scale, variant, boot]          one worker
stats    (none)                                             all workers
ping     (none)                                             front end
======== ================================================== ==========
"""

from __future__ import annotations

import json
from typing import Optional

from repro import config as _config
from repro.errors import ServeError
from repro.serve.pool import PoolKey

# Allowed fields per operation, beyond "op" itself. A request carrying
# anything else is denied — silently dropping fields would let a typo
# (say "cap" for "caps") weaken a session's limits without a trace.
_FIELDS = {
    "create": {"profile", "workload", "scale", "variant", "tier",
               "boot", "caps"},
    "step": {"session", "n"},
    "query": {"session", "hash", "audit"},
    "detach": {"session"},
    "reattach": {"session"},
    "destroy": {"session"},
    "warm": {"profile", "workload", "scale", "variant", "boot"},
    "stats": set(),
    "ping": set(),
}

_SESSION_OPS = frozenset({"step", "query", "detach", "reattach",
                          "destroy"})


def parse_request(line: str) -> dict:
    """Parse and validate one protocol line; raises ServeError."""
    try:
        request = json.loads(line)
    except json.JSONDecodeError as error:
        raise ServeError(f"request is not valid JSON: {error}")
    if not isinstance(request, dict):
        raise ServeError("request is not a JSON object")
    op = request.get("op")
    if not isinstance(op, str):
        raise ServeError("request has no 'op' string")
    allowed = _FIELDS.get(op)
    if allowed is None:
        raise ServeError(f"unknown op {op!r} (one of: "
                         f"{', '.join(sorted(_FIELDS))})")
    extra = set(request) - allowed - {"op"}
    if extra:
        raise ServeError(f"op {op!r} does not accept field(s) "
                         f"{', '.join(sorted(extra))} (denied, fail "
                         f"closed)")
    validator = _VALIDATORS.get(op)
    if validator is not None:
        validator(request)
    return request


def _require_session(request: dict) -> None:
    sid = request.get("session")
    if not isinstance(sid, int) or isinstance(sid, bool) or sid < 0:
        raise ServeError(f"'session' must be a non-negative integer, "
                         f"got {sid!r}")


def _require_flag(request: dict, name: str) -> None:
    value = request.get(name, False)
    if not isinstance(value, bool):
        raise ServeError(f"{name!r} must be a boolean, got {value!r}")


def pool_key(request: dict, config=None) -> PoolKey:
    """Build (and validate) the snapshot-pool key a request names."""
    cfg = config or _config.current()
    scale = request.get("scale", 1.0)
    if not isinstance(scale, (int, float)) or isinstance(scale, bool):
        raise ServeError(f"'scale' must be a number, got {scale!r}")
    variant = request.get("variant", "vcall")
    if not isinstance(variant, str):
        raise ServeError(f"'variant' must be a string, got {variant!r}")
    boot = request.get("boot", cfg.serve_boot)
    if not isinstance(boot, int) or isinstance(boot, bool):
        raise ServeError(f"'boot' must be an integer, got {boot!r}")
    return PoolKey(profile=str(request.get("profile", "")),
                   workload=str(request.get("workload", "")),
                   scale=float(scale), variant=variant,
                   boot=boot).validate()


def _validate_create(request: dict) -> None:
    for field in ("profile", "workload"):
        if not isinstance(request.get(field), str):
            raise ServeError(f"create requires a {field!r} string")
    tier = request.get("tier")
    if tier is not None and tier not in _config.TIERS:
        raise ServeError(f"unknown tier {tier!r} (one of: "
                         f"{', '.join(sorted(_config.TIERS))})")
    caps = request.get("caps")
    if caps is not None and not isinstance(caps, dict):
        raise ServeError(f"'caps' must be an object, got {caps!r}")
    pool_key(request)


def _validate_step(request: dict) -> None:
    _require_session(request)
    n = request.get("n", _config.current().serve_slice)
    if not isinstance(n, int) or isinstance(n, bool) or n <= 0:
        raise ServeError(f"'n' must be a positive integer, got {n!r}")
    limit = _config.current().serve_slice
    if n > limit:
        raise ServeError(f"step n={n} exceeds the per-slice limit "
                         f"{limit} (REPRO_SERVE_SLICE); issue more "
                         f"steps instead")


def _validate_query(request: dict) -> None:
    _require_session(request)
    _require_flag(request, "hash")
    _require_flag(request, "audit")


def _validate_warm(request: dict) -> None:
    for field in ("profile", "workload"):
        if not isinstance(request.get(field), str):
            raise ServeError(f"warm requires a {field!r} string")
    pool_key(request)


_VALIDATORS = {
    "create": _validate_create,
    "step": _validate_step,
    "query": _validate_query,
    "detach": _require_session,
    "reattach": _require_session,
    "destroy": _require_session,
    "warm": _validate_warm,
}


def session_of(request: dict) -> "Optional[int]":
    """The session a validated request targets, if any."""
    if request.get("op") in _SESSION_OPS:
        return request["session"]
    return None


def encode(response: dict) -> bytes:
    return (json.dumps(response, separators=(",", ":"))
            + "\n").encode("utf-8")


def ok(**fields) -> dict:
    response = {"ok": True}
    response.update(fields)
    return response


def error(message: str) -> dict:
    return {"ok": False, "error": message}
