"""``python -m repro.serve`` — same entry point as ``roload-serve``."""

from repro.serve.server import main

if __name__ == "__main__":
    raise SystemExit(main())
