"""Warm snapshot pool: boot once per workload, fork in milliseconds.

The pool keys warm snapshots by everything that shapes the booted
machine — SoC profile, workload name, scale, hardening variant, and the
boot point — and builds each at most once per worker process:

1. generate the workload (deterministic in the profile seed),
2. compile and link it with the requested hardening,
3. boot it on a fresh system to ``boot`` retired instructions,
4. capture a quiesced :class:`~repro.replay.snapshot.Snapshot`.

Forking a session then *shares* the snapshot's frame bytes through the
copy-on-write layer (``restore(snap, cow=True)``) instead of copying
them, so session start is bookkeeping-bound: the fork-latency numbers
in ``BENCH_serve.json`` are the cold boot amortized away.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Optional, Tuple

from repro import config as _config
from repro.errors import ServeError
from repro.replay.snapshot import Snapshot, restore, snapshot
from repro.soc.config import PROFILES as SOC_PROFILES
from repro.workloads.profiles import PROFILE_BY_NAME


@dataclass(frozen=True)
class PoolKey:
    """Identity of one warm snapshot."""

    profile: str
    workload: str
    scale: float
    variant: str
    boot: int

    def validate(self) -> "PoolKey":
        if self.profile not in SOC_PROFILES:
            raise ServeError(f"unknown SoC profile {self.profile!r} "
                             f"(one of: {', '.join(SOC_PROFILES)})")
        if self.workload not in PROFILE_BY_NAME:
            raise ServeError(
                f"unknown workload {self.workload!r} (one of: "
                f"{', '.join(sorted(PROFILE_BY_NAME))})")
        from repro.eval.measure import VARIANTS
        if self.variant not in VARIANTS:
            raise ServeError(f"unknown hardening variant "
                             f"{self.variant!r} (one of: "
                             f"{', '.join(VARIANTS)})")
        if not 0 < self.scale <= 100:
            raise ServeError(f"workload scale {self.scale!r} out of "
                             f"range (0, 100]")
        if self.boot <= 0:
            raise ServeError(f"boot point {self.boot!r} is not positive")
        return self


@dataclass
class WarmSnapshot:
    """A pooled snapshot plus the cold-boot cost it amortizes."""

    snapshot: Snapshot
    boot_seconds: float
    forks: int = 0


def boot_workload(key: PoolKey, *, max_instructions: int = 50_000_000):
    """Cold path: generate, compile, load, and boot one workload.

    Returns the paused kernel/process pair at ``key.boot`` retired
    instructions; raises :class:`ServeError` if the program finishes
    before the boot point (nothing left to serve).
    """
    from repro.compiler import compile_module
    from repro.eval.measure import make_hardening
    from repro.kernel.kernel import Kernel
    from repro.soc.system import build_system
    from repro.workloads import build_workload
    from repro.workloads import profile as workload_profile

    program = build_workload(workload_profile(key.workload),
                             scale=key.scale)
    image = compile_module(program.module,
                           hardening=make_hardening(key.variant, program))
    system = build_system(key.profile)
    kernel = Kernel(system)
    process = kernel.create_process(image, name=key.workload)
    kernel.run(process, max_instructions=max_instructions,
               stop_after=key.boot)
    if not process.alive:
        raise ServeError(
            f"workload {key.workload} (scale {key.scale}) finished "
            f"before the boot point ({key.boot} instructions): "
            f"{process.status()}")
    return kernel, process


class SnapshotPool:
    """Per-worker warm snapshot store (share-nothing across workers)."""

    def __init__(self):
        self._warm: "Dict[PoolKey, WarmSnapshot]" = {}

    def __len__(self) -> int:
        return len(self._warm)

    def warm(self, key: PoolKey) -> "Tuple[WarmSnapshot, bool]":
        """Get (building if needed) the warm snapshot for ``key``.

        Returns ``(entry, built)`` — ``built`` tells the caller whether
        this call paid the cold boot.
        """
        key.validate()
        entry = self._warm.get(key)
        if entry is not None:
            return entry, False
        began = perf_counter()
        kernel, _ = boot_workload(key)
        snap = snapshot(kernel)
        entry = WarmSnapshot(snap, boot_seconds=perf_counter() - began)
        self._warm[key] = entry
        return entry, True

    def fork(self, key: PoolKey, *, tier: "Optional[str]" = None):
        """Fork a fresh machine copy-on-write from the warm snapshot.

        Returns ``(kernel, process, fork_seconds)``. The tier override
        must be active while the system is *built*, not only while it
        runs — the core reads the execution knobs at construction.
        """
        entry, _ = self.warm(key)
        began = perf_counter()
        if tier is not None:
            if tier not in _config.TIERS:
                raise ServeError(f"unknown tier {tier!r} (one of: "
                                 f"{', '.join(sorted(_config.TIERS))})")
            with _config.overrides(**_config.TIERS[tier]):
                kernel, process = restore(entry.snapshot, cow=True)
        else:
            kernel, process = restore(entry.snapshot, cow=True)
        entry.forks += 1
        return kernel, process, perf_counter() - began

    def stats(self) -> dict:
        return {
            "warm": len(self._warm),
            "entries": [
                {"profile": key.profile, "workload": key.workload,
                 "scale": key.scale, "variant": key.variant,
                 "boot": key.boot, "forks": entry.forks,
                 "boot_seconds": entry.boot_seconds,
                 "frames": len(entry.snapshot.state["memory"])}
                for key, entry in self._warm.items()],
        }
