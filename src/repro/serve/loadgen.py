"""Load generator for roload-serve, and the BENCH_serve.json writer.

Boots a server in-process on a throwaway Unix socket, then drives it
the way a fleet of clients would: warm the pool, create ``--sessions``
sessions fanned across the worker pool (cycling through ``--tiers`` so
the same workload runs on different interpreter tiers), step each for
``--steps`` bounded slices, query the final state hash and audit head,
and destroy everything.

What it measures:

* **fork** — cold-boot cost (from the warm phase) vs copy-on-write
  fork latency per create: the snapshot-pool speedup.
* **throughput** — sessions/sec over the whole run, step slices/sec,
  and aggregate simulated MIPS during the step phase.
* **latency** — client-observed create and step latency percentiles
  (includes protocol and queueing time: the honest service numbers).
* **determinism** — sessions with identical (workload, scale, variant,
  boot, step plan) form a group; within a group every session must
  report the *same* architectural state hash and audit chain head at
  the end, across interpreter tiers. Any divergence is counted and
  fails the run.

``--out`` writes the ``roload-serve`` schema-v1 bench record;
``--audit-export`` saves one session's sealed audit chain as JSONL for
``roload-stats audit verify``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import sys
import tempfile
from time import perf_counter
from typing import List, Optional

from repro import config as _config
from repro.serve import protocol
from repro.serve.server import serve

SCHEMA_VERSION = 1


class Client:
    """One line-JSON protocol connection."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, path: str) -> "Client":
        reader, writer = await asyncio.open_unix_connection(path)
        return cls(reader, writer)

    async def request(self, **fields) -> dict:
        self.writer.write(protocol.encode(fields))
        await self.writer.drain()
        line = await self.reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _percentile(values: "List[float]", q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


class SessionResult:
    __slots__ = ("sid", "tier", "fork_us", "create_ms", "step_ms",
                 "retired", "state", "state_hash", "audit_head",
                 "error")

    def __init__(self, tier: str):
        self.sid = -1
        self.tier = tier
        self.fork_us = 0.0
        self.create_ms = 0.0
        self.step_ms: "List[float]" = []
        self.retired = 0
        self.state = "?"
        self.state_hash = ""
        self.audit_head = ""
        self.error: "Optional[str]" = None


async def _drive_session(path: str, base: dict, tier: str, steps: int,
                         slice_n: int) -> SessionResult:
    """One client: create -> step xN -> query(hash) -> destroy."""
    result = SessionResult(tier)
    client = await Client.connect(path)
    try:
        began = perf_counter()
        reply = await client.request(op="create", tier=tier, **base)
        result.create_ms = (perf_counter() - began) * 1e3
        if not reply.get("ok"):
            result.error = f"create: {reply.get('error')}"
            return result
        result.sid = reply["session"]
        result.fork_us = reply["fork_us"]
        for _ in range(steps):
            began = perf_counter()
            reply = await client.request(op="step", session=result.sid,
                                         n=slice_n)
            result.step_ms.append((perf_counter() - began) * 1e3)
            if not reply.get("ok"):
                result.error = f"step: {reply.get('error')}"
                return result
            result.retired = reply["retired"]
            result.state = reply["state"]
            if reply["state"] != "running":
                break
        reply = await client.request(op="query", session=result.sid,
                                     hash=True)
        if not reply.get("ok"):
            result.error = f"query: {reply.get('error')}"
            return result
        result.state_hash = reply.get("state_hash", "")
        result.audit_head = reply["audit"]["head"]
        return result
    finally:
        if result.sid >= 0:
            try:
                await client.request(op="destroy", session=result.sid)
            except (ConnectionError, OSError):
                pass
        await client.close()


def _determinism(results: "List[SessionResult]") -> dict:
    """Group identically-driven sessions; count hash/head divergence.

    The tier is deliberately NOT part of the group key: the whole point
    is that the same workload stepped the same way must look identical
    from the outside no matter which interpreter tier simulated it.
    """
    groups: "dict[tuple, set]" = {}
    for result in results:
        if result.error or result.sid < 0:
            continue
        key = (result.retired, result.state)
        groups.setdefault(key, set()).add(
            (result.state_hash, result.audit_head))
    divergent = sum(1 for variants in groups.values()
                    if len(variants) > 1)
    return {"groups": len(groups), "divergent": divergent,
            "sessions_compared": sum(
                1 for r in results if not r.error and r.sid >= 0)}


async def run_load(args) -> dict:
    """Run the whole load scenario; returns the bench record."""
    base = {"profile": args.profile, "workload": args.workload,
            "scale": args.scale, "variant": args.variant,
            "boot": args.boot}
    tiers = [tier.strip() for tier in args.tiers.split(",")
             if tier.strip()]
    bound = asyncio.Event()
    address: "List[str]" = []

    def ready(addr):
        address.append(addr)
        bound.set()

    with tempfile.TemporaryDirectory(prefix="roload-serve-") as tmp:
        path = os.path.join(tmp, "serve.sock")
        server_task = asyncio.create_task(serve(
            path=path, workers=args.workers, ready=ready))
        await asyncio.wait_for(bound.wait(), timeout=60)
        try:
            control = await Client.connect(path)
            reply = await control.request(op="ping")
            workers = reply["workers"]

            began = perf_counter()
            reply = await control.request(op="warm", **base)
            warm_ms = (perf_counter() - began) * 1e3
            if not reply.get("ok"):
                raise SystemExit(f"loadgen: warm failed: "
                                 f"{reply.get('error')}")
            boots = reply.get("boot_us", [])
            cold_boot_ms = (sum(boots) / len(boots) / 1e3) if boots \
                else warm_ms / max(1, workers)

            run_began = perf_counter()
            results = await asyncio.gather(*(
                _drive_session(path, base, tiers[i % len(tiers)],
                               args.steps, args.slice)
                for i in range(args.sessions)))
            run_seconds = perf_counter() - run_began

            audit_records = None
            if args.audit_export:
                # A fresh session's full chain, sealed by destroy.
                client = await Client.connect(path)
                reply = await client.request(op="create", tier=tiers[0],
                                             **base)
                sid = reply["session"]
                await client.request(op="step", session=sid,
                                     n=args.slice)
                reply = await client.request(op="destroy", session=sid)
                audit_records = reply["audit"]
                await client.close()

            await control.close()
        finally:
            server_task.cancel()
            try:
                await server_task
            except (asyncio.CancelledError, Exception):
                pass

    failures = [r for r in results if r.error]
    for result in failures[:5]:
        print(f"loadgen: session tier={result.tier}: {result.error}",
              file=sys.stderr)
    completed = [r for r in results if not r.error]
    forks_ms = [r.fork_us / 1e3 for r in completed]
    creates_ms = [r.create_ms for r in completed]
    steps_ms = [ms for r in completed for ms in r.step_ms]
    total_steps = sum(len(r.step_ms) for r in completed)
    total_retired = sum(r.retired for r in completed)
    fork_ms_mean = (sum(forks_ms) / len(forks_ms)) if forks_ms else 0.0

    record = {
        "tool": "roload-serve",
        "schema_version": SCHEMA_VERSION,
        "params": {
            "sessions": args.sessions, "workers": workers,
            "steps": args.steps, "slice": args.slice,
            "workload": args.workload, "scale": args.scale,
            "variant": args.variant, "profile": args.profile,
            "boot": args.boot, "tiers": tiers,
        },
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "fork": {
            "cold_boot_ms": cold_boot_ms,
            "fork_ms_mean": fork_ms_mean,
            "fork_ms_p99": _percentile(forks_ms, 0.99),
            "speedup": (cold_boot_ms / fork_ms_mean)
                       if fork_ms_mean else 0.0,
        },
        "throughput": {
            "sessions_per_sec": len(completed) / run_seconds
                                if run_seconds else 0.0,
            "steps_per_sec": total_steps / run_seconds
                             if run_seconds else 0.0,
            "sim_mips": total_retired / run_seconds / 1e6
                        if run_seconds else 0.0,
        },
        "latency_ms": {
            "step_p50": _percentile(steps_ms, 0.50),
            "step_p99": _percentile(steps_ms, 0.99),
            "create_p50": _percentile(creates_ms, 0.50),
            "create_p99": _percentile(creates_ms, 0.99),
        },
        "determinism": _determinism(results),
        "completed": len(completed),
        "failed": len(failures),
    }
    if audit_records is not None:
        with open(args.audit_export, "w", encoding="utf-8") as handle:
            for rec in audit_records:
                handle.write(json.dumps(rec, sort_keys=True,
                                        separators=(",", ":")) + "\n")
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="Drive an in-process roload-serve with many "
                    "concurrent sessions and record BENCH_serve.json.")
    parser.add_argument("--sessions", type=int, default=64)
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: "
                             "REPRO_SERVE_WORKERS)")
    parser.add_argument("--steps", type=int, default=4,
                        help="step slices per session (default 4)")
    parser.add_argument("--slice", type=int, default=2000,
                        help="instructions per step slice (default "
                             "2000)")
    parser.add_argument("--workload", default="429.mcf")
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--variant", default="vcall")
    parser.add_argument("--profile", default="processor+kernel")
    parser.add_argument("--boot", type=int, default=None,
                        help="snapshot boot point in instructions "
                             "(default: REPRO_SERVE_BOOT)")
    parser.add_argument("--tiers", default="tier1,tier2,tier3,tier4",
                        help="comma-separated tier cycle for sessions")
    parser.add_argument("--out", default=None, metavar="BENCH.json",
                        help="write the bench record here")
    parser.add_argument("--audit-export", default=None,
                        metavar="AUDIT.jsonl",
                        help="export one session's sealed audit chain")
    args = parser.parse_args(argv)
    if args.boot is None:
        args.boot = _config.current().serve_boot

    record = asyncio.run(run_load(args))

    fork = record["fork"]
    throughput = record["throughput"]
    latency = record["latency_ms"]
    determinism = record["determinism"]
    print(f"loadgen: {record['completed']}/{record['params']['sessions']}"
          f" sessions completed on {record['params']['workers']} "
          f"workers ({record['failed']} failed)")
    print(f"  fork: {fork['fork_ms_mean']:.3f}ms mean / "
          f"{fork['fork_ms_p99']:.3f}ms p99 vs "
          f"{fork['cold_boot_ms']:.1f}ms cold boot "
          f"({fork['speedup']:.1f}x)")
    print(f"  throughput: {throughput['sessions_per_sec']:.1f} "
          f"sessions/s, {throughput['steps_per_sec']:.1f} steps/s, "
          f"{throughput['sim_mips']:.3f} sim-MIPS")
    print(f"  latency: step p50 {latency['step_p50']:.2f}ms / p99 "
          f"{latency['step_p99']:.2f}ms, create p99 "
          f"{latency['create_p99']:.2f}ms")
    print(f"  determinism: {determinism['groups']} group(s) over "
          f"{determinism['sessions_compared']} sessions, "
          f"{determinism['divergent']} divergent")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"  record: {args.out}")
    if args.audit_export:
        print(f"  audit chain: {args.audit_export}")
    if record["failed"] or determinism["divergent"]:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
