"""Page-fault handling: the modified ``arch/riscv/mm/fault.c``.

The paper's kernel change: "It first distinguishes load page faults raised
by ROLoad-family instructions from benign load page faults raised by
regular load instructions. If the load page faults are raised by
ROLoad-family instructions because of read-only permission check failure
or key check failure, the modified Linux kernel will send a segmentation
fault (SIGSEGV) signal to the faulting process to warn and/or kill it."

With ``roload_aware=False`` (the unmodified kernel of the ``processor``
profile) the fault is handled generically: the process still dies with
SIGSEGV, but the kernel records no ROLoad security event — the
*diagnostic* capability is what the kernel modification buys.

The security log is bounded (``REPRO_SECLOG_CAP``, default 4096): a
fault-storm workload keeps the most recent events and counts the
overflow in :attr:`SecurityLog.dropped` instead of growing without
limit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro import config as _config
from repro.cpu.trap import Cause, Trap
from repro.kernel.signals import SIGSEGV, SignalInfo
from repro.obs import OBS as _OBS

DEFAULT_SECLOG_CAPACITY = 4096


def _env_seclog_capacity() -> int:
    return _config.current().seclog_cap


@dataclass
class SecurityEvent:
    """A ROLoad violation recorded by the modified kernel."""

    pid: int
    pc: int
    fault_address: int
    reason: str
    insn_key: "int | None"
    page_key: "int | None"

    def __str__(self) -> str:
        text = (f"pid {self.pid}: ROLoad violation ({self.reason}) at "
                f"pc={self.pc:#x} addr={self.fault_address:#x}")
        if self.reason == "key_mismatch":
            text += f" (insn key {self.insn_key}, page key {self.page_key})"
        return text


class SecurityLog:
    """Bounded ring of :class:`SecurityEvent` with a dropped counter.

    List-like enough for existing callers (len/iter/index/bool); keeps
    the most recent ``capacity`` events. ``total`` counts every event
    ever recorded, ``dropped`` the ones the ring has since evicted.
    """

    def __init__(self, capacity: "int | None" = None):
        self.capacity = capacity if capacity is not None \
            else _env_seclog_capacity()
        if self.capacity <= 0:
            raise ValueError(f"security log needs a positive capacity, "
                             f"got {self.capacity}")
        self._ring: deque = deque(maxlen=self.capacity)
        self.total = 0
        self.dropped = 0

    def append(self, event: SecurityEvent) -> None:
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)
        self.total += 1

    def clear(self) -> None:
        self._ring.clear()
        self.total = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._ring)

    def __bool__(self) -> bool:
        return bool(self._ring)

    def __iter__(self):
        return iter(self._ring)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._ring)[index]
        return self._ring[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SecurityLog(capacity={self.capacity}, "
                f"events={len(self._ring)}, dropped={self.dropped})")


@dataclass
class FaultHandler:
    """Kernel page-fault path."""

    roload_aware: bool = True
    security_log: SecurityLog = field(default_factory=SecurityLog)

    def handle(self, process, trap: Trap,
               instret: "int | None" = None) -> SignalInfo:
        """Handle a memory fault; returns the fatal signal delivered.

        ``instret`` is the guest retired-instruction count at the trap;
        the audit trail records it instead of any host timestamp so the
        chain stays bit-identical across interpreter tiers.

        (This model has no demand paging or swapping: every valid page is
        mapped up front, so any page fault is a genuine violation.)
        """
        # [roload-begin: kernel]
        if (trap.cause == Cause.LOAD_PAGE_FAULT and trap.is_roload_fault
                and self.roload_aware):
            # The new discrimination path of the modified kernel.
            reason = trap.roload_reason.value
            self.security_log.append(SecurityEvent(
                pid=process.pid, pc=trap.pc, fault_address=trap.tval,
                reason=reason, insn_key=trap.insn_key,
                page_key=trap.page_key))
            if _OBS.enabled:
                _OBS.events.emit(
                    "roload.violation", cat="arch", pid=process.pid,
                    pc=trap.pc, addr=trap.tval, reason=reason,
                    insn_key=trap.insn_key, page_key=trap.page_key)
                if _OBS.audit is not None:
                    _OBS.audit.append(
                        "roload.violation", pid=process.pid,
                        pc=trap.pc, addr=trap.tval, reason=reason,
                        insn_key=trap.insn_key,
                        page_key=trap.page_key, instret=instret)
            signal = SignalInfo(SIGSEGV,
                                f"pointee integrity violation: {reason}",
                                pc=trap.pc, fault_address=trap.tval,
                                roload=True, trap=trap)
        # [roload-end]
        else:
            kind = Cause.NAMES.get(trap.cause, "memory fault")
            if _OBS.enabled:
                _OBS.events.emit("fault.benign", cat="arch",
                                 pid=process.pid, pc=trap.pc,
                                 addr=trap.tval, kind=kind)
            signal = SignalInfo(SIGSEGV, kind, pc=trap.pc,
                                fault_address=trap.tval, trap=trap)
        process.kill(signal)
        return signal
