"""Page-fault handling: the modified ``arch/riscv/mm/fault.c``.

The paper's kernel change: "It first distinguishes load page faults raised
by ROLoad-family instructions from benign load page faults raised by
regular load instructions. If the load page faults are raised by
ROLoad-family instructions because of read-only permission check failure
or key check failure, the modified Linux kernel will send a segmentation
fault (SIGSEGV) signal to the faulting process to warn and/or kill it."

With ``roload_aware=False`` (the unmodified kernel of the ``processor``
profile) the fault is handled generically: the process still dies with
SIGSEGV, but the kernel records no ROLoad security event — the
*diagnostic* capability is what the kernel modification buys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.cpu.trap import Cause, Trap
from repro.kernel.signals import SIGSEGV, SignalInfo


@dataclass
class SecurityEvent:
    """A ROLoad violation recorded by the modified kernel."""

    pid: int
    pc: int
    fault_address: int
    reason: str
    insn_key: "int | None"
    page_key: "int | None"

    def __str__(self) -> str:
        text = (f"pid {self.pid}: ROLoad violation ({self.reason}) at "
                f"pc={self.pc:#x} addr={self.fault_address:#x}")
        if self.reason == "key_mismatch":
            text += f" (insn key {self.insn_key}, page key {self.page_key})"
        return text


@dataclass
class FaultHandler:
    """Kernel page-fault path."""

    roload_aware: bool = True
    security_log: "List[SecurityEvent]" = field(default_factory=list)

    def handle(self, process, trap: Trap) -> SignalInfo:
        """Handle a memory fault; returns the fatal signal delivered.

        (This model has no demand paging or swapping: every valid page is
        mapped up front, so any page fault is a genuine violation.)
        """
        # [roload-begin: kernel]
        if (trap.cause == Cause.LOAD_PAGE_FAULT and trap.is_roload_fault
                and self.roload_aware):
            # The new discrimination path of the modified kernel.
            reason = trap.roload_reason.value
            self.security_log.append(SecurityEvent(
                pid=process.pid, pc=trap.pc, fault_address=trap.tval,
                reason=reason, insn_key=trap.insn_key,
                page_key=trap.page_key))
            signal = SignalInfo(SIGSEGV,
                                f"pointee integrity violation: {reason}",
                                pc=trap.pc, fault_address=trap.tval,
                                roload=True, trap=trap)
        # [roload-end]
        else:
            kind = Cause.NAMES.get(trap.cause, "memory fault")
            signal = SignalInfo(SIGSEGV, kind, pc=trap.pc,
                                fault_address=trap.tval, trap=trap)
        process.kill(signal)
        return signal
