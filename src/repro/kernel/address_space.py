"""Per-process virtual address spaces with page keys.

The kernel-side analogue of the paper's ``arch/riscv`` changes: page keys
are plumbed "at each level of MMU abstraction" — here, through the VMA
list and into leaf PTEs — so that ``mmap()`` and ``mprotect()`` can set up
keys for user processes.

``honour_keys=False`` models the *unmodified* kernel of the
``processor``-only profile in §V-B: the key plumbing does not exist, so
every mapping gets key 0 regardless of what was requested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import KernelError
from repro.isa.opcodes import KEY_MAX
from repro.mem.pagetable import FrameAllocator, PageTableBuilder
from repro.mem.physical import PAGE_SIZE, PhysicalMemory
from repro.utils.bits import align_down, align_up

PROT_NONE = 0
PROT_READ = 1
PROT_WRITE = 2
PROT_EXEC = 4


@dataclass
class VMA:
    """One mapped virtual region."""

    start: int
    end: int
    prot: int
    key: int = 0
    name: str = ""

    def __contains__(self, vaddr: int) -> bool:
        return self.start <= vaddr < self.end

    @property
    def pages(self) -> int:
        return (self.end - self.start) // PAGE_SIZE


class AddressSpace:
    """A process's mappings plus its hardware page table."""

    # Virtual layout defaults.
    MMAP_BASE = 0x4000_0000
    STACK_TOP = 0x7FFF_F000
    STACK_PAGES = 64

    def __init__(self, memory: PhysicalMemory, allocator: FrameAllocator,
                 *, honour_keys: bool = True,
                 page_table_root: "int | None" = None):
        self.memory = memory
        self.allocator = allocator
        self.honour_keys = honour_keys
        # ``page_table_root`` re-adopts an already-built table whose PTEs
        # were restored into ``memory`` from a snapshot.
        self.page_table = PageTableBuilder(memory, allocator,
                                           root=page_table_root)
        self.vmas: "List[VMA]" = []
        self._frames: "dict[int, int]" = {}  # vpage -> physical frame addr
        self._mmap_cursor = self.MMAP_BASE
        self.brk_base = 0
        self.brk = 0

    @property
    def root_ppn(self) -> int:
        return self.page_table.root_ppn

    # -- queries --------------------------------------------------------------

    def vma_at(self, vaddr: int) -> Optional[VMA]:
        for vma in self.vmas:
            if vaddr in vma:
                return vma
        return None

    def mapped_pages(self) -> int:
        """Total pages mapped (the RSS-like figure used by the memory
        overhead evaluation — everything is pre-faulted in this model)."""
        return len(self._frames)

    def memory_kib(self) -> float:
        return self.mapped_pages() * PAGE_SIZE / 1024

    def phys_addr(self, vaddr: int) -> Optional[int]:
        """Kernel-side translation (for copy-in/copy-out)."""
        frame = self._frames.get(vaddr // PAGE_SIZE * PAGE_SIZE)
        if frame is None:
            return None
        return frame + (vaddr & (PAGE_SIZE - 1))

    # -- mapping --------------------------------------------------------------

    # [roload-begin: kernel]
    def _check_key(self, key: int, prot: int) -> int:
        if not 0 <= key <= KEY_MAX:
            raise KernelError(f"page key {key} out of range")
        if not self.honour_keys:
            return 0  # unmodified kernel: no key plumbing exists
        if key and (prot & PROT_WRITE):
            raise KernelError("keyed pages must be read-only (pointee "
                              "integrity requires immutability)")
        return key
    # [roload-end]

    def map_region(self, start: int, length: int, prot: int, *,
                   key: int = 0, name: str = "") -> VMA:
        """Map [start, start+length) with fresh zeroed frames."""
        if start % PAGE_SIZE:
            raise KernelError(f"unaligned mapping at {start:#x}")
        if length <= 0:
            raise KernelError("empty mapping")
        key = self._check_key(key, prot)
        end = align_up(start + length, PAGE_SIZE)
        for vma in self.vmas:
            if start < vma.end and vma.start < end:
                raise KernelError(
                    f"mapping [{start:#x},{end:#x}) overlaps "
                    f"{vma.name or 'existing region'}")
        for page in range(start, end, PAGE_SIZE):
            frame = self.allocator.alloc()
            self.memory.fill(frame, PAGE_SIZE, 0)
            self._frames[page] = frame
            self.page_table.map_page(
                page, frame, readable=bool(prot & PROT_READ),
                writable=bool(prot & PROT_WRITE),
                executable=bool(prot & PROT_EXEC), user=True, key=key)
        vma = VMA(start, end, prot, key, name)
        self.vmas.append(vma)
        return vma

    def write_initial(self, vaddr: int, data: bytes) -> None:
        """Kernel copy-in (used by the loader, before the process runs)."""
        offset = 0
        while offset < len(data):
            paddr = self.phys_addr(vaddr + offset)
            if paddr is None:
                raise KernelError(f"copy-in to unmapped page at "
                                  f"{vaddr + offset:#x}")
            chunk = min(len(data) - offset,
                        PAGE_SIZE - ((vaddr + offset) & (PAGE_SIZE - 1)))
            self.memory.write_bytes(paddr, data[offset:offset + chunk])
            offset += chunk

    def read_memory(self, vaddr: int, length: int) -> bytes:
        """Kernel copy-out (e.g. the write() syscall gathering a buffer)."""
        out = bytearray()
        while len(out) < length:
            paddr = self.phys_addr(vaddr + len(out))
            if paddr is None:
                raise KernelError(f"copy-out from unmapped page at "
                                  f"{vaddr + len(out):#x}")
            chunk = min(length - len(out),
                        PAGE_SIZE - ((vaddr + len(out)) & (PAGE_SIZE - 1)))
            out += self.memory.read_bytes(paddr, chunk)
        return bytes(out)

    # -- syscall backends ------------------------------------------------------

    def mmap(self, addr: int, length: int, prot: int, *,
             key: int = 0, name: str = "mmap") -> int:
        """Anonymous mmap; returns the chosen virtual address."""
        if addr == 0:
            addr = self._mmap_cursor
            self._mmap_cursor = align_up(
                addr + max(length, 1), PAGE_SIZE) + PAGE_SIZE
        self.map_region(addr, length, prot, key=key, name=name)
        return addr

    def munmap(self, addr: int, length: int) -> None:
        end = align_up(addr + length, PAGE_SIZE)
        addr = align_down(addr, PAGE_SIZE)
        keep: "List[VMA]" = []
        for vma in self.vmas:
            if vma.start >= addr and vma.end <= end:
                for page in range(vma.start, vma.end, PAGE_SIZE):
                    self.page_table.unmap_page(page)
                    self._frames.pop(page, None)
            else:
                keep.append(vma)
        self.vmas = keep

    def mprotect(self, addr: int, length: int, prot: int, *,
                 key: "int | None" = None) -> None:
        """Change protection (and optionally the ROLoad key) of a range.

        This is the paper's user-facing API: "user-mode processes can
        finally use mmap() and mprotect() system calls to set up page keys
        for themselves."
        """
        if addr % PAGE_SIZE:
            raise KernelError("mprotect address must be page aligned")
        end = align_up(addr + length, PAGE_SIZE)
        if key is not None:
            key = self._check_key(key, prot)
        elif not self.honour_keys:
            key = 0
        for page in range(addr, end, PAGE_SIZE):
            vma = self.vma_at(page)
            if vma is None:
                raise KernelError(f"mprotect on unmapped page {page:#x}")
            self.page_table.set_protection(
                page, readable=bool(prot & PROT_READ),
                writable=bool(prot & PROT_WRITE),
                executable=bool(prot & PROT_EXEC),
                key=key)
        self._split_and_update(addr, end, prot, key)

    def _split_and_update(self, start, end, prot, key) -> None:
        updated: "List[VMA]" = []
        for vma in self.vmas:
            if vma.end <= start or vma.start >= end:
                updated.append(vma)
                continue
            if vma.start < start:
                updated.append(VMA(vma.start, start, vma.prot, vma.key,
                                   vma.name))
            if vma.end > end:
                updated.append(VMA(end, vma.end, vma.prot, vma.key,
                                   vma.name))
            new_key = vma.key if key is None else key
            updated.append(VMA(max(vma.start, start), min(vma.end, end),
                               prot, new_key, vma.name))
        self.vmas = updated

    def set_brk(self, new_brk: int) -> int:
        """Grow (never shrink) the heap; returns the current brk."""
        if new_brk <= self.brk:
            return self.brk
        start = align_up(self.brk, PAGE_SIZE)
        end = align_up(new_brk, PAGE_SIZE)
        if end > start:
            self.map_region(start, end - start,
                            PROT_READ | PROT_WRITE, name="heap")
        self.brk = new_brk
        return self.brk
