"""Signal numbers and delivery records for the kernel model.

The modified kernel's only new behaviour is: on a ROLoad check failure it
"will send a segmentation fault (SIGSEGV) signal to the faulting process
to warn and/or kill it". We record enough context for the evaluation's
security log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cpu.trap import Trap

SIGILL = 4
SIGTRAP = 5
SIGBUS = 7
SIGSEGV = 11

SIGNAL_NAMES = {SIGILL: "SIGILL", SIGTRAP: "SIGTRAP", SIGBUS: "SIGBUS",
                SIGSEGV: "SIGSEGV"}


@dataclass
class SignalInfo:
    """A delivered (fatal) signal."""

    number: int
    reason: str
    pc: int
    fault_address: int = 0
    roload: bool = False
    trap: "Optional[Trap]" = None

    @property
    def name(self) -> str:
        return SIGNAL_NAMES.get(self.number, f"SIG{self.number}")

    def __str__(self) -> str:
        text = f"{self.name}: {self.reason} (pc={self.pc:#x}, " \
               f"addr={self.fault_address:#x})"
        if self.roload:
            text += " [ROLoad violation]"
        return text
