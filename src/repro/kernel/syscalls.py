"""System-call interface (RISC-V Linux numbers, ROLoad key extension).

ABI: ``ecall`` with the number in ``a7``, arguments in ``a0``-``a5``,
result (or negative errno) in ``a0``.

The ROLoad extension adds a *key* argument to the memory-management calls,
following the paper's description that processes "use mmap() and
mprotect() system calls to set up page keys for themselves":

* ``mmap(addr, length, prot, flags, key, __)`` — key in ``a4``
* ``mprotect(addr, length, prot, key)``       — key in ``a3``

On an unmodified kernel (``processor`` profile) the extra argument is
ignored and mappings always get key 0.
"""

from __future__ import annotations

from repro.errors import KernelError
from repro.kernel.address_space import PROT_WRITE
from repro.obs import OBS as _OBS

# RISC-V Linux syscall numbers.
SYS_GETPID = 172
SYS_BRK = 214
SYS_MUNMAP = 215
SYS_MMAP = 222
SYS_MPROTECT = 226
SYS_WRITE = 64
SYS_READ = 63
SYS_EXIT = 93
SYS_EXIT_GROUP = 94
SYS_CLOCK_GETTIME = 113
SYS_GETRANDOM = 278

SYSCALL_NAMES = {
    SYS_GETPID: "getpid",
    SYS_BRK: "brk",
    SYS_MUNMAP: "munmap",
    SYS_MMAP: "mmap",
    SYS_MPROTECT: "mprotect",
    SYS_WRITE: "write",
    SYS_READ: "read",
    SYS_EXIT: "exit",
    SYS_EXIT_GROUP: "exit_group",
    SYS_CLOCK_GETTIME: "clock_gettime",
    SYS_GETRANDOM: "getrandom",
}

EINVAL = 22
EBADF = 9
ENOMEM = 12
ENOSYS = 38

_MASK64 = (1 << 64) - 1


def _signed(value: int) -> int:
    return value - (1 << 64) if value >= (1 << 63) else value


class SyscallDispatcher:
    """Decodes and executes system calls for the kernel."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.counts: "dict[int, int]" = {}

    def dispatch(self, process, core) -> bool:
        """Handle the ecall the core just trapped on.

        Returns False when the process terminated (exit/kill), True to
        resume. On resume the caller must skip the ecall instruction.
        """
        number = core.regs[17]  # a7
        args = [core.regs[10 + i] for i in range(6)]
        self.counts[number] = self.counts.get(number, 0) + 1
        if _OBS.enabled:
            _OBS.events.emit("syscall", cat="arch", pid=process.pid,
                             number=number,
                             name=SYSCALL_NAMES.get(number,
                                                    f"sys_{number}"))
        handler = _HANDLERS.get(number)
        if handler is None:
            core.regs[10] = (-ENOSYS) & _MASK64
            return True
        result = handler(self, process, core, args)
        journal = self.kernel.journal
        if journal is not None:
            # Entropy is *substituted* in Kernel.random_bytes; every other
            # handler is deterministic given the snapshot, so the journal
            # only has to verify the replayed result against the record.
            journal.syscall(core.instret, number, result)
        if result is None:
            return False
        core.regs[10] = result & _MASK64
        return True


def _sys_exit(dispatcher, process, core, args):
    process.exit(args[0] & 0xFF)
    return None


def _sys_getpid(dispatcher, process, core, args):
    return process.pid


def _sys_write(dispatcher, process, core, args):
    fd, buf, length = args[0], args[1], args[2]
    if length == 0:
        return 0
    if fd not in (1, 2):
        return -EBADF
    try:
        data = process.address_space.read_memory(buf, length)
    except KernelError:
        return -EINVAL
    if fd == 1:
        process.stdout += data
        dispatcher.kernel.console += data
    else:
        process.stderr += data
    return length


def _sys_read(dispatcher, process, core, args):
    """read(0, buf, len): consume from the process's stdin buffer."""
    fd, buf, length = args[0], args[1], args[2]
    if fd != 0:
        return -EBADF
    if length == 0:
        return 0
    pending = getattr(process, "stdin", b"")
    chunk = bytes(pending[:length])
    if not chunk:
        return 0  # EOF
    space = process.address_space
    try:
        # copy-out path reused for copy-in: write through phys mapping.
        offset = 0
        while offset < len(chunk):
            paddr = space.phys_addr(buf + offset)
            if paddr is None:
                return -EINVAL
            piece = min(len(chunk) - offset,
                        4096 - ((buf + offset) & 0xFFF))
            space.memory.write_bytes(paddr, chunk[offset:offset + piece])
            offset += piece
    except KernelError:
        return -EINVAL
    process.stdin = pending[len(chunk):]
    return len(chunk)


def _sys_clock_gettime(dispatcher, process, core, args):
    """clock_gettime(clk, *timespec): simulated time from the cycle
    counter at the configured core frequency."""
    timespec_ptr = args[1]
    system = dispatcher.kernel.system
    nanos = int(core.timing.stats.cycles
                / (system.config.frequency_mhz * 1e6) * 1e9)
    seconds, nanos = divmod(nanos, 1_000_000_000)
    space = process.address_space
    for offset, value in ((0, seconds), (8, nanos)):
        paddr = space.phys_addr(timespec_ptr + offset)
        if paddr is None:
            return -EINVAL
        space.memory.write(paddr, 8, value)
    return 0


def _sys_getrandom(dispatcher, process, core, args):
    """getrandom(buf, len, flags): the one genuinely nondeterministic
    syscall — its bytes cross the record/replay boundary."""
    buf, length = args[0], args[1]
    if length == 0:
        return 0
    data = dispatcher.kernel.random_bytes(length)
    space = process.address_space
    offset = 0
    while offset < len(data):
        paddr = space.phys_addr(buf + offset)
        if paddr is None:
            return -EINVAL
        piece = min(len(data) - offset, 4096 - ((buf + offset) & 0xFFF))
        space.memory.write_bytes(paddr, data[offset:offset + piece])
        offset += piece
    return length


def _sys_brk(dispatcher, process, core, args):
    requested = args[0]
    space = process.address_space
    if requested == 0:
        return space.brk
    try:
        return space.set_brk(requested)
    except Exception:
        return space.brk  # Linux brk never fails with errno; returns old


def _sys_mmap(dispatcher, process, core, args):
    addr, length, prot, __flags, key = args[0], args[1], args[2], args[3], \
        args[4]
    if length == 0:
        return -EINVAL
    space = process.address_space
    # [roload-begin: kernel]
    if not dispatcher.kernel.roload_enabled:
        key = 0
    # [roload-end]
    try:
        return space.mmap(addr, length, prot & 0x7, key=key)
    except KernelError:
        return -EINVAL


def _sys_munmap(dispatcher, process, core, args):
    try:
        process.address_space.munmap(args[0], args[1])
    except KernelError:
        return -EINVAL
    return 0


def _sys_mprotect(dispatcher, process, core, args):
    addr, length, prot, key = args[0], args[1], args[2], args[3]
    space = process.address_space
    # [roload-begin: kernel]
    if not dispatcher.kernel.roload_enabled:
        key = 0
    if key and (prot & PROT_WRITE):
        return -EINVAL
    # [roload-end]
    try:
        space.mprotect(addr, length, prot & 0x7, key=key)
    except KernelError:
        return -EINVAL
    # Page attributes changed: the kernel executes sfence.vma.
    dispatcher.kernel.system.mmu.flush()
    return 0


_HANDLERS = {
    SYS_EXIT: _sys_exit,
    SYS_EXIT_GROUP: _sys_exit,
    SYS_GETPID: _sys_getpid,
    SYS_WRITE: _sys_write,
    SYS_READ: _sys_read,
    SYS_CLOCK_GETTIME: _sys_clock_gettime,
    SYS_GETRANDOM: _sys_getrandom,
    SYS_BRK: _sys_brk,
    SYS_MMAP: _sys_mmap,
    SYS_MUNMAP: _sys_munmap,
    SYS_MPROTECT: _sys_mprotect,
}
