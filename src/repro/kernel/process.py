"""Process model: state, exit/signal status, and I/O buffers."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.kernel.address_space import AddressSpace
from repro.kernel.signals import SignalInfo
from repro.obs import OBS as _OBS


class ProcessState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    EXITED = "exited"
    KILLED = "killed"


@dataclass
class Process:
    """One user process (single-threaded)."""

    pid: int
    address_space: AddressSpace
    entry: int
    stack_pointer: int
    name: str = "a.out"
    state: ProcessState = ProcessState.READY
    exit_code: "Optional[int]" = None
    signal: "Optional[SignalInfo]" = None
    stdout: bytearray = field(default_factory=bytearray)
    stderr: bytearray = field(default_factory=bytearray)
    stdin: bytes = b""
    # Saved register file + pc (context for future runs; the single-core
    # kernel loads these onto the core when scheduling the process).
    saved_pc: int = 0
    saved_regs: "list[int]" = field(default_factory=lambda: [0] * 32)

    def __post_init__(self):
        self.saved_pc = self.entry
        self.saved_regs[2] = self.stack_pointer  # sp

    @property
    def alive(self) -> bool:
        return self.state in (ProcessState.READY, ProcessState.RUNNING)

    @property
    def stdout_text(self) -> str:
        return self.stdout.decode("utf-8", errors="replace")

    @property
    def stderr_text(self) -> str:
        return self.stderr.decode("utf-8", errors="replace")

    def memory_kib(self) -> float:
        """Resident memory in KiB (the unit Figures 3/5 report)."""
        return self.address_space.memory_kib()

    def exit(self, code: int) -> None:
        self.state = ProcessState.EXITED
        self.exit_code = code & 0xFF

    def kill(self, signal: SignalInfo) -> None:
        self.state = ProcessState.KILLED
        self.signal = signal
        if _OBS.enabled:
            _OBS.events.emit("signal.delivery", cat="arch", pid=self.pid,
                             signal=signal.number, name=signal.name,
                             pc=signal.pc, roload=bool(signal.roload))

    def status(self) -> str:
        if self.state is ProcessState.EXITED:
            return f"exited with code {self.exit_code}"
        if self.state is ProcessState.KILLED:
            return f"killed by {self.signal}"
        return self.state.value
