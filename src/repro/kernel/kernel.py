"""The kernel model: process lifecycle, scheduling onto the core, traps.

A deliberately small monolith mirroring only what the paper's Linux
changes touch: executable loading (key setup), the syscall layer (key
arguments on mmap/mprotect), and the page-fault path (ROLoad fault
discrimination -> SIGSEGV).
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import List, Optional

from repro.asm.objfile import Executable
from repro.cpu.trap import Cause, Trap
from repro.errors import KernelError, SimulationError
from repro.kernel.address_space import AddressSpace
from repro.kernel.fault import FaultHandler
from repro.kernel.loader import load_executable, map_stack
from repro.kernel.process import Process, ProcessState
from repro.kernel.signals import SIGILL, SIGTRAP, SignalInfo
from repro.kernel.syscalls import SyscallDispatcher
from repro.mem.pagetable import FrameAllocator
from repro.obs import OBS as _OBS
from repro.soc.system import System

# Physical layout: the kernel owns the low region; user frames above it.
KERNEL_RESERVED = 16 << 20  # page tables, kernel text/data analogue


class Kernel:
    """Single-core kernel over a :class:`~repro.soc.system.System`."""

    def __init__(self, system: System):
        self.system = system
        self.roload_enabled = system.config.roload_kernel
        frame_pool_top = min(system.config.memory_size, 512 << 20)
        self.allocator = FrameAllocator(KERNEL_RESERVED, frame_pool_top)
        self.syscalls = SyscallDispatcher(self)
        self.faults = FaultHandler(roload_aware=self.roload_enabled)
        self.console = bytearray()
        self.processes: "List[Process]" = []
        self._next_pid = 1
        # Record/replay boundary (repro.replay.journal). None = live run:
        # entropy comes from the host, nothing is recorded or verified.
        self.journal = None

    # -- process lifecycle -----------------------------------------------------

    def create_process(self, image: Executable,
                       name: str = "a.out") -> Process:
        """Load an executable into a fresh address space."""
        space = AddressSpace(self.system.memory, self.allocator,
                             honour_keys=self.roload_enabled)
        entry = load_executable(image, space)
        stack_pointer = map_stack(space)
        process = Process(pid=self._next_pid, address_space=space,
                          entry=entry, stack_pointer=stack_pointer,
                          name=name)
        self._next_pid += 1
        self.processes.append(process)
        return process

    def _schedule(self, process: Process) -> None:
        """Context switch: install the address space and register file."""
        core = self.system.core
        self.system.mmu.set_root(process.address_space.root_ppn)
        core.flush_decode_cache("context_switch")
        core.regs[:] = process.saved_regs
        core.pc = process.saved_pc
        process.state = ProcessState.RUNNING

    def _deschedule(self, process: Process) -> None:
        core = self.system.core
        process.saved_regs = list(core.regs)
        process.saved_pc = core.pc

    # -- the run loop ------------------------------------------------------------

    def run(self, process: Process,
            max_instructions: int = 200_000_000,
            stop_after: "Optional[int]" = None) -> Process:
        """Run ``process`` until it exits, is killed, or the budget ends.

        Raises :class:`SimulationError` on budget exhaustion (runaway
        program) — never silently truncates a measurement.

        ``stop_after`` pauses the run once exactly that many instructions
        have retired in this call (``step_block`` never overshoots its
        limit), returning with the process still alive and its context
        saved — the snapshot point of :func:`repro.replay.snapshot`.
        """
        if not process.alive:
            raise KernelError(f"process {process.pid} is not runnable")
        core = self.system.core
        self._schedule(process)
        executed_start = core.instret
        observing = _OBS.enabled
        sampler = None
        if observing:
            self._sample_tiers(core)
            run_began = perf_counter()
            sampler = _OBS.sampler
            if sampler is not None:
                stats = core.timing.stats
                sampler.sample(core)
        try:
            while process.alive:
                if sampler is not None \
                        and stats.instructions >= sampler.next_at:
                    sampler.sample(core)
                executed = core.instret - executed_start
                if stop_after is not None and executed >= stop_after:
                    break
                remaining = max_instructions - executed
                if remaining <= 0:
                    raise SimulationError(
                        f"pid {process.pid}: instruction budget "
                        f"({max_instructions}) exhausted at "
                        f"pc={core.pc:#x}")
                if stop_after is not None:
                    remaining = min(remaining, stop_after - executed)
                try:
                    core.step_block(remaining)
                except Trap as trap:
                    self._handle_trap(process, trap)
                    if observing:
                        self._sample_tiers(core)
        finally:
            self._deschedule(process)
            if observing:
                if sampler is not None:
                    sampler.sample(core)
                self._sample_tiers(core)
                _OBS.events.emit(
                    "span.kernel.run", pid=process.pid,
                    dur_us=(perf_counter() - run_began) * 1e6,
                    instructions=core.instret - executed_start,
                    exit_code=process.exit_code,
                    state=process.state.name)
        return process

    @staticmethod
    def _sample_tiers(core) -> None:
        """Emit a tier-residency counter sample (Chrome counter track)."""
        _OBS.events.emit("counter.tiers",
                         tier0=core.tier0_retired,
                         tier1=core.tier1_retired,
                         tier2=(core.instret - core.tier0_retired
                                - core.tier1_retired
                                - core.tier3_retired
                                - core.tier4_retired),
                         tier3=core.tier3_retired,
                         tier4=core.tier4_retired)

    def _handle_trap(self, process: Process, trap: Trap) -> None:
        core = self.system.core
        if trap.cause == Cause.ECALL_FROM_U:
            resumed = self.syscalls.dispatch(process, core)
            if resumed:
                core.pc = trap.pc + 4  # sepc + 4: skip the ecall
            return
        if trap.cause in (Cause.LOAD_PAGE_FAULT, Cause.STORE_PAGE_FAULT,
                          Cause.FETCH_PAGE_FAULT, Cause.MISALIGNED_LOAD,
                          Cause.MISALIGNED_STORE, Cause.MISALIGNED_FETCH):
            if _OBS.enabled:
                began = perf_counter()
                signal = self.faults.handle(process, trap,
                                            instret=core.instret)
                _OBS.events.emit(
                    "span.fault", pid=process.pid, pc=trap.pc,
                    cause=Cause.NAMES.get(trap.cause, "memory fault"),
                    roload=bool(trap.is_roload_fault),
                    signal=signal.number,
                    dur_us=(perf_counter() - began) * 1e6)
            else:
                signal = self.faults.handle(process, trap,
                                            instret=core.instret)
            self._journal_signal(core, signal)
            return
        if trap.cause == Cause.ILLEGAL_INSTRUCTION:
            signal = SignalInfo(SIGILL, "illegal instruction", pc=trap.pc,
                                fault_address=trap.tval, trap=trap)
            process.kill(signal)
            self._journal_signal(core, signal)
            return
        if trap.cause == Cause.BREAKPOINT:
            signal = SignalInfo(SIGTRAP, "breakpoint", pc=trap.pc,
                                trap=trap)
            process.kill(signal)
            self._journal_signal(core, signal)
            return
        raise KernelError(f"unhandled trap: {trap}")

    def _journal_signal(self, core, signal: SignalInfo) -> None:
        """Record (or verify, on replay) a signal-delivery point."""
        if self.journal is not None:
            self.journal.signal(core.instret, signal.number, signal.pc)

    # -- nondeterminism boundary ---------------------------------------------------

    def random_bytes(self, length: int) -> bytes:
        """Entropy behind ``getrandom()``: host urandom on a live run,
        journal-mediated under record/replay."""
        if self.journal is not None:
            return self.journal.entropy(length)
        return os.urandom(length)

    # -- conveniences --------------------------------------------------------------

    @property
    def security_log(self):
        """ROLoad violations recorded by the modified kernel."""
        return self.faults.security_log

    @property
    def console_text(self) -> str:
        return self.console.decode("utf-8", errors="replace")


def run_program(image: Executable, *, profile: str = "processor+kernel",
                max_instructions: int = 200_000_000,
                system: "Optional[System]" = None,
                name: str = "a.out") -> Process:
    """One-shot helper: build a system, load, and run an executable."""
    from repro.soc.system import build_system
    if system is None:
        system = build_system(profile)
    kernel = Kernel(system)
    process = kernel.create_process(image, name=name)
    kernel.run(process, max_instructions=max_instructions)
    return process
