"""Kernel model: loader with page-key setup, syscalls with key arguments,
and ROLoad-aware page-fault handling."""

from repro.kernel.address_space import (
    PROT_EXEC,
    PROT_NONE,
    PROT_READ,
    PROT_WRITE,
    AddressSpace,
    VMA,
)
from repro.kernel.fault import FaultHandler, SecurityEvent
from repro.kernel.kernel import Kernel, run_program
from repro.kernel.loader import load_executable, map_stack
from repro.kernel.process import Process, ProcessState
from repro.kernel.signals import SIGILL, SIGSEGV, SIGTRAP, SignalInfo
from repro.kernel.syscalls import (
    SYS_BRK,
    SYS_EXIT,
    SYS_MMAP,
    SYS_MPROTECT,
    SYS_MUNMAP,
    SYS_WRITE,
    SyscallDispatcher,
)

__all__ = [
    "PROT_EXEC", "PROT_NONE", "PROT_READ", "PROT_WRITE", "AddressSpace",
    "VMA", "FaultHandler", "SecurityEvent", "Kernel", "run_program",
    "load_executable", "map_stack", "Process", "ProcessState", "SIGILL",
    "SIGSEGV", "SIGTRAP", "SignalInfo", "SYS_BRK", "SYS_EXIT", "SYS_MMAP",
    "SYS_MPROTECT", "SYS_MUNMAP", "SYS_WRITE", "SyscallDispatcher",
]
