"""Executable loader: maps segments with permissions **and page keys**.

The paper: "Before a process gets started, the kernel helps the process
set up its page keys, either by itself during executable loading, or by
providing APIs for user-mode processes." This loader is the former path:
segment headers carry the key (from ``.rodata.key.N`` sections) and the
kernel installs it in the leaf PTEs — unless the kernel is the unmodified
one (``honour_keys=False``), which silently loads everything with key 0.
"""

from __future__ import annotations

from repro.asm.objfile import Executable
from repro.errors import LoaderError
from repro.kernel.address_space import (
    PROT_EXEC,
    PROT_READ,
    PROT_WRITE,
    AddressSpace,
)
from repro.mem.physical import PAGE_SIZE
from repro.utils.bits import align_up


def load_executable(image: Executable, space: AddressSpace) -> int:
    """Map all segments of ``image`` into ``space``; returns the entry pc.

    Key-carrying segments are mapped read-only with their key; the
    write-then-protect dance (map RW to copy contents, then mprotect to
    the final read-only + key state) mirrors how a real loader must
    populate pages it will later seal.
    """
    if not image.segments:
        raise LoaderError("image has no segments")
    for segment in image.segments:
        if segment.vaddr % PAGE_SIZE:
            raise LoaderError(f"segment {segment.name!r} not page aligned")
        prot = PROT_READ
        if segment.writable:
            prot |= PROT_WRITE
        if segment.executable:
            prot |= PROT_EXEC
        # [roload-begin: kernel]
        if segment.key and segment.writable:
            raise LoaderError(f"segment {segment.name!r}: keyed segments "
                              f"must be read-only")
        # [roload-end]
        # Populate via a temporary writable mapping, then seal.
        space.map_region(segment.vaddr, segment.memsize,
                         PROT_READ | PROT_WRITE, name=segment.name)
        if segment.data:
            space.write_initial(segment.vaddr, segment.data)
        space.mprotect(segment.vaddr, segment.memsize, prot,
                       key=segment.key)
    heap_base = image.symbols.get(
        "_end", align_up(max(s.end for s in image.segments), PAGE_SIZE))
    space.brk_base = space.brk = heap_base
    return image.entry


def map_stack(space: AddressSpace) -> int:
    """Map the main stack; returns the initial stack pointer (16-aligned)."""
    size = AddressSpace.STACK_PAGES * PAGE_SIZE
    base = AddressSpace.STACK_TOP - size
    space.map_region(base, size, PROT_READ | PROT_WRITE, name="stack")
    return AddressSpace.STACK_TOP - 16
