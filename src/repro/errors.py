"""Exception hierarchy for the ROLoad reproduction.

Every error raised by the library derives from :class:`ReproError`, so a
caller embedding the simulator can catch a single type. Subsystems define
narrower subclasses below; hardware *traps* (page faults, illegal
instructions, environment calls) are intentionally **not** Python
exceptions raised to the user — they are architectural events modelled by
:class:`repro.cpu.trap.Trap` and handled by the simulated kernel. The
exceptions here signal misuse of the library or malformed inputs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class EncodingError(ReproError):
    """An instruction could not be encoded (bad operands, field overflow)."""


class DecodingError(ReproError):
    """A machine word does not decode to a known instruction."""


class MemoryError_(ReproError):
    """Physical memory misuse (out-of-range address, bad size)."""


class PageTableError(ReproError):
    """Malformed page-table structure or invalid mapping request."""


class AssemblerError(ReproError):
    """Syntax or semantic error in assembly source."""

    def __init__(self, message: str, line: int = 0, source: str = "<asm>"):
        self.line = line
        self.source = source
        if line:
            message = f"{source}:{line}: {message}"
        super().__init__(message)


class LinkError(ReproError):
    """Unresolved symbol, overlapping segments, or layout violation."""


class LoaderError(ReproError):
    """Malformed executable image or unloadable segment."""


class CompilerError(ReproError):
    """Invalid IR, type error, or failed lowering."""


class KernelError(ReproError):
    """Invalid system-call usage or kernel-model misconfiguration."""


class SimulationError(ReproError):
    """The simulated machine reached a state the model cannot continue from
    (e.g. double fault with no handler, runaway execution past the
    instruction budget)."""


class ConfigError(ReproError):
    """Invalid SoC, cache, TLB, or REPRO_* knob configuration."""


class ReplayError(ReproError):
    """Snapshot/replay misuse: unreadable or wrong-version snapshot,
    or a replayed run that diverged from its recorded journal."""


class AuditError(ReproError):
    """Audit-trail misuse (appending to a sealed chain) or an audit log
    whose hash chain fails verification."""


class ServeError(ReproError):
    """Simulation-service misuse: a malformed or unverifiable protocol
    request, an unknown session, or a fail-closed denial (resource cap,
    session limit, detached session). The server maps these to error
    responses — they never kill a worker."""
