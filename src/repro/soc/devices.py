"""Memory-mapped peripherals for the prototype SoC.

Real prototype: Xilinx MIG DDR3 controller + AXI Ethernet + boot ROM. For
the simulation we provide a console UART (so bare-metal programs can
print) and a boot ROM region; the Ethernet-mounted NFS of the paper is
replaced by the loader writing executables straight into memory.
"""

from __future__ import annotations

from repro.cpu.core import MMIORegion

UART_BASE = 0x1000_0000
UART_SIZE = 0x1000
BOOT_ROM_BASE = 0x0001_0000


class ConsoleUART:
    """Write-only console device: stores to THR collect into a buffer."""

    def __init__(self):
        self.output = bytearray()

    def region(self) -> MMIORegion:
        return MMIORegion(UART_BASE, UART_SIZE, read=self._read,
                          write=self._write)

    def _read(self, paddr: int, width: int) -> int:
        # LSR-style "transmitter always ready".
        if paddr - UART_BASE == 5:
            return 0x20
        return 0

    def _write(self, paddr: int, width: int, value: int) -> None:
        if paddr == UART_BASE:
            self.output.append(value & 0xFF)

    @property
    def text(self) -> str:
        return self.output.decode("utf-8", errors="replace")


class BootROM:
    """Read-only boot ROM contents placed in physical memory at reset."""

    def __init__(self, contents: bytes = b"", base: int = BOOT_ROM_BASE,
                 size: int = 64 * 1024):
        if len(contents) > size:
            raise ValueError("boot ROM contents exceed ROM size")
        self.base = base
        self.size = size
        self.contents = contents

    def load_into(self, memory) -> None:
        if self.contents:
            memory.write_bytes(self.base, self.contents)
