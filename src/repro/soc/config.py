"""System configuration — Table II of the paper.

    Components    Configurations
    ISA           RV64IMAC with M, S, and U modes
    Extensions
    Caches        32KiB 8-way L1I$, 32KiB 8-way L1D$
    TLBs          32-entry I-TLB, 32-entry D-TLB (default)
    Peripherals   Xilinx MIG for a 4GiB DDR3 SO-DIMM,
                  Xilinx AXI Ethernet Subsystem, 64KiB boot ROM

Three deployment *profiles* correspond to the three systems of §V-B:

* ``baseline`` — unmodified processor and kernel (``ld.ro`` is illegal).
* ``processor`` — processor implements ROLoad; kernel unaware (no page
  keys are ever set, ROLoad faults are treated as plain segfaults).
* ``processor+kernel`` — the full ROLoad stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cpu.timing import TimingParams
from repro.errors import ConfigError

PROFILES = ("baseline", "processor", "processor+kernel")


@dataclass(frozen=True)
class CacheConfig:
    size: int = 32 * 1024
    ways: int = 8
    line_size: int = 64


@dataclass(frozen=True)
class SoCConfig:
    """Full prototype configuration (Table II defaults)."""

    isa: str = "RV64IMAC"
    modes: "tuple[str, ...]" = ("M", "S", "U")
    l1i: CacheConfig = field(default_factory=CacheConfig)
    l1d: CacheConfig = field(default_factory=CacheConfig)
    itlb_entries: int = 32
    dtlb_entries: int = 32
    memory_size: int = 4 << 30          # 4 GiB DDR3 SO-DIMM
    boot_rom_size: int = 64 * 1024      # 64 KiB boot ROM
    frequency_mhz: float = 125.0        # synthesis target F_target
    timing: TimingParams = field(default_factory=TimingParams)
    # ROLoad deployment profile:
    roload_processor: bool = True       # hardware implements ld.ro family
    roload_kernel: bool = True          # kernel sets keys & discriminates

    def __post_init__(self):
        if self.itlb_entries <= 0 or self.dtlb_entries <= 0:
            raise ConfigError("TLB entry counts must be positive")
        if self.memory_size <= 0:
            raise ConfigError("memory size must be positive")
        if self.roload_kernel and not self.roload_processor:
            raise ConfigError("kernel ROLoad support requires processor "
                              "support (profile has no hardware to use)")

    @property
    def profile(self) -> str:
        if not self.roload_processor:
            return "baseline"
        if not self.roload_kernel:
            return "processor"
        return "processor+kernel"

    @classmethod
    def for_profile(cls, profile: str, **overrides) -> "SoCConfig":
        """Build the configuration for one of the §V-B system profiles."""
        if profile not in PROFILES:
            raise ConfigError(f"unknown profile {profile!r}; expected one "
                              f"of {PROFILES}")
        config = cls(roload_processor=profile != "baseline",
                     roload_kernel=profile == "processor+kernel")
        return replace(config, **overrides) if overrides else config

    def describe(self) -> "list[tuple[str, str]]":
        """Rows of Table II for the report generator."""
        modes = ", ".join(self.modes)
        kib = 1024
        return [
            ("ISA Extensions", f"{self.isa} with {modes} modes"),
            ("Caches",
             f"{self.l1i.size // kib}KiB {self.l1i.ways}-way L1I$, "
             f"{self.l1d.size // kib}KiB {self.l1d.ways}-way L1D$"),
            ("TLBs",
             f"{self.itlb_entries}-entry I-TLB, "
             f"{self.dtlb_entries}-entry D-TLB"),
            ("Peripherals",
             f"Memory controller for a {self.memory_size >> 30}GiB DDR3 "
             f"SO-DIMM, Ethernet, "
             f"{self.boot_rom_size // kib}KiB boot ROM"),
        ]
