"""System assembly: core + MMU + caches + memory + devices.

:func:`build_system` is the factory the evaluation uses to instantiate the
three §V-B system profiles. The embedded (MMU-less) variant backs the core
with a :class:`~repro.mem.pmp.KeyedPMP` instead of the paged MMU.
"""

from __future__ import annotations

from typing import Optional

from repro.cpu.core import Core
from repro.cpu.timing import TimingModel
from repro.mem.cache import Cache
from repro.mem.mmu import MMU
from repro.mem.physical import PhysicalMemory
from repro.mem.pmp import KeyedPMP
from repro.soc.config import SoCConfig
from repro.soc.devices import BootROM, ConsoleUART


class System:
    """One simulated computer: Table II configuration by default."""

    def __init__(self, config: "Optional[SoCConfig]" = None, *,
                 mpu: "Optional[KeyedPMP]" = None):
        self.config = config or SoCConfig()
        self.memory = PhysicalMemory(self.config.memory_size)
        if mpu is None:
            self.mmu = MMU(self.memory,
                           itlb_entries=self.config.itlb_entries,
                           dtlb_entries=self.config.dtlb_entries,
                           roload_enabled=self.config.roload_processor)
        else:
            self.mmu = mpu
        self.icache = Cache(self.config.l1i.size, self.config.l1i.ways,
                            self.config.l1i.line_size, name="l1i")
        self.dcache = Cache(self.config.l1d.size, self.config.l1d.ways,
                            self.config.l1d.line_size, name="l1d")
        self.timing = TimingModel(self.config.timing)
        self.core = Core(self.memory, self.mmu, icache=self.icache,
                         dcache=self.dcache, timing=self.timing,
                         roload_enabled=self.config.roload_processor)
        self.uart = ConsoleUART()
        self.core.add_mmio(self.uart.region())
        self.boot_rom = BootROM()

    @property
    def profile(self) -> str:
        return self.config.profile

    def reset_stats(self) -> None:
        """Zero all performance counters (not architectural state)."""
        self.timing.reset()
        self.icache.reset_stats()
        self.dcache.reset_stats()
        if isinstance(self.mmu, MMU):
            self.mmu.stats.reset()
            self.mmu.itlb.reset_stats()
            self.mmu.dtlb.reset_stats()

    def seconds(self) -> float:
        """Wall-clock seconds at the configured core frequency."""
        return self.timing.stats.cycles / (self.config.frequency_mhz * 1e6)


def build_system(profile: str = "processor+kernel", **overrides) -> System:
    """Instantiate one of the three §V-B system profiles."""
    return System(SoCConfig.for_profile(profile, **overrides))


def build_embedded_system(regions, *, roload_enabled: bool = True,
                          **overrides) -> System:
    """MMU-less IoT profile: physical addressing with a keyed PMP (§II-D).

    ``regions`` is a list of :class:`~repro.mem.pmp.PMPRegion`.
    """
    config = SoCConfig.for_profile(
        "processor+kernel" if roload_enabled else "baseline",
        memory_size=overrides.pop("memory_size", 64 << 20), **overrides)
    mpu = KeyedPMP(regions, roload_enabled=roload_enabled)
    return System(config, mpu=mpu)
