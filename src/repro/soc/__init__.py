"""SoC assembly: Table II configuration, devices, and system factories."""

from repro.soc.config import CacheConfig, PROFILES, SoCConfig
from repro.soc.devices import BootROM, ConsoleUART, UART_BASE
from repro.soc.system import System, build_embedded_system, build_system

__all__ = [
    "CacheConfig", "PROFILES", "SoCConfig", "BootROM", "ConsoleUART",
    "UART_BASE", "System", "build_embedded_system", "build_system",
]
