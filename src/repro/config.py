"""Typed configuration surface for every ``REPRO_*`` knob.

One :class:`Config` dataclass replaces the ad-hoc ``os.environ`` reads
that used to be scattered through ``cpu/core.py``, ``cpu/jit.py``,
``obs``, ``kernel/fault.py`` and the tools. Environment variables remain
the *default source* — :meth:`Config.from_env` is the single reader —
but every consumer now goes through :func:`current`, which also honours
programmatic overrides (:func:`overrides`) so tests and the replay
machinery can pin a tier without mutating the process environment.

Knob table (also printed by ``python -m repro.config``):

======================  ==================  =======  =========================
environment variable    Config field        default  meaning
======================  ==================  =======  =========================
REPRO_FASTPATH          fast_path           1        tier-1 basic-block
                                                     interpreter (0 = slow
                                                     per-instruction seed path)
REPRO_JIT               jit                 1        tier-2 trace compiler
                                                     (needs fast_path)
REPRO_JIT_THRESHOLD     jit_threshold       16       block dispatches before
                                                     tier-2 compilation
REPRO_JIT_DEBUG         jit_debug           0        re-raise tier-2/tier-3
                                                     compile errors instead of
                                                     pinning the block
REPRO_TIER3             tier3               1        tier-3 region compiler
                                                     (needs jit)
REPRO_TIER4             tier4               1        tier-4 flat-core backend
                                                     (needs tier3)
REPRO_REGION_THRESHOLD  region_threshold    16       compiled-block arrivals
                                                     before region compilation
REPRO_REGION_BLOCKS     region_blocks       16       max member blocks per
                                                     tier-3 region
REPRO_DECODE_CACHE      decode_cache        65536    decode-cache entry cap
                                                     (raw bits -> Instruction)
REPRO_BLOCK_CACHE       block_cache         4096     basic-block translation
                                                     cache entry cap
REPRO_OBS               obs                 0        observability layer on
                                                     at import
REPRO_OBS_EVENTS        obs_events          65536    event-ring capacity
REPRO_OBS_SAMPLE        obs_sample          0        flight-recorder sample
                                                     interval in retired
                                                     instructions (0 = off)
REPRO_AUDIT             audit               0        hash-chained security
                                                     audit trail
REPRO_SECLOG_CAP        seclog_cap          4096     kernel security-log ring
                                                     capacity
REPRO_JOBS              jobs                1        benchmark worker
                                                     processes (0/"auto" =
                                                     one per CPU)
REPRO_BENCH_SCALE       bench_scale         0.1      pytest-benchmark workload
                                                     scale
REPRO_SERVE_WORKERS     serve_workers       2        roload-serve worker
                                                     processes (0/"auto" =
                                                     one per CPU)
REPRO_SERVE_SESSIONS    serve_sessions      64       max live sessions per
                                                     serve worker (fail
                                                     closed)
REPRO_SERVE_SLICE       serve_slice         50000    max instructions one
                                                     serve step request may
                                                     run (time-slice quantum)
REPRO_SERVE_INSTRET     serve_instret       10000000 default per-session
                                                     retired-instruction
                                                     budget (fail closed)
REPRO_SERVE_FRAMES      serve_frames        8192     default per-session
                                                     private-frame cap
                                                     (fail closed)
REPRO_SERVE_BOOT        serve_boot          4096     warm-snapshot boot
                                                     point (instructions
                                                     retired before capture)
REPRO_FUZZ_EXECUTIONS   fuzz_executions     10000    default campaign budget
                                                     (executions) for
                                                     roload-fuzz
REPRO_FUZZ_SEED         fuzz_seed           1        campaign PRNG seed
                                                     (campaigns are
                                                     deterministic per seed)
REPRO_FUZZ_CORPUS       fuzz_corpus         256      max corpus entries kept
                                                     by the guided scheduler
REPRO_FUZZ_SCHEDULE     fuzz_schedule       3        max injection-schedule
                                                     entries per fuzz input
======================  ==================  =======  =========================

The five interpreter tiers are named configurations over the first
four execution knobs (:data:`TIERS`); ``roload-bench`` sweeps them and
the replay determinism checker restores the same snapshot under each.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, fields, replace
from typing import Callable, Dict, Iterable, Optional

from repro.errors import ConfigError

_FALSE_WORDS = ("0", "off", "no", "false")


def _parse_flag_default_on(raw: str) -> bool:
    """Historical REPRO_FASTPATH/REPRO_JIT semantics: anything that is
    not an explicit 'off' word counts as on (including empty)."""
    return raw.strip().lower() not in _FALSE_WORDS


def _parse_flag_default_off(raw: str) -> bool:
    """Historical REPRO_OBS/REPRO_JIT_DEBUG semantics: empty stays off."""
    return raw.strip().lower() not in ("",) + _FALSE_WORDS


def _parse_positive_int(default: int) -> "Callable[[str], int]":
    def parse(raw: str) -> int:
        try:
            return max(1, int(raw))
        except ValueError:
            return default
    return parse


def _parse_nonneg_int(default: int) -> "Callable[[str], int]":
    """For knobs where 0 is meaningful (= off), unlike the >=1 caps."""
    def parse(raw: str) -> int:
        try:
            return max(0, int(raw))
        except ValueError:
            return default
    return parse


def _parse_worker_count(env: str) -> "Callable[[str], int]":
    """0/'auto' means one worker per CPU; invalid values are a usage
    error (matching the old ``resolve_jobs`` behaviour)."""
    def parse(raw: str) -> int:
        raw = raw.strip().lower()
        if raw in ("0", "auto"):
            return 0
        try:
            return int(raw)
        except ValueError:
            raise ConfigError(
                f"{env}={raw!r} is not an integer (or 'auto')") from None
    return parse


_parse_jobs = _parse_worker_count("REPRO_JOBS")


def _parse_scale(raw: str) -> float:
    try:
        return float(raw)
    except ValueError:
        return 0.1


def _flag_to_env(value: bool) -> str:
    return "1" if value else "0"


@dataclass(frozen=True)
class Knob:
    """One documented configuration knob."""

    field: str
    env: str
    parse: "Callable[[str], object]"
    to_env: "Callable[[object], str]"
    help: str


@dataclass(frozen=True)
class Config:
    """Typed snapshot of every ``REPRO_*`` knob.

    Frozen: derive variants with :meth:`replace` (or
    ``dataclasses.replace``) and install them with :func:`overrides`.
    """

    fast_path: bool = True
    jit: bool = True
    jit_threshold: int = 16
    jit_debug: bool = False
    tier3: bool = True
    tier4: bool = True
    region_threshold: int = 16
    region_blocks: int = 16
    decode_cache: int = 65536
    block_cache: int = 4096
    obs: bool = False
    obs_events: int = 65536
    obs_sample: int = 0     # flight-recorder interval in retired
                            # instructions; 0 = sampler off
    audit: bool = False
    seclog_cap: int = 4096
    jobs: int = 1           # 0 = one worker per CPU ("auto")
    bench_scale: float = 0.1
    serve_workers: int = 2  # 0 = one worker per CPU ("auto")
    serve_sessions: int = 64
    serve_slice: int = 50_000
    serve_instret: int = 10_000_000
    serve_frames: int = 8192
    serve_boot: int = 4096
    fuzz_executions: int = 10_000
    fuzz_seed: int = 1
    fuzz_corpus: int = 256
    fuzz_schedule: int = 3

    @property
    def effective_jit(self) -> bool:
        """Tier 2 requires tier 1: jit without fast_path is inert."""
        return self.jit and self.fast_path

    @property
    def effective_tier3(self) -> bool:
        """Tier 3 requires tier 2: regions are built from compiled
        blocks, so tier3 without jit (or fast_path) is inert."""
        return self.tier3 and self.effective_jit

    @property
    def effective_tier4(self) -> bool:
        """Tier 4 requires tier 3: the flat core lowers regions picked
        by the tier-3 planner, so tier4 without tier3 is inert."""
        return self.tier4 and self.effective_tier3

    @property
    def tier(self) -> str:
        """The interpreter tier this configuration selects."""
        if not self.fast_path:
            return "slow"
        if not self.jit:
            return "tier1"
        if not self.tier3:
            return "tier2"
        return "tier4" if self.tier4 else "tier3"

    @classmethod
    def from_env(cls, env: "Optional[Dict[str, str]]" = None) -> "Config":
        """The single environment reader: one ``Config`` from ``env``
        (default ``os.environ``); unset/invalid knobs keep defaults."""
        if env is None:
            env = os.environ
        values = {}
        for knob in KNOBS:
            raw = env.get(knob.env)
            if raw is not None:
                values[knob.field] = knob.parse(raw)
        return cls(**values)

    def replace(self, **changes) -> "Config":
        return replace(self, **changes)

    def to_env(self) -> "Dict[str, str]":
        """The environment-variable encoding of this configuration."""
        return {knob.env: knob.to_env(getattr(self, knob.field))
                for knob in KNOBS}

    def resolve_jobs(self, jobs: "Optional[int]" = None) -> int:
        """Worker-process count: explicit argument beats the knob;
        0 means one worker per CPU; always at least 1."""
        if jobs is None:
            jobs = self.jobs
        if jobs == 0:
            jobs = os.cpu_count() or 1
        return max(1, jobs)

    def resolve_serve_workers(self, workers: "Optional[int]" = None) -> int:
        """Serve worker-process count, with the same 0 = auto rule."""
        if workers is None:
            workers = self.serve_workers
        if workers == 0:
            workers = os.cpu_count() or 1
        return max(1, workers)


KNOBS: "tuple[Knob, ...]" = (
    Knob("fast_path", "REPRO_FASTPATH", _parse_flag_default_on,
         _flag_to_env, "tier-1 basic-block interpreter (0 = slow seed)"),
    Knob("jit", "REPRO_JIT", _parse_flag_default_on, _flag_to_env,
         "tier-2 trace compiler (needs fast_path)"),
    Knob("jit_threshold", "REPRO_JIT_THRESHOLD", _parse_positive_int(16),
         str, "block dispatches before tier-2 compilation"),
    Knob("jit_debug", "REPRO_JIT_DEBUG", _parse_flag_default_off,
         _flag_to_env, "re-raise tier-2/tier-3 compile errors"),
    Knob("tier3", "REPRO_TIER3", _parse_flag_default_on, _flag_to_env,
         "tier-3 region compiler (needs jit)"),
    Knob("tier4", "REPRO_TIER4", _parse_flag_default_on, _flag_to_env,
         "tier-4 flat-core backend (needs tier3)"),
    Knob("region_threshold", "REPRO_REGION_THRESHOLD",
         _parse_positive_int(16), str,
         "compiled-block arrivals before region compilation"),
    Knob("region_blocks", "REPRO_REGION_BLOCKS", _parse_positive_int(16),
         str, "max member blocks per tier-3 region"),
    Knob("decode_cache", "REPRO_DECODE_CACHE", _parse_positive_int(65536),
         str, "decode-cache entry cap (raw bits -> Instruction)"),
    Knob("block_cache", "REPRO_BLOCK_CACHE", _parse_positive_int(4096),
         str, "basic-block translation cache entry cap"),
    Knob("obs", "REPRO_OBS", _parse_flag_default_off, _flag_to_env,
         "observability layer on at import"),
    Knob("obs_events", "REPRO_OBS_EVENTS", _parse_positive_int(65536),
         str, "event-ring capacity"),
    Knob("obs_sample", "REPRO_OBS_SAMPLE", _parse_nonneg_int(0), str,
         "flight-recorder sample interval in retired instructions "
         "(0 = off)"),
    Knob("audit", "REPRO_AUDIT", _parse_flag_default_off, _flag_to_env,
         "hash-chained security audit trail"),
    Knob("seclog_cap", "REPRO_SECLOG_CAP", _parse_positive_int(4096),
         str, "kernel security-log ring capacity"),
    Knob("jobs", "REPRO_JOBS", _parse_jobs, str,
         "benchmark worker processes (0/'auto' = one per CPU)"),
    Knob("bench_scale", "REPRO_BENCH_SCALE", _parse_scale, str,
         "pytest-benchmark workload scale"),
    Knob("serve_workers", "REPRO_SERVE_WORKERS",
         _parse_worker_count("REPRO_SERVE_WORKERS"), str,
         "roload-serve worker processes (0/'auto' = one per CPU)"),
    Knob("serve_sessions", "REPRO_SERVE_SESSIONS", _parse_positive_int(64),
         str, "max live sessions per serve worker (fail closed)"),
    Knob("serve_slice", "REPRO_SERVE_SLICE", _parse_positive_int(50_000),
         str, "max instructions one serve step request may run"),
    Knob("serve_instret", "REPRO_SERVE_INSTRET",
         _parse_positive_int(10_000_000), str,
         "default per-session retired-instruction budget (fail closed)"),
    Knob("serve_frames", "REPRO_SERVE_FRAMES", _parse_positive_int(8192),
         str, "default per-session private-frame cap (fail closed)"),
    Knob("serve_boot", "REPRO_SERVE_BOOT", _parse_positive_int(4096),
         str, "warm-snapshot boot point (instructions before capture)"),
    Knob("fuzz_executions", "REPRO_FUZZ_EXECUTIONS",
         _parse_positive_int(10_000), str,
         "default roload-fuzz campaign budget (executions)"),
    Knob("fuzz_seed", "REPRO_FUZZ_SEED", _parse_nonneg_int(1), str,
         "campaign PRNG seed (campaigns are deterministic per seed)"),
    Knob("fuzz_corpus", "REPRO_FUZZ_CORPUS", _parse_positive_int(256),
         str, "max corpus entries kept by the guided scheduler"),
    Knob("fuzz_schedule", "REPRO_FUZZ_SCHEDULE", _parse_positive_int(3),
         str, "max injection-schedule entries per fuzz input"),
)

_KNOB_BY_NAME: "Dict[str, Knob]" = {}
for _knob in KNOBS:
    _KNOB_BY_NAME[_knob.field] = _knob
    _KNOB_BY_NAME[_knob.env] = _knob
    _KNOB_BY_NAME[_knob.env.lower()] = _knob

# The five interpreter tiers of DESIGN.md §9/§12/§13 as Config field
# overrides. Each entry pins every execution knob explicitly so a sweep
# leg is immune to ambient REPRO_* settings.
TIERS: "Dict[str, Dict[str, bool]]" = {
    "slow": {"fast_path": False, "jit": False, "tier3": False,
             "tier4": False},
    "tier1": {"fast_path": True, "jit": False, "tier3": False,
              "tier4": False},
    "tier2": {"fast_path": True, "jit": True, "tier3": False,
              "tier4": False},
    "tier3": {"fast_path": True, "jit": True, "tier3": True,
              "tier4": False},
    "tier4": {"fast_path": True, "jit": True, "tier3": True,
              "tier4": True},
}

# Programmatic override stack (innermost wins). Empty = read the
# environment fresh on every current() call, so monkeypatched env vars
# keep working exactly as before this module existed.
_OVERRIDES: "list[Config]" = []


def current() -> Config:
    """The active configuration: innermost override, else the env."""
    if _OVERRIDES:
        return _OVERRIDES[-1]
    return Config.from_env()


def set_override(config: "Optional[Config]") -> None:
    """Install (or, with None, clear) a process-wide override."""
    _OVERRIDES.clear()
    if config is not None:
        _OVERRIDES.append(config)


@contextmanager
def overrides(**changes):
    """Scoped override: ``with config.overrides(jit=False): ...``.

    Field values start from :func:`current`, so nested overrides
    compose. Does not touch the process environment (worker processes
    spawned inside the block keep reading their inherited env — use
    :func:`env_knobs` when children must see the change).
    """
    cfg = current().replace(**changes)
    _OVERRIDES.append(cfg)
    try:
        yield cfg
    finally:
        _OVERRIDES.pop()


@contextmanager
def env_knobs(**changes):
    """Scoped *environment* override: sets the corresponding ``REPRO_*``
    variables and restores them on exit. Needed when the change must be
    inherited by worker processes (benchmark sweeps)."""
    saved = {}
    for name, value in changes.items():
        knob = _KNOB_BY_NAME.get(name)
        if knob is None:
            raise ConfigError(f"unknown config knob {name!r}")
        saved[knob.env] = os.environ.get(knob.env)
        os.environ[knob.env] = knob.to_env(value) \
            if not isinstance(value, str) else value
    try:
        yield
    finally:
        for env_name, value in saved.items():
            if value is None:
                os.environ.pop(env_name, None)
            else:
                os.environ[env_name] = value


def parse_kv(pairs: "Iterable[str]") -> "Dict[str, object]":
    """Parse ``--config KEY=VAL`` pairs into Config field values.

    KEY may be a field name (``jit_threshold``) or the environment
    spelling (``REPRO_JIT_THRESHOLD``), case-insensitive.
    """
    out: "Dict[str, object]" = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep:
            raise ConfigError(f"--config expects KEY=VAL, got {pair!r}")
        knob = _KNOB_BY_NAME.get(key) or _KNOB_BY_NAME.get(key.lower())
        if knob is None:
            known = ", ".join(k.field for k in KNOBS)
            raise ConfigError(f"unknown config knob {key!r} (one of: "
                              f"{known})")
        out[knob.field] = knob.parse(raw)
    return out


def knob_table() -> str:
    """The documented knob table, one line per knob."""
    lines = [f"{'env variable':22s} {'field':14s} {'default':>8s}  meaning"]
    defaults = Config()
    for knob in KNOBS:
        default = knob.to_env(getattr(defaults, knob.field))
        lines.append(f"{knob.env:22s} {knob.field:14s} {default:>8s}  "
                     f"{knob.help}")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(knob_table())
