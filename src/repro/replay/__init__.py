"""Deterministic snapshot, record/replay, and fault injection.

DESIGN.md §11. Three layers, each usable alone:

* :mod:`repro.replay.snapshot` — versioned capture/restore of full
  machine state; derived microarchitectural state is dropped and
  rebuilt, proven equivalent by the differential tests.
* :mod:`repro.replay.journal` — record/replay of the nondeterministic
  boundary (getrandom entropy) plus divergence detection on every
  syscall result and signal-delivery point.
* :mod:`repro.replay.check` / :mod:`repro.replay.inject` — the
  determinism checker (cross-tier bit-identical replay) and the
  fault-injection harness behind the ``roload-inject`` tool.
"""

from repro.replay.check import (
    ObsCapture,
    Reference,
    ReplayResult,
    VerifyReport,
    record_reference,
    replay_tier,
    verify_replay,
)
from repro.replay.inject import (
    CampaignReport,
    InjectionRecord,
    apply_injection,
    build_inject_image,
    build_inject_victim,
    classify_outcome,
    run_campaign,
)
from repro.replay.journal import Journal
from repro.replay.snapshot import (
    FORMAT_VERSION,
    Snapshot,
    quiesce,
    restore,
    snapshot,
    state_hash,
)

__all__ = [
    "FORMAT_VERSION",
    "Snapshot", "snapshot", "restore", "state_hash", "quiesce",
    "Journal",
    "ObsCapture",
    "Reference", "ReplayResult", "VerifyReport",
    "record_reference", "replay_tier", "verify_replay",
    "CampaignReport", "InjectionRecord",
    "apply_injection", "classify_outcome",
    "build_inject_victim", "build_inject_image", "run_campaign",
]
