"""Record/replay of the nondeterministic boundary (DESIGN.md §11).

The simulated machine is deterministic given a snapshot *except* for the
entropy behind ``getrandom()`` — everything else (syscall results, fault
and signal delivery points) is a pure function of the architectural
state. The journal therefore plays two roles:

* **entropy substitution** — ``getrandom`` bytes are recorded on the
  reference run and fed back verbatim on replay, closing the only real
  nondeterminism hole;
* **divergence detection** — every syscall result and signal-delivery
  point is recorded with its retired-instruction count, and a replaying
  journal *verifies* each one as it happens, failing fast with
  :class:`ReplayError` at the first diverging event instead of letting a
  broken replay run to a confusing end state.

A journal is attached to a kernel by assigning ``kernel.journal``; the
kernel and syscall layer call :meth:`entropy`, :meth:`syscall`, and
:meth:`signal` at the boundary points.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional

from repro.errors import ReplayError

RECORD = "record"
REPLAY = "replay"


class Journal:
    """An append-only event journal with a replay cursor."""

    def __init__(self, mode: str = RECORD,
                 entries: "Optional[List[dict]]" = None):
        if mode not in (RECORD, REPLAY):
            raise ReplayError(f"journal mode must be {RECORD!r} or "
                              f"{REPLAY!r}, got {mode!r}")
        self.mode = mode
        self.entries: "List[dict]" = list(entries or [])
        if mode == REPLAY and entries is None:
            raise ReplayError("a replaying journal needs recorded entries")
        self._cursor = 0

    # -- constructors ---------------------------------------------------------

    @classmethod
    def recording(cls) -> "Journal":
        return cls(RECORD)

    def replay(self) -> "Journal":
        """A fresh replaying journal over this journal's entries (the
        cursor is per-journal, so each replay run gets its own)."""
        return Journal(REPLAY, entries=self.entries)

    # -- boundary hooks (called by the kernel) --------------------------------

    def entropy(self, length: int) -> bytes:
        """getrandom() bytes: host entropy on record, recorded bytes on
        replay — the substitution that makes replay bit-identical."""
        if self.mode == RECORD:
            data = os.urandom(length)
            self.entries.append({"kind": "entropy", "length": length,
                                 "data": data.hex()})
            return data
        entry = self._next("entropy")
        if entry["length"] != length:
            raise ReplayError(
                f"replay diverged at journal[{self._cursor - 1}]: "
                f"getrandom asked for {length} bytes, recorded run asked "
                f"for {entry['length']}")
        return bytes.fromhex(entry["data"])

    def syscall(self, instret: int, number: int,
                result: "Optional[int]") -> None:
        """Record, or verify on replay, one syscall result."""
        self._event({"kind": "syscall", "instret": instret,
                     "number": number, "result": result})

    def signal(self, instret: int, number: int, pc: int) -> None:
        """Record, or verify on replay, one signal-delivery point."""
        self._event({"kind": "signal", "instret": instret,
                     "number": number, "pc": pc})

    def finish(self) -> None:
        """Declare the run over; a replay must have consumed everything."""
        if self.mode == REPLAY and self._cursor != len(self.entries):
            entry = self.entries[self._cursor]
            raise ReplayError(
                f"replay ended early: {len(self.entries) - self._cursor} "
                f"journal entries unconsumed, next is {entry}")

    # -- internals -------------------------------------------------------------

    def _event(self, event: dict) -> None:
        if self.mode == RECORD:
            self.entries.append(event)
            return
        entry = self._next(event["kind"])
        if entry != event:
            raise ReplayError(
                f"replay diverged at journal[{self._cursor - 1}]: "
                f"expected {entry}, got {event}")

    def _next(self, kind: str) -> dict:
        if self._cursor >= len(self.entries):
            raise ReplayError(
                f"replay diverged: a {kind} event occurred after the "
                f"recorded run's last journal entry")
        entry = self.entries[self._cursor]
        self._cursor += 1
        if entry["kind"] != kind:
            raise ReplayError(
                f"replay diverged at journal[{self._cursor - 1}]: "
                f"expected a {entry['kind']} event, got a {kind} event")
        return entry

    def __len__(self) -> int:
        return len(self.entries)

    # -- persistence -----------------------------------------------------------

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"version": 1, "entries": self.entries}, handle)
            handle.write("\n")

    @classmethod
    def load(cls, path, mode: str = REPLAY) -> "Journal":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError) as exc:
            raise ReplayError(f"cannot read journal {path}: {exc}") from exc
        if data.get("version") != 1:
            raise ReplayError(f"unsupported journal version in {path}")
        return cls(mode, entries=data["entries"])
