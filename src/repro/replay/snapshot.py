"""Versioned snapshot/restore of full machine state (DESIGN.md §11).

A snapshot captures everything *architectural*: CPU registers and CSRs,
physical memory (sparse — all-zero frames dropped), page tables (they
live in physical memory; only the root is recorded), kernel state
(processes, signal dispositions, console, syscall counts, security log),
and the performance counters that the repo's differential tests prove
tier-independent (cycles, cache/TLB hit counts, MMU stats).

Derived state is deliberately *not* captured: TLB contents, L1 tag
stores, the tier-1 basic-block cache, tier-2 compiled code, and the
core's fetch/D-side page memos are all rebuilt on demand. To make that
sound, :func:`snapshot` first **quiesces** the machine — ``sfence.vma``
plus cache flushes — so the continuous run and any restored run proceed
from the same cold-translation point and stay bit-identical, *including
cycle counts*. The snapshot boundary is therefore also a tier boundary:
a run snapshotted under the tier-2 JIT restores and replays identically
under the slow interpreter, and vice versa.

Format: ``ROLOADSNAP`` magic, one format-version byte pair, then a
zlib-compressed pickle of a plain dict (only builtin types — no repro
classes — so old snapshots survive refactors as long as the version
matches).
"""

from __future__ import annotations

import hashlib
import pickle
import zlib
from dataclasses import dataclass
from typing import Optional

from repro.errors import ReplayError

MAGIC = b"ROLOADSNAP"
FORMAT_VERSION = 1

# Keys of Snapshot.state whose contents are interpreter-tier dependent
# (which tier retired an instruction, how often the JIT compiled) and so
# excluded from the architectural state hash.
_VOLATILE_KEYS = ("tiers",)


def _strip_volatile(state: dict) -> dict:
    """The hashed view: drop tier counters plus invalidation telemetry
    (MMU generation, TLB flush counts) that every quiesce bumps — their
    exclusion is what makes ``snapshot(); snapshot()`` hash-idempotent
    and ``state_hash(restore(snap))`` equal to ``snap.state_hash()``."""
    arch = {key: value for key, value in state.items()
            if key not in _VOLATILE_KEYS}
    mmu = dict(arch.get("mmu", {}))
    mmu.pop("generation", None)
    for side in ("itlb", "dtlb"):
        counters = mmu.get(side)
        if counters is not None:
            mmu[side] = {name: value for name, value in counters.items()
                         if name != "flushes"}
    arch["mmu"] = mmu
    return arch


def _signal_dict(signal) -> "Optional[dict]":
    if signal is None:
        return None
    return {"number": signal.number, "reason": signal.reason,
            "pc": signal.pc, "fault_address": signal.fault_address,
            "roload": bool(signal.roload)}


def _restore_signal(data: "Optional[dict]"):
    if data is None:
        return None
    from repro.kernel.signals import SignalInfo
    return SignalInfo(data["number"], data["reason"], pc=data["pc"],
                      fault_address=data["fault_address"],
                      roload=data["roload"])


def _canon(obj) -> str:
    """Canonical, key-sorted textual form for hashing."""
    if isinstance(obj, dict):
        inner = ",".join(f"{_canon(k)}:{_canon(v)}"
                         for k, v in sorted(obj.items(), key=lambda i:
                                            _canon(i[0])))
        return "{" + inner + "}"
    if isinstance(obj, (list, tuple)):
        return "[" + ",".join(_canon(item) for item in obj) + "]"
    if isinstance(obj, (bytes, bytearray)):
        return "b" + bytes(obj).hex()
    if isinstance(obj, bool) or obj is None:
        return repr(obj)
    if isinstance(obj, (int, float, str)):
        return repr(obj)
    raise ReplayError(f"non-canonical value in snapshot state: {obj!r}")


@dataclass
class Snapshot:
    """One captured machine state (see module docstring for the scope)."""

    state: dict

    @property
    def version(self) -> int:
        return self.state["version"]

    @property
    def profile(self) -> str:
        return self.state["profile"]

    @property
    def instret(self) -> int:
        """Architectural instructions retired at the capture point."""
        return self.state["timing"]["instructions"]

    def state_hash(self) -> str:
        """SHA-256 over the canonical architectural state (tier-dependent
        counters and invalidation telemetry excluded) — the determinism
        checker's comparison key."""
        return hashlib.sha256(
            _canon(_strip_volatile(self.state)).encode()).hexdigest()

    # -- on-disk format -----------------------------------------------------

    def to_bytes(self) -> bytes:
        payload = pickle.dumps(self.state, protocol=4)
        return (MAGIC + FORMAT_VERSION.to_bytes(2, "little")
                + zlib.compress(payload, 6))

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Snapshot":
        if not blob.startswith(MAGIC):
            raise ReplayError("not a ROLoad snapshot (bad magic)")
        version = int.from_bytes(blob[len(MAGIC):len(MAGIC) + 2], "little")
        if version != FORMAT_VERSION:
            raise ReplayError(f"snapshot format v{version} is not "
                              f"supported (expected v{FORMAT_VERSION})")
        try:
            state = pickle.loads(zlib.decompress(blob[len(MAGIC) + 2:]))
        except Exception as exc:
            raise ReplayError(f"corrupt snapshot payload: {exc}") from exc
        if state.get("version") != version:
            raise ReplayError("snapshot header/payload version mismatch")
        return cls(state)

    def save(self, path) -> None:
        with open(path, "wb") as handle:
            handle.write(self.to_bytes())

    @classmethod
    def load(cls, path) -> "Snapshot":
        try:
            with open(path, "rb") as handle:
                return cls.from_bytes(handle.read())
        except OSError as exc:
            raise ReplayError(f"cannot read snapshot {path}: {exc}") from exc


def quiesce(system) -> None:
    """Drop all derived microarchitectural state, keeping its counters.

    ``sfence.vma`` (bumps the MMU generation, so the core's block cache,
    tier-2 code, and fetch/D-side memos invalidate on the next dispatch)
    plus L1 flushes. Performed on the *live* machine before capture so a
    continuous run and a restored run share the same cold start.
    """
    mmu = system.mmu
    if hasattr(mmu, "flush"):
        mmu.flush()
    for cache in (system.icache, system.dcache):
        if cache is not None:
            cache.flush()


def _space_state(space) -> dict:
    return {
        "honour_keys": space.honour_keys,
        "page_table_root": space.page_table.root,
        "vmas": [{"start": v.start, "end": v.end, "prot": v.prot,
                  "key": v.key, "name": v.name} for v in space.vmas],
        "frames": dict(space._frames),
        "mmap_cursor": space._mmap_cursor,
        "brk_base": space.brk_base,
        "brk": space.brk,
    }


def _process_state(process) -> dict:
    return {
        "pid": process.pid,
        "name": process.name,
        "entry": process.entry,
        "stack_pointer": process.stack_pointer,
        "state": process.state.value,
        "exit_code": process.exit_code,
        "signal": _signal_dict(process.signal),
        "stdout": bytes(process.stdout),
        "stderr": bytes(process.stderr),
        "stdin": bytes(process.stdin),
        "saved_pc": process.saved_pc,
        "saved_regs": list(process.saved_regs),
        "space": _space_state(process.address_space),
    }


def snapshot(kernel) -> Snapshot:
    """Capture the kernel and its system at the current stop point.

    Call with no process running on the core (``Kernel.run`` returned —
    either finished or paused via ``stop_after``): the per-process
    context lives in the saved registers, which :meth:`Kernel.run`
    keeps current.
    """
    system = kernel.system
    quiesce(system)
    core = system.core
    mmu = system.mmu
    state = {
        "version": FORMAT_VERSION,
        "profile": system.config.profile,
        "memory": system.memory.snapshot_frames(),
        "allocator": {"next": kernel.allocator._next,
                      "allocated": kernel.allocator.allocated},
        "mmu": {
            "root_ppn": mmu.root_ppn,
            "bare": getattr(mmu, "bare", True),
            "user_mode": getattr(mmu, "user_mode", True),
            "generation": mmu.generation,
            "stats": {"roload_checks": mmu.stats.roload_checks,
                      "roload_faults": mmu.stats.roload_faults,
                      "walks": mmu.stats.walks,
                      "translations": mmu.stats.translations},
            "itlb": _tlb_counters(getattr(mmu, "itlb", None)),
            "dtlb": _tlb_counters(getattr(mmu, "dtlb", None)),
        },
        "caches": {"l1i": _cache_counters(system.icache),
                   "l1d": _cache_counters(system.dcache)},
        "timing": system.timing.stats.as_dict(),
        "core": {
            "pc": core.pc,
            "regs": list(core.regs),
            "csr_scratch": dict(core.csr._scratch),
            "reservation": core.reservation,
        },
        "tiers": {"tier0_retired": core.tier0_retired,
                  "tier1_retired": core.tier1_retired},
        "kernel": {
            "next_pid": kernel._next_pid,
            "console": bytes(kernel.console),
            "syscall_counts": dict(kernel.syscalls.counts),
            "seclog": {
                "capacity": kernel.security_log.capacity,
                "total": kernel.security_log.total,
                "dropped": kernel.security_log.dropped,
                "events": [{"pid": e.pid, "pc": e.pc,
                            "fault_address": e.fault_address,
                            "reason": e.reason, "insn_key": e.insn_key,
                            "page_key": e.page_key}
                           for e in kernel.security_log],
            },
        },
        "uart": bytes(system.uart.output),
        "processes": [_process_state(p) for p in kernel.processes],
    }
    return Snapshot(state)


def _tlb_counters(tlb) -> "Optional[dict]":
    if tlb is None:
        return None
    return {"hits": tlb.hits, "misses": tlb.misses, "flushes": tlb.flushes}


def _cache_counters(cache) -> "Optional[dict]":
    if cache is None:
        return None
    return {"hits": cache.hits, "misses": cache.misses}


def restore(snap: Snapshot, *, system=None, cow: bool = False):
    """Rebuild a (kernel, process) pair from a snapshot.

    ``system`` defaults to a fresh :func:`build_system` of the
    snapshot's profile; pass one explicitly to restore onto a system
    with config overrides. Derived state (TLBs, caches, translation
    tiers) starts empty — exactly the quiesced state the capture left
    the original machine in. Returns the kernel and the process that
    was current at capture (the last runnable one, else the last).

    With ``cow=True`` the snapshot's frames are installed as a shared
    copy-on-write layer instead of being copied eagerly
    (:meth:`~repro.mem.physical.PhysicalMemory.restore_frames_cow`):
    restoring is then O(bookkeeping), not O(memory), and any number of
    machines forked from the same snapshot share its frame bytes — the
    ``repro.serve`` session-fork path. Requires a system whose memory
    has never been touched (the fresh default always qualifies).
    """
    from repro.kernel.address_space import AddressSpace
    from repro.kernel.fault import SecurityEvent
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process, ProcessState
    from repro.soc.system import build_system

    state = snap.state
    if system is None:
        system = build_system(state["profile"])
    elif system.config.profile != state["profile"]:
        raise ReplayError(
            f"snapshot was taken on profile {state['profile']!r}, "
            f"got a {system.config.profile!r} system")
    if cow:
        system.memory.restore_frames_cow(state["memory"])
    else:
        system.memory.restore_frames(state["memory"])
    kernel = Kernel(system)
    kernel.allocator._next = state["allocator"]["next"]
    kernel.allocator.allocated = state["allocator"]["allocated"]

    mmu, saved_mmu = system.mmu, state["mmu"]
    mmu.root_ppn = saved_mmu["root_ppn"]
    if hasattr(mmu, "bare"):
        mmu.bare = saved_mmu["bare"]
        mmu.user_mode = saved_mmu["user_mode"]
    mmu.generation = saved_mmu["generation"]
    for name, value in saved_mmu["stats"].items():
        setattr(mmu.stats, name, value)
    for side in ("itlb", "dtlb"):
        tlb = getattr(mmu, side, None)
        counters = saved_mmu[side]
        if tlb is not None and counters is not None:
            tlb.hits = counters["hits"]
            tlb.misses = counters["misses"]
            tlb.flushes = counters["flushes"]
    for name, cache in (("l1i", system.icache), ("l1d", system.dcache)):
        counters = state["caches"][name]
        if cache is not None and counters is not None:
            cache.hits = counters["hits"]
            cache.misses = counters["misses"]
    # Mutate the stats object in place: specialised ops and JIT code
    # reference it through the timing model they captured at build time.
    for name, value in state["timing"].items():
        setattr(system.timing.stats, name, value)

    core, saved_core = system.core, state["core"]
    core.pc = saved_core["pc"]
    core.regs[:] = saved_core["regs"]
    core.csr._scratch.clear()
    core.csr._scratch.update(saved_core["csr_scratch"])
    core.reservation = saved_core["reservation"]
    core.tier0_retired = state["tiers"]["tier0_retired"]
    core.tier1_retired = state["tiers"]["tier1_retired"]

    saved_kernel = state["kernel"]
    kernel._next_pid = saved_kernel["next_pid"]
    kernel.console[:] = saved_kernel["console"]
    kernel.syscalls.counts.update(saved_kernel["syscall_counts"])
    seclog = saved_kernel["seclog"]
    kernel.security_log.capacity = seclog["capacity"]
    for event in seclog["events"]:
        kernel.security_log.append(SecurityEvent(**event))
    kernel.security_log.total = seclog["total"]
    kernel.security_log.dropped = seclog["dropped"]
    system.uart.output[:] = state["uart"]

    current = None
    for saved in state["processes"]:
        space_state = saved["space"]
        space = AddressSpace(system.memory, kernel.allocator,
                             honour_keys=space_state["honour_keys"],
                             page_table_root=space_state["page_table_root"])
        from repro.kernel.address_space import VMA
        space.vmas = [VMA(**vma) for vma in space_state["vmas"]]
        space._frames = dict(space_state["frames"])
        space._mmap_cursor = space_state["mmap_cursor"]
        space.brk_base = space_state["brk_base"]
        space.brk = space_state["brk"]
        process = Process(pid=saved["pid"], address_space=space,
                          entry=saved["entry"],
                          stack_pointer=saved["stack_pointer"],
                          name=saved["name"])
        process.state = ProcessState(saved["state"])
        process.exit_code = saved["exit_code"]
        process.signal = _restore_signal(saved["signal"])
        process.stdout[:] = saved["stdout"]
        process.stderr[:] = saved["stderr"]
        process.stdin = saved["stdin"]
        process.saved_pc = saved["saved_pc"]
        process.saved_regs = list(saved["saved_regs"])
        kernel.processes.append(process)
        if process.alive or current is None:
            current = process
    if current is None:
        raise ReplayError("snapshot contains no processes")
    return kernel, current


def state_hash(kernel) -> str:
    """Architectural state hash of a live machine (quiesces it first —
    the same normal form :meth:`Snapshot.state_hash` uses)."""
    return snapshot(kernel).state_hash()
