"""Determinism checker: replay a snapshot and prove it bit-identical.

The acceptance test of the whole replay subsystem (DESIGN.md §11): a run
snapshotted at instruction N, restored in a *fresh* machine, and replayed
must finish with the same architectural state hash and the same
architectural event sequence as the recording run — on **every**
interpreter tier. :func:`record_reference` produces the reference
(snapshot + journal + the recording run's digest); :func:`verify_replay`
replays it under each requested tier and compares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro import config as _config
from repro import obs as _obs
from repro.errors import ReplayError
from repro.obs import arch_sequence
from repro.replay.journal import Journal
from repro.replay.snapshot import Snapshot, restore, snapshot


@dataclass
class ReplayResult:
    """Digest of one run from the snapshot point to completion."""

    tier: str
    state_hash: str
    arch_events: "Tuple[tuple, ...]"
    status: str
    exit_code: "Optional[int]"
    instructions: int

    def matches(self, other: "ReplayResult") -> bool:
        return (self.state_hash == other.state_hash
                and self.arch_events == other.arch_events)


@dataclass
class Reference:
    """A recorded run: restore point, journal, and expected digest."""

    snapshot: Snapshot
    journal: Journal
    result: ReplayResult
    max_instructions: int = 200_000_000

    def save(self, snapshot_path, journal_path) -> None:
        self.snapshot.save(snapshot_path)
        self.journal.save(journal_path)


class ObsCapture:
    """Fresh architectural-event capture around one run.

    Cycles the process-wide OBS state: buffers are cleared on entry and
    the prior enabled/disabled state is put back on exit, so a capture
    nested in a user's observability session only costs them their
    buffered events, never their configuration.

    Public since PR 10: the replay checker and the fuzz executor both
    capture the tier-stable arch-event subsequence this way.
    """

    def __enter__(self):
        self._was_enabled = _obs.OBS.enabled
        _obs.enable()
        _obs.OBS.events.clear()
        return self

    def arch(self) -> "Tuple[tuple, ...]":
        return tuple(tuple(e) if isinstance(e, list) else e
                     for e in arch_sequence(_obs.OBS.events.events()))

    def raw_arch(self) -> "list[dict]":
        """The captured architectural events as raw dicts (full
        payloads with names) — the fuzz coverage extractor's input."""
        return _obs.OBS.events.events(cat="arch")

    def __exit__(self, *exc):
        if not self._was_enabled:
            _obs.disable()
        return False


# Pre-PR 10 private name, kept for any straggling importers.
_ObsWindow = ObsCapture


def _digest(kernel, process, tier: str,
            events: "Tuple[tuple, ...]") -> ReplayResult:
    from repro.replay.snapshot import state_hash
    return ReplayResult(
        tier=tier, state_hash=state_hash(kernel), arch_events=events,
        status=process.status(), exit_code=process.exit_code,
        instructions=kernel.system.core.instret)


def record_reference(image, *, stop_after: int,
                     profile: str = "processor+kernel",
                     max_instructions: int = 200_000_000,
                     stdin: bytes = b"",
                     name: str = "a.out") -> Reference:
    """Run ``image``, snapshot at instruction ``stop_after``, then record
    the rest of the run (journal + digest) as the replay reference.

    The snapshot quiesces the machine, so the recording run continues
    from exactly the state a restored run starts in — the recording run
    *is* the first replay.
    """
    from repro.kernel.kernel import Kernel
    from repro.soc.system import build_system

    system = build_system(profile)
    kernel = Kernel(system)
    process = kernel.create_process(image, name=name)
    if stdin:
        process.stdin = stdin
    kernel.run(process, max_instructions=max_instructions,
               stop_after=stop_after)
    if not process.alive:
        raise ReplayError(
            f"cannot snapshot at instruction {stop_after}: the program "
            f"already finished ({process.status()})")
    snap = snapshot(kernel)
    journal = Journal.recording()
    kernel.journal = journal
    with ObsCapture() as window:
        kernel.run(process, max_instructions=max_instructions)
        events = window.arch()
    result = _digest(kernel, process, tier=_config.current().tier,
                     events=events)
    return Reference(snap, journal, result,
                     max_instructions=max_instructions)


def replay_tier(reference: Reference,
                tier: "Optional[str]" = None) -> ReplayResult:
    """Restore the reference snapshot in a fresh machine and replay it to
    completion under ``tier`` (``None`` = the ambient config)."""
    from contextlib import nullcontext
    scope = _config.overrides(**_config.TIERS[tier]) if tier \
        else nullcontext()
    with scope:
        kernel, process = restore(reference.snapshot)
        if not process.alive:
            raise ReplayError("restored process is not runnable")
        kernel.journal = reference.journal.replay()
        with ObsCapture() as window:
            kernel.run(process,
                       max_instructions=reference.max_instructions)
            events = window.arch()
        kernel.journal.finish()
        return _digest(kernel, process,
                       tier=tier or _config.current().tier, events=events)


@dataclass
class VerifyReport:
    """Cross-tier determinism verdict."""

    reference: ReplayResult
    runs: "List[ReplayResult]" = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(run.matches(self.reference) for run in self.runs)

    def describe(self) -> str:
        lines = [f"reference ({self.reference.tier}): "
                 f"hash={self.reference.state_hash[:16]}… "
                 f"events={len(self.reference.arch_events)} "
                 f"{self.reference.status}"]
        for run in self.runs:
            verdict = "OK" if run.matches(self.reference) else "DIVERGED"
            lines.append(f"replay {run.tier:>6}: "
                         f"hash={run.state_hash[:16]}… "
                         f"events={len(run.arch_events)} "
                         f"{run.status} [{verdict}]")
        return "\n".join(lines)


def verify_replay(reference: Reference,
                  tiers: "Tuple[str, ...]" = ("slow", "tier1", "tier2", "tier3",
                            "tier4")) \
        -> VerifyReport:
    """Replay the reference under every tier; all digests must match."""
    report = VerifyReport(reference=reference.result)
    for tier in tiers:
        if tier not in _config.TIERS:
            raise ReplayError(f"unknown tier {tier!r}; choose from "
                              f"{', '.join(sorted(_config.TIERS))}")
        report.runs.append(replay_tier(reference, tier))
    return report
