"""Fault-injection harness over snapshot/restore (DESIGN.md §11).

Regenerates a §V-style detection table: a hardened victim is run to a
chosen instruction count, snapshotted, perturbed — PTE key bits flipped,
page writability flipped, allowlist pointers corrupted — and replayed to
completion, classifying every injection with the shared
:class:`repro.eval_model.Verdict` taxonomy:

* ``detected`` — the run died with a ROLoad-discriminated SIGSEGV (the
  modified kernel logged a security event): the defense fired.
* ``benign``  — the run finished with the baseline exit code and the
  hijack marker clear: the corrupted state was never consumed (e.g. the
  flip landed after the last keyed load).
* ``crashed`` — the run died with a non-ROLoad signal: the corruption
  broke the program some other way, still fail-stop.
* ``escaped`` — the run finished but the hijack marker was set or the
  output changed: the corruption was consumed *without* detection. A
  correct ROLoad implementation produces zero of these for key- and
  permission-class injections.

The victim is a straight-line unrolled program (no loops) doing ``reps``
vcall+icall rounds through keyed vtables and a keyed GFPT, so injection
points stratified over the run mostly land before a later keyed load.

The perturbation primitives (:func:`apply_injection`) and the verdict
classifier (:func:`classify_outcome`) are public: the coverage-guided
fuzzer (:mod:`repro.fuzz`) composes them into multi-entry injection
schedules over mutated victims. Results are the typed
:class:`~repro.eval_model.RunResult` / :class:`~repro.eval_model.CampaignResult`;
the pre-PR 10 names ``InjectionRecord`` / ``CampaignReport`` remain as
deprecated aliases with unchanged ``to_dict()`` shapes.
"""

from __future__ import annotations

import warnings
from typing import Tuple

from repro.errors import ReplayError
from repro.eval_model import (CampaignResult, DEFAULT_KINDS, RunResult,
                              Verdict, VERDICTS)
from repro.obs import OBS as _OBS
from repro.replay.snapshot import Snapshot, restore, snapshot

KINDS = DEFAULT_KINDS
OUTCOMES = VERDICTS

# Key-bit patterns XORed into the PTE key field (10 bits), modelling
# single-bit upsets through full-field corruption.
KEY_FLIPS = (0x001, 0x155, 0x3FF)
POINTER_TARGETS = ("obj", "fp_slot")

# Fuzz-only class: redirect an allowlist pointer at unmapped memory, so
# the next keyed load dies of an ordinary translation fault. Not part of
# KINDS — it exists to exercise the crashed-verdict path at scale.
WILD_ADDRESS = 0x7F00_0000

BENIGN_VCALL = 13
BENIGN_ICALL = 29
GADGET_RETURN = 66


def build_inject_victim(reps: int = 8):
    """An unrolled victim: ``reps`` repetitions of one vcall through a
    keyed vtable plus one icall through the keyed GFPT; exits with the
    accumulated sum (mod 256)."""
    from repro.compiler import (GlobalVar, I64, IRBuilder, Module, VTable,
                                func_type, static_object)
    sig = func_type(ret=I64)
    m = Module("inject-victim")

    benign = m.function("Benign_get", func_type=sig, address_taken=True)
    b = IRBuilder(benign)
    b.ret(b.li(BENIGN_VCALL))

    callee = m.function("benign_callee", func_type=sig, address_taken=True)
    b = IRBuilder(callee)
    b.ret(b.li(BENIGN_ICALL))

    gadget = m.function("gadget", func_type=sig, address_taken=True)
    b = IRBuilder(gadget)
    marker = b.la("pwned")
    b.store(b.li(1), marker)
    b.ret(b.li(GADGET_RETURN))

    m.vtable(VTable("Benign", entries=["Benign_get"]))
    static_object(m, "obj", "Benign")
    m.global_var(GlobalVar("pwned", section=".data", init=[0]))
    m.global_var(GlobalVar("attacker_buf", section=".data", size=64))
    m.global_var(GlobalVar("fp_slot", section=".data",
                           init=[("quad", "benign_callee")]))

    main = m.function("main")
    b = IRBuilder(main)
    acc = b.li(0)
    obj = b.la("obj")
    slot = b.la("fp_slot")
    for _ in range(reps):
        acc = b.add(acc, b.vcall(obj, 0, "Benign", func_type=sig))
        fptr = b.load_fptr(slot, sig)
        acc = b.add(acc, b.icall(fptr, func_type=sig))
    b.ret(acc)
    return m


def build_inject_image(reps: int = 8):
    """The hardened victim executable (vcall protection + GFPT CFI)."""
    from repro.compiler import compile_module
    from repro.defenses import TypeBasedCFI, VCallProtection
    return compile_module(build_inject_victim(reps),
                          hardening=[VCallProtection(), TypeBasedCFI()])


class InjectionRecord(RunResult):
    """Deprecated alias for :class:`repro.eval_model.RunResult`.

    Kept so pre-PR 10 callers (and pickles of old reports) keep working;
    ``to_dict()`` output is bit-identical. New code should construct
    :class:`RunResult` with a :class:`Verdict`.
    """

    def __init__(self, kind, trigger, target, outcome, detail="",
                 exit_code=None, signal=None):
        warnings.warn("InjectionRecord is deprecated; use "
                      "repro.eval_model.RunResult", DeprecationWarning,
                      stacklevel=2)
        super().__init__(kind=kind, trigger=trigger, target=target,
                         verdict=outcome, detail=detail,
                         exit_code=exit_code, signal=signal)


# Deprecated alias: the campaign result moved to the shared typed model.
CampaignReport = CampaignResult


def _keyed_pages(process) -> "list[Tuple[int, int]]":
    """(vaddr, key) of the first page of every keyed mapping."""
    return [(vma.start, vma.key)
            for vma in process.address_space.vmas if vma.key]


def _run_to(image, trigger: int, *, profile: str,
            max_instructions: int) -> Snapshot:
    """Fresh run paused at ``trigger`` retired instructions, snapshotted."""
    from repro.kernel.kernel import Kernel
    from repro.soc.system import build_system
    kernel = Kernel(build_system(profile))
    process = kernel.create_process(image, name="inject-victim")
    kernel.run(process, max_instructions=max_instructions,
               stop_after=trigger)
    if not process.alive:
        raise ReplayError(f"victim finished before injection point "
                          f"{trigger}")
    return snapshot(kernel)


def apply_injection(kernel, process, image, kind: str,
                    variant: int) -> str:
    """Perturb the live machine in place; returns the target description.

    The shared primitive under both the PR 5 campaign and the fuzzer's
    schedule entries: ``pte-key`` / ``pte-writable`` / ``allowlist-ptr``
    from KINDS, plus the fuzz-only ``wild-ptr`` (allowlist pointer aimed
    at unmapped memory — exercises the non-ROLoad crash path)."""
    space = process.address_space
    mmu = kernel.system.mmu

    if kind == "pte-key":
        keyed = _keyed_pages(process)
        if not keyed:
            raise ReplayError("victim has no keyed mappings to corrupt")
        vaddr, _old_key = keyed[variant % len(keyed)]
        flip = KEY_FLIPS[variant % len(KEY_FLIPS)]
        pte = space.page_table.lookup(vaddr)
        new_key = (pte.key ^ flip) & 0x3FF
        space.page_table.set_protection(vaddr, key=new_key)
        mmu.flush_page(vaddr)
        return f"key {pte.key}->{new_key} @ {vaddr:#x}"
    if kind == "pte-writable":
        keyed = _keyed_pages(process)
        if not keyed:
            raise ReplayError("victim has no keyed mappings to corrupt")
        vaddr, key = keyed[variant % len(keyed)]
        space.page_table.set_protection(vaddr, writable=True)
        mmu.flush_page(vaddr)
        return f"W bit set on keyed page @ {vaddr:#x} (key {key})"
    if kind == "allowlist-ptr":
        from repro.attacks.primitives import MemoryCorruption
        symbol = POINTER_TARGETS[variant % len(POINTER_TARGETS)]
        attacker = MemoryCorruption(kernel, process, image)
        decoy = image.symbol("attacker_buf")
        attacker.write_symbol(symbol, decoy,
                              note=f"redirect {symbol} to attacker_buf")
        return f"{symbol} -> attacker_buf ({decoy:#x})"
    if kind == "wild-ptr":
        from repro.attacks.primitives import MemoryCorruption
        symbol = POINTER_TARGETS[variant % len(POINTER_TARGETS)]
        attacker = MemoryCorruption(kernel, process, image)
        wild = WILD_ADDRESS + (variant // len(POINTER_TARGETS)) * 0x1000
        attacker.write_symbol(symbol, wild,
                              note=f"redirect {symbol} to unmapped")
        return f"{symbol} -> unmapped ({wild:#x})"
    raise ReplayError(f"unknown injection kind {kind!r}")


def classify_outcome(kernel, process, image, baseline_exit: int,
                     seclog_before: int) -> "Tuple[Verdict, str]":
    """Map the post-run machine state onto the §V verdict taxonomy."""
    if process.state.value == "killed":
        roload = bool(process.signal and process.signal.roload) \
            or kernel.security_log.total > seclog_before
        if roload:
            events = kernel.security_log[seclog_before:]
            reason = events[-1].reason if events else "roload"
            return Verdict.DETECTED, reason
        return Verdict.CRASHED, \
            process.signal.reason if process.signal else ""
    pwned = 0
    try:
        addr = image.symbol("pwned")
        pwned = int.from_bytes(
            process.address_space.read_memory(addr, 8), "little")
    except Exception:
        pass
    if pwned or process.exit_code != baseline_exit:
        return Verdict.ESCAPED, (f"pwned={pwned} exit={process.exit_code} "
                                 f"(baseline {baseline_exit})")
    return Verdict.BENIGN, "corruption never consumed"


def _inject_and_run(snap: Snapshot, image, kind: str, variant: int,
                    baseline_exit: int,
                    max_instructions: int) -> RunResult:
    kernel, process = restore(snap)
    seclog_before = kernel.security_log.total
    target = apply_injection(kernel, process, image, kind, variant)
    kernel.run(process, max_instructions=max_instructions)
    verdict, detail = classify_outcome(kernel, process, image,
                                       baseline_exit, seclog_before)
    return RunResult(
        kind=kind, trigger=snap.instret, target=target, verdict=verdict,
        detail=detail, exit_code=process.exit_code,
        signal=process.signal.number if process.signal else None)


def run_campaign(*, reps: int = 8, points: int = 10,
                 kinds: "Tuple[str, ...]" = KINDS,
                 profile: str = "processor+kernel",
                 max_instructions: int = 10_000_000,
                 log=None) -> CampaignResult:
    """The full injection campaign: ``points`` stratified snapshot points
    x (3 key flips + 1 writability flip + 2 pointer corruptions) per
    point — 6 injections per point with the default kinds."""
    from repro.kernel.kernel import Kernel
    from repro.soc.system import build_system

    for kind in kinds:
        if kind not in KINDS:
            raise ReplayError(f"unknown injection class {kind!r}; choose "
                              f"from {', '.join(KINDS)}")
    image = build_inject_image(reps)

    # Baseline: the uncorrupted run fixes the expected exit code and the
    # instruction count over which injection points are stratified.
    kernel = Kernel(build_system(profile))
    process = kernel.create_process(image, name="inject-victim")
    kernel.run(process, max_instructions=max_instructions)
    if process.state.value != "exited":
        raise ReplayError(f"baseline victim did not exit cleanly: "
                          f"{process.status()}")
    baseline_exit = process.exit_code
    total = kernel.system.core.instret
    report = CampaignResult(baseline_exit=baseline_exit,
                            total_instructions=total)

    triggers = sorted({max(1, total * i // (points + 1))
                       for i in range(1, points + 1)})
    variants_by_kind = {"pte-key": len(KEY_FLIPS), "pte-writable": 1,
                        "allowlist-ptr": len(POINTER_TARGETS)}
    for trigger in triggers:
        snap = _run_to(image, trigger, profile=profile,
                       max_instructions=max_instructions)
        for kind in kinds:
            for variant in range(variants_by_kind[kind]):
                record = _inject_and_run(snap, image, kind, variant,
                                         baseline_exit, max_instructions)
                report.records.append(record)
                if _OBS.enabled:
                    _OBS.events.emit(
                        "inject.verdict", kind=kind,
                        trigger=record.trigger, target=record.target,
                        outcome=record.outcome)
                    if _OBS.audit is not None:
                        _OBS.audit.append(
                            "inject.verdict", kind=kind,
                            trigger=record.trigger, target=record.target,
                            outcome=record.outcome,
                            exit_code=record.exit_code,
                            signal=record.signal)
                if log is not None:
                    log(f"[{len(report.records):>3}] {kind:<14} "
                        f"@{record.trigger:<8} -> {record.outcome:<8} "
                        f"{record.detail}")
    if _OBS.enabled and _OBS.audit is not None:
        # The campaign summary is the record auditors care about: the
        # detection table's bottom line, sealed into the chain.
        _OBS.audit.append("inject.campaign",
                          injections=report.injections,
                          escapes=len(report.escapes), ok=report.ok,
                          baseline_exit=baseline_exit,
                          total_instructions=total)
    return report
