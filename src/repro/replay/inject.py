"""Fault-injection harness over snapshot/restore (DESIGN.md §11).

Regenerates a §V-style detection table: a hardened victim is run to a
chosen instruction count, snapshotted, perturbed — PTE key bits flipped,
page writability flipped, allowlist pointers corrupted — and replayed to
completion, classifying every injection:

* ``detected`` — the run died with a ROLoad-discriminated SIGSEGV (the
  modified kernel logged a security event): the defense fired.
* ``benign``  — the run finished with the baseline exit code and the
  hijack marker clear: the corrupted state was never consumed (e.g. the
  flip landed after the last keyed load).
* ``crashed`` — the run died with a non-ROLoad signal: the corruption
  broke the program some other way, still fail-stop.
* ``escaped`` — the run finished but the hijack marker was set or the
  output changed: the corruption was consumed *without* detection. A
  correct ROLoad implementation produces zero of these for key- and
  permission-class injections.

The victim is a straight-line unrolled program (no loops) doing ``reps``
vcall+icall rounds through keyed vtables and a keyed GFPT, so injection
points stratified over the run mostly land before a later keyed load.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ReplayError
from repro.obs import OBS as _OBS
from repro.replay.snapshot import Snapshot, restore, snapshot

KINDS = ("pte-key", "pte-writable", "allowlist-ptr")
OUTCOMES = ("detected", "benign", "crashed", "escaped")

# Key-bit patterns XORed into the PTE key field (10 bits), modelling
# single-bit upsets through full-field corruption.
KEY_FLIPS = (0x001, 0x155, 0x3FF)
POINTER_TARGETS = ("obj", "fp_slot")

BENIGN_VCALL = 13
BENIGN_ICALL = 29
GADGET_RETURN = 66


def build_inject_victim(reps: int = 8):
    """An unrolled victim: ``reps`` repetitions of one vcall through a
    keyed vtable plus one icall through the keyed GFPT; exits with the
    accumulated sum (mod 256)."""
    from repro.compiler import (GlobalVar, I64, IRBuilder, Module, VTable,
                                func_type, static_object)
    sig = func_type(ret=I64)
    m = Module("inject-victim")

    benign = m.function("Benign_get", func_type=sig, address_taken=True)
    b = IRBuilder(benign)
    b.ret(b.li(BENIGN_VCALL))

    callee = m.function("benign_callee", func_type=sig, address_taken=True)
    b = IRBuilder(callee)
    b.ret(b.li(BENIGN_ICALL))

    gadget = m.function("gadget", func_type=sig, address_taken=True)
    b = IRBuilder(gadget)
    marker = b.la("pwned")
    b.store(b.li(1), marker)
    b.ret(b.li(GADGET_RETURN))

    m.vtable(VTable("Benign", entries=["Benign_get"]))
    static_object(m, "obj", "Benign")
    m.global_var(GlobalVar("pwned", section=".data", init=[0]))
    m.global_var(GlobalVar("attacker_buf", section=".data", size=64))
    m.global_var(GlobalVar("fp_slot", section=".data",
                           init=[("quad", "benign_callee")]))

    main = m.function("main")
    b = IRBuilder(main)
    acc = b.li(0)
    obj = b.la("obj")
    slot = b.la("fp_slot")
    for _ in range(reps):
        acc = b.add(acc, b.vcall(obj, 0, "Benign", func_type=sig))
        fptr = b.load_fptr(slot, sig)
        acc = b.add(acc, b.icall(fptr, func_type=sig))
    b.ret(acc)
    return m


def build_inject_image(reps: int = 8):
    """The hardened victim executable (vcall protection + GFPT CFI)."""
    from repro.compiler import compile_module
    from repro.defenses import TypeBasedCFI, VCallProtection
    return compile_module(build_inject_victim(reps),
                          hardening=[VCallProtection(), TypeBasedCFI()])


@dataclass
class InjectionRecord:
    """One injection and its classified outcome."""

    kind: str
    trigger: int          # retired-instruction count at injection
    target: str           # what was perturbed
    outcome: str          # detected | benign | crashed | escaped
    detail: str = ""
    exit_code: "Optional[int]" = None
    signal: "Optional[int]" = None

    def to_dict(self) -> dict:
        return {"kind": self.kind, "trigger": self.trigger,
                "target": self.target, "outcome": self.outcome,
                "detail": self.detail, "exit_code": self.exit_code,
                "signal": self.signal}


@dataclass
class CampaignReport:
    """The full detection table plus the raw per-injection records."""

    baseline_exit: int
    total_instructions: int
    records: "List[InjectionRecord]" = field(default_factory=list)

    def counts(self) -> "Dict[str, Dict[str, int]]":
        table: "Dict[str, Dict[str, int]]" = {}
        for record in self.records:
            row = table.setdefault(record.kind,
                                   {outcome: 0 for outcome in OUTCOMES})
            row[record.outcome] += 1
        return table

    @property
    def injections(self) -> int:
        return len(self.records)

    @property
    def escapes(self) -> "List[InjectionRecord]":
        return [r for r in self.records if r.outcome == "escaped"]

    @property
    def ok(self) -> bool:
        return self.injections > 0 and not self.escapes

    def format_table(self) -> str:
        header = (f"{'class':<16} {'injected':>8} "
                  + " ".join(f"{o:>8}" for o in OUTCOMES))
        lines = [header, "-" * len(header)]
        counts = self.counts()
        for kind in KINDS:
            row = counts.get(kind)
            if row is None:
                continue
            total = sum(row.values())
            lines.append(f"{kind:<16} {total:>8} "
                         + " ".join(f"{row[o]:>8}" for o in OUTCOMES))
        total_row = {o: sum(counts.get(k, {}).get(o, 0) for k in counts)
                     for o in OUTCOMES}
        lines.append("-" * len(header))
        lines.append(f"{'total':<16} {self.injections:>8} "
                     + " ".join(f"{total_row[o]:>8}" for o in OUTCOMES))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {"baseline_exit": self.baseline_exit,
                "total_instructions": self.total_instructions,
                "injections": self.injections,
                "table": self.counts(),
                "escapes": len(self.escapes),
                "ok": self.ok,
                "records": [r.to_dict() for r in self.records]}

    def save_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")


def _keyed_pages(process) -> "List[Tuple[int, int]]":
    """(vaddr, key) of the first page of every keyed mapping."""
    return [(vma.start, vma.key)
            for vma in process.address_space.vmas if vma.key]


def _run_to(image, trigger: int, *, profile: str,
            max_instructions: int) -> Snapshot:
    """Fresh run paused at ``trigger`` retired instructions, snapshotted."""
    from repro.kernel.kernel import Kernel
    from repro.soc.system import build_system
    kernel = Kernel(build_system(profile))
    process = kernel.create_process(image, name="inject-victim")
    kernel.run(process, max_instructions=max_instructions,
               stop_after=trigger)
    if not process.alive:
        raise ReplayError(f"victim finished before injection point "
                          f"{trigger}")
    return snapshot(kernel)


def _classify(kernel, process, image, baseline_exit: int,
              seclog_before: int) -> "Tuple[str, str]":
    if process.state.value == "killed":
        roload = bool(process.signal and process.signal.roload) \
            or kernel.security_log.total > seclog_before
        if roload:
            events = kernel.security_log[seclog_before:]
            reason = events[-1].reason if events else "roload"
            return "detected", reason
        return "crashed", process.signal.reason if process.signal else ""
    pwned = 0
    try:
        addr = image.symbol("pwned")
        pwned = int.from_bytes(
            process.address_space.read_memory(addr, 8), "little")
    except Exception:
        pass
    if pwned or process.exit_code != baseline_exit:
        return "escaped", (f"pwned={pwned} exit={process.exit_code} "
                           f"(baseline {baseline_exit})")
    return "benign", "corruption never consumed"


def _inject_and_run(snap: Snapshot, image, kind: str, variant: int,
                    baseline_exit: int,
                    max_instructions: int) -> InjectionRecord:
    kernel, process = restore(snap)
    space = process.address_space
    mmu = kernel.system.mmu
    seclog_before = kernel.security_log.total

    if kind == "pte-key":
        keyed = _keyed_pages(process)
        if not keyed:
            raise ReplayError("victim has no keyed mappings to corrupt")
        vaddr, _old_key = keyed[variant % len(keyed)]
        flip = KEY_FLIPS[variant % len(KEY_FLIPS)]
        pte = space.page_table.lookup(vaddr)
        new_key = (pte.key ^ flip) & 0x3FF
        space.page_table.set_protection(vaddr, key=new_key)
        mmu.flush_page(vaddr)
        target = f"key {pte.key}->{new_key} @ {vaddr:#x}"
    elif kind == "pte-writable":
        keyed = _keyed_pages(process)
        if not keyed:
            raise ReplayError("victim has no keyed mappings to corrupt")
        vaddr, key = keyed[variant % len(keyed)]
        space.page_table.set_protection(vaddr, writable=True)
        mmu.flush_page(vaddr)
        target = f"W bit set on keyed page @ {vaddr:#x} (key {key})"
    elif kind == "allowlist-ptr":
        from repro.attacks.primitives import MemoryCorruption
        symbol = POINTER_TARGETS[variant % len(POINTER_TARGETS)]
        attacker = MemoryCorruption(kernel, process, image)
        decoy = image.symbol("attacker_buf")
        attacker.write_symbol(symbol, decoy,
                              note=f"redirect {symbol} to attacker_buf")
        target = f"{symbol} -> attacker_buf ({decoy:#x})"
    else:
        raise ReplayError(f"unknown injection kind {kind!r}")

    kernel.run(process, max_instructions=max_instructions)
    outcome, detail = _classify(kernel, process, image, baseline_exit,
                                seclog_before)
    return InjectionRecord(
        kind=kind, trigger=snap.instret, target=target, outcome=outcome,
        detail=detail, exit_code=process.exit_code,
        signal=process.signal.number if process.signal else None)


def run_campaign(*, reps: int = 8, points: int = 10,
                 kinds: "Tuple[str, ...]" = KINDS,
                 profile: str = "processor+kernel",
                 max_instructions: int = 10_000_000,
                 log=None) -> CampaignReport:
    """The full injection campaign: ``points`` stratified snapshot points
    x (3 key flips + 1 writability flip + 2 pointer corruptions) per
    point — 6 injections per point with the default kinds."""
    from repro.kernel.kernel import Kernel
    from repro.soc.system import build_system

    for kind in kinds:
        if kind not in KINDS:
            raise ReplayError(f"unknown injection class {kind!r}; choose "
                              f"from {', '.join(KINDS)}")
    image = build_inject_image(reps)

    # Baseline: the uncorrupted run fixes the expected exit code and the
    # instruction count over which injection points are stratified.
    kernel = Kernel(build_system(profile))
    process = kernel.create_process(image, name="inject-victim")
    kernel.run(process, max_instructions=max_instructions)
    if process.state.value != "exited":
        raise ReplayError(f"baseline victim did not exit cleanly: "
                          f"{process.status()}")
    baseline_exit = process.exit_code
    total = kernel.system.core.instret
    report = CampaignReport(baseline_exit=baseline_exit,
                            total_instructions=total)

    triggers = sorted({max(1, total * i // (points + 1))
                       for i in range(1, points + 1)})
    variants_by_kind = {"pte-key": len(KEY_FLIPS), "pte-writable": 1,
                        "allowlist-ptr": len(POINTER_TARGETS)}
    for trigger in triggers:
        snap = _run_to(image, trigger, profile=profile,
                       max_instructions=max_instructions)
        for kind in kinds:
            for variant in range(variants_by_kind[kind]):
                record = _inject_and_run(snap, image, kind, variant,
                                         baseline_exit, max_instructions)
                report.records.append(record)
                if _OBS.enabled:
                    _OBS.events.emit(
                        "inject.verdict", kind=kind,
                        trigger=record.trigger, target=record.target,
                        outcome=record.outcome)
                    if _OBS.audit is not None:
                        _OBS.audit.append(
                            "inject.verdict", kind=kind,
                            trigger=record.trigger, target=record.target,
                            outcome=record.outcome,
                            exit_code=record.exit_code,
                            signal=record.signal)
                if log is not None:
                    log(f"[{len(report.records):>3}] {kind:<14} "
                        f"@{record.trigger:<8} -> {record.outcome:<8} "
                        f"{record.detail}")
    if _OBS.enabled and _OBS.audit is not None:
        # The campaign summary is the record auditors care about: the
        # detection table's bottom line, sealed into the chain.
        _OBS.audit.append("inject.campaign",
                          injections=report.injections,
                          escapes=len(report.escapes), ok=report.ok,
                          baseline_exit=baseline_exit,
                          total_instructions=total)
    return report
