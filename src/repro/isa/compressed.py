"""RVC (compressed, 16-bit) instruction support, including ``c.ld.ro``.

The paper extends the RISC-V C extension with a compressed encoding of
``ld.ro`` to optimise program size. The standard C extension leaves the
quadrant-0 ``funct3 = 100`` slot reserved; we place ``c.ld.ro`` there:

    15  13 12  10 9  7 6  5 4  2 1 0
    [ 100 ][key h][rs1'][keyl][rd'][00]

with ``key = key[4:2] << 2 | key[1:0]`` giving a 5-bit key (0..31). Loads
with larger keys must use the 32-bit ``ld.ro``. Decoding expands every
compressed instruction to its 32-bit twin's semantics (same ``name``) with
``length == 2`` so the executor needs no special cases; the auto-compressor
:func:`try_compress` is used by the assembler to shrink code the way a real
RVC-aware assembler would.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import DecodingError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import RVC_KEY_MAX, SPECS
from repro.utils.bits import bits, sext

_RVC_BASE = 8  # x8..x15 are the compressed-addressable registers


def _rvc_reg(field: int) -> int:
    return _RVC_BASE + field


def _is_rvc_reg(reg: int) -> bool:
    return 8 <= reg < 16


def _mk(name: str, **fields) -> Instruction:
    spec = SPECS[name]
    return Instruction(name, semclass=spec.semclass, length=2, **fields)


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


def decode_compressed(halfword: int) -> Instruction:
    """Decode a 16-bit compressed instruction into expanded semantics.

    Raises :class:`DecodingError` for reserved/illegal encodings.
    """
    hw = halfword & 0xFFFF
    if hw & 0b11 == 0b11:
        raise DecodingError(f"{hw:#06x} is not a compressed instruction")
    if hw == 0:
        raise DecodingError("illegal compressed instruction 0x0000")
    op = hw & 0b11
    f3 = bits(hw, 15, 13)

    if op == 0b00:
        return _decode_q0(hw, f3)
    if op == 0b01:
        return _decode_q1(hw, f3)
    return _decode_q2(hw, f3)


def _decode_q0(hw: int, f3: int) -> Instruction:
    rdp = _rvc_reg(bits(hw, 4, 2))
    rs1p = _rvc_reg(bits(hw, 9, 7))
    if f3 == 0b000:  # c.addi4spn
        imm = ((bits(hw, 10, 7) << 6) | (bits(hw, 12, 11) << 4)
               | (bits(hw, 5, 5) << 3) | (bits(hw, 6, 6) << 2))
        if imm == 0:
            raise DecodingError("reserved c.addi4spn with zero immediate")
        out = _mk("addi", rd=rdp, rs1=2, imm=imm, raw=hw)
        return out
    if f3 == 0b010:  # c.lw
        imm = ((bits(hw, 5, 5) << 6) | (bits(hw, 12, 10) << 3)
               | (bits(hw, 6, 6) << 2))
        return _mk("lw", rd=rdp, rs1=rs1p, imm=imm, raw=hw)
    if f3 == 0b011:  # c.ld
        imm = (bits(hw, 6, 5) << 6) | (bits(hw, 12, 10) << 3)
        return _mk("ld", rd=rdp, rs1=rs1p, imm=imm, raw=hw)
    # [roload-begin: processor]
    if f3 == 0b100:  # c.ld.ro — the ROLoad compressed extension
        key = (bits(hw, 12, 10) << 2) | bits(hw, 6, 5)
        return _mk("ld.ro", rd=rdp, rs1=rs1p, key=key, raw=hw)
    # [roload-end]
    if f3 == 0b110:  # c.sw
        imm = ((bits(hw, 5, 5) << 6) | (bits(hw, 12, 10) << 3)
               | (bits(hw, 6, 6) << 2))
        return _mk("sw", rs1=rs1p, rs2=rdp, imm=imm, raw=hw)
    if f3 == 0b111:  # c.sd
        imm = (bits(hw, 6, 5) << 6) | (bits(hw, 12, 10) << 3)
        return _mk("sd", rs1=rs1p, rs2=rdp, imm=imm, raw=hw)
    raise DecodingError(f"reserved compressed encoding {hw:#06x}")


def _decode_q1(hw: int, f3: int) -> Instruction:
    rd = bits(hw, 11, 7)
    imm6 = sext((bits(hw, 12, 12) << 5) | bits(hw, 6, 2), 6)
    if f3 == 0b000:  # c.addi / c.nop
        return _mk("addi", rd=rd, rs1=rd, imm=imm6, raw=hw)
    if f3 == 0b001:  # c.addiw (RV64)
        if rd == 0:
            raise DecodingError("reserved c.addiw with rd=0")
        return _mk("addiw", rd=rd, rs1=rd, imm=imm6, raw=hw)
    if f3 == 0b010:  # c.li
        return _mk("addi", rd=rd, rs1=0, imm=imm6, raw=hw)
    if f3 == 0b011:
        if rd == 2:  # c.addi16sp
            imm = sext((bits(hw, 12, 12) << 9) | (bits(hw, 4, 3) << 7)
                       | (bits(hw, 5, 5) << 6) | (bits(hw, 2, 2) << 5)
                       | (bits(hw, 6, 6) << 4), 10)
            if imm == 0:
                raise DecodingError("reserved c.addi16sp with zero imm")
            return _mk("addi", rd=2, rs1=2, imm=imm, raw=hw)
        if rd == 0 or imm6 == 0:
            raise DecodingError("reserved c.lui encoding")
        return _mk("lui", rd=rd, imm=imm6 & 0xFFFFF, raw=hw)
    if f3 == 0b100:
        funct2 = bits(hw, 11, 10)
        rdp = _rvc_reg(bits(hw, 9, 7))
        if funct2 == 0b00:  # c.srli
            shamt = (bits(hw, 12, 12) << 5) | bits(hw, 6, 2)
            return _mk("srli", rd=rdp, rs1=rdp, imm=shamt, raw=hw)
        if funct2 == 0b01:  # c.srai
            shamt = (bits(hw, 12, 12) << 5) | bits(hw, 6, 2)
            return _mk("srai", rd=rdp, rs1=rdp, imm=shamt, raw=hw)
        if funct2 == 0b10:  # c.andi
            return _mk("andi", rd=rdp, rs1=rdp, imm=imm6, raw=hw)
        rs2p = _rvc_reg(bits(hw, 4, 2))
        sel = (bits(hw, 12, 12) << 2) | bits(hw, 6, 5)
        name = {0b000: "sub", 0b001: "xor", 0b010: "or", 0b011: "and",
                0b100: "subw", 0b101: "addw"}.get(sel)
        if name is None:
            raise DecodingError(f"reserved compressed ALU encoding {sel}")
        return _mk(name, rd=rdp, rs1=rdp, rs2=rs2p, raw=hw)
    if f3 == 0b101:  # c.j
        imm = sext((bits(hw, 12, 12) << 11) | (bits(hw, 8, 8) << 10)
                   | (bits(hw, 10, 9) << 8) | (bits(hw, 6, 6) << 7)
                   | (bits(hw, 7, 7) << 6) | (bits(hw, 2, 2) << 5)
                   | (bits(hw, 11, 11) << 4) | (bits(hw, 5, 3) << 1), 12)
        return _mk("jal", rd=0, imm=imm, raw=hw)
    # c.beqz / c.bnez
    rs1p = _rvc_reg(bits(hw, 9, 7))
    imm = sext((bits(hw, 12, 12) << 8) | (bits(hw, 6, 5) << 6)
               | (bits(hw, 2, 2) << 5) | (bits(hw, 11, 10) << 3)
               | (bits(hw, 4, 3) << 1), 9)
    name = "beq" if f3 == 0b110 else "bne"
    return _mk(name, rs1=rs1p, rs2=0, imm=imm, raw=hw)


def _decode_q2(hw: int, f3: int) -> Instruction:
    rd = bits(hw, 11, 7)
    rs2 = bits(hw, 6, 2)
    if f3 == 0b000:  # c.slli
        shamt = (bits(hw, 12, 12) << 5) | bits(hw, 6, 2)
        return _mk("slli", rd=rd, rs1=rd, imm=shamt, raw=hw)
    if f3 == 0b010:  # c.lwsp
        if rd == 0:
            raise DecodingError("reserved c.lwsp with rd=0")
        imm = ((bits(hw, 3, 2) << 6) | (bits(hw, 12, 12) << 5)
               | (bits(hw, 6, 4) << 2))
        return _mk("lw", rd=rd, rs1=2, imm=imm, raw=hw)
    if f3 == 0b011:  # c.ldsp
        if rd == 0:
            raise DecodingError("reserved c.ldsp with rd=0")
        imm = ((bits(hw, 4, 2) << 6) | (bits(hw, 12, 12) << 5)
               | (bits(hw, 6, 5) << 3))
        return _mk("ld", rd=rd, rs1=2, imm=imm, raw=hw)
    if f3 == 0b100:
        if bits(hw, 12, 12) == 0:
            if rs2 == 0:  # c.jr
                if rd == 0:
                    raise DecodingError("reserved c.jr with rs1=0")
                return _mk("jalr", rd=0, rs1=rd, imm=0, raw=hw)
            return _mk("add", rd=rd, rs1=0, rs2=rs2, raw=hw)  # c.mv
        if rs2 == 0:
            if rd == 0:  # c.ebreak
                return _mk("ebreak", raw=hw)
            return _mk("jalr", rd=1, rs1=rd, imm=0, raw=hw)  # c.jalr
        return _mk("add", rd=rd, rs1=rd, rs2=rs2, raw=hw)  # c.add
    if f3 == 0b110:  # c.swsp
        imm = (bits(hw, 8, 7) << 6) | (bits(hw, 12, 9) << 2)
        return _mk("sw", rs1=2, rs2=rs2, imm=imm, raw=hw)
    if f3 == 0b111:  # c.sdsp
        imm = (bits(hw, 9, 7) << 6) | (bits(hw, 12, 10) << 3)
        return _mk("sd", rs1=2, rs2=rs2, imm=imm, raw=hw)
    raise DecodingError(f"reserved compressed encoding {hw:#06x}")


# ---------------------------------------------------------------------------
# Compression (used by the assembler when .option rvc is active)
# ---------------------------------------------------------------------------


def try_compress(insn: Instruction) -> Optional[int]:
    """Return the 16-bit encoding of ``insn`` if one exists, else ``None``.

    ``insn`` is in expanded form (mnemonics like ``addi``/``ld``/``ld.ro``).
    """
    name = insn.name
    rd, rs1, rs2, imm = insn.rd, insn.rs1, insn.rs2, insn.imm

    # [roload-begin: processor]
    if name == "ld.ro":
        if (_is_rvc_reg(rd) and _is_rvc_reg(rs1)
                and 0 <= insn.key <= RVC_KEY_MAX):
            key = insn.key
            return (0b100 << 13 | ((key >> 2) & 0b111) << 10
                    | (rs1 - 8) << 7 | (key & 0b11) << 5 | (rd - 8) << 2)
        return None
    # [roload-end]

    if name == "addi":
        if rd == rs1 == 0 and imm == 0:  # c.nop
            return 0x0001
        if (rs1 == 2 and _is_rvc_reg(rd) and imm > 0 and imm % 4 == 0
                and imm < 1024):  # c.addi4spn
            return (0b000 << 13 | ((imm >> 4) & 0b11) << 11
                    | ((imm >> 6) & 0b1111) << 7 | ((imm >> 2) & 1) << 6
                    | ((imm >> 3) & 1) << 5 | (rd - 8) << 2)
        if rd == rs1 == 2 and imm != 0 and imm % 16 == 0 and -512 <= imm < 512:
            u = imm & 0x3FF  # c.addi16sp
            return (0b011 << 13 | ((u >> 9) & 1) << 12 | 2 << 7
                    | ((u >> 4) & 1) << 6 | ((u >> 6) & 1) << 5
                    | ((u >> 7) & 0b11) << 3 | ((u >> 5) & 1) << 2 | 0b01)
        if rd == rs1 and rd != 0 and imm != 0 and -32 <= imm < 32:  # c.addi
            u = imm & 0x3F
            return (0b000 << 13 | ((u >> 5) & 1) << 12 | rd << 7
                    | (u & 0x1F) << 2 | 0b01)
        if rs1 == 0 and rd != 0 and -32 <= imm < 32:  # c.li
            u = imm & 0x3F
            return (0b010 << 13 | ((u >> 5) & 1) << 12 | rd << 7
                    | (u & 0x1F) << 2 | 0b01)
        return None

    if name == "addiw":
        if rd == rs1 and rd != 0 and -32 <= imm < 32:
            u = imm & 0x3F
            return (0b001 << 13 | ((u >> 5) & 1) << 12 | rd << 7
                    | (u & 0x1F) << 2 | 0b01)
        return None

    if name == "lui":
        imm20 = imm & 0xFFFFF
        signed = sext(imm20, 20)
        if rd not in (0, 2) and signed != 0 and -32 <= signed < 32:
            u = signed & 0x3F
            return (0b011 << 13 | ((u >> 5) & 1) << 12 | rd << 7
                    | (u & 0x1F) << 2 | 0b01)
        return None

    if name in ("lw", "ld", "sw", "sd"):
        return _compress_mem(name, rd, rs1, rs2, imm)

    if name in ("srli", "srai") and rd == rs1 and _is_rvc_reg(rd) \
            and 0 < imm < 64:
        funct2 = 0b00 if name == "srli" else 0b01
        return (0b100 << 13 | ((imm >> 5) & 1) << 12 | funct2 << 10
                | (rd - 8) << 7 | (imm & 0x1F) << 2 | 0b01)

    if name == "andi" and rd == rs1 and _is_rvc_reg(rd) and -32 <= imm < 32:
        u = imm & 0x3F
        return (0b100 << 13 | ((u >> 5) & 1) << 12 | 0b10 << 10
                | (rd - 8) << 7 | (u & 0x1F) << 2 | 0b01)

    if name in ("sub", "xor", "or", "and", "subw", "addw") and rd == rs1 \
            and _is_rvc_reg(rd) and _is_rvc_reg(rs2):
        sel = {"sub": 0b000, "xor": 0b001, "or": 0b010, "and": 0b011,
               "subw": 0b100, "addw": 0b101}[name]
        return (0b100 << 13 | ((sel >> 2) & 1) << 12 | 0b11 << 10
                | (rd - 8) << 7 | (sel & 0b11) << 5 | (rs2 - 8) << 2 | 0b01)

    if name == "slli" and rd == rs1 and rd != 0 and 0 < imm < 64:
        return (0b000 << 13 | ((imm >> 5) & 1) << 12 | rd << 7
                | (imm & 0x1F) << 2 | 0b10)

    if name == "add":
        if rs1 == 0 and rd != 0 and rs2 != 0:  # c.mv
            return 0b100 << 13 | rd << 7 | rs2 << 2 | 0b10
        if rd == rs1 and rd != 0 and rs2 != 0:  # c.add
            return 0b100 << 13 | 1 << 12 | rd << 7 | rs2 << 2 | 0b10
        return None

    if name == "jalr" and imm == 0 and rs1 != 0:
        if rd == 0:  # c.jr
            return 0b100 << 13 | rs1 << 7 | 0b10
        if rd == 1:  # c.jalr
            return 0b100 << 13 | 1 << 12 | rs1 << 7 | 0b10
        return None

    if name == "jal" and rd == 0 and imm % 2 == 0 and -2048 <= imm < 2048:
        u = imm & 0xFFF
        return (0b101 << 13 | ((u >> 11) & 1) << 12 | ((u >> 4) & 1) << 11
                | ((u >> 8) & 0b11) << 9 | ((u >> 10) & 1) << 8
                | ((u >> 6) & 1) << 7 | ((u >> 7) & 1) << 6
                | ((u >> 1) & 0b111) << 3 | ((u >> 5) & 1) << 2 | 0b01)

    if name in ("beq", "bne") and rs2 == 0 and _is_rvc_reg(rs1) \
            and imm % 2 == 0 and -256 <= imm < 256:
        u = imm & 0x1FF
        f3 = 0b110 if name == "beq" else 0b111
        return (f3 << 13 | ((u >> 8) & 1) << 12 | ((u >> 3) & 0b11) << 10
                | (rs1 - 8) << 7 | ((u >> 6) & 0b11) << 5
                | ((u >> 5) & 1) << 2 | ((u >> 1) & 0b11) << 3 | 0b01)

    if name == "ebreak":
        return 0b100 << 13 | 1 << 12 | 0b10

    return None


def _compress_mem(name, rd, rs1, rs2, imm) -> Optional[int]:
    if name == "lw":
        if rs1 == 2 and rd != 0 and imm % 4 == 0 and 0 <= imm < 256:
            return (0b010 << 13 | ((imm >> 5) & 1) << 12 | rd << 7
                    | ((imm >> 2) & 0b111) << 4 | ((imm >> 6) & 0b11) << 2
                    | 0b10)
        if _is_rvc_reg(rd) and _is_rvc_reg(rs1) and imm % 4 == 0 \
                and 0 <= imm < 128:
            return (0b010 << 13 | ((imm >> 3) & 0b111) << 10
                    | (rs1 - 8) << 7 | ((imm >> 2) & 1) << 6
                    | ((imm >> 6) & 1) << 5 | (rd - 8) << 2)
        return None
    if name == "ld":
        if rs1 == 2 and rd != 0 and imm % 8 == 0 and 0 <= imm < 512:
            return (0b011 << 13 | ((imm >> 5) & 1) << 12 | rd << 7
                    | ((imm >> 3) & 0b11) << 5 | ((imm >> 6) & 0b111) << 2
                    | 0b10)
        if _is_rvc_reg(rd) and _is_rvc_reg(rs1) and imm % 8 == 0 \
                and 0 <= imm < 256:
            return (0b011 << 13 | ((imm >> 3) & 0b111) << 10
                    | (rs1 - 8) << 7 | ((imm >> 6) & 0b11) << 5
                    | (rd - 8) << 2)
        return None
    if name == "sw":
        if rs1 == 2 and imm % 4 == 0 and 0 <= imm < 256:
            return (0b110 << 13 | ((imm >> 2) & 0b1111) << 9
                    | ((imm >> 6) & 0b11) << 7 | rs2 << 2 | 0b10)
        if _is_rvc_reg(rs2) and _is_rvc_reg(rs1) and imm % 4 == 0 \
                and 0 <= imm < 128:
            return (0b110 << 13 | ((imm >> 3) & 0b111) << 10
                    | (rs1 - 8) << 7 | ((imm >> 2) & 1) << 6
                    | ((imm >> 6) & 1) << 5 | (rs2 - 8) << 2)
        return None
    if name == "sd":
        if rs1 == 2 and imm % 8 == 0 and 0 <= imm < 512:
            return (0b111 << 13 | ((imm >> 3) & 0b111) << 10
                    | ((imm >> 6) & 0b111) << 7 | rs2 << 2 | 0b10)
        if _is_rvc_reg(rs2) and _is_rvc_reg(rs1) and imm % 8 == 0 \
                and 0 <= imm < 256:
            return (0b111 << 13 | ((imm >> 3) & 0b111) << 10
                    | (rs1 - 8) << 7 | ((imm >> 6) & 0b11) << 5
                    | (rs2 - 8) << 2)
        return None
    return None
