"""Per-opcode Python source templates for the tier-2 trace compiler.

Each table maps a mnemonic to a function producing a Python *expression
string* over already-evaluated u64 operand expressions (register locals
like ``r5``, or the literal ``0`` for x0). Immediates arrive as Python
ints so every immediate-dependent conversion folds at compile time.

Every template is a transcription of the corresponding ``_h_*`` handler
in ``repro.cpu.core`` — same wrap-around, same sign handling, same shift
masking — so a compiled block is architecturally indistinguishable from
interpreting the same instructions one at a time. The signed-view
helpers below expand to branch-free integer arithmetic rather than
calling into ``repro.utils.bits``: the whole point of the tier-2 path
is that a hot block executes no Python calls it does not strictly need.
"""

from __future__ import annotations

from repro.utils.bits import to_u64

_M = "0xFFFFFFFFFFFFFFFF"

# Width/signedness per load/store mnemonic (plain and ROLoad variants) —
# shared by the interpreter handler tables (repro.cpu.core) and the
# trace compiler (repro.cpu.jit).
LOAD_INFO = {
    "lb": (1, True), "lh": (2, True), "lw": (4, True), "ld": (8, True),
    "lbu": (1, False), "lhu": (2, False), "lwu": (4, False),
}
RO_INFO = {"lb.ro": (1, True), "lh.ro": (2, True), "lw.ro": (4, True),
           "ld.ro": (8, True), "lbu.ro": (1, False), "lhu.ro": (2, False),
           "lwu.ro": (4, False)}
STORE_INFO = {"sb": 1, "sh": 2, "sw": 4, "sd": 8}


def s64(a: str) -> str:
    """Signed view of a u64 operand (``to_s64``). ``a`` must be a simple
    local name or literal — it is repeated."""
    return f"({a} - 0x10000000000000000 if {a} >= 0x8000000000000000 else {a})"


def s32(a: str) -> str:
    """Signed view of the low 32 bits (``sext(a, 32)``)."""
    return f"((({a} & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000)"


def sx32(expr: str) -> str:
    """Sign-extend an int32-producing expression to u64 (``sext32_to_u64``)."""
    return f"(((({expr}) & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000) & {_M}"


# rd = f(rs1, imm). Callable(a_expr, imm_int) -> expr.
ALU_IMM = {
    "addi": lambda a, i: f"({a} + {i}) & {_M}",
    "slti": lambda a, i: f"(1 if {s64(a)} < {i} else 0)",
    "sltiu": lambda a, i: f"(1 if {a} < {to_u64(i)} else 0)",
    "xori": lambda a, i: f"{a} ^ {to_u64(i)}",
    "ori": lambda a, i: f"{a} | {to_u64(i)}",
    "andi": lambda a, i: f"{a} & {to_u64(i)}",
    "slli": lambda a, i: f"({a} << {i}) & {_M}",
    "srli": lambda a, i: f"{a} >> {i}",
    "srai": lambda a, i: f"({s64(a)} >> {i}) & {_M}",
    "addiw": lambda a, i: sx32(f"{a} + {i}"),
    "slliw": lambda a, i: sx32(f"{a} << {i}"),
    "srliw": lambda a, i: sx32(f"({a} & 0xFFFFFFFF) >> {i}"),
    "sraiw": lambda a, i: sx32(f"{s32(a)} >> {i}"),
}

# rd = f(rs1, rs2). Callable(a_expr, b_expr) -> expr.
ALU_REG = {
    "add": lambda a, b: f"({a} + {b}) & {_M}",
    "sub": lambda a, b: f"({a} - {b}) & {_M}",
    "sll": lambda a, b: f"({a} << ({b} & 63)) & {_M}",
    "slt": lambda a, b: f"(1 if {s64(a)} < {s64(b)} else 0)",
    "sltu": lambda a, b: f"(1 if {a} < {b} else 0)",
    "xor": lambda a, b: f"{a} ^ {b}",
    "srl": lambda a, b: f"{a} >> ({b} & 63)",
    "sra": lambda a, b: f"({s64(a)} >> ({b} & 63)) & {_M}",
    "or": lambda a, b: f"{a} | {b}",
    "and": lambda a, b: f"{a} & {b}",
    "addw": lambda a, b: sx32(f"{a} + {b}"),
    "subw": lambda a, b: sx32(f"{a} - {b}"),
    "sllw": lambda a, b: sx32(f"{a} << ({b} & 31)"),
    "srlw": lambda a, b: sx32(f"({a} & 0xFFFFFFFF) >> ({b} & 31)"),
    "sraw": lambda a, b: sx32(f"{s32(a)} >> ({b} & 31)"),
    # Single-cycle-result M ops worth inlining; the emitter adds the
    # muldiv latency charge (timing.muldiv) for names in INLINE_MULDIV.
    "mul": lambda a, b: f"({a} * {b}) & {_M}",
    "mulw": lambda a, b: sx32(f"{a} * {b}"),
}

# ALU_REG names that must also charge TimingParams.mul_latency.
INLINE_MULDIV = frozenset({"mul", "mulw"})

# Branch condition expressions (the pc redirect is the emitter's job).
BRANCH_COND = {
    "beq": lambda a, b: f"{a} == {b}",
    "bne": lambda a, b: f"{a} != {b}",
    "blt": lambda a, b: f"{s64(a)} < {s64(b)}",
    "bge": lambda a, b: f"{s64(a)} >= {s64(b)}",
    "bltu": lambda a, b: f"{a} < {b}",
    "bgeu": lambda a, b: f"{a} >= {b}",
}
