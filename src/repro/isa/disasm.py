"""Disassembler: decoded instructions back to assembly text.

The output is accepted verbatim by :mod:`repro.asm` (round-trip tested),
using the paper's syntax for ROLoad loads: ``ld.ro rd, (rs1), key``.
"""

from __future__ import annotations

from repro.isa.encoding import decode, instruction_length
from repro.isa.compressed import decode_compressed
from repro.isa.instruction import Instruction
from repro.isa.opcodes import SPECS
from repro.isa.registers import reg_name

# CSR numbers used by the toolchain (user-level counters).
CSR_NAMES = {0xC00: "cycle", 0xC01: "time", 0xC02: "instret"}


def format_instruction(insn: Instruction) -> str:
    """Render one decoded instruction as assembly text."""
    spec = SPECS.get(insn.name)
    name = insn.name
    rd, rs1, rs2 = reg_name(insn.rd), reg_name(insn.rs1), reg_name(insn.rs2)
    if spec is None:
        return f".word {insn.raw:#010x}"
    fmt = spec.fmt
    if fmt == "R" or fmt == "AMO":
        return f"{name} {rd}, {rs1}, {rs2}"
    if fmt == "RO":
        return f"{name} {rd}, ({rs1}), {insn.key}"
    if fmt in ("SHIFT64", "SHIFT32"):
        return f"{name} {rd}, {rs1}, {insn.imm}"
    if fmt == "I":
        if spec.semclass == "load":
            return f"{name} {rd}, {insn.imm}({rs1})"
        if name == "jalr":
            return f"{name} {rd}, {insn.imm}({rs1})"
        if spec.semclass == "fence":
            return name
        return f"{name} {rd}, {rs1}, {insn.imm}"
    if fmt == "S":
        return f"{name} {rs2}, {insn.imm}({rs1})"
    if fmt == "B":
        return f"{name} {rs1}, {rs2}, {insn.imm}"
    if fmt in ("U", "J"):
        return f"{name} {rd}, {insn.imm}"
    if fmt == "CSR":
        csr = CSR_NAMES.get(insn.csr, f"{insn.csr:#x}")
        return f"{name} {rd}, {csr}, {rs1}"
    if fmt == "CSRI":
        csr = CSR_NAMES.get(insn.csr, f"{insn.csr:#x}")
        return f"{name} {rd}, {csr}, {insn.imm}"
    if fmt == "SYS":
        return name
    return f".word {insn.raw:#010x}"


def disassemble_word(word: int) -> str:
    """Disassemble a 32-bit instruction word."""
    return format_instruction(decode(word))


def disassemble_bytes(data: bytes, base_address: int = 0):
    """Yield ``(address, length, text)`` for a byte stream of instructions.

    Stops at the first undecodable word, yielding it as ``.word``/``.half``.
    """
    offset = 0
    while offset + 2 <= len(data):
        half = int.from_bytes(data[offset:offset + 2], "little")
        length = instruction_length(half)
        if offset + length > len(data):
            break
        address = base_address + offset
        try:
            if length == 2:
                insn = decode_compressed(half)
            else:
                word = int.from_bytes(data[offset:offset + 4], "little")
                insn = decode(word)
            yield address, length, format_instruction(insn)
        except Exception:
            if length == 2:
                yield address, 2, f".half {half:#06x}"
            else:
                word = int.from_bytes(data[offset:offset + 4], "little")
                yield address, 4, f".word {word:#010x}"
        offset += length
