"""RISC-V RV64IMAC instruction set with the ROLoad extension.

Public surface:

* :class:`~repro.isa.instruction.Instruction` — decoded instruction.
* :func:`~repro.isa.encoding.encode` / :func:`~repro.isa.encoding.decode`
  — 32-bit encodings (including the ``ld.ro`` family in custom-0).
* :func:`~repro.isa.compressed.decode_compressed` /
  :func:`~repro.isa.compressed.try_compress` — RVC, including ``c.ld.ro``.
* :func:`~repro.isa.disasm.disassemble_bytes` — byte stream to text.
* :mod:`~repro.isa.registers` — ABI names and calling-convention groups.
"""

from repro.isa.instruction import Instruction, make_nop
from repro.isa.encoding import decode, encode, instruction_length
from repro.isa.compressed import decode_compressed, try_compress
from repro.isa.disasm import disassemble_bytes, disassemble_word, \
    format_instruction
from repro.isa.opcodes import (
    KEY_BITS,
    KEY_MAX,
    MemOp,
    PLAIN_TO_RO,
    RO_TO_PLAIN,
    RVC_KEY_MAX,
    SPECS,
    is_roload,
    spec_for,
)

__all__ = [
    "Instruction", "make_nop", "decode", "encode", "instruction_length",
    "decode_compressed", "try_compress", "disassemble_bytes",
    "disassemble_word", "format_instruction", "KEY_BITS", "KEY_MAX",
    "MemOp", "PLAIN_TO_RO", "RO_TO_PLAIN", "RVC_KEY_MAX", "SPECS",
    "is_roload", "spec_for",
]
