"""Encoder/decoder for 32-bit instructions (RV64IMA + ROLoad custom-0).

Both directions are driven by the spec table in :mod:`repro.isa.opcodes`.
Compressed (16-bit) encodings live in :mod:`repro.isa.compressed`.
"""

from __future__ import annotations

from repro.errors import DecodingError, EncodingError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    KEY_MAX,
    OP_AMO,
    OP_BRANCH,
    OP_CUSTOM0,
    OP_IMM,
    OP_IMM32,
    OP_JAL,
    OP_LOAD,
    OP_MISC_MEM,
    OP_REG,
    OP_REG32,
    OP_STORE,
    OP_SYSTEM,
    SPECS,
    InsnSpec,
)
from repro.utils.bits import bits, fits_signed, sext

# ---------------------------------------------------------------------------
# Immediate packing/unpacking per format.
# ---------------------------------------------------------------------------


def _pack_i(imm: int) -> int:
    if not fits_signed(imm, 12):
        raise EncodingError(f"I-immediate {imm} out of range")
    return (imm & 0xFFF) << 20


def _unpack_i(word: int) -> int:
    return sext(bits(word, 31, 20), 12)


def _pack_s(imm: int) -> int:
    if not fits_signed(imm, 12):
        raise EncodingError(f"S-immediate {imm} out of range")
    imm &= 0xFFF
    return (bits(imm, 11, 5) << 25) | (bits(imm, 4, 0) << 7)


def _unpack_s(word: int) -> int:
    return sext((bits(word, 31, 25) << 5) | bits(word, 11, 7), 12)


def _pack_b(imm: int) -> int:
    if imm % 2:
        raise EncodingError(f"branch offset {imm} is odd")
    if not fits_signed(imm, 13):
        raise EncodingError(f"B-immediate {imm} out of range")
    imm &= 0x1FFF
    return ((bits(imm, 12, 12) << 31) | (bits(imm, 10, 5) << 25)
            | (bits(imm, 4, 1) << 8) | (bits(imm, 11, 11) << 7))


def _unpack_b(word: int) -> int:
    imm = ((bits(word, 31, 31) << 12) | (bits(word, 7, 7) << 11)
           | (bits(word, 30, 25) << 5) | (bits(word, 11, 8) << 1))
    return sext(imm, 13)


def _pack_u(imm: int) -> int:
    if not 0 <= imm <= 0xFFFFF:
        raise EncodingError(f"U-immediate {imm:#x} out of range (20 bits)")
    return imm << 12


def _unpack_u(word: int) -> int:
    return bits(word, 31, 12)


def _pack_j(imm: int) -> int:
    if imm % 2:
        raise EncodingError(f"jump offset {imm} is odd")
    if not fits_signed(imm, 21):
        raise EncodingError(f"J-immediate {imm} out of range")
    imm &= 0x1FFFFF
    return ((bits(imm, 20, 20) << 31) | (bits(imm, 10, 1) << 21)
            | (bits(imm, 11, 11) << 20) | (bits(imm, 19, 12) << 12))


def _unpack_j(word: int) -> int:
    imm = ((bits(word, 31, 31) << 20) | (bits(word, 19, 12) << 12)
           | (bits(word, 20, 20) << 11) | (bits(word, 30, 21) << 1))
    return sext(imm, 21)


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def encode(insn: Instruction) -> int:
    """Encode a decoded instruction back into its 32-bit word.

    Compressed instructions must go through
    :func:`repro.isa.compressed.encode_compressed` instead.
    """
    try:
        spec: InsnSpec = SPECS[insn.name]
    except KeyError:
        raise EncodingError(f"unknown mnemonic {insn.name!r}") from None

    op, f3, f7 = spec.opcode, spec.funct3, spec.funct7
    rd, rs1, rs2 = insn.rd << 7, insn.rs1 << 15, insn.rs2 << 20
    base = op | (f3 << 12)

    if spec.fmt == "R":
        return base | rd | rs1 | rs2 | (f7 << 25)
    if spec.fmt == "I":
        return base | rd | rs1 | _pack_i(insn.imm)
    if spec.fmt == "S":
        return base | rs1 | rs2 | _pack_s(insn.imm)
    if spec.fmt == "B":
        return base | rs1 | rs2 | _pack_b(insn.imm)
    if spec.fmt == "U":
        return base | rd | _pack_u(insn.imm)
    if spec.fmt == "J":
        return base | rd | _pack_j(insn.imm)
    if spec.fmt == "SHIFT64":
        if not 0 <= insn.imm < 64:
            raise EncodingError(f"shift amount {insn.imm} out of range")
        funct6 = f7 >> 1
        return base | rd | rs1 | (insn.imm << 20) | (funct6 << 26)
    if spec.fmt == "SHIFT32":
        if not 0 <= insn.imm < 32:
            raise EncodingError(f"shift amount {insn.imm} out of range")
        return base | rd | rs1 | (insn.imm << 20) | (f7 << 25)
    if spec.fmt == "CSR":
        return base | rd | rs1 | ((insn.csr & 0xFFF) << 20)
    if spec.fmt == "CSRI":
        # rs1 field holds the 5-bit zero-extended immediate.
        if not 0 <= insn.imm < 32:
            raise EncodingError(f"CSR immediate {insn.imm} out of range")
        return base | rd | (insn.imm << 15) | ((insn.csr & 0xFFF) << 20)
    # [roload-begin: processor]
    if spec.fmt == "RO":
        if not 0 <= insn.key <= KEY_MAX:
            raise EncodingError(
                f"ROLoad key {insn.key} out of range (0..{KEY_MAX})")
        return base | rd | rs1 | (insn.key << 20)
    # [roload-end]
    if spec.fmt == "AMO":
        return base | rd | rs1 | rs2 | (f7 << 25)
    if spec.fmt == "SYS":
        if insn.name == "ecall":
            return 0x00000073
        if insn.name == "ebreak":
            return 0x00100073
    raise EncodingError(f"unhandled format {spec.fmt} for {insn.name}")


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------

# Pre-built reverse indices.
_R_INDEX = {}
_I_INDEX = {}
_AMO_INDEX = {}
for _name, _s in SPECS.items():
    if _s.fmt == "R":
        _R_INDEX[(_s.opcode, _s.funct3, _s.funct7)] = _s
    elif _s.fmt in ("I", "S", "B", "RO", "CSR", "CSRI"):
        _I_INDEX[(_s.opcode, _s.funct3)] = _s
    elif _s.fmt == "AMO":
        _AMO_INDEX[(_s.funct3, _s.funct7 >> 2)] = _s


def _mk(spec: InsnSpec, **fields) -> Instruction:
    return Instruction(spec.name, semclass=spec.semclass, **fields)


def decode(word: int) -> Instruction:
    """Decode a 32-bit instruction word.

    Raises :class:`DecodingError` for unknown encodings (the core turns
    that into an illegal-instruction trap).
    """
    word &= 0xFFFFFFFF
    opcode = word & 0x7F
    rd = bits(word, 11, 7)
    rs1 = bits(word, 19, 15)
    rs2 = bits(word, 24, 20)
    f3 = bits(word, 14, 12)
    f7 = bits(word, 31, 25)

    if opcode == 0b0110111:  # lui
        return _mk(SPECS["lui"], rd=rd, imm=_unpack_u(word), raw=word)
    if opcode == 0b0010111:  # auipc
        return _mk(SPECS["auipc"], rd=rd, imm=_unpack_u(word), raw=word)
    if opcode == OP_JAL:
        return _mk(SPECS["jal"], rd=rd, imm=_unpack_j(word), raw=word)
    if opcode == 0b1100111:  # jalr
        if f3 != 0:
            raise DecodingError(f"bad jalr funct3 {f3}")
        return _mk(SPECS["jalr"], rd=rd, rs1=rs1, imm=_unpack_i(word),
                   raw=word)
    if opcode == OP_BRANCH:
        spec = _I_INDEX.get((opcode, f3))
        if spec is None:
            raise DecodingError(f"bad branch funct3 {f3}")
        return _mk(spec, rs1=rs1, rs2=rs2, imm=_unpack_b(word), raw=word)
    if opcode == OP_LOAD:
        spec = _I_INDEX.get((opcode, f3))
        if spec is None:
            raise DecodingError(f"bad load funct3 {f3}")
        return _mk(spec, rd=rd, rs1=rs1, imm=_unpack_i(word), raw=word)
    # [roload-begin: processor]
    if opcode == OP_CUSTOM0:
        spec = _I_INDEX.get((opcode, f3))
        if spec is None:
            raise DecodingError(f"bad ROLoad funct3 {f3}")
        key = bits(word, 31, 20)
        if key > KEY_MAX:
            raise DecodingError(f"ROLoad key field {key:#x} exceeds "
                                f"{KEY_MAX:#x} (reserved bits set)")
        return _mk(spec, rd=rd, rs1=rs1, key=key, raw=word)
    # [roload-end]
    if opcode == OP_STORE:
        spec = _I_INDEX.get((opcode, f3))
        if spec is None:
            raise DecodingError(f"bad store funct3 {f3}")
        return _mk(spec, rs1=rs1, rs2=rs2, imm=_unpack_s(word), raw=word)
    if opcode == OP_IMM:
        if f3 == 0b001:  # slli
            if (f7 >> 1) != 0:
                raise DecodingError("bad slli funct6")
            return _mk(SPECS["slli"], rd=rd, rs1=rs1,
                       imm=bits(word, 25, 20), raw=word)
        if f3 == 0b101:
            funct6 = f7 >> 1
            name = {0b000000: "srli", 0b010000: "srai"}.get(funct6)
            if name is None:
                raise DecodingError(f"bad shift funct6 {funct6:#x}")
            return _mk(SPECS[name], rd=rd, rs1=rs1,
                       imm=bits(word, 25, 20), raw=word)
        spec = _I_INDEX.get((opcode, f3))
        if spec is None:
            raise DecodingError(f"bad op-imm funct3 {f3}")
        return _mk(spec, rd=rd, rs1=rs1, imm=_unpack_i(word), raw=word)
    if opcode == OP_IMM32:
        if f3 == 0b001:
            if f7 != 0:
                raise DecodingError("bad slliw funct7")
            return _mk(SPECS["slliw"], rd=rd, rs1=rs1, imm=rs2, raw=word)
        if f3 == 0b101:
            name = {0b0000000: "srliw", 0b0100000: "sraiw"}.get(f7)
            if name is None:
                raise DecodingError(f"bad shiftw funct7 {f7:#x}")
            return _mk(SPECS[name], rd=rd, rs1=rs1, imm=rs2, raw=word)
        if f3 == 0b000:
            return _mk(SPECS["addiw"], rd=rd, rs1=rs1, imm=_unpack_i(word),
                       raw=word)
        raise DecodingError(f"bad op-imm-32 funct3 {f3}")
    if opcode in (OP_REG, OP_REG32):
        spec = _R_INDEX.get((opcode, f3, f7))
        if spec is None:
            raise DecodingError(
                f"bad R-type opcode={opcode:#x} f3={f3} f7={f7:#x}")
        return _mk(spec, rd=rd, rs1=rs1, rs2=rs2, raw=word)
    if opcode == OP_AMO:
        funct5 = f7 >> 2
        if f7 & 0b11:
            # aq/rl ordering bits are meaningless on this single-hart,
            # in-order model; the toolchain never emits them, so reject
            # to keep encode(decode(w)) == w exact.
            raise DecodingError("AMO aq/rl bits unsupported by this model")
        spec = _AMO_INDEX.get((f3, funct5))
        if spec is None:
            raise DecodingError(f"bad AMO f3={f3} funct5={funct5:#x}")
        return _mk(spec, rd=rd, rs1=rs1, rs2=rs2, raw=word)
    if opcode == OP_MISC_MEM:
        name = {0b000: "fence", 0b001: "fence.i"}.get(f3)
        if name is None:
            raise DecodingError(f"bad misc-mem funct3 {f3}")
        return _mk(SPECS[name], rd=rd, rs1=rs1, imm=_unpack_i(word),
                   raw=word)
    if opcode == OP_SYSTEM:
        if f3 == 0:
            imm12 = bits(word, 31, 20)
            if word == 0x00000073:
                return _mk(SPECS["ecall"], raw=word)
            if word == 0x00100073:
                return _mk(SPECS["ebreak"], raw=word)
            raise DecodingError(f"bad system instruction imm {imm12:#x}")
        spec = _I_INDEX.get((opcode, f3))
        if spec is None:
            raise DecodingError(f"bad system funct3 {f3}")
        csr = bits(word, 31, 20)
        if spec.fmt == "CSRI":
            return _mk(spec, rd=rd, imm=rs1, csr=csr, raw=word)
        return _mk(spec, rd=rd, rs1=rs1, csr=csr, raw=word)
    raise DecodingError(f"unknown opcode {opcode:#09b} (word {word:#010x})")


def instruction_length(first_halfword: int) -> int:
    """Instruction length in bytes from the low 16 bits (2 or 4)."""
    return 4 if (first_halfword & 0b11) == 0b11 else 2
