"""RISC-V integer register file names and ABI aliases.

The simulator stores registers by index (0..31); the assembler and
disassembler speak ABI names (``a0``, ``sp``, ...). ``x0`` is hardwired to
zero — the register-file model enforces that, not this table.
"""

from __future__ import annotations

from repro.errors import AssemblerError

NUM_REGS = 32

# Index -> canonical ABI name.
ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp",
    "t0", "t1", "t2",
    "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
)

# Registers encodable in compressed (RVC) 3-bit register fields: x8..x15.
RVC_REG_BASE = 8
RVC_REGS = tuple(range(8, 16))

# Name -> index, accepting both xN and ABI spellings (plus fp for s0).
# Public so hot parsers can probe it directly; reg_index() stays the
# checked (case-insensitive, raising) API.
NAME_TO_INDEX = {}
for _i, _name in enumerate(ABI_NAMES):
    NAME_TO_INDEX[_name] = _i
    NAME_TO_INDEX[f"x{_i}"] = _i
NAME_TO_INDEX["fp"] = 8


def reg_index(name: str) -> int:
    """Map a register name (``a0``, ``x10``, ``fp``) to its index.

    Raises :class:`AssemblerError` for unknown names.
    """
    try:
        return NAME_TO_INDEX[name.lower()]
    except KeyError:
        raise AssemblerError(f"unknown register {name!r}") from None


def reg_name(index: int) -> str:
    """Map a register index to its canonical ABI name."""
    if not 0 <= index < NUM_REGS:
        raise ValueError(f"register index {index} out of range")
    return ABI_NAMES[index]


def is_rvc_reg(index: int) -> bool:
    """True if the register is addressable by compressed instructions."""
    return 8 <= index < 16


# Convenient named constants for codegen.
ZERO, RA, SP, GP, TP = 0, 1, 2, 3, 4
T0, T1, T2 = 5, 6, 7
S0, S1 = 8, 9
A0, A1, A2, A3, A4, A5, A6, A7 = 10, 11, 12, 13, 14, 15, 16, 17
S2, S3, S4, S5, S6, S7, S8, S9, S10, S11 = range(18, 28)
T3, T4, T5, T6 = 28, 29, 30, 31

# Calling convention groups used by the register allocator.
ARG_REGS = (A0, A1, A2, A3, A4, A5, A6, A7)
CALLER_SAVED = (RA, T0, T1, T2, A0, A1, A2, A3, A4, A5, A6, A7, T3, T4, T5, T6)
CALLEE_SAVED = (S0, S1, S2, S3, S4, S5, S6, S7, S8, S9, S10, S11)
