"""Decoded instruction representation.

A :class:`Instruction` is the core's working form: mnemonic plus operand
fields. It is produced by the decoder (:mod:`repro.isa.encoding` /
:mod:`repro.isa.compressed`) and by the assembler, and consumed by the
executor and by the encoder. ``length`` distinguishes compressed (2-byte)
from standard (4-byte) encodings — compressed instructions decode to the
same semantics as their 32-bit twins but keep their own mnemonic so the
disassembler and code-size accounting stay faithful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa import registers


@dataclass
class Instruction:
    """A decoded (or to-be-encoded) instruction.

    ``imm`` is always the *signed* immediate value after any implicit
    scaling/sign-extension the format performs. For ROLoad-family
    instructions ``key`` holds the page key and ``imm`` is unused (0).
    """

    name: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    csr: int = 0
    key: int = 0
    length: int = 4
    raw: int = 0
    semclass: str = field(default="alu", repr=False)

    @property
    def is_compressed(self) -> bool:
        return self.length == 2

    @property
    def is_roload(self) -> bool:
        return self.semclass == "roload"

    def __str__(self) -> str:  # pragma: no cover - convenience only
        from repro.isa.disasm import format_instruction
        return format_instruction(self)


def make_nop() -> Instruction:
    """The canonical nop (``addi x0, x0, 0``)."""
    return Instruction("addi", rd=0, rs1=0, imm=0, semclass="alu")


def reg(name_or_index) -> int:
    """Accept either a register index or a name; return the index."""
    if isinstance(name_or_index, int):
        if not 0 <= name_or_index < registers.NUM_REGS:
            raise ValueError(f"register index {name_or_index} out of range")
        return name_or_index
    return registers.reg_index(name_or_index)
