"""Instruction specification tables for the supported RV64IMAC + ROLoad ISA.

Each supported mnemonic maps to an :class:`InsnSpec` describing its format
and fixed encoding fields. The encoder and decoder in
:mod:`repro.isa.encoding` are both driven by this single table so that they
cannot drift apart; property tests round-trip every entry.

The ROLoad family (``lb.ro`` .. ``ld.ro``, unsigned variants) lives in the
RISC-V *custom-0* major opcode (0b0001011) using I-type layout where the
12-bit immediate field carries the **page key** instead of an address
offset, exactly as the paper describes (which is why the compiler inserts
an ``addi`` for loads with non-zero offsets).
"""

from __future__ import annotations

from dataclasses import dataclass

# --- Major opcodes (bits [6:0] of a 32-bit instruction) -------------------
OP_LUI = 0b0110111
OP_AUIPC = 0b0010111
OP_JAL = 0b1101111
OP_JALR = 0b1100111
OP_BRANCH = 0b1100011
OP_LOAD = 0b0000011
OP_STORE = 0b0100011
OP_IMM = 0b0010011
OP_IMM32 = 0b0011011
OP_REG = 0b0110011
OP_REG32 = 0b0111011
OP_MISC_MEM = 0b0001111
OP_SYSTEM = 0b1110011
OP_AMO = 0b0101111
OP_CUSTOM0 = 0b0001011  # ROLoad family lives here.

# Number of key bits honoured by the MMU (reserved top bits of the PTE).
KEY_BITS = 10
KEY_MAX = (1 << KEY_BITS) - 1
# Compressed ld.ro can only encode a 5-bit key.
RVC_KEY_BITS = 5
RVC_KEY_MAX = (1 << RVC_KEY_BITS) - 1


class MemOp:
    """Memory operation kinds issued by the core to the MMU.

    Mirrors Rocket's ``MemoryOpConstants``: the paper adds a new operation
    type for ROLoad loads that carries the instruction key so the TLB can
    run its read-only + key check in parallel with the normal permission
    check.
    """

    READ = "read"
    WRITE = "write"
    FETCH = "fetch"
    READ_RO = "read_ro"  # the new ROLoad memory operation type
    AMO = "amo"          # atomics: need read+write permission


@dataclass(frozen=True)
class InsnSpec:
    """Static description of one mnemonic's encoding."""

    name: str
    fmt: str          # R, I, S, B, U, J, SHIFT64, SHIFT32, CSR, CSRI, RO, AMO, SYS
    opcode: int
    funct3: int = 0
    funct7: int = 0   # also holds funct6<<1 for SHIFT64, funct5<<2|aq|rl base for AMO
    # Semantic class used by the executor dispatch ("alu", "load", ...).
    semclass: str = "alu"


def _spec(name, fmt, opcode, funct3=0, funct7=0, semclass="alu"):
    return InsnSpec(name, fmt, opcode, funct3, funct7, semclass)


# The one table. funct7 for SHIFT64 entries holds the high 6 bits (funct6)
# shifted left by 1 so the same field packing code can be reused.
SPECS = {}


def _add(*specs):
    for s in specs:
        SPECS[s.name] = s


_add(
    _spec("lui", "U", OP_LUI, semclass="lui"),
    _spec("auipc", "U", OP_AUIPC, semclass="auipc"),
    _spec("jal", "J", OP_JAL, semclass="jal"),
    _spec("jalr", "I", OP_JALR, 0b000, semclass="jalr"),
)

_add(
    _spec("beq", "B", OP_BRANCH, 0b000, semclass="branch"),
    _spec("bne", "B", OP_BRANCH, 0b001, semclass="branch"),
    _spec("blt", "B", OP_BRANCH, 0b100, semclass="branch"),
    _spec("bge", "B", OP_BRANCH, 0b101, semclass="branch"),
    _spec("bltu", "B", OP_BRANCH, 0b110, semclass="branch"),
    _spec("bgeu", "B", OP_BRANCH, 0b111, semclass="branch"),
)

_add(
    _spec("lb", "I", OP_LOAD, 0b000, semclass="load"),
    _spec("lh", "I", OP_LOAD, 0b001, semclass="load"),
    _spec("lw", "I", OP_LOAD, 0b010, semclass="load"),
    _spec("ld", "I", OP_LOAD, 0b011, semclass="load"),
    _spec("lbu", "I", OP_LOAD, 0b100, semclass="load"),
    _spec("lhu", "I", OP_LOAD, 0b101, semclass="load"),
    _spec("lwu", "I", OP_LOAD, 0b110, semclass="load"),
)

_add(
    _spec("sb", "S", OP_STORE, 0b000, semclass="store"),
    _spec("sh", "S", OP_STORE, 0b001, semclass="store"),
    _spec("sw", "S", OP_STORE, 0b010, semclass="store"),
    _spec("sd", "S", OP_STORE, 0b011, semclass="store"),
)

_add(
    _spec("addi", "I", OP_IMM, 0b000),
    _spec("slti", "I", OP_IMM, 0b010),
    _spec("sltiu", "I", OP_IMM, 0b011),
    _spec("xori", "I", OP_IMM, 0b100),
    _spec("ori", "I", OP_IMM, 0b110),
    _spec("andi", "I", OP_IMM, 0b111),
    _spec("slli", "SHIFT64", OP_IMM, 0b001, 0b000000 << 1),
    _spec("srli", "SHIFT64", OP_IMM, 0b101, 0b000000 << 1),
    _spec("srai", "SHIFT64", OP_IMM, 0b101, 0b010000 << 1),
    _spec("addiw", "I", OP_IMM32, 0b000),
    _spec("slliw", "SHIFT32", OP_IMM32, 0b001, 0b0000000),
    _spec("srliw", "SHIFT32", OP_IMM32, 0b101, 0b0000000),
    _spec("sraiw", "SHIFT32", OP_IMM32, 0b101, 0b0100000),
)

_add(
    _spec("add", "R", OP_REG, 0b000, 0b0000000),
    _spec("sub", "R", OP_REG, 0b000, 0b0100000),
    _spec("sll", "R", OP_REG, 0b001, 0b0000000),
    _spec("slt", "R", OP_REG, 0b010, 0b0000000),
    _spec("sltu", "R", OP_REG, 0b011, 0b0000000),
    _spec("xor", "R", OP_REG, 0b100, 0b0000000),
    _spec("srl", "R", OP_REG, 0b101, 0b0000000),
    _spec("sra", "R", OP_REG, 0b101, 0b0100000),
    _spec("or", "R", OP_REG, 0b110, 0b0000000),
    _spec("and", "R", OP_REG, 0b111, 0b0000000),
    _spec("addw", "R", OP_REG32, 0b000, 0b0000000),
    _spec("subw", "R", OP_REG32, 0b000, 0b0100000),
    _spec("sllw", "R", OP_REG32, 0b001, 0b0000000),
    _spec("srlw", "R", OP_REG32, 0b101, 0b0000000),
    _spec("sraw", "R", OP_REG32, 0b101, 0b0100000),
)

# M extension.
_add(
    _spec("mul", "R", OP_REG, 0b000, 0b0000001, "muldiv"),
    _spec("mulh", "R", OP_REG, 0b001, 0b0000001, "muldiv"),
    _spec("mulhsu", "R", OP_REG, 0b010, 0b0000001, "muldiv"),
    _spec("mulhu", "R", OP_REG, 0b011, 0b0000001, "muldiv"),
    _spec("div", "R", OP_REG, 0b100, 0b0000001, "muldiv"),
    _spec("divu", "R", OP_REG, 0b101, 0b0000001, "muldiv"),
    _spec("rem", "R", OP_REG, 0b110, 0b0000001, "muldiv"),
    _spec("remu", "R", OP_REG, 0b111, 0b0000001, "muldiv"),
    _spec("mulw", "R", OP_REG32, 0b000, 0b0000001, "muldiv"),
    _spec("divw", "R", OP_REG32, 0b100, 0b0000001, "muldiv"),
    _spec("divuw", "R", OP_REG32, 0b101, 0b0000001, "muldiv"),
    _spec("remw", "R", OP_REG32, 0b110, 0b0000001, "muldiv"),
    _spec("remuw", "R", OP_REG32, 0b111, 0b0000001, "muldiv"),
)

# A extension (aq/rl bits are accepted and ignored by the timing model).
_AMO_FUNCT5 = {
    "lr": 0b00010, "sc": 0b00011, "amoswap": 0b00001, "amoadd": 0b00000,
    "amoxor": 0b00100, "amoand": 0b01100, "amoor": 0b01000,
    "amomin": 0b10000, "amomax": 0b10100, "amominu": 0b11000,
    "amomaxu": 0b11100,
}
for _base, _f5 in _AMO_FUNCT5.items():
    for _sfx, _f3 in (("w", 0b010), ("d", 0b011)):
        _add(_spec(f"{_base}.{_sfx}", "AMO", OP_AMO, _f3, _f5 << 2, "amo"))

# Fences decode but are no-ops for this single-hart model.
_add(
    _spec("fence", "I", OP_MISC_MEM, 0b000, semclass="fence"),
    _spec("fence.i", "I", OP_MISC_MEM, 0b001, semclass="fence"),
)

# System.
_add(
    _spec("ecall", "SYS", OP_SYSTEM, 0b000, 0b0000000, "system"),
    _spec("ebreak", "SYS", OP_SYSTEM, 0b000, 0b0000000, "system"),
    _spec("csrrw", "CSR", OP_SYSTEM, 0b001, semclass="csr"),
    _spec("csrrs", "CSR", OP_SYSTEM, 0b010, semclass="csr"),
    _spec("csrrc", "CSR", OP_SYSTEM, 0b011, semclass="csr"),
    _spec("csrrwi", "CSRI", OP_SYSTEM, 0b101, semclass="csr"),
    _spec("csrrsi", "CSRI", OP_SYSTEM, 0b110, semclass="csr"),
    _spec("csrrci", "CSRI", OP_SYSTEM, 0b111, semclass="csr"),
)

# --- The ROLoad family (the paper's ISA extension) -------------------------
# I-type layout in custom-0; imm[11:0] carries the key (only KEY_BITS valid).
# funct3 mirrors the corresponding normal load so MMU width handling is
# uniform.
# [roload-begin: processor]
ROLOAD_SPECS = {}
for _ld, _f3 in (("lb.ro", 0b000), ("lh.ro", 0b001), ("lw.ro", 0b010),
                 ("ld.ro", 0b011), ("lbu.ro", 0b100), ("lhu.ro", 0b101),
                 ("lwu.ro", 0b110)):
    _s = _spec(_ld, "RO", OP_CUSTOM0, _f3, semclass="roload")
    _add(_s)
    ROLOAD_SPECS[_ld] = _s

# Map a ROLoad mnemonic to its plain-load twin and back.
RO_TO_PLAIN = {name: name[:-3] for name in ROLOAD_SPECS}
PLAIN_TO_RO = {v: k for k, v in RO_TO_PLAIN.items()}

# [roload-end]

# Load width/signedness by funct3 (shared by loads and ROLoads).
LOAD_WIDTH = {0b000: 1, 0b001: 2, 0b010: 4, 0b011: 8,
              0b100: 1, 0b101: 2, 0b110: 4}
LOAD_SIGNED = {0b000: True, 0b001: True, 0b010: True, 0b011: True,
               0b100: False, 0b101: False, 0b110: False}
STORE_WIDTH = {0b000: 1, 0b001: 2, 0b010: 4, 0b011: 8}


def spec_for(name: str) -> InsnSpec:
    """Look up the spec for a mnemonic; KeyError on unknown names."""
    return SPECS[name]


def is_roload(name: str) -> bool:
    """True for ld.ro-family mnemonics (including the compressed form)."""
    return name.endswith(".ro") or name == "c.ld.ro"
