"""Attack simulations: threat-model-faithful corruption primitives, the
classic VTable/function-pointer hijacks, and the §V-D pointee-reuse
residual."""

from repro.attacks.fptr_hijack import (
    point_at_attacker_data,
    point_at_gadget_code,
    point_at_wrong_type_slot,
)
from repro.attacks.primitives import (
    AttackError,
    AttackOutcome,
    CorruptionLogEntry,
    HIJACK_EXIT_CODE,
    MemoryCorruption,
    run_attack,
)
from repro.attacks.reuse import same_class_vtable_reuse, \
    same_type_slot_reuse
from repro.attacks.victims import BENIGN_EXIT, build_victim_module
from repro.attacks.vtable_hijack import (
    corrupt_vtable_in_place,
    cross_type_vtable_reuse,
    inject_fake_vtable,
)

__all__ = [
    "point_at_attacker_data", "point_at_gadget_code",
    "point_at_wrong_type_slot", "AttackError", "AttackOutcome",
    "CorruptionLogEntry", "HIJACK_EXIT_CODE", "MemoryCorruption",
    "run_attack", "same_class_vtable_reuse", "same_type_slot_reuse",
    "BENIGN_EXIT", "build_victim_module", "corrupt_vtable_in_place",
    "cross_type_vtable_reuse", "inject_fake_vtable",
]
