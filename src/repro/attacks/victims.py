"""Victim program builders shared by the attack scenarios.

The victim is a small C++-like program with:

* a class ``Benign`` whose method returns a benign value,
* a second class ``Other`` (different type/hierarchy) for cross-type
  reuse attacks,
* a ``gadget`` function representing existing code the attacker wants to
  reach (COOP-style reuse — DEP forbids injecting new code). When it runs
  it sets the writable ``pwned`` marker, making hijack detection
  unambiguous,
* a writable global ``attacker_buf`` standing in for heap memory the
  attacker fully controls (fake-vtable storage),
* a writable function-pointer global ``fp_slot`` used by the icall path.

``main`` performs one vcall through ``obj`` and one icall through
``fp_slot`` and exits with their sum — 42 when uncorrupted.
"""

from __future__ import annotations

from repro.compiler import (
    GlobalVar,
    I64,
    IRBuilder,
    Module,
    VTable,
    func_type,
    static_object,
)

SIG = func_type(ret=I64)
BENIGN_VCALL = 13
BENIGN_ICALL = 29
BENIGN_EXIT = BENIGN_VCALL + BENIGN_ICALL  # 42
OTHER_VCALL = 21
GADGET_RETURN = 66


def build_victim_module() -> Module:
    m = Module("victim")

    benign = m.function("Benign_get", func_type=SIG, address_taken=True)
    b = IRBuilder(benign)
    b.ret(b.li(BENIGN_VCALL))

    other = m.function("Other_get", func_type=SIG, address_taken=True)
    b = IRBuilder(other)
    b.ret(b.li(OTHER_VCALL))

    callee = m.function("benign_callee", func_type=SIG, address_taken=True)
    b = IRBuilder(callee)
    b.ret(b.li(BENIGN_ICALL))

    # The attacker's target: existing code of the same function type
    # (code-reuse — DEP forbids injection). Running it sets the marker.
    gadget = m.function("gadget", func_type=SIG, address_taken=True)
    b = IRBuilder(gadget)
    marker = b.la("pwned")
    b.store(b.li(1), marker)
    b.ret(b.li(GADGET_RETURN))

    m.vtable(VTable("Benign", entries=["Benign_get"]))
    m.vtable(VTable("Other", entries=["Other_get"]))
    static_object(m, "obj", "Benign")
    static_object(m, "other_obj", "Other")

    m.global_var(GlobalVar("pwned", section=".data", init=[0]))
    # Attacker-writable scratch: a fake vtable area ("heap").
    m.global_var(GlobalVar("attacker_buf", section=".data", size=64))
    # Writable function-pointer slot, initialised to benign_callee.
    m.global_var(GlobalVar("fp_slot", section=".data",
                           init=[("quad", "benign_callee")]))

    main = m.function("main")
    b = IRBuilder(main)
    obj = b.la("obj")
    vcall_result = b.vcall(obj, 0, "Benign", func_type=SIG)
    slot = b.la("fp_slot")
    fptr = b.load_fptr(slot, SIG)
    icall_result = b.icall(fptr, func_type=SIG)
    b.ret(b.add(vcall_result, icall_result))
    return m
