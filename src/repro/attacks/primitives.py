"""Attacker primitives matching the paper's threat model (§II-B).

"We assume that one or more memory-corruption vulnerabilities exist in
victim programs, allowing adversaries to repeatedly read from or write to
arbitrary readable/writable addresses. We assume that DEP is deployed and
code is immutable."

So the attacker here can read any readable mapping and write any
*writable* mapping of the victim — but not read-only pages (vtables,
GFPTs, code). Attempts to do so raise :class:`AttackError`, making tests
that accidentally step outside the threat model fail loudly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.asm.objfile import Executable
from repro.errors import ReproError
from repro.kernel.address_space import PROT_READ, PROT_WRITE
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process


class AttackError(ReproError):
    """The attempted primitive falls outside the threat model."""


@dataclass
class CorruptionLogEntry:
    vaddr: int
    size: int
    value: int
    note: str = ""


class MemoryCorruption:
    """Arbitrary read/write primitives over a loaded (not yet running, or
    paused) victim process."""

    def __init__(self, kernel: Kernel, process: Process,
                 image: "Optional[Executable]" = None):
        self.kernel = kernel
        self.process = process
        self.image = image
        self.log: "List[CorruptionLogEntry]" = []

    # -- address helpers -----------------------------------------------------

    def symbol(self, name: str) -> int:
        if self.image is None:
            raise AttackError("no image symbols available")
        return self.image.symbol(name)

    def _require(self, vaddr: int, size: int, prot: int, what: str) -> None:
        space = self.process.address_space
        for addr in (vaddr, vaddr + size - 1):
            vma = space.vma_at(addr)
            if vma is None:
                raise AttackError(f"{what} of unmapped address {addr:#x}")
            if not vma.prot & prot:
                raise AttackError(
                    f"{what} of {addr:#x} denied: page is "
                    f"{'read-only' if prot == PROT_WRITE else 'unreadable'}"
                    f" (threat model: DEP + immutable code/rodata)")

    # -- primitives -------------------------------------------------------------

    def read(self, vaddr: int, size: int = 8) -> int:
        """Arbitrary read of readable memory."""
        self._require(vaddr, size, PROT_READ, "read")
        data = self.process.address_space.read_memory(vaddr, size)
        return int.from_bytes(data, "little")

    def write(self, vaddr: int, value: int, size: int = 8,
              note: str = "") -> None:
        """Arbitrary write of writable memory (the corruption)."""
        self._require(vaddr, size, PROT_WRITE, "write")
        space = self.process.address_space
        data = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        offset = 0
        while offset < len(data):
            paddr = space.phys_addr(vaddr + offset)
            chunk = min(len(data) - offset,
                        4096 - ((vaddr + offset) & 0xFFF))
            space.memory.write_bytes(paddr, data[offset:offset + chunk])
            offset += chunk
        self.log.append(CorruptionLogEntry(vaddr, size, value, note))

    def write_symbol(self, name: str, value: int, size: int = 8,
                     note: str = "") -> None:
        self.write(self.symbol(name), value, size, note=note)

    def read_symbol(self, name: str, size: int = 8) -> int:
        return self.read(self.symbol(name), size)


@dataclass
class AttackOutcome:
    """What happened when the victim ran after corruption."""

    status: str
    exit_code: "Optional[int]"
    blocked: bool               # the defense (or memory protection) fired
    hijacked: bool              # attacker-chosen code executed
    roload_violation: bool      # the kernel logged a ROLoad event
    security_events: list = field(default_factory=list)


HIJACK_EXIT_CODE = 66  # the attacker payload's distinctive exit code


def run_attack(image: Executable, corrupt, *,
               profile: str = "processor+kernel",
               max_instructions: int = 5_000_000) -> AttackOutcome:
    """Load the victim, apply ``corrupt(attacker)``, run, classify.

    ``corrupt`` receives a :class:`MemoryCorruption` over the loaded (not
    yet started) process — modelling a vulnerability exploited before the
    sensitive operation executes.
    """
    from repro.soc.system import build_system
    system = build_system(profile)
    kernel = Kernel(system)
    process = kernel.create_process(image, name="victim")
    attacker = MemoryCorruption(kernel, process, image)
    corrupt(attacker)
    kernel.run(process, max_instructions=max_instructions)
    # Hijack detection: the gadget sets the 'pwned' marker if it ran.
    try:
        hijacked = bool(attacker.read_symbol("pwned"))
    except (AttackError, ReproError):
        hijacked = (process.exit_code == HIJACK_EXIT_CODE
                    and process.state.value == "exited")
    blocked = process.state.value == "killed"
    return AttackOutcome(
        status=process.status(), exit_code=process.exit_code,
        blocked=blocked, hijacked=hijacked,
        roload_violation=bool(kernel.security_log),
        security_events=list(kernel.security_log))
