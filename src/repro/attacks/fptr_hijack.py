"""Function-pointer hijacking attacks against the icall path (§IV-B).

The victim keeps a function pointer in the writable global ``fp_slot``.
Under the ICall defense that slot holds a *GFPT-slot pointer*; either
way, the attacker overwrites it:

* **direct code address** — point it at ``gadget``'s entry. Unprotected:
  instant hijack. ICall: the ``ld.ro`` dereferences the value, so it must
  point into the right keyed GFPT page — a code address fails the key
  check. Label CFI: blocked only if the ID at the target mismatches.
* **attacker data** — point it at writable attacker memory containing a
  code address. ICall: not read-only => blocked.
* **wrong-type GFPT slot** — point it at a genuine GFPT slot of a
  *different* function type. ICall: key mismatch => blocked. This is the
  policy strength: only matching-type, address-taken functions remain.
"""

from __future__ import annotations

from repro.attacks.primitives import MemoryCorruption
from repro.defenses.icall import gfpt_symbol


def point_at_gadget_code(attacker: MemoryCorruption) -> None:
    attacker.write_symbol("fp_slot", attacker.symbol("gadget"),
                          note="fp_slot -> gadget code address")


def point_at_attacker_data(attacker: MemoryCorruption) -> None:
    buf = attacker.symbol("attacker_buf")
    attacker.write(buf, attacker.symbol("gadget"),
                   note="attacker_buf[0] -> gadget")
    attacker.write_symbol("fp_slot", buf, note="fp_slot -> attacker_buf")


def point_at_wrong_type_slot(attacker: MemoryCorruption,
                             wrong_key: int) -> None:
    """Redirect to a genuine GFPT slot of a different function type."""
    attacker.write_symbol("fp_slot", attacker.symbol(gfpt_symbol(wrong_key)),
                          note=f"fp_slot -> GFPT key {wrong_key}")
