"""VTable hijacking attacks (§IV-A's motivating threat).

Three classic variants, each a ``corrupt(attacker)`` function for
:func:`repro.attacks.primitives.run_attack`:

* **injection** — build a fake vtable in attacker-controlled writable
  memory and point the object's vptr at it. VTint and VCall both stop
  this (the fake table is not read-only).
* **corruption** — overwrite the real vtable in place. Stopped by the
  hardware W^X mapping alone (vtables are read-only), defense or not.
* **cross-type reuse** — point the vptr at a *different class's* genuine
  vtable (a COOP building block). VTint cannot stop this (the other
  vtable is read-only too); VCall's per-class keys do — the security
  delta the paper claims over VTint.
"""

from __future__ import annotations

from repro.attacks.primitives import MemoryCorruption


def inject_fake_vtable(attacker: MemoryCorruption) -> None:
    """Fake vtable in writable memory; vptr redirected to it."""
    fake_table = attacker.symbol("attacker_buf")
    gadget = attacker.symbol("gadget")
    attacker.write(fake_table, gadget, note="fake vtable slot 0 -> gadget")
    attacker.write_symbol("obj", fake_table, note="vptr -> fake vtable")


def corrupt_vtable_in_place(attacker: MemoryCorruption) -> None:
    """Directly overwrite the genuine vtable (must be impossible)."""
    vtable = attacker.symbol("_ZTV_Benign")
    gadget = attacker.symbol("gadget")
    attacker.write(vtable, gadget, note="vtable[0] -> gadget")


def cross_type_vtable_reuse(attacker: MemoryCorruption) -> None:
    """Point obj's vptr at Other's genuine (read-only) vtable."""
    other_vtable = attacker.symbol("_ZTV_Other")
    attacker.write_symbol("obj", other_vtable,
                          note="vptr -> Other's vtable")
