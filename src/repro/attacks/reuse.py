"""Pointee-reuse: the residual attack surface ROLoad admits (§V-D).

"Like prior lightweight hardware-based solutions ... our ROLoad solution
could also suffer from pointee reuse attacks as pointees in read-only
pages with keys could be reused by adversaries. For example, a
sophisticated adversary can corrupt pointers to reuse existing data in
any read-only memory pages with matching keys ... However, the remaining
attack surface is minimal, as attackers can only feed values in the
specific allowlists to sensitive operations."

Under the ICall defense, every address-taken function of type T has a
slot in T's GFPT. Redirecting a T-typed function pointer to a *different
slot of the same GFPT* passes the check — the call still lands on a
legitimate, matching-type function. If ``gadget`` shares the victim's
function type, the attacker reaches it. These scenarios demonstrate (and
the tests pin down) exactly that boundary.
"""

from __future__ import annotations

from repro.attacks.primitives import MemoryCorruption
from repro.defenses.icall import TypeBasedCFI


def same_type_slot_reuse(attacker: MemoryCorruption,
                         defense: TypeBasedCFI,
                         target_function: str = "gadget") -> None:
    """Redirect fp_slot to ``target_function``'s own GFPT slot — a
    matching-type pointee the check must accept."""
    symbol, index = defense.slot_of[target_function]
    attacker.write_symbol(
        "fp_slot", attacker.symbol(symbol) + 8 * index,
        note=f"fp_slot -> {target_function}'s GFPT slot (same type)")


def same_class_vtable_reuse(attacker: MemoryCorruption,
                            other_class_vtable: str) -> None:
    """VCall analogue: with hierarchy-grouped keys, vptr may be swung to
    another vtable *in the same hierarchy group* and still pass."""
    attacker.write_symbol("obj", attacker.symbol(other_class_vtable),
                          note=f"vptr -> {other_class_vtable} (same key)")
