"""Fuzz execution: warm-snapshot pools + CoW forks + classification.

One execution = fork a session copy-on-write from the victim's warm
boot snapshot (the serve-pool trick: ``restore(snap, cow=True)`` shares
every untouched frame), run to each schedule trigger with the kernel's
instruction-precise ``stop_after``, apply the injection primitive in
place, run to completion under a recording journal and an arch-event
capture, then classify with the shared §V verdict taxonomy and hash the
coverage signature.

The pool is per-process: worker processes (forked by the campaign) each
lazily warm the victims they are handed and LRU-cache them by spec, so
a 10k-execution campaign pays the image build + baseline run once per
distinct victim shape per worker, and ~a CoW restore per execution.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro import config as _config
from repro.errors import ReplayError
from repro.eval_model import RunResult
from repro.fuzz.corpus import FRAC_SCALE, FuzzInput
from repro.fuzz.coverage import coarse_events, final_fingerprint, \
    signature
from repro.fuzz.minimizer import journal_divergence
from repro.fuzz.target import VictimSpec, build_image
from repro.replay.check import ObsCapture
from repro.replay.inject import apply_injection, classify_outcome
from repro.replay.journal import Journal
from repro.replay.snapshot import restore, snapshot

# Instructions retired before the warm snapshot is captured. Must stay
# below the first keyed load of the smallest victim so every
# inter-keyed-load interval remains injectable.
BOOT = 8


@dataclass
class Baseline:
    """The clean run of one victim shape, from its warm snapshot."""

    total_instructions: int
    exit_code: int
    events: "Tuple[tuple, ...]"
    journal_entries: "List[dict]"
    signature: str


@dataclass
class WarmVictim:
    image: object
    snapshot: object
    baseline: Baseline


@dataclass
class ExecutionOutcome:
    """Everything one execution produced."""

    input: FuzzInput
    result: RunResult       # verdict + coverage + divergence, typed
    signature: str
    journal: Journal
    replay_ok: bool         # False iff a replay-mode journal diverged
    checks_at: "Tuple[int, ...]"


class WarmVictimPool:
    """Spec-keyed warm snapshots with the baselines to judge against."""

    def __init__(self, profile: str = "processor+kernel",
                 max_instructions: int = 5_000_000, cache: int = 64):
        self.profile = profile
        self.max_instructions = max_instructions
        self.cache = max(1, cache)
        self._victims: "OrderedDict[tuple, WarmVictim]" = OrderedDict()

    def victim(self, spec: VictimSpec) -> WarmVictim:
        key = spec.normalized().key()
        hit = self._victims.get(key)
        if hit is not None:
            self._victims.move_to_end(key)
            return hit
        entry = self._warm(spec.normalized())
        self._victims[key] = entry
        if len(self._victims) > self.cache:
            self._victims.popitem(last=False)
        return entry

    def _warm(self, spec: VictimSpec) -> WarmVictim:
        from repro.kernel.kernel import Kernel
        from repro.soc.system import build_system
        image = build_image(spec)
        kernel = Kernel(build_system(self.profile))
        process = kernel.create_process(image, name="fuzz-victim")
        kernel.run(process, max_instructions=self.max_instructions,
                   stop_after=BOOT)
        if not process.alive:
            raise ReplayError(f"victim {spec} finished during boot")
        snap = snapshot(kernel)

        # Clean baseline, itself a CoW fork of the snapshot — so every
        # later execution is judged against a run that started from
        # exactly the state it starts from.
        kernel, process = restore(snap, cow=True)
        journal = Journal.recording()
        kernel.journal = journal
        seclog_before = kernel.security_log.total
        with ObsCapture() as window:
            kernel.run(process, max_instructions=self.max_instructions)
            events = coarse_events(window.raw_arch())
        if process.state.value != "exited":
            raise ReplayError(f"baseline victim {spec} did not exit "
                              f"cleanly: {process.status()}")
        fingerprint = final_fingerprint(kernel, process, seclog_before,
                                        baseline_exit=process.exit_code)
        baseline = Baseline(
            total_instructions=kernel.system.core.instret,
            exit_code=process.exit_code, events=events,
            journal_entries=journal.entries,
            signature=signature(events, (), fingerprint))
        return WarmVictim(image=image, snapshot=snap, baseline=baseline)

    # -- execution -----------------------------------------------------------

    def triggers(self, input: FuzzInput) -> "List[int]":
        """Absolute retired-instruction trigger for each schedule entry
        (schedule order is by frac; the baseline fixes the scale)."""
        total = self.victim(input.spec).baseline.total_instructions
        span = max(1, total - BOOT - 2)
        return [min(total - 1, BOOT + 1 + entry.frac * span // FRAC_SCALE)
                for entry in sorted(input.schedule,
                                    key=lambda e: e.frac)]

    def execute(self, input: FuzzInput, *,
                tier: "Optional[str]" = None,
                replay_journal: "Optional[Journal]" = None) \
            -> ExecutionOutcome:
        """One classified execution of ``input``.

        ``tier`` pins an interpreter tier (None = ambient config); the
        signature is tier-stable either way. ``replay_journal`` runs in
        journal-replay mode for reproducer verification.
        """
        input = input.normalized()
        victim = self.victim(input.spec)
        baseline = victim.baseline
        schedule = sorted(input.schedule, key=lambda e: e.frac)
        triggers = self.triggers(input)

        scope = _config.overrides(**_config.TIERS[tier]) if tier \
            else nullcontext()
        with scope:
            kernel, process = restore(victim.snapshot, cow=True)
            journal = replay_journal if replay_journal is not None \
                else Journal.recording()
            kernel.journal = journal
            seclog_before = kernel.security_log.total
            targets: "List[str]" = []
            checks_at: "List[int]" = []
            replay_ok = True
            with ObsCapture() as window:
                try:
                    for entry, trigger in zip(schedule, triggers):
                        gap = trigger - kernel.system.core.instret
                        if process.alive and gap > 0:
                            kernel.run(
                                process,
                                max_instructions=self.max_instructions,
                                stop_after=gap)
                        if not process.alive:
                            break
                        targets.append(apply_injection(
                            kernel, process, victim.image,
                            entry.kind, entry.variant))
                        checks_at.append(
                            kernel.system.mmu.stats.roload_checks)
                    if process.alive:
                        kernel.run(process,
                                   max_instructions=self.max_instructions)
                    journal.finish()
                except ReplayError:
                    if replay_journal is None:
                        raise
                    replay_ok = False
                events = coarse_events(window.raw_arch())
            verdict, detail = classify_outcome(
                kernel, process, victim.image, baseline.exit_code,
                seclog_before)
            fingerprint = final_fingerprint(
                kernel, process, seclog_before,
                baseline_exit=baseline.exit_code)
            final_instret = kernel.system.core.instret

        sig = signature(events, tuple(checks_at), fingerprint)
        divergence = journal_divergence(baseline.journal_entries,
                                        journal.entries,
                                        fallback=final_instret)
        result = RunResult(
            kind=input.kind,
            trigger=triggers[0] if triggers else 0,
            target="; ".join(targets) if targets else "none",
            verdict=verdict, detail=detail,
            exit_code=process.exit_code,
            signal=process.signal.number if process.signal else None,
            coverage=sig, divergence=divergence)
        return ExecutionOutcome(input=input, result=result,
                                signature=sig, journal=journal,
                                replay_ok=replay_ok,
                                checks_at=tuple(checks_at))


# -- multiprocessing face ----------------------------------------------------
# The campaign forks workers with a plain fork-context Pool (the
# eval/measure idiom); each worker keeps one module-global pool so warm
# victims survive across the many map calls of a campaign.

_WORKER_POOL: "Optional[WarmVictimPool]" = None


def _worker_execute(payload: dict) -> dict:
    global _WORKER_POOL
    if _WORKER_POOL is None:
        _WORKER_POOL = WarmVictimPool(
            profile=payload.get("profile", "processor+kernel"))
    input = FuzzInput.from_dict(payload["input"])
    try:
        outcome = _WORKER_POOL.execute(input, tier=payload.get("tier"))
    except ReplayError as exc:
        return {"input": payload["input"], "error": str(exc)}
    return {"input": payload["input"],
            "result": outcome.result.to_dict(),
            "signature": outcome.signature}
