"""Fuzz inputs and the coverage-keyed corpus.

A fuzz input is a :class:`~repro.fuzz.target.VictimSpec` (what program
runs) plus an injection *schedule* (when and how the machine is
perturbed mid-run). Schedule triggers are stored as fractions of the
victim's baseline run length (``frac`` / :data:`FRAC_SCALE`) rather
than absolute instruction counts, so the same schedule transplants
meaningfully onto a mutated victim of a different length.

The corpus keeps one entry per novel coverage signature, with an
AFL-style energy that decays as a seed is re-picked — fresh behavior
gets mutation budget, exhausted seeds fade without being forgotten.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ReplayError
from repro.fuzz.target import VictimSpec
from repro.replay.inject import KINDS

# Injection classes the fuzzer schedules: the PR 5 trio plus the
# fuzz-only wild-ptr (aims an allowlist pointer at unmapped memory, so
# the non-ROLoad crash path is exercised at scale too).
FUZZ_KINDS = KINDS + ("wild-ptr",)

# Trigger-position resolution: frac in [0, FRAC_SCALE) maps linearly
# onto the baseline run between boot and exit.
FRAC_SCALE = 4096

# Per-kind variant space (page x flip / pointer choices); mutation
# draws variants below this and the primitives fold them modulo their
# actual option count.
VARIANT_SPAN = 6


@dataclass(frozen=True)
class ScheduleEntry:
    """One perturbation: inject ``kind``/``variant`` when the run
    reaches ``frac/FRAC_SCALE`` of its baseline length."""

    kind: str
    frac: int
    variant: int = 0

    def normalized(self) -> "ScheduleEntry":
        if self.kind not in FUZZ_KINDS:
            raise ReplayError(f"unknown injection kind {self.kind!r}; "
                              f"choose from {', '.join(FUZZ_KINDS)}")
        return ScheduleEntry(kind=self.kind,
                             frac=min(max(self.frac, 0), FRAC_SCALE - 1),
                             variant=self.variant % VARIANT_SPAN)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "frac": self.frac,
                "variant": self.variant}

    @classmethod
    def from_dict(cls, data: dict) -> "ScheduleEntry":
        return cls(kind=data["kind"], frac=data["frac"],
                   variant=data.get("variant", 0)).normalized()


@dataclass(frozen=True)
class FuzzInput:
    """One complete campaign input: victim shape + injection schedule.

    An empty schedule is legal (a pure baseline run — it contributes
    the victim's clean signature to the coverage map).
    """

    spec: VictimSpec
    schedule: "Tuple[ScheduleEntry, ...]" = ()

    def normalized(self) -> "FuzzInput":
        return FuzzInput(spec=self.spec.normalized(),
                         schedule=tuple(e.normalized()
                                        for e in self.schedule))

    def key(self) -> "Tuple":
        return (self.spec.key(),
                tuple((e.kind, e.frac, e.variant) for e in self.schedule))

    @property
    def kind(self) -> str:
        """The composite class label used in detection tables."""
        if not self.schedule:
            return "baseline"
        return "+".join(e.kind for e in self.schedule)

    def to_dict(self) -> dict:
        return {"spec": self.spec.to_dict(),
                "schedule": [e.to_dict() for e in self.schedule]}

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzInput":
        return cls(spec=VictimSpec.from_dict(data["spec"]),
                   schedule=tuple(ScheduleEntry.from_dict(e)
                                  for e in data.get("schedule", ())))


@dataclass
class CorpusEntry:
    input: FuzzInput
    signature: str
    energy: float = 1.0
    picks: int = 0


class Corpus:
    """Novelty-keyed seed store with energy-weighted selection."""

    DECAY = 0.90          # energy multiplier per pick
    FLOOR = 0.05          # entries never fully starve

    def __init__(self, cap: int = 256):
        self.cap = max(1, cap)
        self.entries: "List[CorpusEntry]" = []
        self._sigs = set()

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def add(self, input: FuzzInput, signature: str) -> bool:
        """Admit ``input`` if its signature is novel; evict the lowest-
        energy entry once over cap. Returns whether it was admitted."""
        if signature in self._sigs:
            return False
        self._sigs.add(signature)
        self.entries.append(CorpusEntry(input=input, signature=signature))
        if len(self.entries) > self.cap:
            victim = min(range(len(self.entries)),
                         key=lambda i: (self.entries[i].energy, i))
            dropped = self.entries.pop(victim)
            self._sigs.discard(dropped.signature)
        return True

    def pick(self, rng) -> "Optional[CorpusEntry]":
        """Energy-weighted draw; picking decays the entry's energy."""
        if not self.entries:
            return None
        total = sum(max(e.energy, self.FLOOR) for e in self.entries)
        point = rng.random() * total
        chosen = self.entries[-1]
        for entry in self.entries:
            point -= max(entry.energy, self.FLOOR)
            if point <= 0:
                chosen = entry
                break
        chosen.picks += 1
        chosen.energy = max(chosen.energy * self.DECAY, self.FLOOR)
        return chosen
