"""Mutation engine: small deterministic perturbations of fuzz inputs.

Each :class:`Mutator` maps (rng, input) -> input. The campaign PRNG is
the only entropy source, so a campaign is reproducible from its seed.
Mutators perturb both halves of an input — the victim shape (workload
parameters) and the injection schedule — mirroring the two axes the
ISSUE names: workload-generator parameters and injection schedules.
"""

from __future__ import annotations

from repro.fuzz.corpus import (FRAC_SCALE, FUZZ_KINDS, FuzzInput,
                               ScheduleEntry, VARIANT_SPAN)
from repro.fuzz.target import ARITH_RANGE, CALLS_RANGE, REPS_RANGE, \
    VictimSpec


def random_entry(rng) -> ScheduleEntry:
    return ScheduleEntry(kind=rng.choice(FUZZ_KINDS),
                         frac=rng.randrange(FRAC_SCALE),
                         variant=rng.randrange(VARIANT_SPAN)).normalized()


def random_input(rng, schedule_max: int = 3) -> FuzzInput:
    """A uniformly random input — the random scheduler's whole policy,
    and the guided scheduler's exploration arm."""
    spec = VictimSpec(
        reps=rng.randint(*REPS_RANGE),
        loop=bool(rng.getrandbits(1)),
        vcalls=rng.randint(*CALLS_RANGE),
        icalls=rng.randint(*CALLS_RANGE),
        arith=rng.randint(*ARITH_RANGE)).normalized()
    entries = tuple(random_entry(rng)
                    for _ in range(rng.randint(1, max(1, schedule_max))))
    return FuzzInput(spec=spec, schedule=entries).normalized()


class Mutator:
    """One mutation strategy; subclasses override :meth:`mutate`."""

    name = "identity"

    def mutate(self, rng, input: FuzzInput) -> FuzzInput:
        raise NotImplementedError


class SpecMutator(Mutator):
    """Nudge one victim-shape parameter."""

    name = "spec"

    def mutate(self, rng, input: FuzzInput) -> FuzzInput:
        field = rng.choice(("reps", "loop", "vcalls", "icalls", "arith"))
        spec = input.spec
        if field == "loop":
            spec = spec.replace(loop=not spec.loop)
        elif field == "reps":
            spec = spec.replace(reps=spec.reps + rng.choice(
                (-4, -2, -1, 1, 2, 4)))
        else:
            spec = spec.replace(**{field: getattr(spec, field)
                                   + rng.choice((-1, 1))})
        return FuzzInput(spec=spec, schedule=input.schedule).normalized()


class TriggerMutator(Mutator):
    """Slide one schedule entry's trigger position — the fine-grained
    search for untouched inter-keyed-load intervals."""

    name = "trigger"

    def mutate(self, rng, input: FuzzInput) -> FuzzInput:
        if not input.schedule:
            return FuzzInput(input.spec, (random_entry(rng),))
        idx = rng.randrange(len(input.schedule))
        entry = input.schedule[idx]
        delta = rng.choice((-512, -64, -8, -1, 1, 8, 64, 512))
        entry = ScheduleEntry(kind=entry.kind, frac=entry.frac + delta,
                              variant=entry.variant)
        schedule = list(input.schedule)
        schedule[idx] = entry
        return FuzzInput(input.spec, tuple(schedule)).normalized()


class ScheduleMutator(Mutator):
    """Grow, shrink, or re-class the injection schedule."""

    name = "schedule"

    def __init__(self, schedule_max: int = 3):
        self.schedule_max = max(1, schedule_max)

    def mutate(self, rng, input: FuzzInput) -> FuzzInput:
        schedule = list(input.schedule)
        ops = ["add", "rekind", "revariant"]
        if len(schedule) > 1:
            ops.append("drop")
        op = rng.choice(ops)
        if op == "add" and len(schedule) < self.schedule_max:
            schedule.insert(rng.randint(0, len(schedule)),
                            random_entry(rng))
        elif op == "drop" and len(schedule) > 1:
            schedule.pop(rng.randrange(len(schedule)))
        elif schedule:
            idx = rng.randrange(len(schedule))
            entry = schedule[idx]
            if op == "rekind":
                entry = ScheduleEntry(kind=rng.choice(FUZZ_KINDS),
                                      frac=entry.frac,
                                      variant=entry.variant)
            else:
                entry = ScheduleEntry(kind=entry.kind, frac=entry.frac,
                                      variant=rng.randrange(VARIANT_SPAN))
            schedule[idx] = entry
        else:
            schedule.append(random_entry(rng))
        return FuzzInput(input.spec, tuple(schedule)).normalized()


class HavocMutator(Mutator):
    """Stacked random mutations — the escape hatch out of local optima."""

    name = "havoc"

    def __init__(self, schedule_max: int = 3):
        self._stack = (SpecMutator(), TriggerMutator(),
                       ScheduleMutator(schedule_max))

    def mutate(self, rng, input: FuzzInput) -> FuzzInput:
        for _ in range(rng.randint(2, 4)):
            input = rng.choice(self._stack).mutate(rng, input)
        return input


def default_mutators(schedule_max: int = 3) -> "tuple[Mutator, ...]":
    return (SpecMutator(), TriggerMutator(), TriggerMutator(),
            ScheduleMutator(schedule_max), HavocMutator(schedule_max))
