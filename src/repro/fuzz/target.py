"""Parameterized fuzz victims: the mutable half of a fuzz input.

The PR 5 injection victim was one fixed shape (8 unrolled vcall+icall
rounds). The fuzzer explores a family of shapes instead: every
:class:`VictimSpec` describes a hardened program over the same attack
surface — a keyed vtable (``obj``), a keyed GFPT slot (``fp_slot``), a
hijack marker (``pwned``) and an attacker-controlled decoy buffer — but
varies how many rounds run, how many keyed loads each round performs,
how much plain arithmetic pads the rounds apart, and whether the rounds
are unrolled straight-line code or a real counted loop (loops are what
drive the tier-2/3/4 compilers, so loop specs exercise keyed loads
*inside* compiled regions).

Specs are value objects: bounded, normalizable, hashable — the corpus
and the warm-snapshot pools key on them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from repro.replay.inject import BENIGN_ICALL, BENIGN_VCALL, GADGET_RETURN

# Inclusive bounds per spec field; mutation clamps into these.
REPS_RANGE = (1, 40)
CALLS_RANGE = (0, 3)      # vcalls / icalls per round
ARITH_RANGE = (0, 48)     # filler add-immediates per round

# Unrolled victims replicate the round body, and every temp lands in
# the frame, whose 12-bit stack offsets top out at 2 KiB. Loops reuse
# one round body, so only they get the full REPS_RANGE; unrolled reps
# are shrunk until the estimated frame-slot count fits.
UNROLLED_SLOT_BUDGET = 100


def _round_slots(vcalls: int, icalls: int, arith: int) -> int:
    """Frame temps one round body allocates (2 per vcall, 3 per icall
    counting the loaded pointer, 1 per add-immediate, plus slack)."""
    return 2 * vcalls + 3 * icalls + arith + 2


@dataclass(frozen=True)
class VictimSpec:
    """Shape of one hardened fuzz victim."""

    reps: int = 8         # rounds (loop iterations or unrolled copies)
    loop: bool = False    # counted loop instead of straight-line unroll
    vcalls: int = 1       # keyed vtable calls per round
    icalls: int = 1       # keyed GFPT calls per round
    arith: int = 0        # plain add-immediates per round

    def normalized(self) -> "VictimSpec":
        """Clamp every field into bounds; keep at least one keyed load
        per round (a victim with no keyed loads has no attack surface)."""
        reps = min(max(self.reps, REPS_RANGE[0]), REPS_RANGE[1])
        vcalls = min(max(self.vcalls, CALLS_RANGE[0]), CALLS_RANGE[1])
        icalls = min(max(self.icalls, CALLS_RANGE[0]), CALLS_RANGE[1])
        arith = min(max(self.arith, ARITH_RANGE[0]), ARITH_RANGE[1])
        if vcalls + icalls == 0:
            vcalls = 1
        if not self.loop:
            budget = UNROLLED_SLOT_BUDGET \
                // _round_slots(vcalls, icalls, arith)
            reps = min(reps, max(1, budget))
        return VictimSpec(reps=reps, loop=bool(self.loop),
                          vcalls=vcalls, icalls=icalls, arith=arith)

    def key(self) -> "Tuple":
        return (self.reps, self.loop, self.vcalls, self.icalls,
                self.arith)

    def to_dict(self) -> dict:
        return {"reps": self.reps, "loop": self.loop,
                "vcalls": self.vcalls, "icalls": self.icalls,
                "arith": self.arith}

    @classmethod
    def from_dict(cls, data: dict) -> "VictimSpec":
        return cls(reps=data.get("reps", 8),
                   loop=bool(data.get("loop", False)),
                   vcalls=data.get("vcalls", 1),
                   icalls=data.get("icalls", 1),
                   arith=data.get("arith", 0)).normalized()

    def replace(self, **changes) -> "VictimSpec":
        return replace(self, **changes).normalized()


def build_victim(spec: VictimSpec):
    """The victim module for ``spec`` (same surface as the PR 5 victim:
    keyed vtable + keyed GFPT + pwned marker + attacker_buf decoy)."""
    from repro.compiler import (GlobalVar, I64, IRBuilder, Module, Mv,
                                VTable, func_type, static_object)
    spec = spec.normalized()
    sig = func_type(ret=I64)
    m = Module("fuzz-victim")

    benign = m.function("Benign_get", func_type=sig, address_taken=True)
    b = IRBuilder(benign)
    b.ret(b.li(BENIGN_VCALL))

    callee = m.function("benign_callee", func_type=sig, address_taken=True)
    b = IRBuilder(callee)
    b.ret(b.li(BENIGN_ICALL))

    gadget = m.function("gadget", func_type=sig, address_taken=True)
    b = IRBuilder(gadget)
    marker = b.la("pwned")
    b.store(b.li(1), marker)
    b.ret(b.li(GADGET_RETURN))

    m.vtable(VTable("Benign", entries=["Benign_get"]))
    static_object(m, "obj", "Benign")
    m.global_var(GlobalVar("pwned", section=".data", init=[0]))
    m.global_var(GlobalVar("attacker_buf", section=".data", size=64))
    m.global_var(GlobalVar("fp_slot", section=".data",
                           init=[("quad", "benign_callee")]))

    main = m.function("main")
    b = IRBuilder(main)

    def round_body(acc):
        for _ in range(spec.vcalls):
            acc = b.add(acc, b.vcall(obj, 0, "Benign", func_type=sig))
        for _ in range(spec.icalls):
            fptr = b.load_fptr(slot, sig)
            acc = b.add(acc, b.icall(fptr, func_type=sig))
        for k in range(spec.arith):
            acc = b.addi(acc, (k % 5) + 1)
        return acc

    obj = b.la("obj")
    slot = b.la("fp_slot")
    if spec.loop:
        # The generator's phi-less loop idiom: loop-carried values live
        # in fixed temps overwritten with explicit Mv at the bottom.
        acc0 = b.li(0)
        zero = b.li(0)
        counter = b.li(spec.reps)
        loop = b.fresh_label("loop")
        done = b.fresh_label("done")
        b.label(loop)
        b.cbr("eq", counter, zero, done)
        acc = round_body(acc0)
        main.ops.append(Mv(acc0, acc))
        step = b.addi(counter, -1)
        main.ops.append(Mv(counter, step))
        b.br(loop)
        b.label(done)
        b.ret(acc0)
    else:
        acc = b.li(0)
        for _ in range(spec.reps):
            acc = round_body(acc)
        b.ret(acc)
    return m


def build_image(spec: VictimSpec):
    """The hardened executable (vcall protection + GFPT CFI), matching
    the PR 5 hardening so verdicts are comparable across harnesses."""
    from repro.compiler import compile_module
    from repro.defenses import TypeBasedCFI, VCallProtection
    return compile_module(build_victim(spec),
                          hardening=[VCallProtection(), TypeBasedCFI()])
