"""Input scheduling policies: guided (corpus + mutation) vs random.

Both schedulers draw from the same campaign PRNG and expose the same
two-call surface — :meth:`propose` yields the next input,
:meth:`feedback` reports its coverage signature and whether it was
novel — so a guided-vs-random comparison at equal budget differs in
policy only.

The guided scheduler is a two-armed novelty bandit. Its arms are
*explore* (draw a fresh uniform-random input — exactly what the control
scheduler does every time) and *exploit* (mutate an energy-weighted
corpus seed). Each arm's recent novelty rate is tracked over a sliding
window and proposals are allocated proportionally: early in a campaign
uniform sampling finds plenty of new behavior and gets most of the
budget, but its marginal novelty decays as the common behavior classes
saturate, while mutation keeps working the corpus frontier — so the mix
shifts toward exploitation exactly when exploitation starts paying.
This is why guided coverage dominates random at equal budget: guided
can always match the control arm (explore *is* the control policy) and
reinvests the budget uniform sampling would waste on collisions.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.fuzz.corpus import Corpus, FuzzInput
from repro.fuzz.mutators import default_mutators, random_input


class RandomScheduler:
    """Uniform sampling of the input space — the control arm."""

    name = "random"

    def __init__(self, rng, schedule_max: int = 3):
        self.rng = rng
        self.schedule_max = schedule_max

    def propose(self) -> FuzzInput:
        return random_input(self.rng, self.schedule_max)

    def feedback(self, input: FuzzInput, signature: "Optional[str]",
                 novel: bool) -> None:
        pass


class GuidedScheduler:
    """Coverage-guided scheduling: an adaptive explore/exploit novelty
    bandit over an energy corpus.

    ``explore`` pins the explore probability (the pre-adaptive ε-greedy
    behavior, useful in tests); ``None`` adapts it to the measured
    novelty rates.
    """

    name = "guided"
    WINDOW = 128      # per-arm sliding window of novelty outcomes
    MIN_MIX = 0.05    # neither arm ever fully starves

    def __init__(self, rng, schedule_max: int = 3,
                 corpus: "Optional[Corpus]" = None,
                 explore: "Optional[float]" = None):
        self.rng = rng
        self.schedule_max = schedule_max
        self.corpus = corpus if corpus is not None else Corpus()
        self.explore = explore
        self._mutators = default_mutators(schedule_max)
        self._hits = {"explore": deque(maxlen=self.WINDOW),
                      "exploit": deque(maxlen=self.WINDOW)}
        # Proposals and their feedback arrive in the same order (the
        # campaign zips ordered batches), so the arm each proposal was
        # drawn from is a FIFO.
        self._pending: "deque[str]" = deque()

    def _rate(self, arm: str) -> float:
        """Laplace-smoothed recent novelty rate of one arm."""
        window = self._hits[arm]
        return (sum(window) + 1.0) / (len(window) + 2.0)

    def explore_probability(self) -> float:
        if not len(self.corpus):
            return 1.0
        if self.explore is not None:
            return self.explore
        explore, exploit = self._rate("explore"), self._rate("exploit")
        share = explore / (explore + exploit)
        return min(max(share, self.MIN_MIX), 1.0 - self.MIN_MIX)

    def propose(self) -> FuzzInput:
        if self.rng.random() < self.explore_probability():
            self._pending.append("explore")
            return random_input(self.rng, self.schedule_max)
        self._pending.append("exploit")
        seed = self.corpus.pick(self.rng)
        mutator = self.rng.choice(self._mutators)
        return mutator.mutate(self.rng, seed.input)

    def feedback(self, input: FuzzInput, signature: "Optional[str]",
                 novel: bool) -> None:
        arm = self._pending.popleft() if self._pending else "explore"
        self._hits[arm].append(1 if novel else 0)
        if novel and signature is not None:
            self.corpus.add(input, signature)
