"""Divergence points, crash dedup, and journal-verified minimization.

Every fuzz execution records a replay journal (syscall results and
signal-delivery points, each stamped with its retired-instruction
count). Comparing a run's journal against the victim's clean baseline
journal yields the **divergence point**: the retired-instruction count
of the first boundary event where the perturbed run left the baseline
behavior. Two crashes with the same (verdict, schedule classes,
divergence point) are the same bug — that triple is the dedup key.

Minimization shrinks a reproducer while preserving its dedup key, and
the survivor is **replay-verified**: re-executed under its own recorded
journal in replay mode, which fails fast on the first nondeterministic
boundary event. A reproducer that survives that is deterministic by
construction — there are no flaky entries in the campaign report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ReplayError
from repro.eval_model import RunResult
from repro.fuzz.corpus import FuzzInput


def journal_divergence(baseline: "List[dict]", run: "List[dict]",
                       fallback: "Optional[int]" = None) \
        -> "Optional[int]":
    """Retired-instruction count of the first journal entry where
    ``run`` departs from ``baseline`` (None = no divergence)."""

    def instret(entry: "Optional[dict]") -> "Optional[int]":
        if entry is None:
            return fallback
        return entry.get("instret", fallback)

    for base_entry, run_entry in zip(baseline, run):
        if base_entry != run_entry:
            return instret(run_entry)
    if len(run) > len(baseline):
        return instret(run[len(baseline)])
    if len(run) < len(baseline):
        return instret(baseline[len(run)])
    return None


def dedup_key(input: FuzzInput, result: RunResult) -> "Tuple":
    """Two findings with the same key are the same underlying bug."""
    return (result.verdict.value,
            tuple(sorted({e.kind for e in input.schedule})),
            result.divergence)


@dataclass
class Finding:
    """One deduplicated crash/escape group, minimized and verified."""

    verdict: str
    kinds: "Tuple[str, ...]"
    divergence: "Optional[int]"
    count: int                    # raw executions collapsed into this
    input: FuzzInput              # minimized reproducer
    result: RunResult             # its (re-executed) classification
    verified: bool                # survived journal replay-verification
    shrunk_from: int              # schedule length before minimization

    def to_dict(self) -> dict:
        return {"verdict": self.verdict, "kinds": list(self.kinds),
                "divergence": self.divergence, "count": self.count,
                "verified": self.verified,
                "shrunk_from": self.shrunk_from,
                "input": self.input.to_dict(),
                "result": self.result.to_dict()}


def _candidates(input: FuzzInput) -> "List[FuzzInput]":
    """Shrinking steps, most aggressive first: drop schedule entries,
    then simplify the victim shape."""
    out = []
    if len(input.schedule) > 1:
        for idx in range(len(input.schedule)):
            schedule = input.schedule[:idx] + input.schedule[idx + 1:]
            out.append(FuzzInput(input.spec, schedule))
    spec = input.spec
    if spec.loop:
        out.append(FuzzInput(spec.replace(loop=False), input.schedule))
    if spec.arith > 0:
        out.append(FuzzInput(spec.replace(arith=0), input.schedule))
    if spec.reps > 1:
        out.append(FuzzInput(spec.replace(reps=max(1, spec.reps // 2)),
                             input.schedule))
        out.append(FuzzInput(spec.replace(reps=spec.reps - 1),
                             input.schedule))
    if spec.vcalls > 1:
        out.append(FuzzInput(spec.replace(vcalls=1), input.schedule))
    if spec.icalls > 1:
        out.append(FuzzInput(spec.replace(icalls=1), input.schedule))
    return [c.normalized() for c in out]


def minimize(executor, input: FuzzInput, reference: RunResult,
             max_steps: int = 64) -> "Tuple[FuzzInput, RunResult]":
    """Greedy shrink of ``input`` preserving its dedup key.

    ``executor`` is any object with ``execute(input) -> ExecutionOutcome``
    (a :class:`repro.fuzz.executor.WarmVictimPool`). Each accepted step
    restarts the candidate walk from the smaller input.
    """
    key = dedup_key(input, reference)
    best, best_result = input, reference
    steps = 0
    progress = True
    while progress and steps < max_steps:
        progress = False
        for candidate in _candidates(best):
            steps += 1
            if steps > max_steps:
                break
            try:
                outcome = executor.execute(candidate)
            except ReplayError:
                continue
            if dedup_key(candidate, outcome.result) == key:
                best, best_result = candidate, outcome.result
                progress = True
                break
    return best, best_result


def replay_verify(executor, input: FuzzInput) -> "Tuple[bool, RunResult]":
    """Record one execution of ``input``, then re-execute it under the
    recorded journal in replay mode. True iff the replay consumed the
    journal exactly — the reproducer is deterministic."""
    first = executor.execute(input)
    try:
        second = executor.execute(
            input, replay_journal=first.journal.replay())
    except ReplayError:
        return False, first.result
    ok = (second.replay_ok
          and second.result.verdict == first.result.verdict
          and second.signature == first.signature)
    return ok, first.result
