"""Coverage-guided fuzzing + fault-injection campaigns (DESIGN.md §16).

Scales the PR 5 injection harness (60 injections) by three orders of
magnitude: mutated victim shapes x mutated injection schedules,
executed as copy-on-write forks of warm snapshots across worker
processes, guided by tier-stable coverage signatures from the obs
layer, with crashes/escapes deduplicated by replay-verified divergence
point and minimized through the record/replay journal.

Public surface (also re-exported from :mod:`repro`):

* :class:`Campaign` / :func:`run_comparison` — the drivers
* :class:`Corpus`, :class:`FuzzInput`, :class:`ScheduleEntry`,
  :class:`VictimSpec` — the input model
* :class:`Mutator` and friends — the mutation engine
* :class:`WarmVictimPool` — one-process execution (tests, triage)
* :class:`CoverageMap` / :func:`signature` — the feedback
"""

from repro.fuzz.campaign import (Campaign, CampaignReportV1,
                                 SCHEMA_VERSION, comparison_from_records,
                                 comparison_record, run_comparison)
from repro.fuzz.corpus import (Corpus, FRAC_SCALE, FUZZ_KINDS, FuzzInput,
                               ScheduleEntry)
from repro.fuzz.coverage import CoverageMap, final_fingerprint, signature
from repro.fuzz.executor import (BOOT, ExecutionOutcome, WarmVictimPool)
from repro.fuzz.minimizer import (Finding, dedup_key, journal_divergence,
                                  minimize, replay_verify)
from repro.fuzz.mutators import (HavocMutator, Mutator, ScheduleMutator,
                                 SpecMutator, TriggerMutator,
                                 default_mutators, random_input)
from repro.fuzz.scheduler import GuidedScheduler, RandomScheduler
from repro.fuzz.target import VictimSpec, build_image, build_victim

__all__ = [
    "BOOT", "FRAC_SCALE", "FUZZ_KINDS", "SCHEMA_VERSION",
    "Campaign", "CampaignReportV1", "run_comparison",
    "comparison_record", "comparison_from_records",
    "Corpus", "FuzzInput", "ScheduleEntry", "VictimSpec",
    "build_victim", "build_image",
    "Mutator", "SpecMutator", "TriggerMutator", "ScheduleMutator",
    "HavocMutator", "default_mutators", "random_input",
    "GuidedScheduler", "RandomScheduler",
    "WarmVictimPool", "ExecutionOutcome",
    "CoverageMap", "signature", "final_fingerprint",
    "Finding", "dedup_key", "journal_divergence", "minimize",
    "replay_verify",
]
