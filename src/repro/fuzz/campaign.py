"""Campaign driver: batched fan-out, coverage curve, triage, record.

A :class:`Campaign` runs a fixed execution budget under one scheduling
policy. Inputs are proposed in batches, executed across ``workers``
forked processes (each holding its own warm-victim pool), and fed back
into the scheduler with their coverage novelty. After the budget is
spent, every non-detected, non-benign run (crashes and escapes) is
deduplicated by replay-verified divergence point, minimized through the
journal, and reported as a :class:`~repro.fuzz.minimizer.Finding`;
detected runs are grouped by the same key (no minimization — they are
the expected outcome, the groups just show behavioral diversity).

:func:`run_comparison` runs guided and random arms at equal budget from
the same seed and reports both — the coverage-growth claim in
``BENCH_campaign.json`` comes from here.
"""

from __future__ import annotations

import multiprocessing
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import config as _config
from repro.errors import ReplayError
from repro.eval_model import CampaignResult, RunResult, Verdict
from repro.fuzz.corpus import FuzzInput
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.executor import WarmVictimPool, _worker_execute
from repro.fuzz.minimizer import (Finding, dedup_key, minimize,
                                  replay_verify)
from repro.fuzz.scheduler import GuidedScheduler, RandomScheduler
from repro.obs import OBS as _OBS

SCHEMA_VERSION = 1


@dataclass
class CampaignReportV1:
    """Everything a campaign produced, ready for BENCH_campaign.json."""

    mode: str
    seed: int
    executions: int
    workers: int
    schedule_max: int
    result: CampaignResult
    unique_signatures: int
    coverage_curve: "List[Tuple[int, int]]"
    corpus_size: int
    findings: "List[Finding]" = field(default_factory=list)
    detected_groups: "Dict[tuple, int]" = field(default_factory=dict)
    errors: int = 0

    @property
    def unexplained_escapes(self) -> int:
        """Escape findings that failed journal replay-verification —
        the only escapes the campaign cannot account for."""
        return sum(1 for f in self.findings
                   if f.verdict == "escaped" and not f.verified)

    @property
    def ok(self) -> bool:
        return (self.result.injections > 0
                and not self.result.escapes
                and self.unexplained_escapes == 0)

    def to_record(self) -> dict:
        """The schema-v1 campaign record (``roload-stats validate``)."""
        table = self.result.table
        return {
            "schema": SCHEMA_VERSION,
            "tool": "roload-fuzz",
            "mode": self.mode,
            "seed": self.seed,
            "executions": self.executions,
            "workers": self.workers,
            "schedule_max": self.schedule_max,
            "tier": _config.current().tier,
            "coverage": {
                "unique_signatures": self.unique_signatures,
                "corpus_size": self.corpus_size,
                "curve": [list(point) for point in self.coverage_curve],
            },
            "detection": {
                "injections": self.result.injections,
                "rate": table.rate(),
                "rates": table.rates(),
                "table": table.to_dict(),
                "baseline_exit": self.result.baseline_exit,
                "groups": len(self.detected_groups),
            },
            "crashes": {
                "total": len(self.result.crashes),
                "unique": sum(1 for f in self.findings
                              if f.verdict == "crashed"),
            },
            "escapes": {
                "total": len(self.result.escapes),
                "unique": sum(1 for f in self.findings
                              if f.verdict == "escaped"),
                "unexplained": self.unexplained_escapes,
            },
            "findings": [f.to_dict() for f in self.findings],
            "errors": self.errors,
            "ok": self.ok,
        }


class Campaign:
    """One fuzz/fault campaign over a fixed execution budget."""

    def __init__(self, *, executions: "Optional[int]" = None,
                 workers: "Optional[int]" = None, mode: str = "guided",
                 seed: "Optional[int]" = None,
                 schedule_max: "Optional[int]" = None,
                 corpus_cap: "Optional[int]" = None,
                 tier: "Optional[str]" = None,
                 profile: str = "processor+kernel",
                 curve_points: int = 200, log=None):
        cfg = _config.current()
        if mode not in ("guided", "random"):
            raise ReplayError(f"unknown campaign mode {mode!r}; choose "
                              f"guided or random")
        self.executions = executions if executions is not None \
            else cfg.fuzz_executions
        self.workers = cfg.resolve_jobs(workers)
        self.mode = mode
        self.seed = seed if seed is not None else cfg.fuzz_seed
        self.schedule_max = schedule_max if schedule_max is not None \
            else cfg.fuzz_schedule
        self.corpus_cap = corpus_cap if corpus_cap is not None \
            else cfg.fuzz_corpus
        self.tier = tier
        self.profile = profile
        self.curve_points = max(1, curve_points)
        self.log = log

    # -- the main loop -------------------------------------------------------

    def run(self) -> CampaignReportV1:
        rng = random.Random(self.seed)
        if self.mode == "guided":
            from repro.fuzz.corpus import Corpus
            scheduler = GuidedScheduler(rng, self.schedule_max,
                                        corpus=Corpus(self.corpus_cap))
        else:
            scheduler = RandomScheduler(rng, self.schedule_max)
        coverage = CoverageMap()
        result = CampaignResult(baseline_exit=None, total_instructions=0)
        executed: "List[Tuple[FuzzInput, RunResult]]" = []
        curve: "List[Tuple[int, int]]" = []
        errors = 0
        batch = max(8, self.workers * 8)
        stride = max(1, self.executions // self.curve_points)
        next_mark = stride

        pool = None
        local = None
        if self.workers > 1:
            method = "fork" \
                if "fork" in multiprocessing.get_all_start_methods() \
                else "spawn"
            ctx = multiprocessing.get_context(method)
            pool = ctx.Pool(processes=self.workers)
        else:
            local = WarmVictimPool(profile=self.profile)
        try:
            done = 0
            while done < self.executions:
                count = min(batch, self.executions - done)
                inputs = [scheduler.propose() for _ in range(count)]
                payloads = [{"input": inp.to_dict(), "tier": self.tier,
                             "profile": self.profile} for inp in inputs]
                if pool is not None:
                    outs = pool.map(_worker_execute, payloads)
                else:
                    outs = [self._execute_local(local, p)
                            for p in payloads]
                for inp, out in zip(inputs, outs):
                    done += 1
                    if "error" in out:
                        errors += 1
                        scheduler.feedback(inp, None, False)
                        continue
                    run = RunResult.from_dict(out["result"])
                    novel = coverage.add(out["signature"])
                    scheduler.feedback(inp, out["signature"], novel)
                    result.records.append(run)
                    executed.append((inp, run))
                    if done >= next_mark:
                        curve.append((done, len(coverage)))
                        next_mark += stride
                if self.log is not None:
                    self.log(f"[{self.mode}] {done}/{self.executions} "
                             f"executions, {len(coverage)} unique "
                             f"signatures")
        finally:
            if pool is not None:
                pool.close()
                pool.join()
        if not curve or curve[-1][0] != done:
            curve.append((done, len(coverage)))

        findings, detected_groups = self._triage(executed)
        corpus_size = len(scheduler.corpus) \
            if isinstance(scheduler, GuidedScheduler) else 0
        report = CampaignReportV1(
            mode=self.mode, seed=self.seed, executions=done,
            workers=self.workers, schedule_max=self.schedule_max,
            result=result, unique_signatures=len(coverage),
            coverage_curve=curve, corpus_size=corpus_size,
            findings=findings, detected_groups=detected_groups,
            errors=errors)
        if _OBS.enabled and _OBS.audit is not None:
            _OBS.audit.append("fuzz.campaign", mode=self.mode,
                              seed=self.seed, executions=done,
                              unique_signatures=len(coverage),
                              escapes=len(result.escapes),
                              unexplained=report.unexplained_escapes,
                              ok=report.ok)
        return report

    @staticmethod
    def _execute_local(local: WarmVictimPool, payload: dict) -> dict:
        input = FuzzInput.from_dict(payload["input"])
        try:
            outcome = local.execute(input, tier=payload.get("tier"))
        except ReplayError as exc:
            return {"input": payload["input"], "error": str(exc)}
        return {"input": payload["input"],
                "result": outcome.result.to_dict(),
                "signature": outcome.signature}

    # -- triage: dedup + minimize + verify -----------------------------------

    def _triage(self, executed) \
            -> "Tuple[List[Finding], Dict[tuple, int]]":
        """Group every run by its replay divergence key; minimize and
        replay-verify one reproducer per crash/escape group."""
        crash_groups: "Dict[tuple, List[Tuple[FuzzInput, RunResult]]]" = {}
        detected_groups: "Dict[tuple, int]" = {}
        for inp, run in executed:
            key = dedup_key(inp, run)
            if run.verdict in (Verdict.CRASHED, Verdict.ESCAPED):
                crash_groups.setdefault(key, []).append((inp, run))
            elif run.verdict is Verdict.DETECTED:
                detected_groups[key] = detected_groups.get(key, 0) + 1

        findings: "List[Finding]" = []
        if not crash_groups:
            return findings, detected_groups
        triage_pool = WarmVictimPool(profile=self.profile)
        for key in sorted(crash_groups, key=repr):
            members = crash_groups[key]
            inp, run = members[0]
            shrunk_from = len(inp.schedule)
            try:
                small, small_run = minimize(triage_pool, inp, run)
                verified, verified_run = replay_verify(triage_pool, small)
            except ReplayError:
                small, small_run, verified = inp, run, False
            findings.append(Finding(
                verdict=run.verdict.value, kinds=key[1],
                divergence=run.divergence, count=len(members),
                input=small, result=small_run, verified=verified,
                shrunk_from=shrunk_from))
            if self.log is not None:
                self.log(f"finding: {run.verdict.value} kinds={key[1]} "
                         f"divergence={run.divergence} "
                         f"x{len(members)} verified={verified}")
        return findings, detected_groups


def run_comparison(*, executions: "Optional[int]" = None,
                   workers: "Optional[int]" = None,
                   seed: "Optional[int]" = None,
                   schedule_max: "Optional[int]" = None,
                   tier: "Optional[str]" = None,
                   profile: str = "processor+kernel", log=None) \
        -> "Tuple[CampaignReportV1, CampaignReportV1]":
    """Guided and random arms at equal budget from the same seed."""
    guided = Campaign(executions=executions, workers=workers,
                      mode="guided", seed=seed,
                      schedule_max=schedule_max, tier=tier,
                      profile=profile, log=log).run()
    rand = Campaign(executions=executions, workers=workers,
                    mode="random", seed=seed,
                    schedule_max=schedule_max, tier=tier,
                    profile=profile, log=log).run()
    return guided, rand


def comparison_record(guided: CampaignReportV1,
                      rand: CampaignReportV1) -> dict:
    """The guided record, annotated with the control-arm comparison."""
    return comparison_from_records(guided.to_record(), rand.to_record())


def comparison_from_records(guided: dict, rand: dict) -> dict:
    """:func:`comparison_record` over two saved schema-v1 records — for
    arms run in separate processes or on separate machines (the nightly
    CI job runs them back to back and merges here)."""
    record = dict(guided)
    guided_unique = guided["coverage"]["unique_signatures"]
    random_unique = rand["coverage"]["unique_signatures"]
    record["guided_vs_random"] = {
        "budget": rand["executions"],
        "guided_unique": guided_unique,
        "random_unique": random_unique,
        "guided_wins": guided_unique > random_unique,
        "random_escapes": rand["escapes"]["total"],
        "random_unexplained": rand["escapes"]["unexplained"],
    }
    record["ok"] = bool(record["ok"] and rand["ok"]
                        and record["guided_vs_random"]["guided_wins"])
    return record
