"""Coverage signatures: the feedback that makes the fuzzer *guided*.

A run's signature hashes its **behavior class**, not its raw trace.
Three tier-stable observations go in:

* the **coarsened architectural event sequence** from the obs layer —
  for each arch event, only its semantic coordinates survive (syscall
  numbers, signal numbers, ROLoad violation reason + instruction/page
  keys, benign-fault classes). Raw pc/addr values and exact payloads
  are bucketed away, AFL-style: if every field of every event fed the
  hash, *every* input would be "novel" and coverage feedback would
  guide nothing;
* the **injection phase coordinates**: the MMU's cumulative keyed-load
  check count at the moment each schedule entry fired. This is the
  inter-keyed-load interval ordinal — the quantity that determines
  what the defense can catch — in units independent of victim length
  and simulator tier. Reaching a high ordinal requires a long victim
  *and* a late trigger, which is exactly the kind of rare coordinate
  mutation walks toward and uniform sampling stumbles on;
* a **coarse final fingerprint**: log2-bucketed run length, keyed-load
  check/fault totals, the security-log reasons this run appended, how
  the process ended, and whether the exit code matched baseline.

Everything hashed is architectural, so the same input yields the same
signature on tiers 0-4 — the fork-determinism contract
(tests/serve/test_fork_determinism.py) extended to coverage itself. A
corpus built on tier 4 transplants verbatim to any tier, and a new
signature is always new *behavior*, never simulator-backend noise.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Optional, Tuple


def coarse_events(raw_events: "Iterable[dict]") -> "Tuple[tuple, ...]":
    """Reduce raw arch events to their semantic coordinates."""
    out = []
    generation_bumps = 0
    for event in raw_events:
        name = event.get("type", "")
        if name == "mmu.generation":
            # One bump per injected flush; runs of bumps collapse into
            # a count so schedule length doesn't fan out the space.
            generation_bumps += 1
            continue
        if name == "syscall":
            out.append(("sys", event.get("number")))
        elif name == "signal.delivery":
            out.append(("sig", event.get("number")))
        elif name == "roload.violation":
            out.append(("roload", event.get("reason"),
                        event.get("insn_key"), event.get("page_key")))
        elif name == "fault.benign":
            out.append(("fault",
                        event.get("kind", event.get("reason"))))
        else:
            out.append((name,))
    if generation_bumps:
        out.append(("mmu.generation", generation_bumps))
    return tuple(out)


def _bucket(value: int) -> int:
    """log2 bucket: collapses length-ish counters AFL-style."""
    return int(value).bit_length()


def final_fingerprint(kernel, process, seclog_before: int,
                      baseline_exit: "Optional[int]" = None) -> "Tuple":
    """Coarse tier-stable end-of-run digest (every component is part
    of, or derived from, the cross-tier state-hash contract)."""
    mstats = kernel.system.mmu.stats
    reasons = tuple(e.reason
                    for e in kernel.security_log[seclog_before:])
    # process.state.value, not process.status(): the status string
    # embeds the raw exit code and fault pc/addr, which vary with every
    # victim shape — hashing them would make each spec its own "new
    # coverage" and drown the feedback. Likewise run length is measured
    # only in keyed-load units (bucketed), not instructions: the two
    # are behaviorally redundant and their cross product would multiply
    # the space with spec-size noise.
    return (_bucket(mstats.roload_checks), mstats.roload_faults,
            reasons, process.state.value,
            process.exit_code == baseline_exit,
            process.signal.number if process.signal else None)


def signature(events: "Tuple[tuple, ...]",
              checks_at: "Tuple[int, ...]",
              fingerprint: "Tuple") -> str:
    """Hash one run's coverage coordinates into a stable signature."""
    blob = repr((events, checks_at, fingerprint)).encode()
    return hashlib.sha256(blob).hexdigest()[:24]


class CoverageMap:
    """The campaign-global set of signatures seen so far."""

    def __init__(self):
        self._seen = set()

    def add(self, sig: str) -> bool:
        """Record ``sig``; True iff it is new coverage."""
        if sig in self._seen:
            return False
        self._seen.add(sig)
        return True

    def __contains__(self, sig: "Optional[str]") -> bool:
        return sig in self._seen

    def __len__(self) -> int:
        return len(self._seen)
