"""Bit-manipulation helpers shared by the ISA, MMU, and cache models.

All values are plain Python ints. Architectural registers are 64-bit and
stored *unsigned* (0 .. 2**64-1); helpers here convert between signed and
unsigned views and extract/deposit bit fields the way hardware description
languages do (inclusive high/low bit indices).
"""

from __future__ import annotations

XLEN = 64
MASK8 = 0xFF
MASK16 = 0xFFFF
MASK32 = 0xFFFF_FFFF
MASK64 = 0xFFFF_FFFF_FFFF_FFFF


def mask(width: int) -> int:
    """Return a mask of ``width`` low bits (``mask(3) == 0b111``)."""
    if width < 0:
        raise ValueError(f"negative mask width {width}")
    return (1 << width) - 1


def bits(value: int, hi: int, lo: int) -> int:
    """Extract the inclusive bit field ``value[hi:lo]`` (HDL-style).

    >>> bits(0b1011_0000, 7, 4)
    11
    """
    if hi < lo:
        raise ValueError(f"bad field [{hi}:{lo}]")
    return (value >> lo) & mask(hi - lo + 1)


def bit(value: int, index: int) -> int:
    """Extract a single bit as 0 or 1."""
    return (value >> index) & 1


def deposit(value: int, hi: int, lo: int, field: int) -> int:
    """Return ``value`` with the inclusive bit field [hi:lo] replaced.

    Raises :class:`ValueError` if ``field`` does not fit.
    """
    width = hi - lo + 1
    if field < 0 or field > mask(width):
        raise ValueError(f"field {field:#x} does not fit in [{hi}:{lo}]")
    cleared = value & ~(mask(width) << lo)
    return cleared | (field << lo)


def sext(value: int, width: int) -> int:
    """Sign-extend the low ``width`` bits of ``value`` to a Python int.

    >>> sext(0xFF, 8)
    -1
    >>> sext(0x7F, 8)
    127
    """
    value &= mask(width)
    sign = 1 << (width - 1)
    return (value ^ sign) - sign


def to_u64(value: int) -> int:
    """Truncate a Python int to the unsigned 64-bit architectural view."""
    return value & MASK64


def to_s64(value: int) -> int:
    """Interpret a 64-bit value as signed."""
    return sext(value, 64)


def to_u32(value: int) -> int:
    """Truncate to unsigned 32 bits."""
    return value & MASK32


def to_s32(value: int) -> int:
    """Interpret a 32-bit value as signed."""
    return sext(value, 32)


def sext32_to_u64(value: int) -> int:
    """Sign-extend a 32-bit result into the unsigned 64-bit register view.

    RV64 word ops (``addw`` etc.) write the sign-extended 32-bit result.
    """
    return to_u64(sext(value, 32))


def is_aligned(value: int, alignment: int) -> bool:
    """True if ``value`` is a multiple of ``alignment`` (a power of two)."""
    return (value & (alignment - 1)) == 0


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment`` (power of two)."""
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment`` (power of two)."""
    return (value + alignment - 1) & ~(alignment - 1)


def fits_signed(value: int, width: int) -> bool:
    """True if ``value`` is representable as a signed ``width``-bit int."""
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    return lo <= value <= hi


def fits_unsigned(value: int, width: int) -> bool:
    """True if ``value`` is representable as an unsigned ``width``-bit int."""
    return 0 <= value <= mask(width)


def split_hi_lo(value: int) -> "tuple[int, int]":
    """Split a signed 32-bit constant into (hi20, lo12) for ``lui``/``addi``.

    The low part is sign-extended by ``addi``, so the high part must
    compensate: ``(hi20 << 12) + sext(lo12, 12) == value`` (mod 2**32).

    >>> hi, lo = split_hi_lo(0x11604)
    >>> ((hi << 12) + sext(lo, 12)) & 0xFFFFFFFF == 0x11604
    True
    """
    value = to_u32(value)
    lo12 = value & 0xFFF
    hi20 = (value >> 12) & 0xFFFFF
    if lo12 >= 0x800:  # addi will sign-extend: bump hi to compensate
        hi20 = (hi20 + 1) & 0xFFFFF
    return hi20, lo12


def popcount(value: int) -> int:
    """Number of set bits."""
    return bin(value & MASK64).count("1")


def clog2(value: int) -> int:
    """Ceiling of log2; number of bits needed to index ``value`` entries.

    >>> clog2(32)
    5
    >>> clog2(33)
    6
    """
    if value <= 0:
        raise ValueError("clog2 requires a positive value")
    return (value - 1).bit_length()
