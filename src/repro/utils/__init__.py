"""Shared utilities (bit manipulation, field packing)."""

from repro.utils import bits

__all__ = ["bits"]
