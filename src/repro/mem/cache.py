"""Set-associative cache model (tags only — used by the timing model).

Table II: 32 KiB 8-way L1 I-cache and D-cache. Data never lives here; the
simulator reads/writes physical memory directly and asks the cache model
only "would this access have hit?". Write misses allocate (write-allocate,
write-back — Rocket's L1D policy); clean correctness is untouched either
way because this is timing-only.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigError


class Cache:
    """Tag-only set-associative cache with true-LRU replacement."""

    def __init__(self, size: int = 32 * 1024, ways: int = 8,
                 line_size: int = 64, name: str = "cache"):
        if size <= 0 or ways <= 0 or line_size <= 0:
            raise ConfigError("cache dimensions must be positive")
        if size % (ways * line_size):
            raise ConfigError(
                f"cache size {size} not divisible by ways*line "
                f"({ways}*{line_size})")
        if line_size & (line_size - 1):
            raise ConfigError("line size must be a power of two")
        self.size = size
        self.ways = ways
        self.line_size = line_size
        self.num_sets = size // (ways * line_size)
        if self.num_sets & (self.num_sets - 1):
            raise ConfigError("set count must be a power of two")
        self.name = name
        self._sets = [OrderedDict() for _ in range(self.num_sets)]
        self._line_shift = line_size.bit_length() - 1
        self.hits = 0
        self.misses = 0

    def access(self, paddr: int) -> bool:
        """Record an access; returns True on hit, False on miss (allocates).

        Accesses are assumed not to straddle lines (the toolchain emits
        naturally aligned scalar accesses; the core enforces alignment).
        """
        line = paddr >> self._line_shift
        index = line & (self.num_sets - 1)
        ways = self._sets[index]
        if line in ways:
            ways.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        ways[line] = True
        if len(ways) > self.ways:
            ways.popitem(last=False)
        return False

    def flush(self) -> None:
        for ways in self._sets:
            ways.clear()

    # -- fast-path surface ---------------------------------------------------
    # The interpreter fast paths (Core.load/store and the tier-2 trace
    # compiler, DESIGN.md §8–9) inline `access` for speed. These expose the
    # identity-stable internals they bind so generated code never touches
    # underscore attributes.

    @property
    def line_sets(self) -> "list[OrderedDict]":
        """The per-set LRU tag stores, indexed by ``line & (num_sets-1)``."""
        return self._sets

    @property
    def line_shift(self) -> int:
        """log2(line_size): ``paddr >> line_shift`` is the line number."""
        return self._line_shift

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
