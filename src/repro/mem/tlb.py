"""TLB model with the ROLoad *key* field in every entry.

The paper: "We also add the newly introduced key field ... to each TLB
entry." Rocket's TLBs are small and fully associative; we model a
fully-associative, true-LRU TLB (32 entries by default, per Table II).
Only the *contents* matter for correctness — capacity and replacement
matter for the timing model (TLB miss => page-table walk).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError


@dataclass
class TLBEntry:
    """Cached translation: physical page number, permissions, and key."""

    ppn: int
    readable: bool
    writable: bool
    executable: bool
    user: bool
    key: int


class TLB:
    """Fully-associative, LRU translation lookaside buffer."""

    def __init__(self, entries: int = 32, name: str = "tlb"):
        if entries <= 0:
            raise ConfigError(f"TLB needs a positive entry count, got "
                              f"{entries}")
        self.capacity = entries
        self.name = name
        self._entries: "OrderedDict[int, TLBEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.flushes = 0
        # Shadow maps (vpn-keyed dicts) whose entries are only valid
        # while the TLB entry they were derived from stays resident and
        # unreplaced. The tier-2 compiler (repro.cpu.jit) registers its
        # page memos here; purging on insert/evict/flush is what makes
        # "memo hit" imply "this exact entry is still live".
        self.shadows: "tuple[dict, ...]" = ()

    def lookup(self, vpn: int) -> Optional[TLBEntry]:
        """Look up a virtual page number; updates LRU order and stats."""
        entry = self._entries.get(vpn)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(vpn)
        self.hits += 1
        return entry

    def probe_hit(self, vpn: int) -> Optional[TLBEntry]:
        """Fast-path lookup: counts the hit (and refreshes LRU order) when
        the entry is resident, but records *nothing* on a miss — the
        caller falls back to the full translate path, whose own
        :meth:`lookup` then counts the miss exactly once."""
        entry = self._entries.get(vpn)
        if entry is not None:
            self._entries.move_to_end(vpn)
            self.hits += 1
        return entry

    def insert(self, vpn: int, entry: TLBEntry) -> None:
        """Install a translation, evicting the LRU entry if full."""
        if vpn in self._entries:
            self._entries.move_to_end(vpn)
        self._entries[vpn] = entry
        if len(self._entries) > self.capacity:
            victim, _ = self._entries.popitem(last=False)
            for shadow in self.shadows:
                shadow.pop(victim, None)
        for shadow in self.shadows:
            shadow.pop(vpn, None)

    def flush(self) -> None:
        """Flush everything (sfence.vma with no arguments)."""
        self._entries.clear()
        self.flushes += 1
        for shadow in self.shadows:
            shadow.clear()

    def flush_page(self, vpn: int) -> None:
        """Flush one translation (sfence.vma with an address)."""
        self._entries.pop(vpn, None)
        for shadow in self.shadows:
            shadow.pop(vpn, None)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entry_map(self) -> "OrderedDict[int, TLBEntry]":
        """The live vpn -> entry map (identity-stable, LRU-ordered).

        Bound by the interpreter fast paths, which inline
        :meth:`probe_hit`: get + move_to_end + hits on residency, nothing
        on a miss.
        """
        return self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.flushes = 0
