"""Sparse physical memory model.

Backing store is a dict of 4 KiB page frames allocated on first touch, so a
4 GiB address space (Table II: one 4 GiB DDR3 SO-DIMM) costs only what the
workload actually touches. All accesses are little-endian, matching RISC-V.
"""

from __future__ import annotations

from repro.errors import MemoryError_

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


class PhysicalMemory:
    """Byte-addressable physical memory with sparse page-frame backing."""

    def __init__(self, size: int = 4 << 30):
        if size <= 0 or size & PAGE_MASK:
            raise MemoryError_(f"memory size {size:#x} must be a positive "
                               f"multiple of the page size")
        self.size = size
        self._frames: dict[int, bytearray] = {}

    # -- frame helpers ------------------------------------------------------

    def _frame(self, frame_index: int) -> bytearray:
        frame = self._frames.get(frame_index)
        if frame is None:
            frame = bytearray(PAGE_SIZE)
            self._frames[frame_index] = frame
        return frame

    def frame_count(self) -> int:
        """Number of frames actually allocated (for memory accounting)."""
        return len(self._frames)

    @property
    def frame_map(self) -> "dict[int, bytearray]":
        """The live frame-index -> bytearray store (identity-stable).

        Bound by the interpreter fast paths for aligned, in-page accesses
        whose range was proven valid when the translation was cached.
        """
        return self._frames

    # -- scalar access ------------------------------------------------------

    def read(self, address: int, size: int) -> int:
        """Read ``size`` bytes (1/2/4/8) at ``address`` as an unsigned int."""
        if address < 0 or address + size > self.size:
            raise MemoryError_(f"physical read [{address:#x}+{size}] out of "
                               f"range")
        frame_index = address >> PAGE_SHIFT
        offset = address & PAGE_MASK
        if offset + size <= PAGE_SIZE:
            frame = self._frames.get(frame_index)
            if frame is None:
                return 0
            return int.from_bytes(frame[offset:offset + size], "little")
        return int.from_bytes(self.read_bytes(address, size), "little")

    def write(self, address: int, size: int, value: int) -> None:
        """Write ``size`` bytes at ``address`` from an unsigned int."""
        if address < 0 or address + size > self.size:
            raise MemoryError_(f"physical write [{address:#x}+{size}] out "
                               f"of range")
        frame_index = address >> PAGE_SHIFT
        offset = address & PAGE_MASK
        data = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        if offset + size <= PAGE_SIZE:
            self._frame(frame_index)[offset:offset + size] = data
        else:
            self.write_bytes(address, data)

    # -- bulk access --------------------------------------------------------

    def read_bytes(self, address: int, length: int) -> bytes:
        """Read an arbitrary byte range (may span frames)."""
        if address < 0 or address + length > self.size:
            raise MemoryError_(f"physical read [{address:#x}+{length}] out "
                               f"of range")
        out = bytearray()
        while length:
            frame_index = address >> PAGE_SHIFT
            offset = address & PAGE_MASK
            chunk = min(length, PAGE_SIZE - offset)
            frame = self._frames.get(frame_index)
            if frame is None:
                out += bytes(chunk)
            else:
                out += frame[offset:offset + chunk]
            address += chunk
            length -= chunk
        return bytes(out)

    def write_bytes(self, address: int, data: bytes) -> None:
        """Write an arbitrary byte range (may span frames)."""
        if address < 0 or address + len(data) > self.size:
            raise MemoryError_(f"physical write [{address:#x}+{len(data)}] "
                               f"out of range")
        view = memoryview(data)
        while view:
            frame_index = address >> PAGE_SHIFT
            offset = address & PAGE_MASK
            chunk = min(len(view), PAGE_SIZE - offset)
            self._frame(frame_index)[offset:offset + chunk] = view[:chunk]
            address += chunk
            view = view[chunk:]

    def fill(self, address: int, length: int, byte: int = 0) -> None:
        """Fill a byte range with a constant (used for zeroed mappings)."""
        self.write_bytes(address, bytes([byte]) * length)

    # -- snapshot support ----------------------------------------------------

    def snapshot_frames(self) -> "dict[int, bytes]":
        """Copy out every non-zero frame as immutable bytes.

        All-zero frames are dropped: an unallocated frame reads as zeroes,
        so restoring without them is observationally identical and the
        snapshot stays proportional to the *touched* working set.
        """
        zero = bytes(PAGE_SIZE)
        return {index: bytes(frame)
                for index, frame in self._frames.items()
                if frame != zero}

    def restore_frames(self, frames: "dict[int, bytes]") -> None:
        """Replace the entire backing store with a snapshot's frames.

        Mutates the existing dict in place: decode-specialised ops and
        JIT code close over :attr:`frame_map` by identity, so the store
        must never be rebound on a live machine.
        """
        self._frames.clear()
        for index, data in frames.items():
            self._frames[index] = bytearray(data)
