"""Sparse physical memory model.

Backing store is a dict of 4 KiB page frames allocated on first touch, so a
4 GiB address space (Table II: one 4 GiB DDR3 SO-DIMM) costs only what the
workload actually touches. All accesses are little-endian, matching RISC-V.
"""

from __future__ import annotations

from repro.errors import MemoryError_

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


class CowFrameMap(dict):
    """Frame store with a shared read-only backing layer (COW forking).

    A :class:`dict` subclass so the interpreter fast paths — which bind
    ``memory._frames`` and issue plain ``frames.get(ppn)`` /
    ``frames[ppn] = fb`` traffic — keep working unchanged: :meth:`get`
    materializes a *private* ``bytearray`` copy of a shared frame on
    first touch, after which the frame behaves exactly like an eagerly
    restored one (JIT memos may pin it, stores mutate it in place).
    The shared dict holds immutable ``bytes`` and is never written, so
    any number of sessions can fork from the same snapshot and share
    it; ``len()``/iteration/membership intentionally reflect only the
    materialized private frames (see ``PhysicalMemory.frame_count``).
    """

    __slots__ = ("shared",)

    def __init__(self, shared: "dict[int, bytes]"):
        super().__init__()
        self.shared = shared

    def get(self, key, default=None):
        frame = dict.get(self, key)
        if frame is not None:
            return frame
        data = self.shared.get(key)
        if data is None:
            return default
        frame = bytearray(data)
        dict.__setitem__(self, key, frame)
        return frame

    def __getitem__(self, key):
        frame = self.get(key)
        if frame is None:
            raise KeyError(key)
        return frame

    def clear(self) -> None:
        """Drop private *and* shared frames (the shared dict itself is
        left untouched — other forks keep reading it)."""
        dict.clear(self)
        self.shared = {}


class PhysicalMemory:
    """Byte-addressable physical memory with sparse page-frame backing."""

    def __init__(self, size: int = 4 << 30):
        if size <= 0 or size & PAGE_MASK:
            raise MemoryError_(f"memory size {size:#x} must be a positive "
                               f"multiple of the page size")
        self.size = size
        self._frames: dict[int, bytearray] = {}

    # -- frame helpers ------------------------------------------------------

    def _frame(self, frame_index: int) -> bytearray:
        frame = self._frames.get(frame_index)
        if frame is None:
            frame = bytearray(PAGE_SIZE)
            self._frames[frame_index] = frame
        return frame

    def frame_count(self) -> int:
        """Number of frames logically present (for memory accounting).

        Under a copy-on-write restore this counts shared frames too —
        a forked machine holds the same logical pages as an eagerly
        restored one, whether or not it has touched them yet.
        """
        frames = self._frames
        shared = getattr(frames, "shared", None)
        if not shared:
            return len(frames)
        return len(frames.keys() | shared.keys())

    def private_frame_count(self) -> int:
        """Frames this machine owns outright — its real memory cost.

        Equal to :meth:`frame_count` on an ordinary machine; on a
        copy-on-write fork it counts only the materialized private
        copies, which is what per-session frame caps meter.
        """
        return len(self._frames)

    @property
    def frame_map(self) -> "dict[int, bytearray]":
        """The live frame-index -> bytearray store (identity-stable).

        Bound by the interpreter fast paths for aligned, in-page accesses
        whose range was proven valid when the translation was cached.
        """
        return self._frames

    # -- scalar access ------------------------------------------------------

    def read(self, address: int, size: int) -> int:
        """Read ``size`` bytes (1/2/4/8) at ``address`` as an unsigned int."""
        if address < 0 or address + size > self.size:
            raise MemoryError_(f"physical read [{address:#x}+{size}] out of "
                               f"range")
        frame_index = address >> PAGE_SHIFT
        offset = address & PAGE_MASK
        if offset + size <= PAGE_SIZE:
            frame = self._frames.get(frame_index)
            if frame is None:
                return 0
            return int.from_bytes(frame[offset:offset + size], "little")
        return int.from_bytes(self.read_bytes(address, size), "little")

    def write(self, address: int, size: int, value: int) -> None:
        """Write ``size`` bytes at ``address`` from an unsigned int."""
        if address < 0 or address + size > self.size:
            raise MemoryError_(f"physical write [{address:#x}+{size}] out "
                               f"of range")
        frame_index = address >> PAGE_SHIFT
        offset = address & PAGE_MASK
        data = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        if offset + size <= PAGE_SIZE:
            self._frame(frame_index)[offset:offset + size] = data
        else:
            self.write_bytes(address, data)

    # -- bulk access --------------------------------------------------------

    def read_bytes(self, address: int, length: int) -> bytes:
        """Read an arbitrary byte range (may span frames)."""
        if address < 0 or address + length > self.size:
            raise MemoryError_(f"physical read [{address:#x}+{length}] out "
                               f"of range")
        out = bytearray()
        while length:
            frame_index = address >> PAGE_SHIFT
            offset = address & PAGE_MASK
            chunk = min(length, PAGE_SIZE - offset)
            frame = self._frames.get(frame_index)
            if frame is None:
                out += bytes(chunk)
            else:
                out += frame[offset:offset + chunk]
            address += chunk
            length -= chunk
        return bytes(out)

    def write_bytes(self, address: int, data: bytes) -> None:
        """Write an arbitrary byte range (may span frames)."""
        if address < 0 or address + len(data) > self.size:
            raise MemoryError_(f"physical write [{address:#x}+{len(data)}] "
                               f"out of range")
        view = memoryview(data)
        while view:
            frame_index = address >> PAGE_SHIFT
            offset = address & PAGE_MASK
            chunk = min(len(view), PAGE_SIZE - offset)
            self._frame(frame_index)[offset:offset + chunk] = view[:chunk]
            address += chunk
            view = view[chunk:]

    def fill(self, address: int, length: int, byte: int = 0) -> None:
        """Fill a byte range with a constant (used for zeroed mappings)."""
        self.write_bytes(address, bytes([byte]) * length)

    # -- snapshot support ----------------------------------------------------

    def snapshot_frames(self) -> "dict[int, bytes]":
        """Copy out every non-zero frame as immutable bytes.

        All-zero frames are dropped: an unallocated frame reads as zeroes,
        so restoring without them is observationally identical and the
        snapshot stays proportional to the *touched* working set. Shared
        copy-on-write frames not yet touched are included as-is (they
        are already immutable), so a forked machine snapshots to the
        same frame set as an eagerly restored one.
        """
        zero = bytes(PAGE_SIZE)
        out = {index: bytes(frame)
               for index, frame in self._frames.items()
               if frame != zero}
        shared = getattr(self._frames, "shared", None)
        if shared:
            private = self._frames
            for index, data in shared.items():
                if index not in private and data != zero:
                    out[index] = data
        return out

    def _validate_frames(self, frames: "dict[int, bytes]") -> None:
        """Reject snapshots whose frames do not fit this memory's
        geometry — fail closed instead of silently corrupting state."""
        limit = self.size >> PAGE_SHIFT
        for index, data in frames.items():
            if not isinstance(index, int) or isinstance(index, bool) \
                    or index < 0 or index >= limit:
                raise MemoryError_(
                    f"snapshot frame index {index!r} outside the "
                    f"configured geometry (0..{limit - 1})")
            if not isinstance(data, (bytes, bytearray)) \
                    or len(data) != PAGE_SIZE:
                size = len(data) if isinstance(data, (bytes, bytearray)) \
                    else type(data).__name__
                raise MemoryError_(
                    f"snapshot frame {index:#x} is not a {PAGE_SIZE}-byte "
                    f"page ({size})")

    def restore_frames(self, frames: "dict[int, bytes]") -> None:
        """Replace the entire backing store with a snapshot's frames.

        Mutates the existing dict in place: decode-specialised ops and
        JIT code close over :attr:`frame_map` by identity, so the store
        must never be rebound on a live machine. Frames are validated
        against the configured geometry first (a malformed frame raises
        :class:`~repro.errors.MemoryError_` before anything is touched).
        """
        self._validate_frames(frames)
        self._frames.clear()
        for index, data in frames.items():
            self._frames[index] = bytearray(data)

    def restore_frames_cow(self, shared: "dict[int, bytes]") -> None:
        """Install a snapshot's frames as a shared copy-on-write layer.

        The milliseconds-fork path of ``repro.serve``: no frame data is
        copied here — ``shared`` (immutable snapshot bytes, typically
        ``Snapshot.state["memory"]``) becomes the read layer of a
        :class:`CowFrameMap` and private copies materialize on first
        touch. Unlike :meth:`restore_frames` this **rebinds** the store,
        so it is only valid on a machine that has never run: nothing may
        have bound :attr:`frame_map` yet and no frame may exist.
        """
        if self._frames:
            raise MemoryError_(
                "copy-on-write restore requires an untouched memory "
                f"({len(self._frames)} frames already allocated)")
        self._validate_frames(shared)
        self._frames = CowFrameMap(shared)
