"""Sv39 three-level page tables: builder (kernel side) and walker (MMU side).

The builder manipulates page tables stored in simulated physical memory —
the same structures the walker reads — so the kernel model and the MMU
model cannot disagree about layout. Superpages are not used (the prototype
kernel maps everything with 4 KiB pages; documented simplification).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import PageTableError
from repro.mem.physical import PAGE_SHIFT, PAGE_SIZE, PhysicalMemory
from repro.mem.pte import (
    PPN_MASK,
    PPN_SHIFT,
    PTE,
    PTE_R,
    PTE_V,
    PTE_W,
    PTE_X,
    make_table_pointer,
)

LEVELS = 3
VPN_BITS = 9
VA_BITS = 39
PTE_SIZE = 8
PTES_PER_PAGE = PAGE_SIZE // PTE_SIZE


def vpn_fields(vaddr: int) -> "tuple[int, int, int]":
    """Split a virtual address into (VPN[2], VPN[1], VPN[0])."""
    return ((vaddr >> 30) & 0x1FF, (vaddr >> 21) & 0x1FF,
            (vaddr >> 12) & 0x1FF)


def canonical(vaddr: int) -> bool:
    """Sv39 virtual addresses must be sign-extended from bit 38."""
    top = vaddr >> (VA_BITS - 1)
    return top == 0 or top == (1 << (64 - VA_BITS + 1)) - 1


class FrameAllocator:
    """Bump allocator handing out physical page frames to the kernel.

    Tracks allocation count so the evaluation can report physical memory
    usage in KiB, the unit Figure 3/5 use.
    """

    def __init__(self, base: int, limit: int):
        if base & (PAGE_SIZE - 1) or limit & (PAGE_SIZE - 1):
            raise PageTableError("frame pool must be page aligned")
        if base >= limit:
            raise PageTableError("empty frame pool")
        self.base = base
        self.limit = limit
        self._next = base
        self.allocated = 0

    def alloc(self) -> int:
        """Allocate one zeroed frame; returns its physical address."""
        if self._next >= self.limit:
            raise PageTableError("out of physical frames")
        frame = self._next
        self._next += PAGE_SIZE
        self.allocated += 1
        return frame

    @property
    def bytes_allocated(self) -> int:
        return self.allocated * PAGE_SIZE


@dataclass
class WalkResult:
    """Outcome of a successful page-table walk."""

    pte: PTE
    pte_address: int
    level: int
    accesses: int  # memory reads performed (for the timing model)


class PageTableWalker:
    """Hardware page-table walker over simulated physical memory."""

    def __init__(self, memory: PhysicalMemory):
        self.memory = memory

    def walk(self, root_ppn: int, vaddr: int) -> Optional[WalkResult]:
        """Walk from ``root_ppn``; return None if no valid leaf is found.

        ``None`` (not an exception) models the hardware raising a page
        fault for the requesting instruction.
        """
        if not canonical(vaddr):
            return None
        table = root_ppn << PAGE_SHIFT
        vpns = vpn_fields(vaddr)
        read = self.memory.read
        accesses = 0
        leaf_bits = PTE_R | PTE_W | PTE_X
        for level in (2, 1, 0):
            # vpns is ordered (VPN[2], VPN[1], VPN[0]).
            pte_address = table + vpns[2 - level] * PTE_SIZE
            accesses += 1
            # Intermediate levels only need the valid/leaf bits and the
            # next-table PPN — decode the full PTE only for the leaf.
            word = read(pte_address, 8)
            if not word & PTE_V:
                return None
            if word & leaf_bits:
                if level != 0:
                    # Superpages unsupported by this prototype kernel.
                    return None
                return WalkResult(PTE.unpack(word), pte_address, level,
                                  accesses)
            table = ((word >> PPN_SHIFT) & PPN_MASK) << PAGE_SHIFT
        return None


class PageTableBuilder:
    """Kernel-side construction and mutation of an Sv39 page table."""

    def __init__(self, memory: PhysicalMemory, allocator: FrameAllocator,
                 *, root: "int | None" = None):
        self.memory = memory
        self.allocator = allocator
        # ``root`` adopts an existing table (snapshot restore) instead of
        # allocating a fresh one; the PTEs live in ``memory`` either way.
        if root is not None:
            if root & (PAGE_SIZE - 1):
                raise PageTableError(f"root {root:#x} must be page aligned")
            self.root = root
        else:
            self.root = allocator.alloc()

    @property
    def root_ppn(self) -> int:
        return self.root >> PAGE_SHIFT

    def _next_table(self, table: int, index: int) -> int:
        pte_address = table + index * PTE_SIZE
        pte = PTE.unpack(self.memory.read(pte_address, 8))
        if pte.valid:
            if pte.is_leaf:
                raise PageTableError("unexpected leaf at intermediate level")
            return pte.ppn << PAGE_SHIFT
        frame = self.allocator.alloc()
        self.memory.write(pte_address, 8,
                          make_table_pointer(frame >> PAGE_SHIFT).pack())
        return frame

    def _leaf_address(self, vaddr: int, create: bool) -> Optional[int]:
        if not canonical(vaddr):
            raise PageTableError(f"non-canonical vaddr {vaddr:#x}")
        vpn2, vpn1, vpn0 = vpn_fields(vaddr)
        table = self.root
        for index in (vpn2, vpn1):
            pte_address = table + index * PTE_SIZE
            word = self.memory.read(pte_address, 8)
            if not word & PTE_V:
                if not create:
                    return None
                table = self._next_table(table, index)
            else:
                if word & (PTE_R | PTE_W | PTE_X):
                    raise PageTableError("superpage in the way")
                table = ((word >> PPN_SHIFT) & PPN_MASK) << PAGE_SHIFT
        return table + vpn0 * PTE_SIZE

    def map_page(self, vaddr: int, paddr: int, *, readable=False,
                 writable=False, executable=False, user=True,
                 key: int = 0) -> None:
        """Install a 4 KiB leaf mapping vaddr -> paddr."""
        if vaddr & (PAGE_SIZE - 1) or paddr & (PAGE_SIZE - 1):
            raise PageTableError("map_page requires page-aligned addresses")
        from repro.mem.pte import make_leaf
        leaf_address = self._leaf_address(vaddr, create=True)
        pte = make_leaf(paddr >> PAGE_SHIFT, readable=readable,
                        writable=writable, executable=executable, user=user,
                        key=key)
        self.memory.write(leaf_address, 8, pte.pack())

    def unmap_page(self, vaddr: int) -> bool:
        """Remove a leaf mapping; returns False if it wasn't mapped."""
        leaf_address = self._leaf_address(vaddr, create=False)
        if leaf_address is None:
            return False
        if not PTE.unpack(self.memory.read(leaf_address, 8)).valid:
            return False
        self.memory.write(leaf_address, 8, 0)
        return True

    def lookup(self, vaddr: int) -> Optional[PTE]:
        """Read the leaf PTE covering ``vaddr`` (None if unmapped)."""
        leaf_address = self._leaf_address(vaddr & ~(PAGE_SIZE - 1),
                                          create=False)
        if leaf_address is None:
            return None
        pte = PTE.unpack(self.memory.read(leaf_address, 8))
        return pte if pte.valid else None

    def set_protection(self, vaddr: int, *, readable=None, writable=None,
                       executable=None, key=None) -> None:
        """Mutate permissions/key of an existing mapping (mprotect core).

        Arguments left as ``None`` keep their current value.
        """
        leaf_address = self._leaf_address(vaddr & ~(PAGE_SIZE - 1),
                                          create=False)
        if leaf_address is None:
            raise PageTableError(f"mprotect on unmapped page {vaddr:#x}")
        pte = PTE.unpack(self.memory.read(leaf_address, 8))
        if not pte.valid:
            raise PageTableError(f"mprotect on unmapped page {vaddr:#x}")
        if readable is not None:
            pte.readable = readable
        if writable is not None:
            pte.writable = writable
            pte.dirty = writable
        if executable is not None:
            pte.executable = executable
        if key is not None:
            pte.key = key
        if pte.writable and not pte.readable:
            raise PageTableError("writable-but-not-readable is reserved")
        self.memory.write(leaf_address, 8, pte.pack())

    def mappings(self, lo: int = 0, hi: int = 1 << VA_BITS) \
            -> Iterator["tuple[int, PTE]"]:
        """Iterate (vaddr, leaf PTE) pairs in [lo, hi). Debug/accounting."""
        root = self.root
        for i2 in range(PTES_PER_PAGE):
            pte2 = PTE.unpack(self.memory.read(root + i2 * PTE_SIZE, 8))
            if not pte2.valid or pte2.is_leaf:
                continue
            table1 = pte2.ppn << PAGE_SHIFT
            for i1 in range(PTES_PER_PAGE):
                pte1 = PTE.unpack(self.memory.read(table1 + i1 * PTE_SIZE, 8))
                if not pte1.valid or pte1.is_leaf:
                    continue
                table0 = pte1.ppn << PAGE_SHIFT
                for i0 in range(PTES_PER_PAGE):
                    pte0 = PTE.unpack(
                        self.memory.read(table0 + i0 * PTE_SIZE, 8))
                    if not pte0.valid:
                        continue
                    vaddr = (i2 << 30) | (i1 << 21) | (i0 << 12)
                    if lo <= vaddr < hi:
                        yield vaddr, pte0
