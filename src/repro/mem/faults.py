"""Architectural memory-fault descriptions.

A :class:`PageFault` is raised by the MMU and caught by the core, which
converts it into a trap delivered to the (host-level) kernel model. The
``roload`` flag plus :class:`ROLoadFailure` reason let the kernel
differentiate the paper's new fault type from benign load page faults —
the exact discrimination `arch/riscv/mm/fault.c` performs in the paper.
"""

from __future__ import annotations

import enum

from repro.isa.opcodes import MemOp


# [roload-begin: processor]
class ROLoadFailure(enum.Enum):
    """Why a ROLoad check failed (None when the fault is not ROLoad's)."""

    NOT_PRESENT = "not_present"        # no valid mapping at all
    NOT_READABLE = "not_readable"      # page unreadable
    NOT_READ_ONLY = "not_read_only"    # page writable: pointee not immutable
    KEY_MISMATCH = "key_mismatch"      # wrong allowlist type
# [roload-end]


class PageFault(Exception):
    """A translation or permission failure for one memory access."""

    def __init__(self, vaddr: int, memop: str, *, roload: bool = False,
                 reason: "ROLoadFailure | None" = None,
                 insn_key: "int | None" = None,
                 page_key: "int | None" = None):
        self.vaddr = vaddr
        self.memop = memop
        self.roload = roload
        self.reason = reason
        self.insn_key = insn_key
        self.page_key = page_key
        detail = f"{memop} @ {vaddr:#x}"
        if roload:
            detail += f" [ROLoad {reason.value}"
            if reason is ROLoadFailure.KEY_MISMATCH:
                detail += f": insn key {insn_key}, page key {page_key}"
            detail += "]"
        super().__init__(detail)

    @property
    def scause(self) -> int:
        """RISC-V trap cause number for this fault."""
        if self.memop == MemOp.FETCH:
            return 12  # instruction page fault
        if self.memop in (MemOp.WRITE, MemOp.AMO):
            return 15  # store/AMO page fault
        return 13      # load page fault (ROLoad faults are load faults too)


class MisalignedAccess(Exception):
    """Address-misaligned access (cause 4/6)."""

    def __init__(self, vaddr: int, memop: str, size: int):
        self.vaddr = vaddr
        self.memop = memop
        self.size = size
        super().__init__(f"misaligned {memop} of {size} bytes @ {vaddr:#x}")

    @property
    def scause(self) -> int:
        if self.memop == MemOp.FETCH:
            return 0
        if self.memop in (MemOp.WRITE, MemOp.AMO):
            return 6
        return 4
