"""Sv39 page-table entries with the ROLoad *key* field.

A standard RV64 Sv39 PTE is 64 bits::

    63      54 53        10 9  8 7 6 5 4 3 2 1 0
    [reserved][    PPN     ][RSW][D A G U X W R V]

The paper re-uses the **reserved top 10 bits** (63:54) for the page key —
"Page table entries are fixed-size of 64 bits on 64-bit RISC-V systems, and
we reuse the previously reserved top 10 bits of each page table entry."
This module packs/unpacks exactly that layout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PageTableError
from repro.isa.opcodes import KEY_MAX

# Flag bit positions.
PTE_V = 1 << 0
PTE_R = 1 << 1
PTE_W = 1 << 2
PTE_X = 1 << 3
PTE_U = 1 << 4
PTE_G = 1 << 5
PTE_A = 1 << 6
PTE_D = 1 << 7

PPN_SHIFT = 10
PPN_BITS = 44
PPN_MASK = (1 << PPN_BITS) - 1
# [roload-begin: processor]
KEY_SHIFT = 54  # the previously reserved top 10 bits
# [roload-end]


@dataclass
class PTE:
    """A decoded page-table entry."""

    ppn: int = 0
    valid: bool = False
    readable: bool = False
    writable: bool = False
    executable: bool = False
    user: bool = False
    global_: bool = False
    accessed: bool = False
    dirty: bool = False
    key: int = 0

    @property
    def is_leaf(self) -> bool:
        """A valid PTE with any of R/W/X set is a leaf mapping; a valid PTE
        with none of them set points at the next-level table."""
        return self.readable or self.writable or self.executable

    @property
    def is_read_only(self) -> bool:
        """Read-only in the ROLoad sense: readable but not writable."""
        return self.readable and not self.writable

    def pack(self) -> int:
        """Encode to the 64-bit in-memory representation."""
        if not 0 <= self.key <= KEY_MAX:
            raise PageTableError(f"page key {self.key} out of range "
                                 f"(0..{KEY_MAX})")
        if not 0 <= self.ppn <= PPN_MASK:
            raise PageTableError(f"PPN {self.ppn:#x} out of range")
        word = (self.ppn << PPN_SHIFT) | (self.key << KEY_SHIFT)
        if self.valid:
            word |= PTE_V
        if self.readable:
            word |= PTE_R
        if self.writable:
            word |= PTE_W
        if self.executable:
            word |= PTE_X
        if self.user:
            word |= PTE_U
        if self.global_:
            word |= PTE_G
        if self.accessed:
            word |= PTE_A
        if self.dirty:
            word |= PTE_D
        return word

    @classmethod
    def unpack(cls, word: int) -> "PTE":
        """Decode from the 64-bit in-memory representation."""
        return cls(
            ppn=(word >> PPN_SHIFT) & PPN_MASK,
            valid=bool(word & PTE_V),
            readable=bool(word & PTE_R),
            writable=bool(word & PTE_W),
            executable=bool(word & PTE_X),
            user=bool(word & PTE_U),
            global_=bool(word & PTE_G),
            accessed=bool(word & PTE_A),
            dirty=bool(word & PTE_D),
            key=(word >> KEY_SHIFT) & KEY_MAX,
        )


def make_leaf(ppn: int, *, readable=False, writable=False, executable=False,
              user=True, key: int = 0) -> PTE:
    """Convenience constructor for a leaf mapping (A/D pre-set, as a kernel
    that doesn't emulate A/D hardware updates would do)."""
    if writable and not readable:
        raise PageTableError("writable-but-not-readable PTEs are reserved")
    return PTE(ppn=ppn, valid=True, readable=readable, writable=writable,
               executable=executable, user=user, accessed=True,
               dirty=writable, key=key)


def make_table_pointer(ppn: int) -> PTE:
    """A non-leaf PTE pointing at the next-level page table."""
    return PTE(ppn=ppn, valid=True)
