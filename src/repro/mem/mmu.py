"""MMU: address translation with the parallel ROLoad permission check.

This module is the direct analogue of the paper's Rocket ``Class TLB``
modification: the conventional page-permission check and the new ROLoad
check (page is read-only AND page key equals instruction key) are computed
independently and **ANDed** — "The output of this logic is then ANDed with
the original output of the page permission control logic. Thus, the
conventional page permission check and the newly introduced ROLoad checks
are done in parallel."

``roload_enabled`` models the baseline (unmodified) processor of §V-B: when
False the custom-0 opcode is simply not implemented, so the core raises an
illegal-instruction trap long before reaching here; the MMU also carries
no key logic (keys in PTEs land in reserved bits that the baseline
hardware ignores).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import MemOp
from repro.mem.faults import PageFault, ROLoadFailure
from repro.mem.pagetable import PageTableWalker
from repro.mem.physical import PAGE_SHIFT, PhysicalMemory
from repro.mem.pte import PTE
from repro.mem.tlb import TLB, TLBEntry
from repro.obs import OBS as _OBS


@dataclass
class TranslationResult:
    """Physical address plus the timing-relevant events of a translation."""

    paddr: int
    tlb_hit: bool
    walk_accesses: int = 0


@dataclass
class MMUStats:
    roload_checks: int = 0
    roload_faults: int = 0
    walks: int = 0
    translations: int = 0

    def reset(self) -> None:
        self.roload_checks = 0
        self.roload_faults = 0
        self.walks = 0
        self.translations = 0


class MMU:
    """Sv39 MMU with split I/D TLBs and ROLoad key checking."""

    def __init__(self, memory: PhysicalMemory, *, itlb_entries: int = 32,
                 dtlb_entries: int = 32, roload_enabled: bool = True):
        self.memory = memory
        self.walker = PageTableWalker(memory)
        self.itlb = TLB(itlb_entries, name="itlb")
        self.dtlb = TLB(dtlb_entries, name="dtlb")
        self.roload_enabled = roload_enabled
        # satp: 0 = bare (no translation); otherwise the root PPN.
        self.root_ppn = 0
        self.bare = True
        self.user_mode = True
        self.stats = MMUStats()
        # Bumped on every flush/root change; lets the core invalidate its
        # fetch fast-path cache without a callback.
        self.generation = 0
        # Host-side walk memo: vpn -> (leaf PTE address, raw PTE word,
        # TLB entry, walk accesses). A hit replays the exact
        # architectural effects of the walk it memoized — same entry,
        # same access count, same counters — after verifying that the
        # 8-byte leaf PTE is bit-identical, so kernel-side mutations
        # (munmap clearing a leaf, mprotect rewriting one) can never be
        # served stale even when no sfence follows them. Keyed by the
        # root so a context switch cannot alias address spaces; leaf
        # *addresses* are stable per (root, vpn) because intermediate
        # tables are never freed (bump allocator).
        self._walk_memo: dict = {}
        self._walk_memo_root = -1

    # -- configuration (satp writes, context switches) ----------------------

    def set_root(self, root_ppn: int) -> None:
        """Point at a page table and enable Sv39 translation."""
        self.root_ppn = root_ppn
        self.bare = False
        self.flush()

    def set_bare(self) -> None:
        """Disable translation (machine-mode boot environment)."""
        self.bare = True
        self.flush()

    def flush(self) -> None:
        """sfence.vma: invalidate both TLBs."""
        self.itlb.flush()
        self.dtlb.flush()
        self.generation += 1
        if _OBS.enabled:
            _OBS.events.emit("mmu.generation", cat="arch", scope="all",
                             generation=self.generation)

    def flush_page(self, vaddr: int) -> None:
        vpn = vaddr >> PAGE_SHIFT
        self.itlb.flush_page(vpn)
        self.dtlb.flush_page(vpn)
        self.generation += 1
        if _OBS.enabled:
            _OBS.events.emit("mmu.generation", cat="arch", scope="page",
                             vpn=vpn, generation=self.generation)

    # -- translation --------------------------------------------------------

    def translate(self, vaddr: int, memop: str,
                  insn_key: int = 0) -> TranslationResult:
        """Translate ``vaddr`` for ``memop``; raise :class:`PageFault` on
        any permission, presence, or ROLoad-check failure.

        ``insn_key`` is the key carried by the requesting ROLoad
        instruction (ignored for other memory operations).
        """
        self.stats.translations += 1
        if self.bare:
            return TranslationResult(paddr=vaddr, tlb_hit=True)

        tlb = self.itlb if memop == MemOp.FETCH else self.dtlb
        vpn = vaddr >> PAGE_SHIFT
        entry = tlb.lookup(vpn)
        walk_accesses = 0
        if entry is None:
            memo = self._walk_memo
            if self._walk_memo_root != self.root_ppn:
                memo.clear()
                self._walk_memo_root = self.root_ppn
            hit = memo.get(vpn)
            self.stats.walks += 1
            if hit is not None and self.memory.read(hit[0], 8) == hit[1]:
                _, _, entry, walk_accesses = hit
            else:
                result = self.walker.walk(self.root_ppn, vaddr)
                if result is None:
                    memo.pop(vpn, None)
                    raise self._fault(vaddr, memop, insn_key, None)
                walk_accesses = result.accesses
                pte = result.pte
                entry = TLBEntry(ppn=pte.ppn, readable=pte.readable,
                                 writable=pte.writable,
                                 executable=pte.executable, user=pte.user,
                                 key=pte.key)
                memo[vpn] = (result.pte_address,
                             self.memory.read(result.pte_address, 8),
                             entry, walk_accesses)
            tlb.insert(vpn, entry)
            tlb_hit = False
        else:
            tlb_hit = True

        self._check(vaddr, memop, insn_key, entry)
        paddr = (entry.ppn << PAGE_SHIFT) | (vaddr & ((1 << PAGE_SHIFT) - 1))
        return TranslationResult(paddr=paddr, tlb_hit=tlb_hit,
                                 walk_accesses=walk_accesses)

    # -- the permission logic -----------------------------------------------

    def _check(self, vaddr: int, memop: str, insn_key: int,
               entry: TLBEntry) -> None:
        """The parallel permission checks of the modified Class TLB."""
        if self.user_mode and not entry.user:
            raise self._fault(vaddr, memop, insn_key, entry)

        # Conventional page-permission control logic.
        if memop == MemOp.FETCH:
            conventional_ok = entry.executable
        elif memop in (MemOp.WRITE, MemOp.AMO):
            conventional_ok = entry.writable and (
                memop != MemOp.AMO or entry.readable)
        else:  # READ and READ_RO both require readability
            conventional_ok = entry.readable

        # [roload-begin: processor]
        # The newly introduced ROLoad check, computed in parallel.
        roload_ok = True
        if memop == MemOp.READ_RO and self.roload_enabled:
            self.stats.roload_checks += 1
            roload_ok = (entry.readable and not entry.writable
                         and entry.key == insn_key)
        # [roload-end]

        if not (conventional_ok and roload_ok):  # the AND gate
            raise self._fault(vaddr, memop, insn_key, entry)

    def _fault(self, vaddr: int, memop: str, insn_key: int,
               entry: "TLBEntry | None") -> PageFault:
        # [roload-begin: processor]
        if memop != MemOp.READ_RO or not self.roload_enabled:
            return PageFault(vaddr, memop)
        self.stats.roload_faults += 1
        if entry is None:
            reason = ROLoadFailure.NOT_PRESENT
            page_key = None
        elif not entry.readable or (self.user_mode and not entry.user):
            reason = ROLoadFailure.NOT_READABLE
            page_key = entry.key
        elif entry.writable:
            reason = ROLoadFailure.NOT_READ_ONLY
            page_key = entry.key
        else:
            reason = ROLoadFailure.KEY_MISMATCH
            page_key = entry.key
        return PageFault(vaddr, memop, roload=True, reason=reason,
                         insn_key=insn_key, page_key=page_key)
        # [roload-end]

    # -- debug helpers -------------------------------------------------------

    def probe(self, vaddr: int) -> "PTE | None":
        """Walk without side effects; for tests and debuggers."""
        result = self.walker.walk(self.root_ppn, vaddr)
        return result.pte if result else None
