"""Physical-memory-protection backend with keys (the MMU-less profile).

§II-D: "It is even easier to implement ROLoad on systems only with
physical memory protection mechanisms (e.g. embedded systems), making it
applicable to a wide range of systems, including low-end IoT devices."

This module models that deployment: a small table of physical regions
(RISC-V PMP / ARM MPU style), each with R/W/X permissions **and a key**.
The check semantics are identical to the paged MMU: a ROLoad succeeds iff
the region is readable, not writable, and its key matches. The embedded
SoC profile in :mod:`repro.soc` can use this instead of the paged MMU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigError
from repro.isa.opcodes import KEY_MAX, MemOp
from repro.mem.faults import PageFault, ROLoadFailure
from repro.mem.mmu import TranslationResult


@dataclass
class PMPRegion:
    """One protected physical region with a ROLoad key."""

    base: int
    size: int
    readable: bool = False
    writable: bool = False
    executable: bool = False
    key: int = 0

    def __post_init__(self):
        if self.size <= 0:
            raise ConfigError("PMP region size must be positive")
        if not 0 <= self.key <= KEY_MAX:
            raise ConfigError(f"PMP key {self.key} out of range")
        if self.writable and not self.readable:
            raise ConfigError("writable-but-not-readable region is invalid")

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    @property
    def is_read_only(self) -> bool:
        return self.readable and not self.writable


class KeyedPMP:
    """PMP-style checker: first matching region wins (like RISC-V PMP).

    Addresses matched by no region are unprotected RAM with full access
    and key 0 when ``default_allow`` is True (typical for flat embedded
    memory maps); otherwise they fault.
    """

    def __init__(self, regions: "Optional[List[PMPRegion]]" = None, *,
                 default_allow: bool = True, roload_enabled: bool = True):
        self.regions: List[PMPRegion] = list(regions or [])
        self.default_allow = default_allow
        self.roload_enabled = roload_enabled
        self.roload_checks = 0
        self.roload_faults = 0
        # PMP region configuration is static at run time in this model,
        # so the core's fetch fast path never needs invalidating.
        self.generation = 0

    def add_region(self, region: PMPRegion) -> None:
        self.regions.append(region)

    def region_for(self, addr: int) -> Optional[PMPRegion]:
        for region in self.regions:
            if region.contains(addr):
                return region
        return None

    def translate(self, addr: int, memop: str,
                  insn_key: int = 0) -> TranslationResult:
        """Check (no translation — physical addressing); same fault model
        as the paged MMU so the core is agnostic to the backend."""
        region = self.region_for(addr)
        if region is None:
            if self.default_allow and memop != MemOp.READ_RO:
                return TranslationResult(paddr=addr, tlb_hit=True)
            if memop == MemOp.READ_RO and self.roload_enabled:
                self.roload_checks += 1
                self.roload_faults += 1
                raise PageFault(addr, memop, roload=True,
                                reason=ROLoadFailure.NOT_READ_ONLY,
                                insn_key=insn_key, page_key=0)
            if self.default_allow:
                return TranslationResult(paddr=addr, tlb_hit=True)
            raise PageFault(addr, memop)

        if memop == MemOp.FETCH:
            conventional_ok = region.executable
        elif memop in (MemOp.WRITE, MemOp.AMO):
            conventional_ok = region.writable
        else:
            conventional_ok = region.readable

        roload_ok = True
        if memop == MemOp.READ_RO and self.roload_enabled:
            self.roload_checks += 1
            roload_ok = region.is_read_only and region.key == insn_key

        if conventional_ok and roload_ok:
            return TranslationResult(paddr=addr, tlb_hit=True)

        if memop == MemOp.READ_RO and self.roload_enabled:
            self.roload_faults += 1
            if not region.readable:
                reason = ROLoadFailure.NOT_READABLE
            elif region.writable:
                reason = ROLoadFailure.NOT_READ_ONLY
            else:
                reason = ROLoadFailure.KEY_MISMATCH
            raise PageFault(addr, memop, roload=True, reason=reason,
                            insn_key=insn_key, page_key=region.key)
        raise PageFault(addr, memop)

    # The paged-MMU interface bits the core may call.
    def flush(self) -> None:  # PMP has no TLB state
        pass

    def flush_page(self, vaddr: int) -> None:
        pass
