"""Memory hierarchy: physical memory, Sv39 paging with ROLoad keys, TLBs,
timing caches, the key-checking MMU, and the keyed-PMP embedded profile."""

from repro.mem.physical import PAGE_MASK, PAGE_SHIFT, PAGE_SIZE, \
    PhysicalMemory
from repro.mem.pte import PTE, make_leaf, make_table_pointer
from repro.mem.pagetable import (
    FrameAllocator,
    PageTableBuilder,
    PageTableWalker,
    WalkResult,
)
from repro.mem.tlb import TLB, TLBEntry
from repro.mem.cache import Cache
from repro.mem.faults import MisalignedAccess, PageFault, ROLoadFailure
from repro.mem.mmu import MMU, MMUStats, TranslationResult
from repro.mem.pmp import KeyedPMP, PMPRegion

__all__ = [
    "PAGE_MASK", "PAGE_SHIFT", "PAGE_SIZE", "PhysicalMemory",
    "PTE", "make_leaf", "make_table_pointer",
    "FrameAllocator", "PageTableBuilder", "PageTableWalker", "WalkResult",
    "TLB", "TLBEntry", "Cache",
    "MisalignedAccess", "PageFault", "ROLoadFailure",
    "MMU", "MMUStats", "TranslationResult",
    "KeyedPMP", "PMPRegion",
]
