"""roload-audit: check a REX image for ROLoad deployment violations.

    roload-audit prog.rex [--strict]

Exit codes: 0 clean, 1 usage/load error, 2 errors found, 3 warnings
found with --strict.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.asm import Executable, audit_image, collect_roload_keys
from repro.errors import ReproError
from repro.tools.cli import add_config_flag, config_scope


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="roload-audit",
        description="Audit a REX image's ROLoad layout invariants.")
    parser.add_argument("image", type=Path)
    parser.add_argument("--strict", action="store_true",
                        help="treat warnings as failures")
    add_config_flag(parser)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        image = Executable.from_bytes(args.image.read_bytes())
        with config_scope(args):
            return _audit(args, image)
    except (ReproError, OSError) as error:
        print(f"roload-audit: {error}", file=sys.stderr)
        return 1


def _audit(args, image) -> int:
    keys = sorted(collect_roload_keys(image))
    keyed_segments = [s for s in image.segments if s.key]
    print(f"{args.image}: {len(image.segments)} segments, "
          f"{len(keyed_segments)} keyed, ROLoad keys used: "
          f"{keys if keys else 'none'}")
    findings = audit_image(image)
    for finding in findings:
        print(f"  {finding}")
    errors = [f for f in findings if f.severity == "error"]
    warnings = [f for f in findings if f.severity == "warning"]
    if errors:
        print(f"FAILED: {len(errors)} error(s)")
        return 2
    if warnings and args.strict:
        print(f"FAILED (strict): {len(warnings)} warning(s)")
        return 3
    print("OK")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
