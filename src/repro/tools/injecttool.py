"""roload-inject: fault injection and replay-determinism verification.

    roload-inject campaign [--points N] [--reps K] [--kinds a,b,...]
                           [--profile P] [--table OUT.json]
    roload-inject verify   [--stop-after N] [--reps K] [--profile P]
                           [--tiers slow,tier1,tier2,tier3,tier4]
                           [--snapshot-out S.snap] [--journal-out J.json]

``campaign`` snapshots a hardened victim at stratified instruction
counts, perturbs PTE key bits / page writability / allowlist pointers,
replays each corruption to completion, and prints a §V-style detection
table. Exit 1 if any injection escapes detection.

``verify`` is the replay determinism gate: record a reference run with
a mid-run snapshot, then restore and replay it under each interpreter
tier, asserting bit-identical final architectural state hashes and
identical architectural event sequences. Exit 1 on any divergence.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.tools.cli import (add_config_flag, add_obs_flags, config_scope,
                             enable_obs, obs_requested, write_obs_outputs)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="roload-inject",
        description="Fault injection + replay determinism over snapshots.")
    sub = parser.add_subparsers(dest="command", required=True)

    campaign = sub.add_parser(
        "campaign", help="run the fault-injection campaign and print the "
                         "detection table")
    campaign.add_argument("--points", type=int, default=10,
                          help="stratified snapshot points (default 10; "
                               "6 injections per point)")
    campaign.add_argument("--reps", type=int, default=8,
                          help="vcall+icall rounds in the unrolled victim")
    campaign.add_argument("--kinds", default=None,
                          help="comma-separated injection classes "
                               "(default: all of pte-key, pte-writable, "
                               "allowlist-ptr)")
    campaign.add_argument("--profile", default="processor+kernel",
                          help="system profile (§V-B)")
    campaign.add_argument("--table", type=Path, default=None,
                          metavar="OUT.json",
                          help="also write the detection table (with raw "
                               "per-injection records) as JSON")
    campaign.add_argument("--quiet", action="store_true",
                          help="suppress the per-injection log lines")
    add_obs_flags(campaign, what="the campaign")
    add_config_flag(campaign)

    verify = sub.add_parser(
        "verify", help="record a reference run and replay it on every "
                       "tier; fail on any divergence")
    verify.add_argument("--stop-after", type=int, default=200,
                        help="snapshot point, in retired instructions "
                             "(default 200)")
    verify.add_argument("--reps", type=int, default=8,
                        help="vcall+icall rounds in the reference victim")
    verify.add_argument("--profile", default="processor+kernel",
                        help="system profile (§V-B)")
    verify.add_argument("--tiers",
                        default="slow,tier1,tier2,tier3,tier4",
                        help="comma-separated tiers to replay under")
    verify.add_argument("--snapshot-out", type=Path, default=None,
                        metavar="S.snap",
                        help="also save the reference snapshot")
    verify.add_argument("--journal-out", type=Path, default=None,
                        metavar="J.json",
                        help="also save the reference journal")
    add_config_flag(verify)
    return parser


def _campaign(args) -> int:
    from repro.replay import run_campaign
    observing = obs_requested(args)
    if observing:
        enable_obs(args)
    kinds = tuple(k for k in (args.kinds or "").split(",") if k) or None
    log = None if args.quiet else \
        (lambda line: print(line, file=sys.stderr))
    kwargs = {"reps": args.reps, "points": args.points,
              "profile": args.profile, "log": log}
    if kinds:
        kwargs["kinds"] = kinds
    report = run_campaign(**kwargs)
    print(report.format_table())
    print(f"\n{report.injections} injections over "
          f"{report.total_instructions} instructions "
          f"(baseline exit {report.baseline_exit}); "
          f"escapes: {len(report.escapes)}")
    if args.table is not None:
        report.save_json(args.table)
        print(f"[detection table in {args.table}]")
    if observing:
        write_obs_outputs(args)
    if not report.ok:
        for record in report.escapes:
            print(f"ESCAPE: {record.kind} @ {record.trigger}: "
                  f"{record.target} — {record.detail}", file=sys.stderr)
        return 1
    return 0


def _verify(args) -> int:
    from repro.replay import (build_inject_image, record_reference,
                              verify_replay)
    tiers = tuple(t for t in args.tiers.split(",") if t)
    image = build_inject_image(args.reps)
    reference = record_reference(image, stop_after=args.stop_after,
                                 profile=args.profile)
    report = verify_replay(reference, tiers=tiers)
    print(report.describe())
    if args.snapshot_out is not None:
        reference.snapshot.save(args.snapshot_out)
        print(f"[snapshot in {args.snapshot_out}]")
    if args.journal_out is not None:
        reference.journal.save(args.journal_out)
        print(f"[journal in {args.journal_out}]")
    if not report.ok:
        print("roload-inject: replay diverged between tiers",
              file=sys.stderr)
        return 1
    print(f"replay deterministic across {', '.join(tiers)}")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with config_scope(args):
            if args.command == "campaign":
                return _campaign(args)
            return _verify(args)
    except ReproError as error:
        print(f"roload-inject: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
