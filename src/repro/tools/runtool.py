"""roload-run: execute an image on the simulated ROLoad system.

    roload-run prog.rex [--profile processor+kernel] [--max N]
                        [--trace N] [--hot N] [--stats]
                        [--trace-out TRACE.json] [--metrics-out M.json]
                        [--config KEY=VAL ...]

``--trace-out`` writes a Chrome trace-event JSON of the run (opens
directly in Perfetto / chrome://tracing); ``--metrics-out`` writes a
metrics snapshot whose counters are read live from the simulator —
bit-for-bit the architectural counters. Both enable the observability
layer (DESIGN.md §10) for the run.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.asm import Executable
from repro.cpu.tracer import Profiler, Tracer
from repro.errors import ReproError, SimulationError
from repro.kernel import Kernel
from repro.soc import PROFILES, build_system
from repro.tools.cli import (add_config_flag, add_obs_flags, config_scope,
                             enable_obs, obs_requested, write_obs_outputs)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="roload-run",
        description="Run a REX image on the simulated ROLoad system.")
    parser.add_argument("image", type=Path)
    parser.add_argument("--profile", choices=PROFILES,
                        default="processor+kernel",
                        help="system profile (§V-B)")
    parser.add_argument("--max", type=int, default=200_000_000,
                        help="instruction budget")
    parser.add_argument("--trace", type=int, default=0, metavar="N",
                        help="print the last N executed instructions")
    parser.add_argument("--hot", type=int, default=0, metavar="N",
                        help="print the N hottest pcs by cycles")
    parser.add_argument("--stats", action="store_true",
                        help="print timing/cache/TLB statistics")
    add_obs_flags(parser, what="the run")
    add_config_flag(parser)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        image = Executable.from_bytes(args.image.read_bytes())
    except (ReproError, OSError) as error:
        print(f"roload-run: {error}", file=sys.stderr)
        return 1
    try:
        with config_scope(args):
            return _run(args, image)
    except ReproError as error:
        print(f"roload-run: {error}", file=sys.stderr)
        return 1


def _run(args, image) -> int:
    observing = obs_requested(args)
    system = build_system(args.profile)
    if observing:
        from repro import obs
        enable_obs(args)
        obs.register_system(system)
    kernel = Kernel(system)
    if observing:
        from repro import obs
        obs.register_kernel(kernel)
    process = kernel.create_process(image, name=args.image.name)

    tracer = Tracer(system.core, limit=max(args.trace, 1))
    profiler = Profiler(system.core)
    if args.trace:
        tracer.attach()
    if args.hot:
        profiler.attach()
    try:
        kernel.run(process, max_instructions=args.max)
    except SimulationError as error:
        print(f"roload-run: {error}", file=sys.stderr)
        return 3

    if process.stdout:
        sys.stdout.write(process.stdout_text)
    if process.stderr:
        sys.stderr.write(process.stderr_text)
    print(f"[{args.profile}] {process.status()}")
    for event in kernel.security_log:
        print(f"[security] {event}")
    if args.trace:
        print("\n-- trace (most recent) --")
        print(tracer.format(last=args.trace))
    if args.hot:
        print("\n-- hottest pcs --")
        print(profiler.format(args.hot, symbols=image.symbols))
    if observing:
        write_obs_outputs(args)
    if args.stats:
        stats = system.timing.stats
        print("\n-- statistics --")
        print(f"instructions   {stats.instructions:>14,d}")
        print(f"cycles         {stats.cycles:>14,d}")
        cpi = stats.cycles / stats.instructions if stats.instructions \
            else 0.0
        print(f"CPI            {cpi:>14.3f}")
        print(f"icache misses  {stats.icache_misses:>14,d}")
        print(f"dcache misses  {stats.dcache_misses:>14,d}")
        print(f"memory (KiB)   {process.memory_kib():>14,.0f}")
        if hasattr(system.mmu, "stats"):
            print(f"ROLoad checks  "
                  f"{system.mmu.stats.roload_checks:>14,d}")
    if process.state.value == "exited":
        return process.exit_code or 0
    return 128 + (process.signal.number if process.signal else 0)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
