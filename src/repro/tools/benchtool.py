"""roload-bench: wall-clock benchmark of the simulator itself.

    roload-bench [--smoke] [--scale S] [--jobs N] [--benchmarks a,b,...]
                 [--variants base,vcall,...] [--no-compare] [--out PATH]

Times a fixed workload sweep end to end (generate + compile + simulate)
and reports simulator throughput in sim-MIPS (millions of simulated
instructions per wall-clock second). By default it runs the sweep twice
— once in the seed configuration (slow path, serial) and once with the
fast path plus REPRO_JOBS workers — and records both, plus the speedup,
in a ``BENCH_interp.json`` record so the performance trajectory of the
interpreter is tracked PR over PR.

The architectural results of both configurations are asserted identical
(cycles, instructions, exit codes): a perf record produced by a run that
changed architecture is worthless.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.errors import ReproError
from repro.eval.measure import resolve_jobs, run_benchmarks

# A small, representative slice of the Figure 4/5 sweep: two C integer
# workloads and two C++ (virtual-call-heavy) ones.
DEFAULT_BENCHMARKS = ("429.mcf", "401.bzip2", "473.astar", "471.omnetpp")
DEFAULT_VARIANTS = ("base", "vcall")
SMOKE_BENCHMARKS = ("429.mcf",)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="roload-bench",
        description="Measure simulator wall-clock throughput (sim MIPS).")
    parser.add_argument("--benchmarks", default=",".join(DEFAULT_BENCHMARKS),
                        help="comma-separated benchmark names")
    parser.add_argument("--variants", default=",".join(DEFAULT_VARIANTS),
                        help="comma-separated variants to measure")
    parser.add_argument("--scale", type=float, default=0.2,
                        help="workload scale (REPRO_BENCH_SCALE analogue)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the fast configuration "
                             "(default: REPRO_JOBS or 4)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sweep for CI sanity: one benchmark, "
                             "base only, scale 0.05, no JSON record")
    parser.add_argument("--no-compare", action="store_true",
                        help="run only the fast configuration (skip the "
                             "seed-equivalent slow/serial reference)")
    parser.add_argument("--out", type=Path, default=Path("BENCH_interp.json"),
                        help="where to write the JSON record")
    return parser


def _run_sweep(benchmarks, variants, scale, *, fast: bool, jobs: int):
    """One timed sweep under an explicit fast-path/jobs configuration."""
    os.environ["REPRO_FASTPATH"] = "1" if fast else "0"
    start = time.perf_counter()
    runs = run_benchmarks(benchmarks, variants, scale=scale, jobs=jobs)
    elapsed = time.perf_counter() - start
    instructions = sum(m.instructions for run in runs.values()
                       for m in run.measurements.values())
    cycles = sum(m.cycles for run in runs.values()
                 for m in run.measurements.values())
    return {
        "fast_path": fast,
        "jobs": jobs,
        "wall_seconds": round(elapsed, 3),
        "instructions": instructions,
        "cycles": cycles,
        "sim_mips": round(instructions / elapsed / 1e6, 4) if elapsed else 0,
        "measurements": {
            f"{name}/{variant}": {
                "cycles": m.cycles, "instructions": m.instructions,
                "exit_code": m.exit_code,
                "dtlb_miss_rate": m.dtlb_miss_rate,
                "dcache_miss_rate": m.dcache_miss_rate,
            }
            for name, run in runs.items()
            for variant, m in run.measurements.items()
        },
    }


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    benchmarks = tuple(b for b in args.benchmarks.split(",") if b)
    variants = tuple(v for v in args.variants.split(",") if v)
    scale = args.scale
    if args.smoke:
        benchmarks, variants, scale = SMOKE_BENCHMARKS, ("base",), 0.05
    jobs = args.jobs if args.jobs is not None else \
        (resolve_jobs(None) if "REPRO_JOBS" in os.environ else 4)
    jobs = max(1, jobs)

    saved_fastpath = os.environ.get("REPRO_FASTPATH")
    try:
        fast = _run_sweep(benchmarks, variants, scale, fast=True, jobs=jobs)
        print(f"fast: {fast['wall_seconds']}s, {fast['sim_mips']} sim-MIPS "
              f"(jobs={jobs})")
        record = {
            "tool": "roload-bench",
            "scale": scale,
            "benchmarks": list(benchmarks),
            "variants": list(variants),
            "python": sys.version.split()[0],
            "fast": fast,
        }
        if not (args.no_compare or args.smoke):
            slow = _run_sweep(benchmarks, variants, scale,
                              fast=False, jobs=1)
            print(f"seed-equivalent (slow, serial): {slow['wall_seconds']}s, "
                  f"{slow['sim_mips']} sim-MIPS")
            if slow["measurements"] != fast["measurements"]:
                raise ReproError(
                    "fast and slow sweeps disagree architecturally — "
                    "refusing to record a perf number for a broken "
                    "simulator")
            speedup = slow["wall_seconds"] / fast["wall_seconds"] \
                if fast["wall_seconds"] else 0.0
            record["slow"] = slow
            record["speedup"] = round(speedup, 2)
            print(f"speedup: {record['speedup']}x")
    except ReproError as error:
        print(f"roload-bench: {error}", file=sys.stderr)
        return 1
    finally:
        if saved_fastpath is None:
            os.environ.pop("REPRO_FASTPATH", None)
        else:
            os.environ["REPRO_FASTPATH"] = saved_fastpath

    if args.smoke:
        print("smoke ok")
        return 0
    args.out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"[recorded in {args.out}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
