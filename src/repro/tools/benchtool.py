"""roload-bench: wall-clock benchmark of the simulator itself.

    roload-bench [--smoke] [--scale S] [--jobs N] [--benchmarks a,b,...]
                 [--variants base,vcall,...] [--no-compare] [--out PATH]
                 [--check-against BASELINE [--tolerance T] [--report-only]]
                 [--trace-out TRACE.json] [--metrics-out METRICS.json]
                 [--profile]

Times a fixed workload sweep end to end (generate + compile + simulate)
and reports simulator throughput in sim-MIPS (millions of simulated
instructions per wall-clock second). By default it runs the sweep five
times — once per interpreter tier:

    slow   REPRO_FASTPATH=0             the seed configuration, serial
    tier1  REPRO_FASTPATH=1 REPRO_JIT=0 block replay (PR 1)
    tier2  REPRO_FASTPATH=1 REPRO_JIT=1 REPRO_TIER3=0 trace compiler (§9)
    tier3  REPRO_FASTPATH=1 REPRO_JIT=1 REPRO_TIER3=1 region compiler (§12)
    tier4  ... REPRO_TIER4=1            flat-core backend (§13)

and records all five, plus the pairwise speedups, in a
``BENCH_interp.json`` record (schema_version 5) so the performance
trajectory of the interpreter is tracked PR over PR. Schema v3 added a
per-tier ``residency`` section: which interpreter tier retired the
instructions, compile time, and invalidation causes (DESIGN.md §10).
Schema v4 added the tier-3 sweep (region counters in ``residency``) and
fixed the host metadata to record the real ``os.cpu_count()`` plus the
effective worker count. Schema v5 adds the tier-4 flat-core sweep
(``tier4_retired``/``flat_regions_compiled`` in ``residency``) and the
``tier4_over_tier3``/``tier4_over_slow`` speedups.

``--profile`` wraps the top-tier sweep in :mod:`cProfile` and writes a
pstats artifact next to the JSON record (``<out>.pstats``) so a perf
regression caught by the gate comes with the profile that explains it.
Profiling captures in-process frames only, so it forces ``--jobs 1``.

``--trace-out``/``--metrics-out`` enable the observability layer for
the sweep and export a Chrome trace-event JSON (opens in Perfetto) and
a metrics snapshot. Event capture is in-process, so these flags force
``--jobs 1``.

The architectural results of all tiers are asserted identical (cycles,
instructions, exit codes, miss rates): a perf record produced by a run
that changed architecture is worthless.

``--check-against`` turns the tool into a regression gate: it re-runs a
tier-4-only sweep with the baseline record's parameters and fails (exit
1) when throughput drops more than ``--tolerance`` (default 15%) below
the recorded value (older v3/v4 baselines gate against their recorded
tier-3 number). ``--report-only`` prints the verdict but always
exits 0 — for CI legs on shared, noisy runners.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro import config as _config
from repro.errors import ReproError
from repro.eval.measure import resolve_jobs, run_benchmarks
from repro.tools.cli import (add_config_flag, add_obs_flags, config_scope,
                             enable_obs, obs_requested, write_obs_outputs)

SCHEMA_VERSION = 5

# A small, representative slice of the Figure 4/5 sweep: two C integer
# workloads and two C++ (virtual-call-heavy) ones.
DEFAULT_BENCHMARKS = ("429.mcf", "401.bzip2", "473.astar", "471.omnetpp")
DEFAULT_VARIANTS = ("base", "vcall")
SMOKE_BENCHMARKS = ("429.mcf",)

# The standard sweep scale. Large enough to measure steady-state
# throughput — tier-2 compilation amortizes and hot compiled blocks
# dominate (at scale 1.0 cold start still dilutes the tier ratios by
# ~15%); the smoke sweep stays tiny because it only checks that the
# tool runs.
DEFAULT_SCALE = 8.0
SMOKE_SCALE = 0.05

DEFAULT_TOLERANCE = 0.15


@contextlib.contextmanager
def _profiled(profiler):
    """Enable a cProfile.Profile around a sweep (no-op when None)."""
    if profiler is None:
        yield
        return
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()


def profile_path(out: Path) -> Path:
    """The pstats artifact written next to the JSON record."""
    return out.with_suffix(".pstats")

# Tier name -> config field overrides (repro.config.TIERS). The slow
# tier is always serial; it is the seed configuration the whole
# trajectory is measured against.
TIERS = _config.TIERS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="roload-bench",
        description="Measure simulator wall-clock throughput (sim MIPS).")
    parser.add_argument("--benchmarks", default=",".join(DEFAULT_BENCHMARKS),
                        help="comma-separated benchmark names")
    parser.add_argument("--variants", default=",".join(DEFAULT_VARIANTS),
                        help="comma-separated variants to measure")
    parser.add_argument("--scale", type=float, default=None,
                        help=f"workload scale (default {DEFAULT_SCALE}; "
                             f"gate mode defaults to the baseline's scale)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the fast tiers "
                             "(default: REPRO_JOBS or 4)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sweep for CI sanity: one benchmark, "
                             "base only, tier 4 only (writes a JSON record "
                             "only if --out is given explicitly)")
    parser.add_argument("--no-compare", action="store_true",
                        help="run only the tier-4 configuration (skip the "
                             "tier-3/tier-2/tier-1/seed references)")
    parser.add_argument("--profile", action="store_true",
                        help="profile the top-tier sweep with cProfile and "
                             "write <out>.pstats (forces --jobs 1)")
    parser.add_argument("--out", type=Path, default=None,
                        help="where to write the JSON record "
                             "(default BENCH_interp.json)")
    parser.add_argument("--check-against", type=Path, default=None,
                        metavar="BASELINE",
                        help="regression-gate mode: compare a fresh tier-4 "
                             "sweep against this recorded BENCH_interp.json")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional sim-MIPS drop in gate mode "
                             f"(default {DEFAULT_TOLERANCE})")
    parser.add_argument("--report-only", action="store_true",
                        help="gate mode: print the verdict but exit 0")
    add_obs_flags(parser, what="the sweep (forces --jobs 1)")
    add_config_flag(parser)
    return parser


def host_info(jobs: "int | None" = None) -> dict:
    """Host metadata embedded in the record — perf numbers are only
    comparable between records from similar hosts.

    Records both the host's CPU count and the *effective* worker count
    the sweep actually used: earlier records carried only ``cpu_count``,
    which on a 1-CPU container read as ``cpu_count: 1`` with no way to
    tell whether the sweep itself ran serial or oversubscribed.
    """
    info = {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
    }
    if jobs is not None:
        info["jobs"] = jobs
    return info


def aggregate_residency(runs) -> dict:
    """Sum the per-measurement tier-residency profiles of a sweep."""
    total = {"retired": 0, "tier0_retired": 0, "tier1_retired": 0,
             "tier2_retired": 0, "tier3_retired": 0, "tier4_retired": 0,
             "jit_compiled": 0, "jit_flushes": 0,
             "jit_compile_seconds": 0.0, "regions_compiled": 0,
             "flat_regions_compiled": 0, "region_side_exits": 0,
             "region_compile_seconds": 0.0, "flush_causes": {}}
    for run in runs.values():
        for m in run.measurements.values():
            residency = getattr(m, "tier_residency", None)
            if not residency:
                continue
            for key in ("retired", "tier0_retired", "tier1_retired",
                        "tier2_retired", "tier3_retired", "tier4_retired",
                        "jit_compiled", "jit_flushes", "regions_compiled",
                        "flat_regions_compiled", "region_side_exits"):
                total[key] += residency.get(key, 0)
            for key in ("jit_compile_seconds", "region_compile_seconds"):
                total[key] += residency.get(key, 0.0)
            for cause, count in residency.get("flush_causes", {}).items():
                total["flush_causes"][cause] = \
                    total["flush_causes"].get(cause, 0) + count
    for key in ("jit_compile_seconds", "region_compile_seconds"):
        total[key] = round(total[key], 6)
    if total["retired"]:
        for tier in ("tier0", "tier1", "tier2", "tier3", "tier4"):
            total[f"{tier}_frac"] = round(
                total[f"{tier}_retired"] / total["retired"], 6)
    return total


def format_residency(residency: dict) -> str:
    retired = residency.get("retired", 0)
    if not retired:
        return "residency: no instructions retired"
    parts = [f"{tier} {100.0 * residency.get(f'{tier}_frac', 0.0):.1f}%"
             for tier in ("tier4", "tier3", "tier2", "tier1", "tier0")]
    return (f"residency: {' / '.join(parts)} of {retired:,d} retired "
            f"({residency.get('jit_compiled', 0)} blocks compiled in "
            f"{residency.get('jit_compile_seconds', 0.0):.3f}s, "
            f"{residency.get('regions_compiled', 0)} regions in "
            f"{residency.get('region_compile_seconds', 0.0):.3f}s)")


def _run_sweep(benchmarks, variants, scale, *, tier: str, jobs: int):
    """One timed sweep under an explicit tier configuration.

    The tier's knobs are applied through :func:`repro.config.env_knobs`
    so forked worker processes inherit them, and restored on exit.
    """
    with _config.env_knobs(**TIERS[tier]):
        start = time.perf_counter()
        runs = run_benchmarks(benchmarks, variants, scale=scale, jobs=jobs)
        elapsed = time.perf_counter() - start
        tier_config = _config.current()
    instructions = sum(m.instructions for run in runs.values()
                       for m in run.measurements.values())
    cycles = sum(m.cycles for run in runs.values()
                 for m in run.measurements.values())
    # Throughput is computed over simulation time (kernel.run) only:
    # workload generation, IR compilation and system construction cost
    # the same in every tier and would otherwise dilute the comparison.
    sim_seconds = sum(getattr(m, "sim_seconds", 0.0)
                      for run in runs.values()
                      for m in run.measurements.values())
    denominator = sim_seconds or elapsed
    return {
        "tier": tier,
        "fast_path": tier_config.fast_path,
        "jit": tier_config.jit,
        "tier3": tier_config.tier3,
        "tier4": tier_config.tier4,
        "jobs": jobs,
        "wall_seconds": round(elapsed, 3),
        "sim_seconds": round(sim_seconds, 3),
        "instructions": instructions,
        "cycles": cycles,
        "sim_mips": round(instructions / denominator / 1e6, 4)
        if denominator else 0,
        "residency": aggregate_residency(runs),
        "measurements": {
            f"{name}/{variant}": {
                "cycles": m.cycles, "instructions": m.instructions,
                "exit_code": m.exit_code,
                "dtlb_miss_rate": m.dtlb_miss_rate,
                "dcache_miss_rate": m.dcache_miss_rate,
            }
            for name, run in runs.items()
            for variant, m in run.measurements.items()
        },
    }


def build_record(benchmarks, variants, scale, tiers: dict,
                 jobs: "int | None" = None) -> dict:
    """Assemble the schema-v5 BENCH_interp.json record from tier sweeps."""
    record = {
        "schema_version": SCHEMA_VERSION,
        "tool": "roload-bench",
        "scale": scale,
        "benchmarks": list(benchmarks),
        "variants": list(variants),
        "host": host_info(jobs),
        "tiers": tiers,
    }
    def seconds(sweep: dict) -> float:
        return sweep.get("sim_seconds") or sweep["wall_seconds"]

    speedup = {}
    for num, den, key in (("tier1", "slow", "tier1_over_slow"),
                          ("tier2", "tier1", "tier2_over_tier1"),
                          ("tier2", "slow", "tier2_over_slow"),
                          ("tier3", "tier2", "tier3_over_tier2"),
                          ("tier3", "tier1", "tier3_over_tier1"),
                          ("tier3", "slow", "tier3_over_slow"),
                          ("tier4", "tier3", "tier4_over_tier3"),
                          ("tier4", "slow", "tier4_over_slow")):
        if num in tiers and den in tiers and seconds(tiers[num]):
            speedup[key] = round(seconds(tiers[den]) / seconds(tiers[num]), 2)
    if speedup:
        record["speedup"] = speedup
    return record


def baseline_mips(record: dict) -> float:
    """Reference sim-MIPS of a recorded run; understands the v5 schema
    (``tiers.tier4``) down through the PR 1 v1 schema (``fast``)."""
    if "tiers" in record:
        tiers = record["tiers"]
        for tier in ("tier4", "tier3", "tier2", "tier1", "slow"):
            if tier in tiers:
                return float(tiers[tier]["sim_mips"])
        raise ReproError("baseline record has an empty 'tiers' table")
    if "fast" in record:
        return float(record["fast"]["sim_mips"])
    raise ReproError("unrecognized baseline record (no 'tiers', no 'fast')")


def evaluate_gate(current_mips: float, baseline: dict,
                  tolerance: float = DEFAULT_TOLERANCE):
    """Gate verdict: (ok, reference_mips, floor_mips). Fails only on a
    drop below ``reference * (1 - tolerance)`` — being faster than the
    record is never an error."""
    reference = baseline_mips(baseline)
    floor = reference * (1.0 - tolerance)
    return current_mips >= floor, reference, floor


def _run_gate(args, benchmarks, variants, jobs, profiler=None) -> int:
    baseline = json.loads(args.check_against.read_text())
    # Compare like with like: reuse the baseline's sweep parameters
    # unless overridden on the command line.
    scale = args.scale if args.scale is not None \
        else float(baseline.get("scale", DEFAULT_SCALE))
    if "benchmarks" in baseline:
        benchmarks = tuple(baseline["benchmarks"])
    if "variants" in baseline:
        variants = tuple(baseline["variants"])
    with _profiled(profiler):
        sweep = _run_sweep(benchmarks, variants, scale, tier="tier4",
                           jobs=jobs)
    ok, reference, floor = evaluate_gate(sweep["sim_mips"], baseline,
                                         args.tolerance)
    verdict = "ok" if ok else "REGRESSION"
    print(f"gate: current {sweep['sim_mips']} sim-MIPS vs recorded "
          f"{reference} (floor {floor:.4f} at tolerance "
          f"{args.tolerance}): {verdict}")
    print(f"gate {format_residency(sweep['residency'])}")
    if args.report_only:
        return 0
    return 0 if ok else 1


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with config_scope(args):
            return _main(args)
    except ReproError as error:
        print(f"roload-bench: {error}", file=sys.stderr)
        return 1


def _main(args) -> int:
    benchmarks = tuple(b for b in args.benchmarks.split(",") if b)
    variants = tuple(v for v in args.variants.split(",") if v)
    scale = args.scale if args.scale is not None else DEFAULT_SCALE
    if args.smoke:
        benchmarks, variants, scale = SMOKE_BENCHMARKS, ("base",), SMOKE_SCALE
    # Worker count: explicit flag, else the REPRO_JOBS knob (via the
    # config layer), else 4 for a timed sweep.
    if args.jobs is not None:
        jobs = args.jobs
    elif "REPRO_JOBS" in os.environ:
        jobs = resolve_jobs(None)
    else:
        jobs = 4
    # Never oversubscribe a timed sweep: extra workers on a busy host
    # only add scheduling noise to the per-pair simulation clocks.
    jobs = max(1, min(jobs, os.cpu_count() or 1))

    observing = obs_requested(args)
    if observing:
        enable_obs(args)
        if jobs != 1:
            print("note: --trace-out/--metrics-out capture events "
                  "in-process; forcing --jobs 1")
            jobs = 1

    profiler = None
    if args.profile:
        import cProfile
        profiler = cProfile.Profile()
        if jobs != 1:
            print("note: --profile captures in-process frames; "
                  "forcing --jobs 1")
            jobs = 1

    out = args.out if args.out is not None else Path("BENCH_interp.json")

    if args.check_against is not None:
        code = _run_gate(args, benchmarks, variants, jobs, profiler)
        if profiler is not None:
            profiler.dump_stats(profile_path(out))
            print(f"[profile in {profile_path(out)}]")
        if observing:
            write_obs_outputs(args)
        return code
    tiers = {}
    with _profiled(profiler):
        tiers["tier4"] = _run_sweep(benchmarks, variants, scale,
                                    tier="tier4", jobs=jobs)
    print(f"tier4: {tiers['tier4']['wall_seconds']}s, "
          f"{tiers['tier4']['sim_mips']} sim-MIPS (jobs={jobs})")
    print(f"tier4 {format_residency(tiers['tier4']['residency'])}")
    if not (args.no_compare or args.smoke):
        tiers["tier3"] = _run_sweep(benchmarks, variants, scale,
                                    tier="tier3", jobs=jobs)
        print(f"tier3: {tiers['tier3']['wall_seconds']}s, "
              f"{tiers['tier3']['sim_mips']} sim-MIPS (jobs={jobs})")
        print(f"tier3 {format_residency(tiers['tier3']['residency'])}")
        tiers["tier2"] = _run_sweep(benchmarks, variants, scale,
                                    tier="tier2", jobs=jobs)
        print(f"tier2: {tiers['tier2']['wall_seconds']}s, "
              f"{tiers['tier2']['sim_mips']} sim-MIPS (jobs={jobs})")
        tiers["tier1"] = _run_sweep(benchmarks, variants, scale,
                                    tier="tier1", jobs=jobs)
        print(f"tier1: {tiers['tier1']['wall_seconds']}s, "
              f"{tiers['tier1']['sim_mips']} sim-MIPS (jobs={jobs})")
        tiers["slow"] = _run_sweep(benchmarks, variants, scale,
                                   tier="slow", jobs=1)
        print(f"slow (seed-equivalent, serial): "
              f"{tiers['slow']['wall_seconds']}s, "
              f"{tiers['slow']['sim_mips']} sim-MIPS")
        reference = tiers["tier4"]["measurements"]
        for tier in ("tier3", "tier2", "tier1", "slow"):
            if tiers[tier]["measurements"] != reference:
                raise ReproError(
                    f"{tier} and tier4 sweeps disagree architecturally "
                    f"— refusing to record a perf number for a broken "
                    f"simulator")
    record = build_record(benchmarks, variants, scale, tiers, jobs)
    if "speedup" in record:
        for key, value in record["speedup"].items():
            print(f"{key}: {value}x")

    if profiler is not None:
        profiler.dump_stats(profile_path(out))
        print(f"[profile in {profile_path(out)}]")
    if observing:
        write_obs_outputs(args)
    if args.smoke:
        # A smoke sweep is not a comparable perf reference; record it
        # only when the caller explicitly asked for an artifact.
        if args.out is not None:
            args.out.write_text(
                json.dumps(record, indent=2, sort_keys=True) + "\n")
            print(f"[recorded in {args.out}]")
        print("smoke ok")
        return 0
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"[recorded in {out}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
