"""Command-line tools: assembler driver, runner, objdump, auditor.

Installed as console scripts (``roload-as``, ``roload-run``,
``roload-objdump``, ``roload-audit``, ``roload-bench``,
``roload-stats``) and runnable as modules
(``python -m repro.tools.asmtool`` etc.). Each exposes ``main(argv)``
returning an exit code, so they are directly testable.
"""
