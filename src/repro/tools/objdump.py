"""roload-objdump: inspect a REX image (headers, symbols, disassembly).

    roload-objdump prog.rex [-d] [-t] [-h]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.asm import Executable
from repro.errors import ReproError
from repro.isa import disassemble_bytes


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="roload-objdump",
        description="Display information from a REX image.",
        add_help=False)
    parser.add_argument("image", type=Path)
    parser.add_argument("-d", "--disassemble", action="store_true")
    parser.add_argument("-t", "--symbols", action="store_true")
    parser.add_argument("-h", "--headers", action="store_true")
    parser.add_argument("--help", action="help")
    return parser


def dump_headers(image: Executable) -> str:
    lines = [f"entry: {image.entry:#x}",
             f"{'segment':20s} {'vaddr':>10s} {'filesz':>8s} "
             f"{'memsz':>8s} {'flags':>6s} {'key':>5s}"]
    for segment in image.segments:
        flags = ("r" if segment.readable else "-") + \
            ("w" if segment.writable else "-") + \
            ("x" if segment.executable else "-")
        lines.append(f"{segment.name:20s} {segment.vaddr:>#10x} "
                     f"{len(segment.data):>8d} {segment.memsize:>8d} "
                     f"{flags:>6s} {segment.key:>5d}")
    return "\n".join(lines)


def dump_symbols(image: Executable) -> str:
    lines = []
    for name, address in sorted(image.symbols.items(),
                                key=lambda kv: kv[1]):
        lines.append(f"{address:#012x}  {name}")
    return "\n".join(lines)


def dump_disassembly(image: Executable) -> str:
    by_address = {}
    for name, address in image.symbols.items():
        by_address.setdefault(address, []).append(name)
    lines = []
    for segment in image.segments:
        if not segment.executable or not segment.data:
            continue
        lines.append(f"\nDisassembly of {segment.name or '.text'}:")
        for address, __size, text in disassemble_bytes(
                segment.data, segment.vaddr):
            for label in by_address.get(address, []):
                lines.append(f"\n{address:#010x} <{label}>:")
            lines.append(f"    {address:#10x}:  {text}")
    return "\n".join(lines)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        image = Executable.from_bytes(args.image.read_bytes())
    except (ReproError, OSError) as error:
        print(f"roload-objdump: {error}", file=sys.stderr)
        return 1
    if not (args.disassemble or args.symbols or args.headers):
        args.headers = True
    if args.headers:
        print(dump_headers(image))
    if args.symbols:
        print(dump_symbols(image))
    if args.disassemble:
        print(dump_disassembly(image))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
