"""roload-as: assemble and link RISC-V (+ROLoad) sources into an image.

    roload-as prog.s lib.s -o prog.rex [--base 0x10000] [--no-rvc]
                                       [--entry _start] [--audit]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.asm import assemble, audit_image, link
from repro.errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="roload-as",
        description="Assemble and link ROLoad-extended RISC-V assembly.")
    parser.add_argument("sources", nargs="+", type=Path,
                        help="assembly source files (.s)")
    parser.add_argument("-o", "--output", type=Path, default=None,
                        help="output image (default: first source "
                             "with .rex suffix)")
    parser.add_argument("--base", type=lambda v: int(v, 0),
                        default=0x10000, help="load base address")
    parser.add_argument("--entry", default="_start",
                        help="entry symbol (default _start)")
    parser.add_argument("--no-rvc", action="store_true",
                        help="disable compressed-instruction emission")
    parser.add_argument("--audit", action="store_true",
                        help="run the ROLoad deployment auditor after "
                             "linking; fail on errors")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        objects = [
            assemble(path.read_text(), name=str(path),
                     rvc=not args.no_rvc)
            for path in args.sources
        ]
        from repro.asm.linker import Linker
        image = Linker(base=args.base,
                       entry_symbol=args.entry).link(objects)
    except (ReproError, OSError) as error:
        print(f"roload-as: {error}", file=sys.stderr)
        return 1
    if args.audit:
        findings = audit_image(image)
        for finding in findings:
            print(f"roload-as: {finding}", file=sys.stderr)
        if any(f.severity == "error" for f in findings):
            return 2
    output = args.output or args.sources[0].with_suffix(".rex")
    output.write_bytes(image.to_bytes())
    total = sum(len(s.data) for s in image.segments)
    print(f"wrote {output} ({len(image.segments)} segments, "
          f"{total} bytes, entry {image.entry:#x})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
