"""roload-stats: inspect, convert, and validate observability artifacts.

    roload-stats summary FILE          # metrics JSON or events JSONL
    roload-stats trace EVENTS.jsonl -o TRACE.json
    roload-stats validate FILE         # Chrome trace or bench record
    roload-stats top METRICS.json [--image IMG] [--annotate SYMBOL]
    roload-stats audit verify AUDIT.jsonl
    roload-stats trend BENCH.json ... [--check-against BASELINE.json]

``summary`` prints a human-readable digest of a metrics snapshot
(``--metrics-out``), a structured event dump (JSONL), or a
``roload-bench`` record (per-tier residency incl. tier 4).  ``trace``
converts a JSONL event dump into Chrome trace-event JSON that opens in
Perfetto / chrome://tracing.  ``validate`` checks a trace file against
the trace-event schema — or, when the file is a ``roload-bench``
record, checks it against the bench record schema (versions 3 through
5) — and exits 1 on any problem: the CI artifact check.

``top`` ranks the guest-attribution histogram (blocks/regions by
retired instructions per tier); with ``--image`` the unit heads resolve
to symbols, and ``--annotate SYMBOL`` prints that symbol's disassembly
with retire counts.  ``audit verify`` recomputes a saved audit trail's
hash chain and fails closed — exit 1 with the divergent record named —
on any tamper, truncation, or reorder.  ``trend`` compares a series of
bench and/or fuzz-campaign records (oldest first) and exits 1 when a
later comparable record regresses past the tolerance — sim-MIPS for
bench records, detection rate for campaign records.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path

from repro.errors import ReproError
from repro.obs import chrome_trace, load_jsonl, validate_trace, verify_file
from repro.obs.attribution import SymbolMap, annotate, flatten, format_top
from repro.tools.cli import add_config_flag, config_scope


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="roload-stats",
        description="Inspect, convert, and validate observability "
                    "artifacts (metrics JSON, events JSONL, Chrome "
                    "traces).")
    add_config_flag(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    summary = sub.add_parser(
        "summary", help="digest a metrics snapshot or event dump")
    summary.add_argument("file", type=Path)

    trace = sub.add_parser(
        "trace", help="convert an events JSONL dump to Chrome trace JSON")
    trace.add_argument("events", type=Path)
    trace.add_argument("-o", "--out", type=Path, required=True)

    validate = sub.add_parser(
        "validate", help="check a Chrome trace file against the "
                         "trace-event schema, a roload-bench record "
                         "against the bench schema (v3-v5), a "
                         "roload-serve record (BENCH_serve.json, v1), "
                         "or a roload-fuzz campaign record "
                         "(BENCH_campaign.json, v1)")
    validate.add_argument("trace", type=Path)

    top = sub.add_parser(
        "top", help="rank guest code by retired instructions per tier "
                    "(from a metrics snapshot's attribution section)")
    top.add_argument("file", type=Path,
                     help="metrics JSON written with --metrics-out")
    top.add_argument("--image", type=Path, default=None, metavar="IMG",
                     help="REX image: resolve unit heads to symbols")
    top.add_argument("-n", "--limit", type=int, default=20,
                     help="rows to show (default 20)")
    top.add_argument("--annotate", default=None, metavar="SYMBOL",
                     help="print SYMBOL's disassembly annotated with "
                          "retire counts (requires --image)")

    audit = sub.add_parser(
        "audit", help="verify a saved security audit trail's hash chain")
    audit.add_argument("action", choices=("verify",))
    audit.add_argument("file", type=Path,
                       help="audit JSONL written with --audit-out")

    trend = sub.add_parser(
        "trend", help="compare a series of roload-bench records; fail "
                      "on a regression between comparable records")
    trend.add_argument("files", type=Path, nargs="+",
                       help="bench records, oldest first")
    trend.add_argument("--check-against", type=Path, default=None,
                       metavar="BASELINE.json",
                       help="also gate the newest record against this "
                            "baseline record")
    trend.add_argument("--tolerance", type=float, default=0.15,
                       help="allowed fractional sim-MIPS drop between "
                            "comparable records (default 0.15)")
    return parser


# Bench record schema (see repro.tools.benchtool): versions the
# validator accepts, and what each sweep/residency must carry. v5
# added the tier-4 flat-core sweep; committed v3/v4 records must keep
# validating so the gate can run against historical baselines.
BENCH_SCHEMA_VERSIONS = (3, 4, 5)

_SWEEP_REQUIRED = ("tier", "wall_seconds", "sim_mips",
                   "instructions", "cycles", "residency")

# The newest tier a record of each version is required to include
# (full and smoke/gate records alike always sweep their top tier).
_TOP_TIER = {3: "tier2", 4: "tier3", 5: "tier4"}


def is_bench_record(data: dict) -> bool:
    return isinstance(data, dict) and data.get("tool") == "roload-bench"


# Serve bench record schema (see repro.serve.loadgen): what a
# BENCH_serve.json must carry for the CI artifact check.
SERVE_SCHEMA_VERSIONS = (1,)

_SERVE_SECTIONS = {
    "fork": ("cold_boot_ms", "fork_ms_mean", "fork_ms_p99", "speedup"),
    "throughput": ("sessions_per_sec", "steps_per_sec", "sim_mips"),
    "latency_ms": ("step_p50", "step_p99", "create_p50", "create_p99"),
    "determinism": ("groups", "divergent"),
}


def is_serve_record(data: dict) -> bool:
    return isinstance(data, dict) and data.get("tool") == "roload-serve"


def validate_serve_record(record: dict) -> "list[str]":
    """Schema-check one BENCH_serve.json record; returns problems."""
    problems = []
    version = record.get("schema_version")
    if version not in SERVE_SCHEMA_VERSIONS:
        problems.append(f"schema_version {version!r} not in "
                        f"{list(SERVE_SCHEMA_VERSIONS)}")
        return problems
    for key in ("params", "host"):
        if not isinstance(record.get(key), dict):
            problems.append(f"missing section {key!r}")
    for section, fields in _SERVE_SECTIONS.items():
        body = record.get(section)
        if not isinstance(body, dict):
            problems.append(f"missing section {section!r}")
            continue
        for field in fields:
            if not isinstance(body.get(field), (int, float)) \
                    or isinstance(body.get(field), bool):
                problems.append(f"{section}.{field}: not a number "
                                f"(got {body.get(field)!r})")
    determinism = record.get("determinism", {})
    divergent = determinism.get("divergent")
    if isinstance(divergent, int) and divergent > 0:
        problems.append(f"determinism.divergent is {divergent}: "
                        f"identical-workload sessions diverged")
    return problems


def _summarize_serve(record: dict) -> str:
    params = record.get("params", {})
    fork = record.get("fork", {})
    throughput = record.get("throughput", {})
    latency = record.get("latency_ms", {})
    determinism = record.get("determinism", {})
    return "\n".join([
        f"roload-serve record (schema "
        f"v{record.get('schema_version', '?')}): "
        f"{params.get('sessions', '?')} sessions across "
        f"{params.get('workers', '?')} workers, "
        f"workload {params.get('workload', '?')} "
        f"(scale {params.get('scale', '?')}, "
        f"tiers: {', '.join(params.get('tiers', []))})",
        f"  fork: {fork.get('fork_ms_mean', 0):.3f}ms mean / "
        f"{fork.get('fork_ms_p99', 0):.3f}ms p99 vs "
        f"{fork.get('cold_boot_ms', 0):.1f}ms cold boot "
        f"({fork.get('speedup', 0):.1f}x)",
        f"  throughput: {throughput.get('sessions_per_sec', 0):.1f} "
        f"sessions/s, {throughput.get('steps_per_sec', 0):.1f} steps/s, "
        f"{throughput.get('sim_mips', 0):.3f} sim-MIPS",
        f"  latency: step p50 {latency.get('step_p50', 0):.2f}ms / "
        f"p99 {latency.get('step_p99', 0):.2f}ms, create p99 "
        f"{latency.get('create_p99', 0):.2f}ms",
        f"  determinism: {determinism.get('groups', 0)} group(s), "
        f"{determinism.get('divergent', 0)} divergent",
    ])


# Fuzz campaign record schema (see repro.fuzz.campaign): what a
# BENCH_campaign.json must carry for the CI artifact check.
CAMPAIGN_SCHEMA_VERSIONS = (1,)

_CAMPAIGN_SECTIONS = {
    "coverage": ("unique_signatures", "corpus_size"),
    "detection": ("injections", "rate"),
    "crashes": ("total", "unique"),
    "escapes": ("total", "unique", "unexplained"),
}


def is_campaign_record(data: dict) -> bool:
    return isinstance(data, dict) and data.get("tool") == "roload-fuzz"


def validate_campaign_record(record: dict) -> "list[str]":
    """Schema-check one BENCH_campaign.json record; returns problems.

    Beyond shape, the security gate itself is enforced: a record with
    escapes, unexplained (non-replay-verified) escape findings, or
    ``ok: false`` is invalid — CI must not archive a campaign that
    failed its own acceptance criteria.
    """
    problems = []
    version = record.get("schema")
    if version not in CAMPAIGN_SCHEMA_VERSIONS:
        problems.append(f"schema {version!r} not in "
                        f"{list(CAMPAIGN_SCHEMA_VERSIONS)}")
        return problems
    for key in ("mode", "seed", "executions", "workers",
                "schedule_max"):
        if key not in record:
            problems.append(f"missing top-level key {key!r}")
    if record.get("mode") not in ("guided", "random", None):
        problems.append(f"mode {record.get('mode')!r} is neither "
                        f"'guided' nor 'random'")
    for section, fields in _CAMPAIGN_SECTIONS.items():
        body = record.get(section)
        if not isinstance(body, dict):
            problems.append(f"missing section {section!r}")
            continue
        for field in fields:
            if not isinstance(body.get(field), (int, float)) \
                    or isinstance(body.get(field), bool):
                problems.append(f"{section}.{field}: not a number "
                                f"(got {body.get(field)!r})")
    coverage = record.get("coverage")
    if isinstance(coverage, dict) \
            and not isinstance(coverage.get("curve"), list):
        problems.append("coverage.curve: not a list")
    detection = record.get("detection")
    if isinstance(detection, dict):
        rate = detection.get("rate")
        if isinstance(rate, (int, float)) and not 0 <= rate <= 1:
            problems.append(f"detection.rate {rate!r} outside [0, 1]")
        if not isinstance(detection.get("table"), dict):
            problems.append("detection.table: not an object")
    if not isinstance(record.get("findings"), list):
        problems.append("findings: not a list")
    versus = record.get("guided_vs_random")
    if versus is not None:
        if not isinstance(versus, dict):
            problems.append("guided_vs_random: not an object")
        elif not versus.get("guided_wins"):
            problems.append("guided_vs_random.guided_wins is false: "
                            "guided coverage did not beat random at "
                            "equal budget")
    escapes = record.get("escapes", {})
    if isinstance(escapes, dict):
        if isinstance(escapes.get("total"), int) and escapes["total"] > 0:
            problems.append(f"escapes.total is {escapes['total']}: "
                            f"injections escaped detection")
        unexplained = escapes.get("unexplained")
        if isinstance(unexplained, int) and unexplained > 0:
            problems.append(f"escapes.unexplained is {unexplained}: "
                            f"escape findings failed replay "
                            f"verification")
    if record.get("ok") is not True:
        problems.append("record marks itself not ok")
    return problems


def _summarize_campaign(record: dict) -> str:
    coverage = record.get("coverage", {})
    detection = record.get("detection", {})
    crashes = record.get("crashes", {})
    escapes = record.get("escapes", {})
    lines = [
        f"roload-fuzz record (schema v{record.get('schema', '?')}): "
        f"{record.get('mode', '?')} mode, "
        f"{record.get('executions', '?')} executions across "
        f"{record.get('workers', '?')} workers "
        f"(seed {record.get('seed', '?')}, schedule_max "
        f"{record.get('schedule_max', '?')})",
        f"  coverage: {coverage.get('unique_signatures', 0)} unique "
        f"signatures, corpus {coverage.get('corpus_size', 0)}",
        f"  detection: rate {detection.get('rate', 0):.3f} over "
        f"{detection.get('injections', 0)} injections "
        f"({detection.get('groups', 0)} behavior groups)",
        f"  crashes: {crashes.get('total', 0)} "
        f"({crashes.get('unique', 0)} unique); escapes: "
        f"{escapes.get('total', 0)} "
        f"({escapes.get('unexplained', 0)} unexplained)",
    ]
    versus = record.get("guided_vs_random")
    if isinstance(versus, dict):
        lines.append(
            f"  guided vs random: {versus.get('guided_unique', 0)} vs "
            f"{versus.get('random_unique', 0)} unique signatures at "
            f"{versus.get('budget', 0)} executions each "
            f"({'guided wins' if versus.get('guided_wins') else 'guided does NOT win'})")
    lines.append(f"  ok: {record.get('ok')}")
    return "\n".join(lines)


def validate_bench_record(record: dict) -> "list[str]":
    """Schema-check one BENCH_interp.json record; returns problems."""
    problems = []
    version = record.get("schema_version")
    if version not in BENCH_SCHEMA_VERSIONS:
        problems.append(
            f"schema_version {version!r} not in "
            f"{list(BENCH_SCHEMA_VERSIONS)}")
        return problems
    for key in ("scale", "benchmarks", "variants", "host", "tiers"):
        if key not in record:
            problems.append(f"missing top-level key {key!r}")
    tiers = record.get("tiers")
    if not isinstance(tiers, dict) or not tiers:
        problems.append("'tiers' must be a non-empty object")
        return problems
    top = _TOP_TIER[version]
    if top not in tiers:
        problems.append(f"schema v{version} record lacks the "
                        f"{top!r} sweep")
    for name, sweep in tiers.items():
        for key in _SWEEP_REQUIRED:
            if key not in sweep:
                problems.append(f"tiers.{name}: missing {key!r}")
        residency = sweep.get("residency", {})
        if "retired" not in residency:
            problems.append(f"tiers.{name}.residency: missing 'retired'")
        if version >= 5:
            for key in ("tier4_retired", "flat_regions_compiled"):
                if key not in residency:
                    problems.append(
                        f"tiers.{name}.residency: missing {key!r} "
                        f"(required at schema v5)")
    speedup = record.get("speedup", {})
    for key, value in speedup.items():
        if not isinstance(value, (int, float)):
            problems.append(f"speedup.{key}: not a number")
    if version >= 5 and "tier4" in tiers and "tier3" in tiers \
            and "tier4_over_tier3" not in speedup:
        problems.append("schema v5 record with tier3+tier4 sweeps "
                        "lacks speedup.tier4_over_tier3")
    return problems


def _summarize_events(events: "list[dict]") -> str:
    lines = [f"{len(events)} events"]
    by_cat = Counter(e.get("cat", "?") for e in events)
    lines.append("  by category: " + ", ".join(
        f"{cat}={count}" for cat, count in sorted(by_cat.items())))
    by_type = Counter(e.get("type", "?") for e in events)
    lines.append(f"  {'type':32s} {'count':>8s}")
    for type_, count in by_type.most_common():
        lines.append(f"  {type_:32s} {count:>8d}")
    spans = [e for e in events if "dur_us" in e]
    if spans:
        total = sum(e["dur_us"] for e in spans)
        lines.append(f"  span time: {total / 1e6:.4f}s across "
                     f"{len(spans)} spans")
    return "\n".join(lines)


def _summarize_metrics(snapshot: dict) -> str:
    lines = [f"{len(snapshot)} metric series"]
    for name in sorted(snapshot):
        value = snapshot[name]
        if isinstance(value, float):
            lines.append(f"  {name:40s} {value:.6f}")
        elif isinstance(value, dict):
            lines.append(f"  {name:40s} "
                         + json.dumps(value, sort_keys=True))
        else:
            lines.append(f"  {name:40s} {value}")
    return "\n".join(lines)


def _summarize_bench(record: dict) -> str:
    """A roload-bench record as a per-tier residency/perf table (all
    five tiers, tier 4 included)."""
    version = record.get("schema_version", "?")
    lines = [f"roload-bench record (schema v{version}): "
             f"scale {record.get('scale', '?')}, "
             f"benchmarks: {', '.join(record.get('benchmarks', []))}",
             f"  {'tier':<8} {'sim_mips':>10} {'retired':>14} "
             f"{'t4_retired':>12} {'flat_regions':>12}"]
    tiers = record.get("tiers", {})
    for name in ("slow", "tier1", "tier2", "tier3", "tier4"):
        sweep = tiers.get(name)
        if sweep is None:
            continue
        residency = sweep.get("residency", {})
        lines.append(
            f"  {name:<8} {sweep.get('sim_mips', 0):>10} "
            f"{residency.get('retired', 0):>14,d} "
            f"{residency.get('tier4_retired', 0):>12,d} "
            f"{residency.get('flat_regions_compiled', 0):>12,d}")
    speedup = record.get("speedup", {})
    if speedup:
        lines.append("  speedups: " + ", ".join(
            f"{key}={value}x" for key, value in sorted(speedup.items())))
    return "\n".join(lines)


def cmd_summary(args) -> int:
    """Digest a file, auto-detecting its kind: a whole-file JSON object
    is a metrics snapshot, a bench record, or a Chrome trace; anything
    that only parses line by line is an events JSONL dump."""
    try:
        data = json.loads(args.file.read_text())
    except json.JSONDecodeError:
        data = None
    if isinstance(data, dict):
        if "traceEvents" in data:
            print(f"Chrome trace: {len(data['traceEvents'])} trace "
                  f"events (use 'validate' to schema-check)")
            return 0
        if is_bench_record(data):
            print(_summarize_bench(data))
            return 0
        if is_serve_record(data):
            print(_summarize_serve(data))
            return 0
        if is_campaign_record(data):
            print(_summarize_campaign(data))
            return 0
        if "ts" in data and "type" in data:   # a one-event JSONL dump
            print(_summarize_events([data]))
            return 0
        print(_summarize_metrics(data))
        return 0
    if isinstance(data, list):
        print(_summarize_events(data))
        return 0
    try:
        print(_summarize_events(load_jsonl(args.file)))
        return 0
    except json.JSONDecodeError:
        print(f"roload-stats: {args.file} is neither JSON nor JSONL",
              file=sys.stderr)
        return 1


def cmd_trace(args) -> int:
    events = load_jsonl(args.events)
    trace = chrome_trace(events)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"[trace: {len(trace['traceEvents'])} events in {args.out}]")
    return 0


def cmd_validate(args) -> int:
    try:
        trace = json.loads(args.trace.read_text())
    except json.JSONDecodeError as error:
        print(f"roload-stats: {args.trace}: not JSON ({error})",
              file=sys.stderr)
        return 1
    if is_bench_record(trace):
        problems = validate_bench_record(trace)
        if problems:
            for problem in problems:
                print(f"roload-stats: {args.trace}: {problem}",
                      file=sys.stderr)
            return 1
        version = trace["schema_version"]
        tiers = ", ".join(sorted(trace["tiers"]))
        print(f"{args.trace}: ok (bench record schema v{version}, "
              f"tiers: {tiers})")
        return 0
    if is_serve_record(trace):
        problems = validate_serve_record(trace)
        if problems:
            for problem in problems:
                print(f"roload-stats: {args.trace}: {problem}",
                      file=sys.stderr)
            return 1
        version = trace["schema_version"]
        determinism = trace.get("determinism", {})
        print(f"{args.trace}: ok (serve record schema v{version}, "
              f"{trace.get('params', {}).get('sessions', '?')} sessions, "
              f"{determinism.get('divergent', 0)} divergent)")
        return 0
    if is_campaign_record(trace):
        problems = validate_campaign_record(trace)
        if problems:
            for problem in problems:
                print(f"roload-stats: {args.trace}: {problem}",
                      file=sys.stderr)
            return 1
        coverage = trace.get("coverage", {})
        print(f"{args.trace}: ok (campaign record schema "
              f"v{trace['schema']}, {trace.get('mode', '?')} mode, "
              f"{trace.get('executions', '?')} executions, "
              f"{coverage.get('unique_signatures', 0)} unique "
              f"signatures)")
        return 0
    problems = validate_trace(trace)
    if problems:
        for problem in problems:
            print(f"roload-stats: {args.trace}: {problem}",
                  file=sys.stderr)
        return 1
    count = len(trace["traceEvents"])
    print(f"{args.trace}: ok ({count} trace events)")
    return 0


def cmd_top(args) -> int:
    data = json.loads(args.file.read_text())
    if not isinstance(data, dict):
        print(f"roload-stats: {args.file} is not a metrics snapshot",
              file=sys.stderr)
        return 1
    table = data.get("attribution")
    if not isinstance(table, dict):
        table = {}
    symbols = None
    image = None
    if args.image is not None:
        from repro.asm import Executable
        image = Executable.from_bytes(args.image.read_bytes())
        symbols = SymbolMap(image.symbols)
    if args.annotate is not None:
        if image is None:
            print("roload-stats: --annotate requires --image",
                  file=sys.stderr)
            return 2
        print(annotate(image, args.annotate, table))
        return 0
    print(format_top(flatten(table), symbols, limit=args.limit))
    return 0


def cmd_audit(args) -> int:
    problems = verify_file(args.file)
    if problems:
        for problem in problems:
            print(f"roload-stats: {args.file}: {problem}",
                  file=sys.stderr)
        print(f"roload-stats: {args.file}: audit chain verification "
              f"FAILED ({len(problems)} problem"
              f"{'s' if len(problems) != 1 else ''})", file=sys.stderr)
        return 1
    records = [json.loads(line)
               for line in args.file.read_text().splitlines() if line]
    head = records[-1]["sha256"]
    print(f"{args.file}: ok ({len(records)} records, "
          f"{len(records) - 2} events, head {head[:16]}…)")
    return 0


def _comparable(a: dict, b: dict) -> bool:
    """Two bench records measure the same thing: same scale, same
    benchmark set, same variants. Gating across different sweeps (a
    smoke record vs a full record) is meaningless."""
    return (a.get("scale") == b.get("scale")
            and a.get("benchmarks") == b.get("benchmarks")
            and a.get("variants") == b.get("variants"))


def _campaign_comparable(a: dict, b: dict) -> bool:
    """Two campaign records measure the same thing: same scheduling
    mode, same budget, same schedule depth."""
    return (a.get("mode") == b.get("mode")
            and a.get("executions") == b.get("executions")
            and a.get("schedule_max") == b.get("schedule_max"))


def _trend_campaigns(series, tolerance: float) -> bool:
    """Gate a series of campaign records on detection-rate drops;
    returns whether any comparable pair regressed."""
    print(f"  {'record':<36} {'schema':>6} {'mode':>8} "
          f"{'det_rate':>10} {'coverage':>10}")
    for path, record in series:
        print(f"  {path.name:<36} {record['schema']:>6} "
              f"{record.get('mode', '?'):>8} "
              f"{record['detection']['rate']:>10.3f} "
              f"{record['coverage']['unique_signatures']:>10}")
    failed = False
    for (prev_path, prev), (path, record) in zip(series, series[1:]):
        if not _campaign_comparable(prev, record):
            print(f"note: {prev_path.name} -> {path.name}: not "
                  f"comparable (different mode/executions/"
                  f"schedule_max); not gated")
            continue
        rate = record["detection"]["rate"]
        floor = prev["detection"]["rate"] - tolerance
        if rate < floor:
            failed = True
            print(f"roload-stats: {path.name}: DETECTION REGRESSION vs "
                  f"{prev_path.name}: rate {rate:.3f} < floor "
                  f"{floor:.3f} (reference "
                  f"{prev['detection']['rate']:.3f})", file=sys.stderr)
    return failed


def cmd_trend(args) -> int:
    from repro.tools.benchtool import baseline_mips, evaluate_gate
    series = []
    campaigns = []
    for path in args.files:
        record = json.loads(path.read_text())
        if is_campaign_record(record):
            problems = validate_campaign_record(record)
            if problems:
                for problem in problems:
                    print(f"roload-stats: {path}: {problem}",
                          file=sys.stderr)
                return 1
            campaigns.append((path, record))
            continue
        if not is_bench_record(record):
            print(f"roload-stats: {path}: neither a roload-bench nor a "
                  f"roload-fuzz record", file=sys.stderr)
            return 1
        problems = validate_bench_record(record)
        if problems:
            for problem in problems:
                print(f"roload-stats: {path}: {problem}", file=sys.stderr)
            return 1
        series.append((path, record))
    failed = False
    if campaigns:
        failed = _trend_campaigns(campaigns, args.tolerance)
    if not series:
        return 1 if failed else 0
    print(f"  {'record':<36} {'schema':>6} {'top tier':>8} "
          f"{'sim_mips':>10}")
    for path, record in series:
        top = _TOP_TIER[record["schema_version"]]
        print(f"  {path.name:<36} {record['schema_version']:>6} "
              f"{top:>8} {baseline_mips(record):>10.3f}")
    for (prev_path, prev), (path, record) in zip(series, series[1:]):
        if not _comparable(prev, record):
            print(f"note: {prev_path.name} -> {path.name}: not "
                  f"comparable (different scale/benchmarks/variants); "
                  f"not gated")
            continue
        ok, reference, floor = evaluate_gate(
            baseline_mips(record), prev, args.tolerance)
        if not ok:
            failed = True
            print(f"roload-stats: {path.name}: REGRESSION vs "
                  f"{prev_path.name}: {baseline_mips(record):.3f} MIPS "
                  f"< floor {floor:.3f} (reference {reference:.3f})",
                  file=sys.stderr)
    if args.check_against is not None:
        baseline = json.loads(args.check_against.read_text())
        path, newest = series[-1]
        if not _comparable(baseline, newest):
            print(f"note: {path.name} vs {args.check_against.name}: not "
                  f"comparable (different scale/benchmarks/variants); "
                  f"not gated")
        else:
            ok, reference, floor = evaluate_gate(
                baseline_mips(newest), baseline, args.tolerance)
            verdict = "ok" if ok else "REGRESSION"
            print(f"gate vs {args.check_against.name}: {verdict} "
                  f"({baseline_mips(newest):.3f} MIPS, floor "
                  f"{floor:.3f}, reference {reference:.3f})")
            failed = failed or not ok
    return 1 if failed else 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with config_scope(args):
            if args.command == "summary":
                return cmd_summary(args)
            if args.command == "trace":
                return cmd_trace(args)
            if args.command == "top":
                return cmd_top(args)
            if args.command == "audit":
                return cmd_audit(args)
            if args.command == "trend":
                return cmd_trend(args)
            return cmd_validate(args)
    except (ReproError, OSError) as error:
        print(f"roload-stats: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
