"""roload-stats: inspect, convert, and validate observability artifacts.

    roload-stats summary FILE          # metrics JSON or events JSONL
    roload-stats trace EVENTS.jsonl -o TRACE.json
    roload-stats validate TRACE.json

``summary`` prints a human-readable digest of a metrics snapshot
(``--metrics-out``) or a structured event dump (JSONL).  ``trace``
converts a JSONL event dump into Chrome trace-event JSON that opens in
Perfetto / chrome://tracing.  ``validate`` checks a trace file against
the trace-event schema and exits 1 on any problem — the CI artifact
check.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path

from repro.errors import ReproError
from repro.obs import chrome_trace, load_jsonl, validate_trace
from repro.tools.cli import add_config_flag, config_scope


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="roload-stats",
        description="Inspect, convert, and validate observability "
                    "artifacts (metrics JSON, events JSONL, Chrome "
                    "traces).")
    add_config_flag(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    summary = sub.add_parser(
        "summary", help="digest a metrics snapshot or event dump")
    summary.add_argument("file", type=Path)

    trace = sub.add_parser(
        "trace", help="convert an events JSONL dump to Chrome trace JSON")
    trace.add_argument("events", type=Path)
    trace.add_argument("-o", "--out", type=Path, required=True)

    validate = sub.add_parser(
        "validate", help="check a Chrome trace file against the "
                         "trace-event schema")
    validate.add_argument("trace", type=Path)
    return parser


def _summarize_events(events: "list[dict]") -> str:
    lines = [f"{len(events)} events"]
    by_cat = Counter(e.get("cat", "?") for e in events)
    lines.append("  by category: " + ", ".join(
        f"{cat}={count}" for cat, count in sorted(by_cat.items())))
    by_type = Counter(e.get("type", "?") for e in events)
    lines.append(f"  {'type':32s} {'count':>8s}")
    for type_, count in by_type.most_common():
        lines.append(f"  {type_:32s} {count:>8d}")
    spans = [e for e in events if "dur_us" in e]
    if spans:
        total = sum(e["dur_us"] for e in spans)
        lines.append(f"  span time: {total / 1e6:.4f}s across "
                     f"{len(spans)} spans")
    return "\n".join(lines)


def _summarize_metrics(snapshot: dict) -> str:
    lines = [f"{len(snapshot)} metric series"]
    for name in sorted(snapshot):
        value = snapshot[name]
        if isinstance(value, float):
            lines.append(f"  {name:40s} {value:.6f}")
        elif isinstance(value, dict):
            lines.append(f"  {name:40s} "
                         + json.dumps(value, sort_keys=True))
        else:
            lines.append(f"  {name:40s} {value}")
    return "\n".join(lines)


def cmd_summary(args) -> int:
    """Digest a file, auto-detecting its kind: a whole-file JSON object
    is a metrics snapshot (or a Chrome trace); anything that only parses
    line by line is an events JSONL dump."""
    try:
        data = json.loads(args.file.read_text())
    except json.JSONDecodeError:
        data = None
    if isinstance(data, dict):
        if "traceEvents" in data:
            print(f"Chrome trace: {len(data['traceEvents'])} trace "
                  f"events (use 'validate' to schema-check)")
            return 0
        if "ts" in data and "type" in data:   # a one-event JSONL dump
            print(_summarize_events([data]))
            return 0
        print(_summarize_metrics(data))
        return 0
    if isinstance(data, list):
        print(_summarize_events(data))
        return 0
    try:
        print(_summarize_events(load_jsonl(args.file)))
        return 0
    except json.JSONDecodeError:
        print(f"roload-stats: {args.file} is neither JSON nor JSONL",
              file=sys.stderr)
        return 1


def cmd_trace(args) -> int:
    events = load_jsonl(args.events)
    trace = chrome_trace(events)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"[trace: {len(trace['traceEvents'])} events in {args.out}]")
    return 0


def cmd_validate(args) -> int:
    try:
        trace = json.loads(args.trace.read_text())
    except json.JSONDecodeError as error:
        print(f"roload-stats: {args.trace}: not JSON ({error})",
              file=sys.stderr)
        return 1
    problems = validate_trace(trace)
    if problems:
        for problem in problems:
            print(f"roload-stats: {args.trace}: {problem}",
                  file=sys.stderr)
        return 1
    count = len(trace["traceEvents"])
    print(f"{args.trace}: ok ({count} trace events)")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with config_scope(args):
            if args.command == "summary":
                return cmd_summary(args)
            if args.command == "trace":
                return cmd_trace(args)
            return cmd_validate(args)
    except (ReproError, OSError) as error:
        print(f"roload-stats: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
