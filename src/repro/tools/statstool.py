"""roload-stats: inspect, convert, and validate observability artifacts.

    roload-stats summary FILE          # metrics JSON or events JSONL
    roload-stats trace EVENTS.jsonl -o TRACE.json
    roload-stats validate FILE         # Chrome trace or bench record

``summary`` prints a human-readable digest of a metrics snapshot
(``--metrics-out``) or a structured event dump (JSONL).  ``trace``
converts a JSONL event dump into Chrome trace-event JSON that opens in
Perfetto / chrome://tracing.  ``validate`` checks a trace file against
the trace-event schema — or, when the file is a ``roload-bench``
record, checks it against the bench record schema (versions 3 through
5) — and exits 1 on any problem: the CI artifact check.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path

from repro.errors import ReproError
from repro.obs import chrome_trace, load_jsonl, validate_trace
from repro.tools.cli import add_config_flag, config_scope


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="roload-stats",
        description="Inspect, convert, and validate observability "
                    "artifacts (metrics JSON, events JSONL, Chrome "
                    "traces).")
    add_config_flag(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    summary = sub.add_parser(
        "summary", help="digest a metrics snapshot or event dump")
    summary.add_argument("file", type=Path)

    trace = sub.add_parser(
        "trace", help="convert an events JSONL dump to Chrome trace JSON")
    trace.add_argument("events", type=Path)
    trace.add_argument("-o", "--out", type=Path, required=True)

    validate = sub.add_parser(
        "validate", help="check a Chrome trace file against the "
                         "trace-event schema, or a roload-bench record "
                         "against the bench schema (v3-v5)")
    validate.add_argument("trace", type=Path)
    return parser


# Bench record schema (see repro.tools.benchtool): versions the
# validator accepts, and what each sweep/residency must carry. v5
# added the tier-4 flat-core sweep; committed v3/v4 records must keep
# validating so the gate can run against historical baselines.
BENCH_SCHEMA_VERSIONS = (3, 4, 5)

_SWEEP_REQUIRED = ("tier", "wall_seconds", "sim_mips",
                   "instructions", "cycles", "residency")

# The newest tier a record of each version is required to include
# (full and smoke/gate records alike always sweep their top tier).
_TOP_TIER = {3: "tier2", 4: "tier3", 5: "tier4"}


def is_bench_record(data: dict) -> bool:
    return isinstance(data, dict) and data.get("tool") == "roload-bench"


def validate_bench_record(record: dict) -> "list[str]":
    """Schema-check one BENCH_interp.json record; returns problems."""
    problems = []
    version = record.get("schema_version")
    if version not in BENCH_SCHEMA_VERSIONS:
        problems.append(
            f"schema_version {version!r} not in "
            f"{list(BENCH_SCHEMA_VERSIONS)}")
        return problems
    for key in ("scale", "benchmarks", "variants", "host", "tiers"):
        if key not in record:
            problems.append(f"missing top-level key {key!r}")
    tiers = record.get("tiers")
    if not isinstance(tiers, dict) or not tiers:
        problems.append("'tiers' must be a non-empty object")
        return problems
    top = _TOP_TIER[version]
    if top not in tiers:
        problems.append(f"schema v{version} record lacks the "
                        f"{top!r} sweep")
    for name, sweep in tiers.items():
        for key in _SWEEP_REQUIRED:
            if key not in sweep:
                problems.append(f"tiers.{name}: missing {key!r}")
        residency = sweep.get("residency", {})
        if "retired" not in residency:
            problems.append(f"tiers.{name}.residency: missing 'retired'")
        if version >= 5:
            for key in ("tier4_retired", "flat_regions_compiled"):
                if key not in residency:
                    problems.append(
                        f"tiers.{name}.residency: missing {key!r} "
                        f"(required at schema v5)")
    speedup = record.get("speedup", {})
    for key, value in speedup.items():
        if not isinstance(value, (int, float)):
            problems.append(f"speedup.{key}: not a number")
    if version >= 5 and "tier4" in tiers and "tier3" in tiers \
            and "tier4_over_tier3" not in speedup:
        problems.append("schema v5 record with tier3+tier4 sweeps "
                        "lacks speedup.tier4_over_tier3")
    return problems


def _summarize_events(events: "list[dict]") -> str:
    lines = [f"{len(events)} events"]
    by_cat = Counter(e.get("cat", "?") for e in events)
    lines.append("  by category: " + ", ".join(
        f"{cat}={count}" for cat, count in sorted(by_cat.items())))
    by_type = Counter(e.get("type", "?") for e in events)
    lines.append(f"  {'type':32s} {'count':>8s}")
    for type_, count in by_type.most_common():
        lines.append(f"  {type_:32s} {count:>8d}")
    spans = [e for e in events if "dur_us" in e]
    if spans:
        total = sum(e["dur_us"] for e in spans)
        lines.append(f"  span time: {total / 1e6:.4f}s across "
                     f"{len(spans)} spans")
    return "\n".join(lines)


def _summarize_metrics(snapshot: dict) -> str:
    lines = [f"{len(snapshot)} metric series"]
    for name in sorted(snapshot):
        value = snapshot[name]
        if isinstance(value, float):
            lines.append(f"  {name:40s} {value:.6f}")
        elif isinstance(value, dict):
            lines.append(f"  {name:40s} "
                         + json.dumps(value, sort_keys=True))
        else:
            lines.append(f"  {name:40s} {value}")
    return "\n".join(lines)


def cmd_summary(args) -> int:
    """Digest a file, auto-detecting its kind: a whole-file JSON object
    is a metrics snapshot (or a Chrome trace); anything that only parses
    line by line is an events JSONL dump."""
    try:
        data = json.loads(args.file.read_text())
    except json.JSONDecodeError:
        data = None
    if isinstance(data, dict):
        if "traceEvents" in data:
            print(f"Chrome trace: {len(data['traceEvents'])} trace "
                  f"events (use 'validate' to schema-check)")
            return 0
        if "ts" in data and "type" in data:   # a one-event JSONL dump
            print(_summarize_events([data]))
            return 0
        print(_summarize_metrics(data))
        return 0
    if isinstance(data, list):
        print(_summarize_events(data))
        return 0
    try:
        print(_summarize_events(load_jsonl(args.file)))
        return 0
    except json.JSONDecodeError:
        print(f"roload-stats: {args.file} is neither JSON nor JSONL",
              file=sys.stderr)
        return 1


def cmd_trace(args) -> int:
    events = load_jsonl(args.events)
    trace = chrome_trace(events)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"[trace: {len(trace['traceEvents'])} events in {args.out}]")
    return 0


def cmd_validate(args) -> int:
    try:
        trace = json.loads(args.trace.read_text())
    except json.JSONDecodeError as error:
        print(f"roload-stats: {args.trace}: not JSON ({error})",
              file=sys.stderr)
        return 1
    if is_bench_record(trace):
        problems = validate_bench_record(trace)
        if problems:
            for problem in problems:
                print(f"roload-stats: {args.trace}: {problem}",
                      file=sys.stderr)
            return 1
        version = trace["schema_version"]
        tiers = ", ".join(sorted(trace["tiers"]))
        print(f"{args.trace}: ok (bench record schema v{version}, "
              f"tiers: {tiers})")
        return 0
    problems = validate_trace(trace)
    if problems:
        for problem in problems:
            print(f"roload-stats: {args.trace}: {problem}",
                  file=sys.stderr)
        return 1
    count = len(trace["traceEvents"])
    print(f"{args.trace}: ok ({count} trace events)")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with config_scope(args):
            if args.command == "summary":
                return cmd_summary(args)
            if args.command == "trace":
                return cmd_trace(args)
            return cmd_validate(args)
    except (ReproError, OSError) as error:
        print(f"roload-stats: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
