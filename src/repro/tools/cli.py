"""Shared CLI surface for the roload-* tools.

Every tool gets the same spelling for the same concept:

* ``--config KEY=VAL`` (repeatable) — set any :mod:`repro.config` knob
  for this invocation, by field name (``jit=0``) or environment name
  (``REPRO_JIT=0``). Applied through :func:`repro.config.env_knobs`, so
  worker processes forked by a sweep inherit the overrides exactly like
  environment variables — because they *are* environment variables for
  the duration of the run.
* ``--trace-out TRACE.json`` / ``--metrics-out METRICS.json`` — enable
  the observability layer and export a Chrome trace-event JSON and/or a
  live-counter metrics snapshot after the run.
* ``--sample-interval N`` — arm the flight recorder (counter
  time-series every N retired instructions; ``timeseries`` metrics
  section + Perfetto counter tracks in the trace).
* ``--audit-out AUDIT.jsonl`` — record the hash-chained security audit
  trail and save it sealed; verify with ``roload-stats audit verify``.
"""

from __future__ import annotations

import argparse
import json
from contextlib import contextmanager
from pathlib import Path

from repro import config as _config


def add_config_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--config", action="append", default=[], metavar="KEY=VAL",
        help="override a REPRO_* knob for this invocation (repeatable); "
             "KEY is a config field (jit=0) or env name (REPRO_JIT=0) — "
             "see `python -m repro.config` for the knob table")


@contextmanager
def config_scope(args):
    """Apply ``--config`` overrides for the body of a tool run."""
    pairs = getattr(args, "config", None) or []
    if not pairs:
        yield _config.current()
        return
    changes = _config.parse_kv(pairs)
    with _config.env_knobs(**changes):
        yield _config.current()


def add_obs_flags(parser: argparse.ArgumentParser,
                  what: str = "the run") -> None:
    parser.add_argument("--trace-out", type=Path, default=None,
                        metavar="TRACE.json",
                        help=f"write a Chrome trace-event JSON of {what} "
                             f"(enables observability)")
    parser.add_argument("--metrics-out", type=Path, default=None,
                        metavar="METRICS.json",
                        help=f"write a metrics snapshot (live architectural "
                             f"counters) of {what} (enables observability)")
    parser.add_argument("--sample-interval", type=int, default=0,
                        metavar="N",
                        help="flight recorder: sample the live counters "
                             "every N retired instructions (enables "
                             "observability; exported as the 'timeseries' "
                             "metrics section and as trace counter tracks)")
    parser.add_argument("--audit-out", type=Path, default=None,
                        metavar="AUDIT.jsonl",
                        help=f"write the hash-chained security audit trail "
                             f"of {what}, sealed (enables observability; "
                             f"check with `roload-stats audit verify`)")


def obs_requested(args) -> bool:
    return (getattr(args, "trace_out", None) is not None
            or getattr(args, "metrics_out", None) is not None
            or getattr(args, "sample_interval", 0) > 0
            or getattr(args, "audit_out", None) is not None)


def enable_obs(args):
    """Enable observability per the tool's flags (plus the REPRO_* env
    defaults, which :func:`repro.obs.enable` applies on its own)."""
    from repro import obs
    sample = getattr(args, "sample_interval", 0) or None
    audit = True if getattr(args, "audit_out", None) is not None else None
    return obs.enable(sample=sample, audit=audit)


def write_obs_outputs(args) -> None:
    """Export the captured event ring / metrics registry to files."""
    from repro import obs
    if args.trace_out is not None:
        events = list(obs.OBS.events)
        sampler = obs.OBS.sampler
        if sampler is not None and sampler.samples:
            events.extend(sampler.counter_events(obs.OBS.events.epoch))
            events.sort(key=lambda event: event["ts"])
        trace = obs.write_chrome_trace(events, args.trace_out)
        print(f"[trace: {len(trace['traceEvents'])} events in "
              f"{args.trace_out}]")
    if args.metrics_out is not None:
        snapshot = obs.OBS.registry.collect()
        args.metrics_out.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        print(f"[metrics: {len(snapshot)} series in {args.metrics_out}]")
    audit_out = getattr(args, "audit_out", None)
    if audit_out is not None and obs.OBS.audit is not None:
        obs.OBS.audit.seal()
        count = obs.OBS.audit.save(audit_out)
        print(f"[audit: {count} records in {audit_out}]")
