"""Shared CLI surface for the roload-* tools.

Every tool gets the same spelling for the same concept:

* ``--config KEY=VAL`` (repeatable) — set any :mod:`repro.config` knob
  for this invocation, by field name (``jit=0``) or environment name
  (``REPRO_JIT=0``). Applied through :func:`repro.config.env_knobs`, so
  worker processes forked by a sweep inherit the overrides exactly like
  environment variables — because they *are* environment variables for
  the duration of the run.
* ``--trace-out TRACE.json`` / ``--metrics-out METRICS.json`` — enable
  the observability layer and export a Chrome trace-event JSON and/or a
  live-counter metrics snapshot after the run.
"""

from __future__ import annotations

import argparse
import json
from contextlib import contextmanager
from pathlib import Path

from repro import config as _config


def add_config_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--config", action="append", default=[], metavar="KEY=VAL",
        help="override a REPRO_* knob for this invocation (repeatable); "
             "KEY is a config field (jit=0) or env name (REPRO_JIT=0) — "
             "see `python -m repro.config` for the knob table")


@contextmanager
def config_scope(args):
    """Apply ``--config`` overrides for the body of a tool run."""
    pairs = getattr(args, "config", None) or []
    if not pairs:
        yield _config.current()
        return
    changes = _config.parse_kv(pairs)
    with _config.env_knobs(**changes):
        yield _config.current()


def add_obs_flags(parser: argparse.ArgumentParser,
                  what: str = "the run") -> None:
    parser.add_argument("--trace-out", type=Path, default=None,
                        metavar="TRACE.json",
                        help=f"write a Chrome trace-event JSON of {what} "
                             f"(enables observability)")
    parser.add_argument("--metrics-out", type=Path, default=None,
                        metavar="METRICS.json",
                        help=f"write a metrics snapshot (live architectural "
                             f"counters) of {what} (enables observability)")


def obs_requested(args) -> bool:
    return (getattr(args, "trace_out", None) is not None
            or getattr(args, "metrics_out", None) is not None)


def write_obs_outputs(args) -> None:
    """Export the captured event ring / metrics registry to files."""
    from repro import obs
    if args.trace_out is not None:
        trace = obs.write_chrome_trace(obs.OBS.events, args.trace_out)
        print(f"[trace: {len(trace['traceEvents'])} events in "
              f"{args.trace_out}]")
    if args.metrics_out is not None:
        snapshot = obs.OBS.registry.collect()
        args.metrics_out.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        print(f"[metrics: {len(snapshot)} series in {args.metrics_out}]")
